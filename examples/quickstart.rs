//! Quickstart: simulate 10 NewReno flows on an EdgeScale (100 Mbps)
//! bottleneck and print per-flow throughput, fairness, and loss.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ccsim::cca::CcaKind;
use ccsim::experiments::{FlowGroup, Scenario};
use ccsim::sim::SimDuration;

fn main() {
    // 10 NewReno flows, 20 ms base RTT, on the paper's EdgeScale setting:
    // 100 Mbps bottleneck with a 3 MB drop-tail buffer.
    let scenario = Scenario::edge_scale()
        .flows(vec![FlowGroup::new(
            CcaKind::Reno,
            10,
            SimDuration::from_millis(20),
        )])
        .seed(42)
        .named("quickstart");

    println!(
        "running: {} flows on {} (buffer {} MB)...",
        scenario.flow_count(),
        scenario.bottleneck,
        scenario.buffer_bytes / 1_000_000
    );
    let outcome = ccsim::experiments::run(&scenario);

    println!(
        "\nper-flow throughput (measured over {}):",
        outcome.measured_for
    );
    for f in &outcome.flows {
        println!(
            "  flow {:>2} [{}]: {:>7.2} Mbps  ({} congestion events, {} retransmits)",
            f.flow,
            f.cca,
            f.throughput_mbps(),
            f.congestion_events,
            f.retransmits
        );
    }
    println!(
        "\naggregate: {:.1} Mbps",
        outcome.aggregate_throughput_mbps()
    );
    println!("utilization: {:.1}%", outcome.utilization() * 100.0);
    println!(
        "Jain's fairness index: {:.4}",
        outcome.jain_index().unwrap()
    );
    println!(
        "queue loss rate: {:.3}%  (max backlog {:.2} MB)",
        outcome.aggregate_loss_rate * 100.0,
        outcome.max_queue_bytes as f64 / 1e6
    );
    println!(
        "simulated {} in {} engine events",
        outcome.ended_at, outcome.events_processed
    );
}
