//! The paper's motivating story (§2): Netflix streams use NewReno, bulk
//! downloads use Cubic, YouTube uses BBR — what happens when they share a
//! congested link?
//!
//! Three head-to-head matchups on one EdgeScale bottleneck:
//!   1. equal Cubic vs NewReno        (paper: Cubic takes ~70-80%)
//!   2. one BBR vs many NewReno       (paper: BBR takes ~40% alone)
//!   3. equal BBR vs Cubic            (paper: BBR takes ~99%)
//!
//! ```sh
//! cargo run --release --example streaming_vs_downloads
//! ```

use ccsim::cca::CcaKind;
use ccsim::experiments::{FlowGroup, RunOutcome, Scenario};
use ccsim::sim::SimDuration;

fn run(name: &str, flows: Vec<FlowGroup>) -> RunOutcome {
    let scenario = Scenario::edge_scale().flows(flows).seed(11).named(name);
    ccsim::experiments::run(&scenario)
}

fn main() {
    let rtt = SimDuration::from_millis(20);

    println!("matchup 1: 10 Cubic downloads vs 10 NewReno streams");
    let o = run(
        "cubic-vs-reno",
        vec![
            FlowGroup::new(CcaKind::Cubic, 10, rtt),
            FlowGroup::new(CcaKind::Reno, 10, rtt),
        ],
    );
    print_shares(&o, &[CcaKind::Cubic, CcaKind::Reno]);

    println!("\nmatchup 2: 1 BBR video vs 20 NewReno streams");
    let o = run(
        "bbr-vs-many-reno",
        vec![
            FlowGroup::new(CcaKind::Bbr, 1, rtt),
            FlowGroup::new(CcaKind::Reno, 20, rtt),
        ],
    );
    print_shares(&o, &[CcaKind::Bbr, CcaKind::Reno]);
    println!(
        "  (fair share for 1 of 21 flows would be {:.1}%)",
        100.0 / 21.0
    );

    println!("\nmatchup 3: 10 BBR vs 10 Cubic");
    let o = run(
        "bbr-vs-cubic",
        vec![
            FlowGroup::new(CcaKind::Bbr, 10, rtt),
            FlowGroup::new(CcaKind::Cubic, 10, rtt),
        ],
    );
    print_shares(&o, &[CcaKind::Bbr, CcaKind::Cubic]);

    println!(
        "\nthe paper shows all three patterns persist — and sharpen — with\n\
         thousands of flows on a 10 Gbps core link (Figures 5-8; regenerate\n\
         with `cargo run --release -p ccsim-bench --bin fig5` etc.)."
    );
}

fn print_shares(o: &RunOutcome, kinds: &[CcaKind]) {
    for &k in kinds {
        let share = o.share_of(k).unwrap_or(0.0);
        let count = o.count_of(k);
        println!(
            "  {:>5} x{:<3} -> {:>5.1}% of throughput ({:.1} Mbps total)",
            k.name(),
            count,
            share * 100.0,
            share * o.aggregate_throughput_mbps()
        );
    }
    println!("  utilization: {:.1}%", o.utilization() * 100.0);
}
