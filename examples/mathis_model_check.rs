//! Reproduce the paper's Mathis-model methodology (§4) end to end on one
//! scenario: run all-NewReno flows, then fit the Mathis constant `C` with
//! `p` interpreted as (a) the packet-loss rate at the queue and (b) the
//! CWND-halving rate from end-host state, and compare prediction errors.
//!
//! ```sh
//! cargo run --release --example mathis_model_check -- [flow_count]
//! ```

use ccsim::analysis::mathis::fit_constant;
use ccsim::analysis::median;
use ccsim::cca::CcaKind;
use ccsim::experiments::{FlowGroup, PInterpretation, Scenario};
use ccsim::sim::SimDuration;

fn main() {
    let flow_count: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);

    let scenario = Scenario::edge_scale()
        .flows(vec![FlowGroup::new(
            CcaKind::Reno,
            flow_count,
            SimDuration::from_millis(20),
        )])
        .seed(3)
        .named("mathis-check");

    println!(
        "running {flow_count} NewReno flows @ 20 ms on {}...\n",
        scenario.bottleneck
    );
    let outcome = ccsim::experiments::run(&scenario);

    let thr: Vec<f64> = outcome.throughputs();
    println!(
        "median measured throughput: {:.2} Mbps  (loss rate {:.3}%)",
        median(&thr).unwrap() * 8.0 / 1e6,
        outcome.aggregate_loss_rate * 100.0
    );
    if let Some(ratio) = outcome.loss_to_halving_ratio() {
        println!("packet-loss to CWND-halving ratio: {ratio:.2}");
    }
    if let Some(b) = outcome.drop_burstiness {
        println!("queue-drop burstiness (Goh–Barabási): {b:.2}");
    }
    println!();

    for (label, p) in [
        ("p = packet loss rate ", PInterpretation::PacketLoss),
        ("p = CWND halving rate", PInterpretation::CwndHalving),
    ] {
        let obs = outcome.mathis_observations(CcaKind::Reno, p);
        match fit_constant(&obs) {
            Some(fit) => println!(
                "{label}: best-fit C = {:.2}, median prediction error = {:.1}%  ({} flows usable)",
                fit.c,
                fit.median_error * 100.0,
                obs.len() - fit.skipped
            ),
            None => println!("{label}: no usable observations (no losses in window?)"),
        }
    }

    println!(
        "\nMathis 1997 derived C = 0.94 for NewReno with delayed + selective\n\
         ACKs; the paper's point is that at CoreScale only the halving-rate\n\
         interpretation keeps C stable and errors low (cf. `--bin table1`)."
    );
}
