//! Offline stand-in for `serde_derive`.
//!
//! Emits empty marker-trait impls for the stand-in `serde` crate (see
//! `vendor/serde`). `#[serde(...)]` attributes are accepted and ignored,
//! matching real serde's attribute namespace so annotated types compile.
//!
//! Only non-generic `struct`/`enum` items are supported — the entire
//! workspace derives on concrete types. A clear panic fires otherwise so
//! a future generic derive site is caught at compile time.

use proc_macro::{TokenStream, TokenTree};

/// Extract the type identifier following the `struct`/`enum` keyword.
fn type_name(input: &TokenStream) -> String {
    let mut saw_kw = false;
    for tt in input.clone() {
        match tt {
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if saw_kw {
                    return s;
                }
                if s == "struct" || s == "enum" {
                    saw_kw = true;
                }
            }
            // `#[...]` attribute groups and bodies are skipped wholesale.
            _ => {}
        }
    }
    panic!("serde stand-in derive: no struct/enum name found in input");
}

/// Panic if the item is generic: the stand-in only supports concrete types.
fn reject_generics(input: &TokenStream, name: &str) {
    let mut after_name = false;
    for tt in input.clone() {
        match &tt {
            TokenTree::Ident(id) if id.to_string() == name => after_name = true,
            TokenTree::Punct(p) if after_name && p.as_char() == '<' => {
                panic!(
                    "serde stand-in derive: generic type `{name}` is unsupported; \
                     implement the marker traits by hand or extend vendor/serde_derive"
                );
            }
            TokenTree::Group(_) if after_name => return, // body reached: not generic
            _ => {}
        }
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    reject_generics(&input, &name);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    reject_generics(&input, &name);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .unwrap()
}
