//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! `proptest!` macro, integer-range and tuple strategies,
//! `prop::collection::vec`, `ProptestConfig::with_cases`, and the
//! `prop_assert*` macros. Cases are generated from a fixed seed per test
//! function, so failures are reproducible; there is no shrinking — the
//! failing inputs are printed instead (every generated argument is
//! `Debug`).

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Test-runner configuration (subset of real proptest's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A value-generation strategy.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;
    /// Generate one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Transform generated values (subset of real proptest's `prop_map`;
    /// no shrinking, so the mapper is just applied).
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        T: std::fmt::Debug,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    T: std::fmt::Debug,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

// `Range<f64>` uniform strategy (vendored rand has no float ranges, so
// scale a unit draw; fine for test generation).
impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut SmallRng) -> f64 {
        let unit: f64 = rng.gen();
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*
    };
}
impl_range_strategy!(u8, u16, u32, u64, usize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut SmallRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut SmallRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$i:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

/// Strategy for a single fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// `proptest::option` (subset): optional values.
pub mod option {
    use super::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// The strategy returned by [`of`].
    pub struct OptionStrategy<S>(S);

    /// `Some(inner draw)` half the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            // Draw the inner value unconditionally so presence/absence
            // doesn't shift the stream consumed by later strategies.
            let v = self.0.generate(rng);
            rng.gen_bool(0.5).then_some(v)
        }
    }
}

/// `proptest::bool` (subset): uniform booleans.
pub mod bool {
    use super::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Uniform `bool` strategy (real proptest's `bool::ANY`).
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical instance.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut SmallRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

/// The `prop::` namespace (subset).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::SmallRng;
        use rand::Rng;
        use std::ops::Range;

        /// Strategy producing `Vec`s with lengths drawn from a range.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// `vec(element, len_range)`: vectors of `element` draws.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            assert!(len.start < len.end, "vec strategy: empty length range");
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                let n = rng.gen_range(self.len.clone());
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Derive the per-case RNG: stable across runs, distinct across cases.
pub fn case_rng(test_name: &str, case: u32) -> SmallRng {
    // FNV-1a over the test name gives a stable per-test stream base.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    let mut rng = SmallRng::seed_from_u64(h ^ ((case as u64) << 32 | 0xA5A5));
    // Decorrelate the seed structure.
    let _ = rng.next_u64();
    rng
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Assert inside a property (no early-exit plumbing offline: plain assert,
/// with the failing case's inputs already printed by the harness on panic).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The property-test declaration macro (subset of real proptest's).
///
/// Supported grammar:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]  // optional
///     /// docs and attributes pass through
///     #[test]
///     fn prop_name(x in 0u64..10, ys in prop::collection::vec(0u8..4, 1..9)) {
///         prop_assert!(x < 10);
///     }
///     // ... more properties
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (
        $(#[$meta:meta])*
        fn $name:ident $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default())
            $(#[$meta])* fn $name $($rest)*);
    };
    (@funcs ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut prop_rng = $crate::case_rng(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut prop_rng);)+
                    let case_desc = format!(
                        concat!("case {} of ", stringify!($name), ":",
                            $(" ", stringify!($arg), "={:?}",)+),
                        case, $(&$arg,)+
                    );
                    let result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| { $body })
                    );
                    if let Err(e) = result {
                        eprintln!("proptest failure: {case_desc}");
                        ::std::panic::resume_unwind(e);
                    }
                }
            }
        )*
    };
}
