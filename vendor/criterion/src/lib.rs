//! Offline stand-in for the `criterion` crate.
//!
//! Provides the macro/API shape the bench harnesses compile against —
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group`, `Bencher::{iter, iter_batched}`, `Throughput`,
//! `BatchSize`, `black_box` — backed by a simple wall-clock timer instead
//! of criterion's statistical machinery. Each benchmark runs a short
//! calibrated loop and prints mean ns/iter, which is enough to compare
//! hot paths run-to-run offline.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-value barrier; defers to `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How batched inputs are sized (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Throughput annotation for reporting rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The per-benchmark timing driver.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by `iter`/`iter_batched`.
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Time `routine` over a calibrated number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: grow the iteration count until the loop runs >= 10 ms,
        // then take the mean. One warm-up call first.
        black_box(routine());
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(10) || n >= 1 << 20 {
                self.mean_ns = elapsed.as_nanos() as f64 / n as f64;
                self.iters = n;
                return;
            }
            n *= 4;
        }
    }

    /// Time `routine` over fresh inputs produced by `setup`.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut n: u64 = 1;
        loop {
            let inputs: Vec<I> = (0..n).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(10) || n >= 1 << 16 {
                self.mean_ns = elapsed.as_nanos() as f64 / n as f64;
                self.iters = n;
                return;
            }
            n *= 4;
        }
    }
}

fn report(name: &str, mean_ns: f64, iters: u64, throughput: Option<Throughput>) {
    let rate = throughput.map(|t| match t {
        Throughput::Elements(e) => format!("  ({:.1} Melem/s)", e as f64 / mean_ns * 1e3),
        Throughput::Bytes(b) => format!("  ({:.1} MB/s)", b as f64 / mean_ns * 1e3),
    });
    println!(
        "bench {name:<48} {mean_ns:>12.1} ns/iter  [{iters} iters]{}",
        rate.unwrap_or_default()
    );
}

/// A group of related benchmarks sharing throughput/size settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the stand-in has no sampling phase.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id),
            b.mean_ns,
            b.iters,
            self.throughput,
        );
        self
    }

    /// Finish the group (no-op; groups report eagerly).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        report(name, b.mean_ns, b.iters, None);
        self
    }

    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _parent: self,
        }
    }

    /// Accepted for API compatibility.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
