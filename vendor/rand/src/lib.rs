//! Offline stand-in for the `rand` crate.
//!
//! Implements the exact API surface the workspace uses — `Rng::gen_range`,
//! `Rng::gen`, `Rng::sample_iter(Standard)`, `SeedableRng::seed_from_u64`,
//! and `rngs::{SmallRng, StdRng}` — over a real generator (xoshiro256++,
//! the same family real `rand` 0.8 uses for `SmallRng` on 64-bit targets),
//! seeded through SplitMix64 exactly as `seed_from_u64` prescribes.
//!
//! The *stream values* are not guaranteed bit-identical to crates-io
//! `rand`; nothing in the workspace depends on golden values — only on
//! run-to-run determinism, which this provides.

use std::ops::{Range, RangeInclusive};

/// Core generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Deterministic construction from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Seed via the SplitMix64 expansion of one `u64`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from the [`Standard`] distribution.
pub trait StandardSample: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}
impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}
impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}
impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform bits in [0, 1), the standard float recipe.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased draw from `[0, span)` via Lemire-style widening multiply with
/// rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection zone keeps the multiply-shift map exactly uniform.
    let zone = span.wrapping_neg() % span; // = 2^64 mod span
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + uniform_below(rng, span) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range");
                    if lo == 0 && hi as u128 == <$t>::MAX as u128 {
                        return StandardSampleInt::from_u64(rng.next_u64());
                    }
                    let span = (hi - lo) as u64 + 1;
                    lo + uniform_below(rng, span) as $t
                }
            }
        )*
    };
}

/// Helper for the full-range inclusive case.
trait StandardSampleInt {
    fn from_u64(v: u64) -> Self;
}
macro_rules! impl_ssi {
    ($($t:ty),*) => {
        $(impl StandardSampleInt for $t {
            fn from_u64(v: u64) -> $t { v as $t }
        })*
    };
}
impl_ssi!(u8, u16, u32, u64, usize);
impl_sample_range!(u8, u16, u32, u64, usize);

/// High-level sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Draw from the [`Standard`] distribution.
    #[allow(clippy::should_implement_trait)]
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draw `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample_standard(self) < p
    }

    /// Iterator of draws from a distribution.
    fn sample_iter<T, D: distributions::Distribution<T>>(
        self,
        distr: D,
    ) -> distributions::DistIter<D, Self, T>
    where
        Self: Sized,
    {
        distributions::DistIter {
            distr,
            rng: self,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<R: RngCore> Rng for R {}

/// Distributions (subset of `rand::distributions`).
pub mod distributions {
    use super::{RngCore, StandardSample};

    /// A sampling distribution.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution of a type (uniform over all values).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl<T: StandardSample> Distribution<T> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_standard(rng)
        }
    }

    /// Iterator yielding draws from a distribution.
    pub struct DistIter<D, R, T> {
        pub(crate) distr: D,
        pub(crate) rng: R,
        pub(crate) _marker: std::marker::PhantomData<T>,
    }

    impl<D: Distribution<T>, R: RngCore, T> Iterator for DistIter<D, R, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            Some(self.distr.sample(&mut self.rng))
        }
    }
}

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 step, used to expand a 64-bit seed into generator state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// xoshiro256++ — the small, fast generator family behind real
    /// `SmallRng` on 64-bit platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SmallRng {
        /// The raw xoshiro256++ state words, for checkpointing. Together
        /// with [`SmallRng::from_state`] this round-trips the generator
        /// exactly: the restored stream continues where the saved one
        /// stopped.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from [`SmallRng::state`] words. An all-zero
        /// state (xoshiro's one degenerate fixpoint, unreachable from any
        /// seed) is coerced to the same escape constant seeding uses.
        pub fn from_state(mut s: [u64; 4]) -> SmallRng {
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut st = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut st);
            }
            // All-zero state is the one degenerate case; SplitMix64 of any
            // seed cannot produce it across four draws, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    /// Alias: the workspace never needs a CSPRNG offline.
    pub type StdRng = SmallRng;
}

pub use rngs::SmallRng as _SmallRngForDocs;

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(va[0], c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(0u32..7);
            assert!(w < 7);
            let x = r.gen_range(3u8..=5);
            assert!((3..=5).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 7 values should appear");
    }

    #[test]
    fn sample_iter_standard_streams() {
        let r = SmallRng::seed_from_u64(3);
        let xs: Vec<u64> = r.sample_iter(distributions::Standard).take(8).collect();
        assert_eq!(xs.len(), 8);
        let r2 = SmallRng::seed_from_u64(3);
        let ys: Vec<u64> = r2.sample_iter(distributions::Standard).take(8).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn f64_standard_is_unit_interval() {
        let mut r = SmallRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
