//! Offline stand-in for the `serde` crate.
//!
//! This container has no network access to crates.io, so the workspace
//! vendors the *shape* of serde that the codebase actually exercises:
//! the `Serialize`/`Deserialize` marker traits and their derives. No code
//! in the workspace links a serde *format* crate (there is none offline),
//! so the traits carry no methods — deriving them records serializability
//! intent and keeps the public API source-compatible with real serde.
//!
//! If the build environment ever gains registry access, delete `vendor/`
//! and restore the crates-io entries in `[workspace.dependencies]`; every
//! `#[derive(Serialize, Deserialize)]` and trait bound compiles unchanged
//! against the real crate.

/// Marker for types that real serde could serialize.
pub trait Serialize {}

/// Marker for types that real serde could deserialize.
pub trait Deserialize<'de>: Sized {}

/// Owned-deserialization alias, as in real serde.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

/// The `serde::de` module surface used by bounds in downstream code.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// The `serde::ser` module surface used by bounds in downstream code.
pub mod ser {
    pub use crate::Serialize;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_markers {
    ($($t:ty),* $(,)?) => {
        $(
            impl Serialize for $t {}
            impl<'de> Deserialize<'de> for $t {}
        )*
    };
}

impl_markers!(
    (),
    bool,
    char,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    String,
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}
impl<T: Serialize> Serialize for [T] {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>, C: Deserialize<'de>> Deserialize<'de>
    for (A, B, C)
{
}
impl<T: Serialize> Serialize for &T {}
