//! Endpoint counters exposed to the experiment harness and telemetry.
//!
//! These are the simulator's equivalent of `ss -i` / `tcpprobe` state: the
//! sender side counts transmissions, retransmissions, and — crucially for
//! the paper — *congestion events* (CWND reductions), split into fast
//! recoveries and RTOs. The harness derives the "CWND halving rate" from
//! these and the packet counts.

use ccsim_sim::{SimTime, SnapError, SnapReader, SnapWriter};
use ccsim_trace::BoundedLog;
use serde::{Deserialize, Serialize};

/// Sender-side counters.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SenderStats {
    /// Data segments transmitted (including retransmissions).
    pub data_pkts_sent: u64,
    /// Data bytes transmitted (including retransmissions).
    pub bytes_sent: u64,
    /// Retransmitted segments.
    pub retransmits: u64,
    /// ACK packets processed.
    pub acks_received: u64,
    /// Entries into fast recovery (multiplicative-decrease events).
    pub fast_recoveries: u64,
    /// Retransmission timeouts fired.
    pub rtos: u64,
    /// Timestamps of congestion events (fast-recovery entries + RTOs) —
    /// the tcpprobe-equivalent CWND-halving log. Bounded drop-oldest
    /// (64 Ki entries × 8 bytes = 0.5 MiB/flow worst case); the
    /// `fast_recoveries`/`rtos` counters above remain exact regardless.
    pub congestion_event_log: BoundedLog<SimTime>,
    /// Total bytes delivered (cumulatively or selectively ACKed).
    pub delivered_bytes: u64,
    /// Segments declared lost by loss detection or RTO.
    pub segments_marked_lost: u64,
    /// ECE-triggered congestion responses (RFC 3168: at most one per
    /// window of data). Zero when ECN is off.
    pub ecn_reductions: u64,
}

impl SenderStats {
    /// Total congestion events: fast recoveries + RTOs. This is the event
    /// count whose per-packet rate feeds the Mathis model's
    /// "CWND halving rate" interpretation of `p`.
    pub fn congestion_events(&self) -> u64 {
        self.fast_recoveries + self.rtos
    }

    /// Serialize for a checkpoint.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.data_pkts_sent);
        w.u64(self.bytes_sent);
        w.u64(self.retransmits);
        w.u64(self.acks_received);
        w.u64(self.fast_recoveries);
        w.u64(self.rtos);
        self.congestion_event_log.save_state(w, |w, t| w.time(*t));
        w.u64(self.delivered_bytes);
        w.u64(self.segments_marked_lost);
        w.u64(self.ecn_reductions);
    }

    /// Overlay checkpointed state.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.data_pkts_sent = r.u64()?;
        self.bytes_sent = r.u64()?;
        self.retransmits = r.u64()?;
        self.acks_received = r.u64()?;
        self.fast_recoveries = r.u64()?;
        self.rtos = r.u64()?;
        self.congestion_event_log.load_state(r, |r| r.time())?;
        self.delivered_bytes = r.u64()?;
        self.segments_marked_lost = r.u64()?;
        self.ecn_reductions = r.u64()?;
        Ok(())
    }
}

/// Receiver-side counters.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ReceiverStats {
    /// Data segments received (any order, including duplicates).
    pub data_pkts_received: u64,
    /// Payload bytes received (including duplicates).
    pub bytes_received: u64,
    /// Out-of-order arrivals buffered.
    pub ooo_pkts: u64,
    /// Entirely duplicate segments (spurious retransmissions).
    pub duplicate_pkts: u64,
    /// Segments observed with the retransmit flag.
    pub retransmits_received: u64,
    /// ACKs emitted.
    pub acks_sent: u64,
    /// ACKs emitted carrying SACK blocks.
    pub sack_acks_sent: u64,
    /// Data segments that arrived CE-marked.
    pub ce_pkts_received: u64,
    /// ACKs emitted with the ECE echo set.
    pub ece_acks_sent: u64,
}

impl ReceiverStats {
    /// Serialize for a checkpoint.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.data_pkts_received);
        w.u64(self.bytes_received);
        w.u64(self.ooo_pkts);
        w.u64(self.duplicate_pkts);
        w.u64(self.retransmits_received);
        w.u64(self.acks_sent);
        w.u64(self.sack_acks_sent);
        w.u64(self.ce_pkts_received);
        w.u64(self.ece_acks_sent);
    }

    /// Overlay checkpointed state.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.data_pkts_received = r.u64()?;
        self.bytes_received = r.u64()?;
        self.ooo_pkts = r.u64()?;
        self.duplicate_pkts = r.u64()?;
        self.retransmits_received = r.u64()?;
        self.acks_sent = r.u64()?;
        self.sack_acks_sent = r.u64()?;
        self.ce_pkts_received = r.u64()?;
        self.ece_acks_sent = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn congestion_events_sum_recoveries_and_rtos() {
        let s = SenderStats {
            fast_recoveries: 7,
            rtos: 2,
            ..SenderStats::default()
        };
        assert_eq!(s.congestion_events(), 9);
    }

    #[test]
    fn defaults_are_zero() {
        let s = SenderStats::default();
        assert_eq!(s.congestion_events(), 0);
        assert!(s.congestion_event_log.is_empty());
        let r = ReceiverStats::default();
        assert_eq!(r.acks_sent, 0);
    }
}
