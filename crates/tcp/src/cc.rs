//! The congestion-control interface.
//!
//! Modeled on Linux's `tcp_congestion_ops`: the endpoint (in `sender.rs`)
//! owns reliability — sequence numbers, SACK bookkeeping, loss detection,
//! RTO, PRR — and consults a [`CongestionControl`] implementation for the
//! congestion window and (optionally) a pacing rate. The CCA receives a
//! rich [`AckSample`] on every ACK (including delivery-rate samples in the
//! style of `tcp_rate.c`, which BBR requires) and lifecycle callbacks for
//! recovery episodes and RTO.
//!
//! All window quantities are in **bytes**.

use ccsim_sim::{Bandwidth, SimDuration, SimTime, SnapError, SnapReader, SnapWriter};

/// Per-ACK information handed to the congestion controller.
///
/// Field semantics follow Linux (`struct rate_sample` + ack bookkeeping);
/// see `rate.rs` for how delivery-rate samples are produced.
#[derive(Debug, Clone, Copy)]
pub struct AckSample {
    /// Virtual time of ACK processing.
    pub now: SimTime,
    /// A valid RTT measurement from this ACK (Karn-filtered: only from
    /// segments never retransmitted), if any.
    pub rtt: Option<SimDuration>,
    /// Smoothed RTT (RFC 6298).
    pub srtt: SimDuration,
    /// Connection-lifetime minimum RTT.
    pub min_rtt: SimDuration,
    /// Bytes newly delivered by this ACK (cumulative + SACK).
    pub newly_acked: u64,
    /// Bytes newly marked lost by this ACK's loss detection.
    pub newly_lost: u64,
    /// Total bytes delivered so far on this connection (`tp->delivered`).
    pub delivered: u64,
    /// `delivered` at the time the ACKed packet was sent — BBR uses this for
    /// round counting.
    pub prior_delivered: u64,
    /// Bytes in flight before processing this ACK.
    pub prior_in_flight: u64,
    /// Bytes in flight after processing this ACK.
    pub in_flight: u64,
    /// Delivery-rate sample (None when the interval was degenerate).
    pub delivery_rate: Option<Bandwidth>,
    /// Interval over which `delivery_rate` was measured.
    pub interval: SimDuration,
    /// Whether the rate sample was taken while the sender was
    /// application-limited (never true for the paper's infinite sources,
    /// but kept for API completeness).
    pub is_app_limited: bool,
    /// Whether the endpoint is currently in fast recovery.
    pub in_recovery: bool,
    /// Maximum segment size in bytes.
    pub mss: u32,
    /// The cumulative ACK sequence carried by this ACK.
    pub cumulative_ack: u64,
}

/// A congestion-control algorithm.
///
/// Implementations are per-flow state machines (one instance per sender).
/// The `Any` supertrait lets diagnostics downcast to concrete algorithm
/// types (e.g. to read BBR's mode) via trait upcasting.
pub trait CongestionControl: std::any::Any {
    /// Short algorithm name ("reno", "cubic", "bbr").
    fn name(&self) -> &'static str;

    /// Current congestion window in bytes. The endpoint sends while
    /// `bytes_in_flight < cwnd()` (subject to PRR during recovery when
    /// [`CongestionControl::uses_prr`] is true).
    fn cwnd(&self) -> u64;

    /// Current slow-start threshold in bytes (diagnostic; `u64::MAX` when
    /// unset).
    fn ssthresh(&self) -> u64;

    /// Pacing rate, or `None` for pure ACK clocking. BBR paces; classic
    /// loss-based CCAs in the paper's era did not.
    fn pacing_rate(&self) -> Option<Bandwidth>;

    /// Process delivery progress. Called on every ACK, including during
    /// recovery.
    fn on_ack(&mut self, s: &AckSample);

    /// Loss detected: the endpoint is entering fast recovery. Loss-based
    /// CCAs apply their multiplicative decrease here (set ssthresh).
    fn on_enter_recovery(&mut self, s: &AckSample);

    /// A loss episode ended (recovery point cumulatively ACKed).
    /// `after_rto` distinguishes RTO (Loss-state) episodes from fast
    /// recovery: loss-based CCAs finalize `cwnd = ssthresh` only for the
    /// latter (after an RTO, slow start simply continues).
    fn on_exit_recovery(&mut self, s: &AckSample, after_rto: bool);

    /// Retransmission timeout fired: the endpoint has marked all in-flight
    /// data lost and will slow-start from a minimal window.
    fn on_rto(&mut self, s: &AckSample);

    /// An ECN ECE echo was accepted (at most once per window of data, RFC
    /// 3168 §6.1.2). Classic CCAs respond as to a loss — multiplicative
    /// decrease without retransmission; DCTCP-style algorithms apply a
    /// fractional cut. The default ignores the signal (BBR's behaviour).
    fn on_ecn(&mut self, _s: &AckSample) {}

    /// Whether the endpoint should run Proportional Rate Reduction during
    /// recovery (true for loss-based CCAs, false for BBR, which manages its
    /// own in-flight cap).
    fn uses_prr(&self) -> bool {
        true
    }

    /// Short label for the algorithm's current operating phase, recorded
    /// by the flight recorder on transitions ("slowstart"/"avoidance" for
    /// loss-based CCAs, BBR's four modes, "steady" when the algorithm has
    /// no phase structure). Labels must be ≤ 16 ASCII characters.
    fn phase(&self) -> &'static str {
        "steady"
    }

    /// Serialize the algorithm's mutable state for a checkpoint.
    ///
    /// Deliberately mandatory (no default body), like the AQM trait's
    /// counterpart: a new algorithm that forgot to implement it would
    /// silently break restore digests, and that class of bug is far
    /// cheaper to catch at compile time.
    fn save_state(&self, w: &mut SnapWriter);

    /// Overlay checkpointed state written by
    /// [`CongestionControl::save_state`] onto a freshly constructed
    /// instance of the same algorithm with the same configuration.
    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError>;
}

/// Linux's default initial congestion window: 10 segments (RFC 6928).
pub const INITIAL_CWND_SEGMENTS: u64 = 10;

/// Floor for the congestion window: 2 segments.
pub const MIN_CWND_SEGMENTS: u64 = 2;

/// A trivial fixed-window "CCA" — not a real algorithm, but invaluable in
/// tests and ablations: it turns the TCP machinery into a pure
/// sliding-window protocol with a constant window.
#[derive(Debug, Clone)]
pub struct FixedWindow {
    cwnd: u64,
}

impl FixedWindow {
    /// A fixed window of `cwnd_bytes`.
    pub fn new(cwnd_bytes: u64) -> Self {
        FixedWindow { cwnd: cwnd_bytes }
    }
}

impl CongestionControl for FixedWindow {
    fn name(&self) -> &'static str {
        "fixed"
    }
    fn cwnd(&self) -> u64 {
        self.cwnd
    }
    fn ssthresh(&self) -> u64 {
        u64::MAX
    }
    fn pacing_rate(&self) -> Option<Bandwidth> {
        None
    }
    fn on_ack(&mut self, _s: &AckSample) {}
    fn on_enter_recovery(&mut self, _s: &AckSample) {}
    fn on_exit_recovery(&mut self, _s: &AckSample, _after_rto: bool) {}
    fn on_rto(&mut self, _s: &AckSample) {}
    fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.cwnd);
    }
    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.cwnd = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_window_is_inert() {
        let mut f = FixedWindow::new(10_000);
        let s = AckSample {
            now: SimTime::ZERO,
            rtt: None,
            srtt: SimDuration::ZERO,
            min_rtt: SimDuration::ZERO,
            newly_acked: 1448,
            newly_lost: 0,
            delivered: 1448,
            prior_delivered: 0,
            prior_in_flight: 1448,
            in_flight: 0,
            delivery_rate: None,
            interval: SimDuration::ZERO,
            is_app_limited: false,
            in_recovery: false,
            mss: 1448,
            cumulative_ack: 1448,
        };
        f.on_ack(&s);
        f.on_enter_recovery(&s);
        f.on_rto(&s);
        assert_eq!(f.cwnd(), 10_000);
        assert_eq!(f.name(), "fixed");
        assert!(f.pacing_rate().is_none());
        assert!(f.uses_prr());
    }
}
