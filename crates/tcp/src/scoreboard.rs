//! The sender's SACK scoreboard (RFC 2018 / RFC 6675).
//!
//! Tracks every outstanding segment with its (re)transmission snapshot and
//! SACK/loss state, maintains the in-flight ("pipe") estimate, performs
//! RFC 6675-style loss detection, and produces Karn-filtered RTT samples
//! plus the [`TxRecord`] needed for delivery-rate estimation.
//!
//! Segments are fixed-size (one MSS) except possibly the last of a burst,
//! and all ACKs fall on segment boundaries (receivers acknowledge whole
//! segments); both properties are asserted in debug builds.

use crate::rate::TxRecord;
use ccsim_net::packet::SackBlocks;
use ccsim_sim::{SimDuration, SimTime, SnapError, SnapReader, SnapWriter};
use std::collections::VecDeque;

/// One outstanding segment.
#[derive(Debug, Clone)]
pub struct Segment {
    /// First byte.
    pub seq: u64,
    /// One past the last byte.
    pub end: u64,
    /// Delivery snapshot from the most recent (re)transmission.
    pub tx: TxRecord,
    /// Selectively acknowledged.
    pub sacked: bool,
    /// Declared lost (and not since retransmitted).
    pub lost: bool,
    /// Ever retransmitted (Karn's rule: no RTT samples from these).
    pub retransmitted: bool,
}

impl Segment {
    #[inline]
    fn len(&self) -> u64 {
        self.end - self.seq
    }

    /// Serialize for a checkpoint.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.seq);
        w.u64(self.end);
        self.tx.save_state(w);
        w.bool(self.sacked);
        w.bool(self.lost);
        w.bool(self.retransmitted);
    }

    /// Deserialize a segment written by [`Segment::save_state`].
    pub fn load_state(r: &mut SnapReader<'_>) -> Result<Segment, SnapError> {
        let seq = r.u64()?;
        let end = r.u64()?;
        if end <= seq {
            return Err(SnapError::Corrupt(format!(
                "segment range [{seq}, {end}) is empty or inverted"
            )));
        }
        Ok(Segment {
            seq,
            end,
            tx: TxRecord::load_state(r)?,
            sacked: r.bool()?,
            lost: r.bool()?,
            retransmitted: r.bool()?,
        })
    }
}

/// Outcome of processing one ACK against the scoreboard.
#[derive(Debug, Clone, Copy)]
pub struct AckResult {
    /// Bytes newly delivered by this ACK (cumulative + selective), i.e.
    /// bytes that had never been cum-ACKed nor SACKed before.
    pub newly_acked: u64,
    /// Of `newly_acked`, bytes newly covered by SACK blocks (not cumulative).
    pub newly_sacked: u64,
    /// Whether `snd_una` advanced.
    pub snd_una_advanced: bool,
    /// Karn-filtered RTT sample: `now - sent_time` of the newest
    /// never-retransmitted segment this ACK newly covered.
    pub rtt_sample: Option<SimDuration>,
    /// TxRecord of the most recently sent segment this ACK newly covered
    /// (retransmitted or not) — input to the rate estimator.
    pub latest_tx: Option<TxRecord>,
}

/// The scoreboard proper.
#[derive(Debug, Clone)]
pub struct Scoreboard {
    segs: VecDeque<Segment>,
    snd_una: u64,
    snd_nxt: u64,
    sacked_bytes: u64,
    /// Count of currently SACKed segments (kept incrementally for O(1)
    /// loss-detection thresholds).
    sacked_segs: u32,
    lost_bytes: u64,
    /// Highest sequence covered by any SACK so far ("FACK" point).
    high_sacked: u64,
    /// Send time of the most recently *sent* segment known delivered —
    /// the RACK anchor: only segments sent before this instant may be
    /// declared lost (prevents re-marking fresh retransmissions whose
    /// SACK evidence predates them).
    delivered_latest_sent: SimTime,
    mss: u32,
    dupthresh: u32,
}

impl Scoreboard {
    /// Fresh scoreboard starting at sequence 0.
    pub fn new(mss: u32) -> Scoreboard {
        Scoreboard {
            segs: VecDeque::new(),
            snd_una: 0,
            snd_nxt: 0,
            sacked_bytes: 0,
            sacked_segs: 0,
            lost_bytes: 0,
            high_sacked: 0,
            delivered_latest_sent: SimTime::ZERO,
            mss,
            dupthresh: 3,
        }
    }

    /// First unacknowledged byte.
    #[inline]
    pub fn snd_una(&self) -> u64 {
        self.snd_una
    }

    /// Next new byte to transmit.
    #[inline]
    pub fn snd_nxt(&self) -> u64 {
        self.snd_nxt
    }

    /// RFC 6675 "pipe": bytes considered in flight.
    #[inline]
    pub fn in_flight(&self) -> u64 {
        (self.snd_nxt - self.snd_una) - self.sacked_bytes - self.lost_bytes
    }

    /// Bytes currently marked lost and awaiting retransmission.
    #[inline]
    pub fn lost_bytes(&self) -> u64 {
        self.lost_bytes
    }

    /// Bytes currently SACKed (below `snd_nxt`, above `snd_una`).
    #[inline]
    pub fn sacked_bytes(&self) -> u64 {
        self.sacked_bytes
    }

    /// Number of outstanding segments.
    #[inline]
    pub fn len(&self) -> usize {
        self.segs.len()
    }

    /// True iff nothing is outstanding.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.segs.is_empty()
    }

    /// Approximate heap footprint: the segment deque's allocated capacity
    /// at its in-memory entry size, plus the struct itself. The dominant
    /// per-flow cost at scale; feeds the profiler's `tcp/senders` account.
    pub fn memory_bytes(&self) -> u64 {
        (std::mem::size_of::<Self>() + self.segs.capacity() * std::mem::size_of::<Segment>()) as u64
    }

    /// Serialize the full scoreboard state for a checkpoint (`mss` and
    /// `dupthresh` are configuration). Segments are written in deque
    /// order, which is sequence order by construction.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.usize(self.segs.len());
        for seg in &self.segs {
            seg.save_state(w);
        }
        w.u64(self.snd_una);
        w.u64(self.snd_nxt);
        w.u64(self.sacked_bytes);
        w.u32(self.sacked_segs);
        w.u64(self.lost_bytes);
        w.u64(self.high_sacked);
        w.time(self.delivered_latest_sent);
    }

    /// Overlay checkpointed state onto a scoreboard built with the same
    /// configuration.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.usize()?;
        if n > r.remaining() {
            return Err(SnapError::Truncated {
                needed: n,
                remaining: r.remaining(),
            });
        }
        let mut segs = VecDeque::with_capacity(n);
        let mut prev_end = 0u64;
        for _ in 0..n {
            let seg = Segment::load_state(r)?;
            if seg.seq < prev_end {
                return Err(SnapError::Corrupt(format!(
                    "scoreboard segments out of order: {} after end {}",
                    seg.seq, prev_end
                )));
            }
            prev_end = seg.end;
            segs.push_back(seg);
        }
        self.segs = segs;
        self.snd_una = r.u64()?;
        self.snd_nxt = r.u64()?;
        self.sacked_bytes = r.u64()?;
        self.sacked_segs = r.u32()?;
        self.lost_bytes = r.u64()?;
        self.high_sacked = r.u64()?;
        self.delivered_latest_sent = r.time()?;
        if self.snd_una > self.snd_nxt {
            return Err(SnapError::Corrupt(format!(
                "snd_una {} beyond snd_nxt {}",
                self.snd_una, self.snd_nxt
            )));
        }
        Ok(())
    }

    /// Record transmission of new data `[snd_nxt, snd_nxt + len)`.
    pub fn on_send_new(&mut self, len: u64, tx: TxRecord) {
        debug_assert!(len > 0);
        let seq = self.snd_nxt;
        self.snd_nxt += len;
        self.segs.push_back(Segment {
            seq,
            end: seq + len,
            tx,
            sacked: false,
            lost: false,
            retransmitted: false,
        });
    }

    /// Process the cumulative-ACK and SACK content of one incoming ACK.
    pub fn process_ack(&mut self, now: SimTime, ack_seq: u64, sack: &SackBlocks) -> AckResult {
        let mut res = AckResult {
            newly_acked: 0,
            newly_sacked: 0,
            snd_una_advanced: false,
            rtt_sample: None,
            latest_tx: None,
        };
        let mut latest_sent = SimTime::ZERO;
        let mut latest_clean_sent: Option<SimTime> = None;

        // 1. Cumulative ACK: retire fully covered segments.
        if ack_seq > self.snd_una {
            debug_assert!(ack_seq <= self.snd_nxt, "ACK beyond snd_nxt");
            res.snd_una_advanced = true;
            while let Some(front) = self.segs.front() {
                if front.end > ack_seq {
                    break;
                }
                let seg = self.segs.pop_front().expect("front exists");
                debug_assert!(seg.end <= ack_seq);
                if seg.sacked {
                    self.sacked_bytes -= seg.len();
                    self.sacked_segs -= 1;
                } else {
                    res.newly_acked += seg.len();
                    if seg.lost {
                        // Cumulative ACK of a segment still marked lost
                        // (e.g. the retransmission we never saw SACKed).
                        self.lost_bytes -= seg.len();
                    }
                    Self::note_covered(&seg, &mut latest_sent, &mut latest_clean_sent, &mut res);
                }
            }
            debug_assert!(
                self.segs.front().is_none_or(|s| s.seq >= ack_seq),
                "cumulative ACK inside a segment"
            );
            self.snd_una = ack_seq;
            // Deflate stranded capacity after a window collapse. AIMD
            // halving never gets near the 8x threshold, so the sawtooth
            // steady state keeps its buffer; only an RTO-style collapse
            // (megascale flows park at 1-2 segments after the start-up
            // overshoot) pays one shrink, bounding the per-flow footprint.
            if self.segs.capacity() > 8 && self.segs.capacity() / 8 >= self.segs.len().max(1) {
                self.segs.shrink_to(self.segs.len().max(4) * 2);
            }
        }

        // 2. SACK blocks: mark newly covered segments.
        for block in sack.as_slice() {
            if block.end <= self.snd_una {
                continue;
            }
            self.high_sacked = self.high_sacked.max(block.end);
            // Segments are seq-sorted and contiguous: binary-search the
            // first one the block touches instead of scanning from the
            // front (SACK blocks arrive on every dup-ACK).
            let start_idx = self.segs.partition_point(|s| s.end <= block.start);
            for seg in self.segs.range_mut(start_idx..) {
                if seg.seq >= block.end {
                    break;
                }
                // Segment overlaps the block; receivers SACK whole
                // segments, so overlap means containment.
                debug_assert!(
                    seg.seq >= block.start && seg.end <= block.end,
                    "SACK block splits a segment"
                );
                if !seg.sacked {
                    seg.sacked = true;
                    self.sacked_bytes += seg.len();
                    self.sacked_segs += 1;
                    if seg.lost {
                        seg.lost = false;
                        self.lost_bytes -= seg.len();
                    }
                    res.newly_acked += seg.len();
                    res.newly_sacked += seg.len();
                    Self::note_covered(seg, &mut latest_sent, &mut latest_clean_sent, &mut res);
                }
            }
        }

        if let Some(sent) = latest_clean_sent {
            res.rtt_sample = Some(now.saturating_since(sent));
        }
        if let Some(tx) = &res.latest_tx {
            self.delivered_latest_sent = self.delivered_latest_sent.max(tx.sent_time);
        }
        self.debug_check();
        res
    }

    fn note_covered(
        seg: &Segment,
        latest_sent: &mut SimTime,
        latest_clean_sent: &mut Option<SimTime>,
        res: &mut AckResult,
    ) {
        if res.latest_tx.is_none() || seg.tx.sent_time >= *latest_sent {
            *latest_sent = seg.tx.sent_time;
            res.latest_tx = Some(seg.tx);
        }
        if !seg.retransmitted && latest_clean_sent.is_none_or(|t| seg.tx.sent_time >= t) {
            *latest_clean_sent = Some(seg.tx.sent_time);
        }
    }

    /// RFC 6675-style loss detection. A segment is declared lost when at
    /// least `dupthresh` later segments have been SACKed, or when the
    /// highest SACKed sequence is at least `dupthresh * MSS` bytes past its
    /// end. Returns bytes newly marked lost.
    pub fn detect_losses(&mut self) -> u64 {
        if self.sacked_bytes == 0 {
            return 0;
        }
        // Both rules are monotone along the scoreboard: the count of SACKed
        // segments above position i is non-increasing in i, and the FACK
        // byte gap shrinks as `end` grows. So losses form a prefix of the
        // unmarked segments and the walk stops at the first survivor —
        // no per-ACK allocation, O(marked prefix + 1).
        let total_sacked_segs = self.sacked_segs;
        let mut sacked_seen: u32 = 0;
        let mut newly_lost = 0;
        let fack_margin = self.dupthresh as u64 * self.mss as u64;
        for seg in self.segs.iter_mut() {
            if seg.seq >= self.high_sacked {
                break; // nothing SACKed above; later segs can't be lost yet
            }
            if seg.sacked {
                sacked_seen += 1;
                continue;
            }
            if seg.lost {
                continue;
            }
            let by_count = total_sacked_segs - sacked_seen >= self.dupthresh;
            let by_bytes = self.high_sacked >= seg.end + fack_margin;
            if !(by_count || by_bytes) {
                // The dupthresh rules are monotone along the scoreboard:
                // once they fail, they fail for everything later too.
                break;
            }
            // RACK anchor: evidence must STRICTLY postdate this
            // transmission. Same-instant comparisons matter: a batch of
            // retransmissions shares one timestamp, and the delivery of one
            // must not condemn its batch-mates (that caused an unbounded
            // retransmit storm; see dup_acks_do_not_storm_retransmissions).
            if seg.tx.sent_time >= self.delivered_latest_sent {
                continue;
            }
            seg.lost = true;
            newly_lost += seg.len();
        }
        self.lost_bytes += newly_lost;
        self.debug_check();
        newly_lost
    }

    /// On RTO: everything outstanding and un-SACKed is presumed lost.
    /// Returns bytes newly marked lost.
    pub fn mark_all_lost(&mut self) -> u64 {
        let mut newly_lost = 0;
        for seg in self.segs.iter_mut() {
            if !seg.sacked && !seg.lost {
                seg.lost = true;
                newly_lost += seg.len();
            }
        }
        self.lost_bytes += newly_lost;
        self.debug_check();
        newly_lost
    }

    /// The first lost, un-SACKed segment with `seq < limit`, if any —
    /// the next retransmission candidate (RFC 6675 NextSeg rule 1).
    ///
    /// O(1) when nothing is marked lost (the overwhelmingly common case on
    /// the transmission path); otherwise O(prefix up to the first loss).
    pub fn next_lost_below(&self, limit: u64) -> Option<(u64, u64)> {
        if self.lost_bytes == 0 {
            return None;
        }
        self.segs
            .iter()
            .find(|s| s.lost && !s.sacked && s.seq < limit)
            .map(|s| (s.seq, s.end))
    }

    /// Record retransmission of the segment starting at `seq`: it returns
    /// to flight with a fresh delivery snapshot.
    ///
    /// # Panics
    /// Panics if no lost segment starts at `seq`.
    pub fn mark_retransmitted(&mut self, seq: u64, tx: TxRecord) {
        let seg = self
            .segs
            .iter_mut()
            .find(|s| s.seq == seq)
            .expect("retransmitting unknown segment");
        debug_assert!(seg.lost && !seg.sacked, "retransmitting a live segment");
        seg.lost = false;
        seg.retransmitted = true;
        seg.tx = tx;
        self.lost_bytes -= seg.len();
        self.debug_check();
    }

    #[cfg(debug_assertions)]
    fn debug_check(&self) {
        let mut sacked = 0;
        let mut lost = 0;
        let mut prev_end = self.snd_una;
        for seg in &self.segs {
            assert_eq!(seg.seq, prev_end, "scoreboard gap");
            assert!(!(seg.sacked && seg.lost), "segment both sacked and lost");
            prev_end = seg.end;
            if seg.sacked {
                sacked += seg.len();
            }
            if seg.lost {
                lost += seg.len();
            }
        }
        assert_eq!(prev_end, self.snd_nxt, "snd_nxt mismatch");
        assert_eq!(sacked, self.sacked_bytes, "sacked_bytes drift");
        assert_eq!(
            self.segs.iter().filter(|s| s.sacked).count() as u32,
            self.sacked_segs,
            "sacked_segs drift"
        );
        assert_eq!(lost, self.lost_bytes, "lost_bytes drift");
    }

    #[cfg(not(debug_assertions))]
    fn debug_check(&self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_net::packet::SackBlock;

    const MSS: u64 = 1000;

    fn tx_at(ms: u64) -> TxRecord {
        TxRecord {
            sent_time: SimTime::from_millis(ms),
            delivered: 0,
            delivered_time: SimTime::ZERO,
            first_tx_time: SimTime::ZERO,
            app_limited: false,
        }
    }

    fn board_with(n: u64) -> Scoreboard {
        let mut b = Scoreboard::new(MSS as u32);
        for i in 0..n {
            b.on_send_new(MSS, tx_at(i));
        }
        b
    }

    fn sack(blocks: &[(u64, u64)]) -> SackBlocks {
        let mut s = SackBlocks::EMPTY;
        for &(start, end) in blocks {
            s.push(SackBlock { start, end });
        }
        s
    }

    #[test]
    fn send_tracks_snd_nxt_and_flight() {
        let b = board_with(5);
        assert_eq!(b.snd_nxt(), 5 * MSS);
        assert_eq!(b.snd_una(), 0);
        assert_eq!(b.in_flight(), 5 * MSS);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn cumulative_ack_retires_segments() {
        let mut b = board_with(5);
        let r = b.process_ack(SimTime::from_millis(100), 3 * MSS, &SackBlocks::EMPTY);
        assert_eq!(r.newly_acked, 3 * MSS);
        assert_eq!(r.newly_sacked, 0);
        assert!(r.snd_una_advanced);
        assert_eq!(b.snd_una(), 3 * MSS);
        assert_eq!(b.in_flight(), 2 * MSS);
        // RTT from the newest covered segment (sent at t=2 ms).
        assert_eq!(r.rtt_sample, Some(SimDuration::from_millis(98)));
    }

    #[test]
    fn duplicate_ack_is_inert() {
        let mut b = board_with(3);
        b.process_ack(SimTime::from_millis(10), MSS, &SackBlocks::EMPTY);
        let r = b.process_ack(SimTime::from_millis(11), MSS, &SackBlocks::EMPTY);
        assert_eq!(r.newly_acked, 0);
        assert!(!r.snd_una_advanced);
        assert!(r.rtt_sample.is_none());
        assert!(r.latest_tx.is_none());
    }

    #[test]
    fn sack_marks_segments_and_reduces_pipe() {
        let mut b = board_with(5);
        // SACK segments 2 and 3 (bytes 2000..4000).
        let r = b.process_ack(SimTime::from_millis(50), 0, &sack(&[(2 * MSS, 4 * MSS)]));
        assert_eq!(r.newly_sacked, 2 * MSS);
        assert_eq!(r.newly_acked, 2 * MSS);
        assert_eq!(b.sacked_bytes(), 2 * MSS);
        assert_eq!(b.in_flight(), 3 * MSS);
        // Re-delivering the same SACK is idempotent.
        let r2 = b.process_ack(SimTime::from_millis(51), 0, &sack(&[(2 * MSS, 4 * MSS)]));
        assert_eq!(r2.newly_acked, 0);
    }

    #[test]
    fn cumulative_ack_over_sacked_does_not_double_count() {
        let mut b = board_with(4);
        b.process_ack(SimTime::from_millis(1), 0, &sack(&[(MSS, 2 * MSS)]));
        // Now cum-ACK everything: segment 1 was already counted as sacked.
        let r = b.process_ack(SimTime::from_millis(2), 4 * MSS, &SackBlocks::EMPTY);
        assert_eq!(r.newly_acked, 3 * MSS);
        assert_eq!(b.in_flight(), 0);
        assert!(b.is_empty());
    }

    #[test]
    fn loss_detection_by_sacked_segment_count() {
        let mut b = board_with(6);
        // Segment 0 missing; 1, 2, 3 SACKed => dupthresh(3) reached.
        b.process_ack(SimTime::from_millis(1), 0, &sack(&[(MSS, 4 * MSS)]));
        let lost = b.detect_losses();
        assert_eq!(lost, MSS);
        assert_eq!(b.lost_bytes(), MSS);
        // Pipe: 6 outstanding - 3 sacked - 1 lost = 2.
        assert_eq!(b.in_flight(), 2 * MSS);
        assert_eq!(b.next_lost_below(u64::MAX), Some((0, MSS)));
    }

    #[test]
    fn loss_detection_below_threshold_holds_off() {
        let mut b = board_with(6);
        b.process_ack(SimTime::from_millis(1), 0, &sack(&[(MSS, 3 * MSS)]));
        // Only 2 segments SACKed above segment 0; FACK gap is 2 MSS < 3 MSS.
        assert_eq!(b.detect_losses(), 0);
    }

    #[test]
    fn loss_detection_by_fack_bytes() {
        let mut b = board_with(10);
        // One far-ahead SACK: segment 9 only.
        b.process_ack(SimTime::from_millis(1), 0, &sack(&[(9 * MSS, 10 * MSS)]));
        // Segment k is lost iff high_sacked(10000) >= end + 3*MSS, i.e.
        // (k+1)*1000 + 3000 <= 10000: segments 0..=6 (seven of them).
        let lost = b.detect_losses();
        assert_eq!(lost, 7 * MSS);
    }

    #[test]
    fn retransmission_returns_segment_to_flight() {
        let mut b = board_with(5);
        b.process_ack(SimTime::from_millis(1), 0, &sack(&[(MSS, 4 * MSS)]));
        b.detect_losses();
        assert_eq!(b.lost_bytes(), MSS);
        let (seq, end) = b.next_lost_below(u64::MAX).unwrap();
        assert_eq!((seq, end), (0, MSS));
        b.mark_retransmitted(seq, tx_at(100));
        assert_eq!(b.lost_bytes(), 0);
        // 5 outstanding - 3 sacked = 2 in flight (seg 0 rtx + seg 4).
        assert_eq!(b.in_flight(), 2 * MSS);
        assert!(b.next_lost_below(u64::MAX).is_none());
    }

    #[test]
    fn karn_rtt_skips_retransmitted_segments() {
        let mut b = board_with(5);
        b.process_ack(SimTime::from_millis(1), 0, &sack(&[(MSS, 4 * MSS)]));
        b.detect_losses();
        b.mark_retransmitted(0, tx_at(100));
        // Cum-ACK through seg 0 only (the retransmitted one): no RTT sample,
        // but latest_tx still reported for rate sampling.
        let r = b.process_ack(SimTime::from_millis(150), MSS, &SackBlocks::EMPTY);
        assert!(r.rtt_sample.is_none());
        assert_eq!(r.latest_tx.unwrap().sent_time, SimTime::from_millis(100));
        assert_eq!(r.newly_acked, MSS);
    }

    #[test]
    fn mark_all_lost_on_rto() {
        let mut b = board_with(4);
        b.process_ack(SimTime::from_millis(1), 0, &sack(&[(2 * MSS, 3 * MSS)]));
        let lost = b.mark_all_lost();
        assert_eq!(lost, 3 * MSS); // all but the sacked one
        assert_eq!(b.in_flight(), 0);
    }

    #[test]
    fn retransmitted_segment_can_be_lost_again_with_fresh_evidence() {
        let mut b = board_with(8);
        b.process_ack(SimTime::from_millis(1), 0, &sack(&[(MSS, 4 * MSS)]));
        b.detect_losses();
        b.mark_retransmitted(0, tx_at(50));
        // Stale evidence: SACKs of segments sent *before* the rtx (t=4..7)
        // must NOT re-mark the rtx lost (RACK anchor).
        b.process_ack(SimTime::from_millis(60), 0, &sack(&[(4 * MSS, 8 * MSS)]));
        assert_eq!(b.detect_losses(), 0);
        // Fresh evidence: new data sent after the rtx gets SACKed; now the
        // rtx itself is evidently lost.
        b.on_send_new(MSS, tx_at(70)); // seq 8000..9000
        b.on_send_new(MSS, tx_at(71)); // seq 9000..10000
        b.process_ack(SimTime::from_millis(90), 0, &sack(&[(8 * MSS, 10 * MSS)]));
        let lost = b.detect_losses();
        assert_eq!(lost, MSS);
        assert_eq!(b.next_lost_below(u64::MAX), Some((0, MSS)));
    }

    #[test]
    fn dup_acks_do_not_storm_retransmissions() {
        // Regression test for the retransmit-storm bug: repeated dup-ACKs
        // carrying the same SACK blocks must not repeatedly re-mark the
        // retransmission lost.
        let mut b = board_with(8);
        b.process_ack(SimTime::from_millis(1), 0, &sack(&[(MSS, 4 * MSS)]));
        b.detect_losses();
        b.mark_retransmitted(0, tx_at(50));
        for i in 0..100 {
            b.process_ack(SimTime::from_millis(60 + i), 0, &sack(&[(MSS, 4 * MSS)]));
            assert_eq!(b.detect_losses(), 0, "re-marked on dup-ack {i}");
            assert!(b.next_lost_below(u64::MAX).is_none());
        }
    }

    #[test]
    fn cum_ack_of_lost_segment_clears_lost_bytes() {
        let mut b = board_with(5);
        b.process_ack(SimTime::from_millis(1), 0, &sack(&[(MSS, 4 * MSS)]));
        b.detect_losses();
        assert_eq!(b.lost_bytes(), MSS);
        // The "lost" segment's original copy arrives after all (late, not
        // dropped): receiver cum-ACKs through it.
        let r = b.process_ack(SimTime::from_millis(5), 4 * MSS, &SackBlocks::EMPTY);
        assert_eq!(b.lost_bytes(), 0);
        assert_eq!(r.newly_acked, MSS); // only seg 0 was unsacked
        assert_eq!(b.in_flight(), MSS); // seg 4
    }
}
