//! The TCP receiver endpoint.
//!
//! Receives data segments, reassembles the in-order byte stream, and
//! generates ACKs with SACK blocks. ACK policy follows Linux/RFC 5681:
//!
//! * delayed ACK: one ACK per two full-size segments, or after 40 ms,
//!   whichever first;
//! * immediate ACK on out-of-order arrival (duplicate ACK with SACK) and on
//!   arrivals that fill a gap.
//!
//! **netem substitution**: the paper set per-flow base RTTs with `tc netem`
//! on the receivers. Here the receiver delays its ACKs by the flow's full
//! base RTT (`ack_delay`) and delivers them *directly* to the sender — the
//! reverse path is uncongested by construction (the paper's 25 Gbps edge
//! links guarantee the same). Placing the entire base RTT on the ACK path is
//! observationally equivalent to any forward/reverse split for every metric
//! the study measures: senders see base RTT + queueing delay either way.

use crate::endpoint_stats::ReceiverStats;
use crate::slab::{FlowKey, SharedFlowSlab};
use ccsim_net::msg::{Msg, TimerToken};
use ccsim_net::packet::{FlowId, Packet, SackBlock, SackBlocks};
use ccsim_sim::{
    CancelToken, Component, ComponentId, Ctx, SimDuration, SimTime, SnapError, SnapReader,
    SnapWriter,
};
use std::collections::{BTreeMap, VecDeque};

/// Linux's delayed-ACK timeout floor (`TCP_DELACK_MIN`).
pub const DELACK_TIMEOUT: SimDuration = SimDuration::from_millis(40);

/// ACK every `DELACK_SEGMENTS` full-size segments.
pub const DELACK_SEGMENTS: u32 = 2;

const TIMER_DELACK: u16 = 1;

/// The receiver component.
pub struct Receiver {
    flow: FlowId,
    /// The sender endpoint ACKs are delivered to.
    sender: ComponentId,
    /// Base-RTT delay applied to every ACK (netem substitution).
    ack_delay: SimDuration,
    mss: u32,
    /// Next expected in-order byte.
    rcv_nxt: u64,
    /// Out-of-order ranges, keyed by start; disjoint and non-adjacent.
    ooo: BTreeMap<u64, u64>,
    /// Range starts in most-recently-updated order (RFC 2018: report the
    /// most recently changed blocks first, rotating older ones through so
    /// the sender eventually learns the full receive state even when it
    /// has far more holes than fit in one SACK option).
    recent_ranges: VecDeque<u64>,
    /// Full segments received since the last ACK was sent.
    unacked_segments: u32,
    /// Live delayed-ACK timer event (null when disarmed). Sending an ACK
    /// cancels it outright — the old lazy generation-bump scheme left the
    /// dead 40 ms event parked in the queue (tens of thousands of them at
    /// 5000 flows) to fire as a no-op.
    delack_timer: CancelToken,
    /// Generation stamped into delack timer messages; guards the
    /// same-nanosecond dispatch-batch race `cancel` cannot cover.
    delack_generation: u64,
    /// RFC 3168 echo state: set when a CE-marked segment arrives, held
    /// across ACKs until the sender confirms with CWR on new data.
    ece_pending: bool,
    /// First hop for outgoing ACKs when the reverse path is routed through
    /// links (asymmetric topologies). `None` = deliver straight to the
    /// sender after `ack_delay` (the legacy netem substitution).
    ack_first_hop: Option<ComponentId>,
    /// ACK decimation threshold: one ACK per this many full-size segments
    /// (RFC 5681 delayed ACK generalized). [`DELACK_SEGMENTS`] is the
    /// legacy default; the megascale preset raises it to coalesce ACK
    /// events — every non-default value changes digests, so the knob is
    /// scenario-gated and defaulted everywhere else.
    delack_segments: u32,
    /// Dense hot-state mirror (see [`crate::slab`]): the receiver owns the
    /// `delivered_bytes` column. Derived state, not checkpointed.
    slab: Option<(SharedFlowSlab, FlowKey)>,
    stats: ReceiverStats,
}

impl Receiver {
    /// A receiver for `flow`, delivering ACKs to `sender` after `ack_delay`.
    pub fn new(flow: FlowId, sender: ComponentId, ack_delay: SimDuration, mss: u32) -> Receiver {
        Receiver {
            flow,
            sender,
            ack_delay,
            mss,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            recent_ranges: VecDeque::new(),
            unacked_segments: 0,
            delack_timer: CancelToken::default(),
            delack_generation: 0,
            ece_pending: false,
            ack_first_hop: None,
            delack_segments: DELACK_SEGMENTS,
            slab: None,
            stats: ReceiverStats::default(),
        }
    }

    /// Override the delayed-ACK segment threshold (ACK decimation). Values
    /// above [`DELACK_SEGMENTS`] coalesce ACK-path events at the cost of
    /// burstier cwnd growth; 0 is clamped to 1 (ACK every segment).
    pub fn set_delack_segments(&mut self, segments: u32) {
        self.delack_segments = segments.max(1);
    }

    /// Attach this receiver's row in the shared hot-state slab and publish
    /// the current delivered count into it.
    pub fn attach_slab(&mut self, slab: SharedFlowSlab, key: FlowKey) {
        self.slab = Some((slab, key));
        self.sync_slab();
    }

    /// Write `delivered_bytes` back into the slab (no-op when detached).
    fn sync_slab(&self) {
        if let Some((slab, key)) = &self.slab {
            slab.borrow_mut().write_delivered(*key, self.rcv_nxt);
        }
    }

    /// Route outgoing ACKs through `hop` (a reverse-path link) instead of
    /// delivering them straight to the sender. The ACK still names the
    /// sender as [`Packet::dst`], so the last reverse hop can forward it
    /// with `ToPacketDst`.
    pub fn set_ack_first_hop(&mut self, hop: ComponentId) {
        self.ack_first_hop = Some(hop);
    }

    /// Total in-order bytes delivered to the application.
    pub fn delivered_bytes(&self) -> u64 {
        self.rcv_nxt
    }

    /// Counters.
    pub fn stats(&self) -> &ReceiverStats {
        &self.stats
    }

    /// Number of out-of-order ranges currently buffered.
    pub fn ooo_ranges(&self) -> usize {
        self.ooo.len()
    }

    /// The flow this receiver serves.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// Serialize the receiver's mutable state for a checkpoint (`flow`,
    /// `sender`, `ack_delay`, `mss`, and `ack_first_hop` are wiring
    /// configuration). The OOO map iterates in key order, a canonical
    /// encoding; the recency list is genuine state and written verbatim.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.rcv_nxt);
        w.usize(self.ooo.len());
        for (&s, &e) in &self.ooo {
            w.u64(s);
            w.u64(e);
        }
        w.usize(self.recent_ranges.len());
        for &s in &self.recent_ranges {
            w.u64(s);
        }
        w.u32(self.unacked_segments);
        self.delack_timer.save_state(w);
        w.u64(self.delack_generation);
        w.bool(self.ece_pending);
        self.stats.save_state(w);
    }

    /// Overlay checkpointed state onto a receiver freshly built from the
    /// same scenario.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.rcv_nxt = r.u64()?;
        let n = r.usize()?;
        if n > r.remaining() {
            return Err(SnapError::Truncated {
                needed: n,
                remaining: r.remaining(),
            });
        }
        let mut ooo = BTreeMap::new();
        let mut prev_end = 0u64;
        for _ in 0..n {
            let s = r.u64()?;
            let e = r.u64()?;
            if e <= s || s < prev_end {
                return Err(SnapError::Corrupt(format!(
                    "receiver OOO range [{s}, {e}) invalid after end {prev_end}"
                )));
            }
            prev_end = e;
            ooo.insert(s, e);
        }
        self.ooo = ooo;
        let n = r.usize()?;
        if n > r.remaining() {
            return Err(SnapError::Truncated {
                needed: n,
                remaining: r.remaining(),
            });
        }
        let mut recent = VecDeque::with_capacity(n);
        for _ in 0..n {
            recent.push_back(r.u64()?);
        }
        self.recent_ranges = recent;
        self.unacked_segments = r.u32()?;
        self.delack_timer = CancelToken::load_state(r)?;
        self.delack_generation = r.u64()?;
        self.ece_pending = r.bool()?;
        self.stats.load_state(r)?;
        // Derived state: refresh the slab mirror from the overlaid values.
        self.sync_slab();
        Ok(())
    }

    fn insert_ooo(&mut self, seq: u64, end: u64) {
        // Find a range this one extends or duplicates. Ranges are segment
        // aligned, so overlaps are exact-duplicate or adjacency cases.
        // Coalesce with predecessor and successor where adjacent.
        let mut start = seq;
        let mut stop = end;
        // Merge with predecessor if it touches.
        if let Some((&ps, &pe)) = self.ooo.range(..=seq).next_back() {
            if pe >= seq {
                if pe >= end {
                    // exact duplicate of buffered data
                    self.touch_range(ps);
                    return;
                }
                start = ps;
                stop = stop.max(pe);
                self.ooo.remove(&ps);
            }
        }
        // Merge with successors that touch.
        while let Some((&ns, &ne)) = self.ooo.range(start..).next() {
            if ns > stop {
                break;
            }
            stop = stop.max(ne);
            self.ooo.remove(&ns);
        }
        self.ooo.insert(start, stop);
        self.touch_range(start);
    }

    /// Move `start` to the front of the recency list, dropping entries for
    /// ranges that no longer exist (merged or drained).
    fn touch_range(&mut self, start: u64) {
        let ooo = &self.ooo;
        self.recent_ranges
            .retain(|s| *s != start && ooo.contains_key(s));
        self.recent_ranges.push_front(start);
        self.recent_ranges.truncate(16);
    }

    /// Advance `rcv_nxt` over any now-contiguous OOO ranges.
    fn drain_contiguous(&mut self) {
        while let Some((&s, &e)) = self.ooo.first_key_value() {
            if s > self.rcv_nxt {
                break;
            }
            self.ooo.remove(&s);
            if e > self.rcv_nxt {
                self.rcv_nxt = e;
            }
        }
    }

    /// Build SACK blocks: most recently updated ranges first (RFC 2018),
    /// falling back to ascending order for any remaining option space.
    fn sack_blocks(&self) -> SackBlocks {
        let mut blocks = SackBlocks::EMPTY;
        let mut used = [u64::MAX; ccsim_net::packet::MAX_SACK_BLOCKS];
        let mut n = 0;
        for &start in &self.recent_ranges {
            if n >= used.len() {
                break;
            }
            if let Some(&end) = self.ooo.get(&start) {
                if !used[..n].contains(&start) {
                    blocks.push(SackBlock { start, end });
                    used[n] = start;
                    n += 1;
                }
            }
        }
        for (&s, &e) in &self.ooo {
            if n >= used.len() {
                break;
            }
            if !used[..n].contains(&s) {
                blocks.push(SackBlock { start: s, end: e });
                used[n] = s;
                n += 1;
            }
        }
        blocks
    }

    fn send_ack(&mut self, now: SimTime, ctx: &mut Ctx<'_, Msg>) {
        let sack = self.sack_blocks();
        let dup = !sack.is_empty();
        let mut ack = Packet::ack(self.flow, self.sender, self.rcv_nxt, sack, now);
        if self.ece_pending {
            ack.set_ece();
            self.stats.ece_acks_sent += 1;
        }
        let first_hop = self.ack_first_hop.unwrap_or(self.sender);
        ctx.schedule_in(self.ack_delay, first_hop, Msg::Packet(ack));
        self.stats.acks_sent += 1;
        if dup {
            self.stats.sack_acks_sent += 1;
        }
        self.unacked_segments = 0;
        // Cancel any pending delayed-ACK timer outright; the generation
        // bump guards the same-nanosecond batch race (see `on_event`).
        ctx.cancel(self.delack_timer);
        self.delack_timer = CancelToken::default();
        self.delack_generation += 1;
    }

    fn arm_delack(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if !ctx.is_pending(self.delack_timer) {
            self.delack_timer = ctx.schedule_self_cancellable(
                DELACK_TIMEOUT,
                Msg::Timer(TimerToken::pack(TIMER_DELACK, self.delack_generation)),
            );
        }
    }

    fn on_data(&mut self, now: SimTime, p: Packet, ctx: &mut Ctx<'_, Msg>) {
        self.stats.data_pkts_received += 1;
        self.stats.bytes_received += p.payload_len();
        if p.retransmit {
            self.stats.retransmits_received += 1;
        }
        // RFC 3168 echo: CWR on incoming data acknowledges the previous
        // echo; a CE mark (re-)arms it. CWR is processed first so a packet
        // carrying both (CE applied after the sender set CWR) still starts
        // a fresh echo episode.
        if p.has_cwr() {
            self.ece_pending = false;
        }
        if p.is_ce() {
            self.stats.ce_pkts_received += 1;
            self.ece_pending = true;
        }

        if p.end_seq <= self.rcv_nxt {
            // Entirely duplicate (spurious retransmission): ACK immediately
            // so the sender can clean up.
            self.stats.duplicate_pkts += 1;
            self.send_ack(now, ctx);
            return;
        }

        if p.seq == self.rcv_nxt {
            // In-order arrival.
            self.rcv_nxt = p.end_seq;
            let had_gap = !self.ooo.is_empty();
            self.drain_contiguous();
            if had_gap {
                // Filled (part of) a gap: ACK immediately (RFC 5681).
                self.send_ack(now, ctx);
                return;
            }
            self.unacked_segments += 1;
            if self.unacked_segments >= self.delack_segments || p.payload_len() < self.mss as u64 {
                self.send_ack(now, ctx);
            } else {
                self.arm_delack(ctx);
            }
        } else {
            // Out of order: buffer and emit an immediate duplicate ACK
            // carrying SACK information.
            debug_assert!(p.seq > self.rcv_nxt);
            self.stats.ooo_pkts += 1;
            self.insert_ooo(p.seq, p.end_seq);
            self.send_ack(now, ctx);
        }
    }
}

impl Component<Msg> for Receiver {
    fn on_event(&mut self, now: SimTime, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        match msg {
            Msg::Packet(p) => {
                debug_assert!(p.is_data(), "receiver got a non-data packet");
                self.on_data(now, p, ctx);
            }
            Msg::Timer(t) => {
                debug_assert_eq!(t.kind(), TIMER_DELACK);
                if t.generation() == self.delack_generation {
                    self.delack_timer = CancelToken::default();
                    if self.unacked_segments > 0 {
                        self.send_ack(now, ctx);
                    }
                }
            }
        }
        self.sync_slab();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_sim::Simulator;

    const MSS: u32 = 1000;

    /// Captures ACKs with their arrival time.
    struct AckSink {
        acks: Vec<(SimTime, Packet)>,
    }

    impl Component<Msg> for AckSink {
        fn on_event(&mut self, now: SimTime, msg: Msg, _ctx: &mut Ctx<'_, Msg>) {
            if let Msg::Packet(p) = msg {
                self.acks.push((now, p));
            }
        }
    }

    fn setup(ack_delay_ms: u64) -> (Simulator<Msg>, ComponentId, ComponentId) {
        let mut sim = Simulator::new(0);
        let sink = sim.add_component(AckSink { acks: vec![] });
        let rx = sim.add_component(Receiver::new(
            FlowId(0),
            sink,
            SimDuration::from_millis(ack_delay_ms),
            MSS,
        ));
        (sim, sink, rx)
    }

    fn data(seq: u64, end: u64) -> Packet {
        Packet::data(
            FlowId(0),
            ComponentId::from_raw(99),
            seq,
            end,
            SimTime::ZERO,
        )
    }

    #[test]
    fn delayed_ack_covers_two_segments() {
        let (mut sim, sink, rx) = setup(0);
        sim.schedule(SimTime::ZERO, rx, Msg::Packet(data(0, 1000)));
        sim.schedule(SimTime::from_micros(10), rx, Msg::Packet(data(1000, 2000)));
        sim.run();
        let acks = &sim.component::<AckSink>(sink).acks;
        assert_eq!(acks.len(), 1, "one ACK for two segments");
        assert_eq!(acks[0].1.ack_seq, 2000);
        assert!(acks[0].1.sack.is_empty());
    }

    #[test]
    fn raised_delack_stride_decimates_acks() {
        // delack_segments = 4: a burst of 8 in-order full segments is
        // acknowledged by exactly 2 cumulative ACKs instead of 4.
        let (mut sim, sink, rx) = setup(0);
        sim.component_mut::<Receiver>(rx).set_delack_segments(4);
        for i in 0..8u64 {
            sim.schedule(
                SimTime::from_micros(i),
                rx,
                Msg::Packet(data(i * 1000, (i + 1) * 1000)),
            );
        }
        sim.run();
        let acks = &sim.component::<AckSink>(sink).acks;
        assert_eq!(acks.len(), 2, "8 segments / stride 4");
        assert_eq!(acks[0].1.ack_seq, 4000);
        assert_eq!(acks[1].1.ack_seq, 8000);
        // A straggler below the stride still falls back to the 40 ms
        // delayed-ACK timer, so nothing is acknowledged late or never.
        sim.schedule(sim.now(), rx, Msg::Packet(data(8000, 9000)));
        let resume = sim.now();
        sim.run();
        let acks = &sim.component::<AckSink>(sink).acks;
        assert_eq!(acks.len(), 3);
        assert_eq!(acks[2].1.ack_seq, 9000);
        assert_eq!(acks[2].0, resume + DELACK_TIMEOUT);
    }

    #[test]
    fn zero_delack_stride_clamps_to_every_segment() {
        let (mut sim, sink, rx) = setup(0);
        sim.component_mut::<Receiver>(rx).set_delack_segments(0);
        for i in 0..3u64 {
            sim.schedule(
                SimTime::from_micros(i),
                rx,
                Msg::Packet(data(i * 1000, (i + 1) * 1000)),
            );
        }
        sim.run();
        assert_eq!(sim.component::<AckSink>(sink).acks.len(), 3);
    }

    #[test]
    fn lone_segment_acked_after_delack_timeout() {
        let (mut sim, sink, rx) = setup(0);
        sim.schedule(SimTime::ZERO, rx, Msg::Packet(data(0, 1000)));
        sim.run();
        let acks = &sim.component::<AckSink>(sink).acks;
        assert_eq!(acks.len(), 1);
        assert_eq!(acks[0].0, SimTime::from_millis(40));
        assert_eq!(acks[0].1.ack_seq, 1000);
    }

    #[test]
    fn out_of_order_triggers_immediate_sack() {
        let (mut sim, sink, rx) = setup(0);
        sim.schedule(SimTime::ZERO, rx, Msg::Packet(data(0, 1000)));
        sim.schedule(SimTime::from_micros(1), rx, Msg::Packet(data(2000, 3000)));
        sim.run();
        let acks = &sim.component::<AckSink>(sink).acks;
        // The OOO arrival forces an immediate dup-ACK (t≈0), then the
        // delayed-ACK machinery has nothing further to ack.
        let dup = acks
            .iter()
            .find(|(_, p)| !p.sack.is_empty())
            .expect("dup ack with sack");
        assert_eq!(dup.1.ack_seq, 1000);
        assert_eq!(
            dup.1.sack.as_slice(),
            &[SackBlock {
                start: 2000,
                end: 3000
            }]
        );
    }

    #[test]
    fn gap_fill_acks_immediately_and_advances() {
        let (mut sim, sink, rx) = setup(0);
        sim.schedule(SimTime::ZERO, rx, Msg::Packet(data(1000, 2000)));
        sim.schedule(SimTime::from_micros(5), rx, Msg::Packet(data(0, 1000)));
        sim.run();
        let acks = &sim.component::<AckSink>(sink).acks;
        // First: dup ack (rcv_nxt=0, SACK 1000-2000). Second: gap fill,
        // immediate full ACK of 2000.
        assert_eq!(acks.len(), 2);
        assert_eq!(acks[0].1.ack_seq, 0);
        assert_eq!(acks[1].1.ack_seq, 2000);
        assert!(acks[1].1.sack.is_empty());
        let r = sim.component::<Receiver>(rx);
        assert_eq!(r.delivered_bytes(), 2000);
        assert_eq!(r.ooo_ranges(), 0);
    }

    #[test]
    fn most_recent_ooo_range_leads_sack_blocks() {
        let (mut sim, sink, rx) = setup(0);
        // Three disjoint OOO ranges arriving in order: 2k, 4k, then 6k.
        sim.schedule(SimTime::ZERO, rx, Msg::Packet(data(2000, 3000)));
        sim.schedule(SimTime::from_micros(1), rx, Msg::Packet(data(4000, 5000)));
        sim.schedule(SimTime::from_micros(2), rx, Msg::Packet(data(6000, 7000)));
        sim.run();
        let acks = &sim.component::<AckSink>(sink).acks;
        let last = &acks.last().unwrap().1;
        let blocks = last.sack.as_slice();
        assert_eq!(blocks.len(), 3);
        // Full recency order: most recently updated first.
        assert_eq!(
            blocks[0],
            SackBlock {
                start: 6000,
                end: 7000
            }
        );
        assert_eq!(
            blocks[1],
            SackBlock {
                start: 4000,
                end: 5000
            }
        );
        assert_eq!(
            blocks[2],
            SackBlock {
                start: 2000,
                end: 3000
            }
        );
    }

    #[test]
    fn duplicate_data_is_acked_immediately() {
        let (mut sim, sink, rx) = setup(0);
        sim.schedule(SimTime::ZERO, rx, Msg::Packet(data(0, 1000)));
        sim.schedule(SimTime::ZERO, rx, Msg::Packet(data(1000, 2000)));
        sim.schedule(SimTime::from_millis(1), rx, Msg::Packet(data(0, 1000)));
        sim.run();
        let acks = &sim.component::<AckSink>(sink).acks;
        assert_eq!(acks.len(), 2);
        assert_eq!(acks[1].1.ack_seq, 2000);
        assert_eq!(sim.component::<Receiver>(rx).stats().duplicate_pkts, 1);
    }

    #[test]
    fn ack_delay_models_netem_base_rtt() {
        let (mut sim, sink, rx) = setup(20);
        sim.schedule(SimTime::ZERO, rx, Msg::Packet(data(0, 1000)));
        sim.schedule(SimTime::ZERO, rx, Msg::Packet(data(1000, 2000)));
        sim.run();
        let acks = &sim.component::<AckSink>(sink).acks;
        assert_eq!(acks.len(), 1);
        assert_eq!(acks[0].0, SimTime::from_millis(20));
    }

    #[test]
    fn adjacent_ooo_ranges_coalesce() {
        let (mut sim, sink, rx) = setup(0);
        sim.schedule(SimTime::ZERO, rx, Msg::Packet(data(2000, 3000)));
        sim.schedule(SimTime::from_micros(1), rx, Msg::Packet(data(3000, 4000)));
        sim.run();
        let r = sim.component::<Receiver>(rx);
        assert_eq!(r.ooo_ranges(), 1);
        let acks = &sim.component::<AckSink>(sink).acks;
        let last = &acks.last().unwrap().1;
        assert_eq!(
            last.sack.as_slice(),
            &[SackBlock {
                start: 2000,
                end: 4000
            }]
        );
    }

    #[test]
    fn sub_mss_segment_acked_immediately() {
        let (mut sim, sink, rx) = setup(0);
        sim.schedule(SimTime::ZERO, rx, Msg::Packet(data(0, 100)));
        sim.run();
        let acks = &sim.component::<AckSink>(sink).acks;
        assert_eq!(acks.len(), 1);
        assert_eq!(acks[0].0, SimTime::ZERO);
    }

    #[test]
    fn ce_arrival_echoes_ece_until_cwr() {
        let (mut sim, sink, rx) = setup(0);
        let mut ce = data(0, 1000);
        ce.mark_ce();
        sim.schedule(SimTime::ZERO, rx, Msg::Packet(ce));
        sim.schedule(SimTime::from_micros(1), rx, Msg::Packet(data(1000, 2000)));
        // Sender responds with CWR on its next data; the echo must stop.
        let mut cwr = data(2000, 3000);
        cwr.set_cwr();
        sim.schedule(SimTime::from_millis(1), rx, Msg::Packet(cwr));
        sim.schedule(
            SimTime::from_millis(1) + SimDuration::from_micros(1),
            rx,
            Msg::Packet(data(3000, 4000)),
        );
        sim.run();
        let acks = &sim.component::<AckSink>(sink).acks;
        assert_eq!(acks.len(), 2);
        assert!(acks[0].1.has_ece(), "first ACK must echo the CE mark");
        assert!(!acks[1].1.has_ece(), "CWR must stop the echo");
        let s = sim.component::<Receiver>(rx).stats();
        assert_eq!(s.ce_pkts_received, 1);
        assert_eq!(s.ece_acks_sent, 1);
    }

    #[test]
    fn ack_first_hop_reroutes_acks_keeping_sender_as_dst() {
        let mut sim = Simulator::new(0);
        let sender_sink = sim.add_component(AckSink { acks: vec![] });
        let hop_sink = sim.add_component(AckSink { acks: vec![] });
        let rx = sim.add_component(Receiver::new(
            FlowId(0),
            sender_sink,
            SimDuration::ZERO,
            MSS,
        ));
        sim.component_mut::<Receiver>(rx)
            .set_ack_first_hop(hop_sink);
        sim.schedule(SimTime::ZERO, rx, Msg::Packet(data(0, 100)));
        sim.run();
        assert!(sim.component::<AckSink>(sender_sink).acks.is_empty());
        let hop_acks = &sim.component::<AckSink>(hop_sink).acks;
        assert_eq!(hop_acks.len(), 1);
        // dst still names the sender so the last hop can ToPacketDst it.
        assert_eq!(hop_acks[0].1.dst, sender_sink);
    }

    #[test]
    fn stats_track_arrivals() {
        let (mut sim, _sink, rx) = setup(0);
        sim.schedule(SimTime::ZERO, rx, Msg::Packet(data(0, 1000)));
        sim.schedule(SimTime::from_micros(1), rx, Msg::Packet(data(2000, 3000)));
        sim.run();
        let s = sim.component::<Receiver>(rx).stats();
        assert_eq!(s.data_pkts_received, 2);
        assert_eq!(s.bytes_received, 2000);
        assert_eq!(s.ooo_pkts, 1);
    }
}
