//! RTT estimation and retransmission timeout per RFC 6298.
//!
//! Classic Jacobson/Karels smoothing: `SRTT`, `RTTVAR`, and
//! `RTO = SRTT + 4·RTTVAR`, clamped to `[rto_min, rto_max]` with binary
//! exponential backoff on timeout. Linux defaults are used for the clamps
//! (200 ms floor, 120 s ceiling).
//!
//! The estimator also tracks the connection-lifetime minimum RTT, which the
//! endpoint passes to the CCA (BBR keeps its own *windowed* min on top).

use ccsim_sim::{SimDuration, SnapError, SnapReader, SnapWriter};

/// Linux's RTO floor (`TCP_RTO_MIN` = 200 ms).
pub const DEFAULT_RTO_MIN: SimDuration = SimDuration::from_millis(200);
/// Linux's RTO ceiling (`TCP_RTO_MAX` = 120 s).
pub const DEFAULT_RTO_MAX: SimDuration = SimDuration::from_secs(120);
/// RTO before any RTT sample exists (RFC 6298 §2.1: 1 second).
pub const DEFAULT_INITIAL_RTO: SimDuration = SimDuration::from_secs(1);
/// Maximum exponential-backoff doublings.
const MAX_BACKOFF_SHIFT: u32 = 16;

/// RFC 6298 RTT estimator + RTO calculator.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    min_rtt: SimDuration,
    latest: Option<SimDuration>,
    rto_min: SimDuration,
    rto_max: SimDuration,
    backoff_shift: u32,
    samples: u64,
}

impl Default for RttEstimator {
    fn default() -> Self {
        Self::new(DEFAULT_RTO_MIN, DEFAULT_RTO_MAX)
    }
}

impl RttEstimator {
    /// Estimator with custom RTO clamps.
    pub fn new(rto_min: SimDuration, rto_max: SimDuration) -> Self {
        RttEstimator {
            srtt: None,
            rttvar: SimDuration::ZERO,
            min_rtt: SimDuration::MAX,
            latest: None,
            rto_min,
            rto_max,
            backoff_shift: 0,
            samples: 0,
        }
    }

    /// Serialize mutable estimator state for a checkpoint (the RTO clamps
    /// are configuration).
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.opt(self.srtt, |w, d| w.duration(d));
        w.duration(self.rttvar);
        w.duration(self.min_rtt);
        w.opt(self.latest, |w, d| w.duration(d));
        w.u32(self.backoff_shift);
        w.u64(self.samples);
    }

    /// Overlay checkpointed state.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.srtt = r.opt(|r| r.duration())?;
        self.rttvar = r.duration()?;
        self.min_rtt = r.duration()?;
        self.latest = r.opt(|r| r.duration())?;
        self.backoff_shift = r.u32()?;
        self.samples = r.u64()?;
        Ok(())
    }

    /// Incorporate a new RTT measurement (already Karn-filtered by the
    /// caller). Resets any timeout backoff, per RFC 6298 §5.7.
    pub fn on_sample(&mut self, rtt: SimDuration) {
        self.samples += 1;
        self.latest = Some(rtt);
        if rtt < self.min_rtt {
            self.min_rtt = rtt;
        }
        match self.srtt {
            None => {
                // First measurement: SRTT = R, RTTVAR = R/2.
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                // RTTVAR = 3/4·RTTVAR + 1/4·|SRTT − R|
                let err = if srtt > rtt { srtt - rtt } else { rtt - srtt };
                self.rttvar = (self.rttvar * 3 + err) / 4;
                // SRTT = 7/8·SRTT + 1/8·R
                self.srtt = Some((srtt * 7 + rtt) / 8);
            }
        }
        self.backoff_shift = 0;
    }

    /// Smoothed RTT (zero before the first sample).
    pub fn srtt(&self) -> SimDuration {
        self.srtt.unwrap_or(SimDuration::ZERO)
    }

    /// RTT variance estimate.
    pub fn rttvar(&self) -> SimDuration {
        self.rttvar
    }

    /// Most recent raw sample, if any.
    pub fn latest(&self) -> Option<SimDuration> {
        self.latest
    }

    /// Connection-lifetime minimum RTT ([`SimDuration::MAX`] before the
    /// first sample).
    pub fn min_rtt(&self) -> SimDuration {
        self.min_rtt
    }

    /// Number of samples incorporated.
    pub fn sample_count(&self) -> u64 {
        self.samples
    }

    /// Current retransmission timeout, including any backoff.
    pub fn rto(&self) -> SimDuration {
        let base = match self.srtt {
            None => DEFAULT_INITIAL_RTO,
            Some(srtt) => {
                // RTO = SRTT + max(G, 4·RTTVAR); clock granularity G is
                // 1 ns here, effectively zero.
                srtt.saturating_add(self.rttvar * 4)
            }
        };
        let clamped = base.max(self.rto_min).min(self.rto_max);
        let backed_off = SimDuration::from_nanos(
            clamped
                .as_nanos()
                .saturating_mul(1u64 << self.backoff_shift),
        );
        backed_off.min(self.rto_max)
    }

    /// Double the RTO after a timeout (RFC 6298 §5.5).
    pub fn backoff(&mut self) {
        if self.backoff_shift < MAX_BACKOFF_SHIFT {
            self.backoff_shift += 1;
        }
    }

    /// Current backoff exponent (0 when not backed off).
    pub fn backoff_shift(&self) -> u32 {
        self.backoff_shift
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1;
    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v * MS)
    }

    #[test]
    fn initial_rto_is_one_second() {
        let e = RttEstimator::default();
        assert_eq!(e.rto(), SimDuration::from_secs(1));
        assert_eq!(e.srtt(), SimDuration::ZERO);
        assert_eq!(e.min_rtt(), SimDuration::MAX);
    }

    #[test]
    fn first_sample_initializes_per_rfc() {
        let mut e = RttEstimator::default();
        e.on_sample(ms(100));
        assert_eq!(e.srtt(), ms(100));
        assert_eq!(e.rttvar(), ms(50));
        // RTO = 100 + 4*50 = 300 ms.
        assert_eq!(e.rto(), ms(300));
    }

    #[test]
    fn smoothing_converges_on_constant_rtt() {
        let mut e = RttEstimator::default();
        for _ in 0..100 {
            e.on_sample(ms(80));
        }
        assert_eq!(e.srtt(), ms(80));
        // Variance decays toward zero; RTO bottoms out at the floor.
        assert!(e.rttvar() < ms(1));
        assert_eq!(e.rto(), DEFAULT_RTO_MIN);
    }

    #[test]
    fn rto_floor_applies() {
        let mut e = RttEstimator::default();
        for _ in 0..50 {
            e.on_sample(ms(10));
        }
        assert_eq!(e.rto(), DEFAULT_RTO_MIN);
    }

    #[test]
    fn min_rtt_tracks_minimum() {
        let mut e = RttEstimator::default();
        e.on_sample(ms(50));
        e.on_sample(ms(20));
        e.on_sample(ms(90));
        assert_eq!(e.min_rtt(), ms(20));
        assert_eq!(e.latest(), Some(ms(90)));
        assert_eq!(e.sample_count(), 3);
    }

    #[test]
    fn backoff_doubles_and_sample_resets() {
        let mut e = RttEstimator::default();
        e.on_sample(ms(100)); // RTO 300 ms
        e.backoff();
        assert_eq!(e.rto(), ms(600));
        e.backoff();
        assert_eq!(e.rto(), ms(1200));
        e.on_sample(ms(100));
        assert_eq!(e.backoff_shift(), 0);
        // Second identical sample decays RTTVAR: 3/4*50 = 37.5 ms, so
        // RTO = 100 + 4*37.5 = 250 ms.
        assert_eq!(e.rto(), ms(250));
    }

    #[test]
    fn backoff_respects_ceiling() {
        let mut e = RttEstimator::default();
        e.on_sample(ms(100));
        for _ in 0..40 {
            e.backoff();
        }
        assert_eq!(e.rto(), DEFAULT_RTO_MAX);
    }

    #[test]
    fn variance_reacts_to_jitter() {
        let mut e = RttEstimator::default();
        e.on_sample(ms(100));
        e.on_sample(ms(200));
        // RTTVAR = 3/4*50 + 1/4*|100-200| = 37.5 + 25 = 62.5 ms
        assert_eq!(e.rttvar(), SimDuration::from_micros(62_500));
        // SRTT = 7/8*100 + 1/8*200 = 112.5 ms
        assert_eq!(e.srtt(), SimDuration::from_micros(112_500));
    }
}
