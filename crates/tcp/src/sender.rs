//! The TCP sender endpoint: reliability, loss recovery, and the
//! transmission loop.
//!
//! State machine mirrors Linux's `tcp_ca_state` reduced to the three states
//! that matter for long-lived bulk flows:
//!
//! * **Open** — normal operation.
//! * **Recovery** — fast recovery after SACK-based loss detection. For
//!   loss-based CCAs the in-flight target is governed by Proportional Rate
//!   Reduction (RFC 6937, with SSRB); BBR manages its own window.
//! * **Loss** — after a retransmission timeout: everything outstanding is
//!   presumed lost and the flow slow-starts from the CCA's post-RTO window.
//!
//! Congestion events (fast-recovery entries + RTOs) are logged with
//! timestamps — the tcpprobe-equivalent CWND-halving record at the heart of
//! the paper's Mathis-model analysis.
//!
//! ## Simplifications (documented in DESIGN.md)
//!
//! No handshake (flows start in established state), no receive-window limit
//! (the paper tuned host buffers so flows are congestion-limited), no TLP,
//! and no undo/D-SACK heuristics. Loss detection is RFC 6675 dupthresh +
//! FACK byte rule, gated by a RACK-style send-time anchor (see
//! `scoreboard.rs`).

use crate::cc::{AckSample, CongestionControl};
use crate::endpoint_stats::SenderStats;
use crate::rate::RateEstimator;
use crate::rtt::RttEstimator;
use crate::scoreboard::Scoreboard;
use crate::slab::{FlowKey, SharedFlowSlab};
use ccsim_net::msg::{Msg, TimerToken};
use ccsim_net::packet::{FlowId, Packet};
use ccsim_sim::{
    CancelToken, Component, ComponentId, Ctx, SimDuration, SimTime, SnapError, SnapReader,
    SnapWriter,
};
use ccsim_telemetry::Counter;
use ccsim_trace::{BoundedLog, CongestionKind, FlowRecorder};
use std::sync::Arc;

/// Shared metric handles for senders, registered by the harness and
/// attached with [`Sender::enable_metrics`]. One instance is cloned
/// across every sender in a run (the counters aggregate over flows —
/// per-flow series would explode cardinality at 5000 flows; per-flow
/// detail lives in [`SenderStats`] and the flight recorder). `Arc`
/// handles go straight to the registry's atomics: one relaxed add per
/// event, no simulation state touched.
#[derive(Clone)]
pub struct SenderMetrics {
    /// Genuine retransmission timeouts (`ccsim_tcp_rtos_total`).
    pub rtos: Arc<Counter>,
    /// Fast-recovery episode entries
    /// (`ccsim_tcp_fast_recoveries_total`).
    pub fast_recoveries: Arc<Counter>,
    /// Transmissions deferred by the pacing gate
    /// (`ccsim_tcp_pacing_stalls_total`).
    pub pacing_stalls: Arc<Counter>,
}

/// Timer kind: flow start.
pub const TIMER_START: u16 = 1;
/// Timer kind: retransmission timeout.
pub const TIMER_RTO: u16 = 2;
/// Timer kind: pacing release.
pub const TIMER_PACE: u16 = 3;

/// The message that opens a flow; schedule it at the flow's start time.
pub fn start_msg() -> Msg {
    Msg::Timer(TimerToken::pack(TIMER_START, 0))
}

/// Loss-recovery state (Linux `tcp_ca_state`, reduced).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CaState {
    /// Normal operation.
    Open,
    /// SACK-triggered fast recovery.
    Recovery,
    /// Post-RTO loss state.
    Loss,
}

/// Static sender configuration.
#[derive(Debug, Clone)]
pub struct SenderConfig {
    /// Flow identity.
    pub flow: FlowId,
    /// Maximum segment size (payload bytes).
    pub mss: u32,
    /// The receiver endpoint (packets' final destination).
    pub receiver: ComponentId,
    /// First hop for data packets (typically the bottleneck link).
    pub first_hop: ComponentId,
    /// Stop offering new data beyond this many bytes (`None` = infinite
    /// source, as in the paper).
    pub data_limit: Option<u64>,
    /// Negotiate ECN: mark outgoing data ECT(0), respond to ECE echoes
    /// with a once-per-window cwnd reduction, and confirm with CWR.
    pub ecn: bool,
}

/// The sender component.
pub struct Sender {
    cfg: SenderConfig,
    cca: Box<dyn CongestionControl>,
    board: Scoreboard,
    rtt: RttEstimator,
    rate: RateEstimator,
    state: CaState,
    /// `snd_nxt` when the current loss episode began (`high_seq`).
    recovery_point: u64,
    /// PRR state (RFC 6937), valid while in Recovery for PRR-using CCAs.
    prr_delivered: u64,
    prr_out: u64,
    prr_recover_fs: u64,
    prr_ssthresh: u64,
    last_newly_acked: u64,
    /// Entry into recovery always permits the one fast retransmission.
    force_rtx: bool,
    /// Pacing: earliest instant the next segment may leave.
    pacing_next: SimTime,
    pace_pending: bool,
    /// Live RTO timer event (null when disarmed). Every rearm cancels the
    /// previous event outright instead of leaving it parked. The old lazy
    /// `rto_pending`/`rto_deadline` scheme could strand the flow: an
    /// empty-flight disarm set the deadline to `SimTime::MAX` but left the
    /// event parked with the pending flag raised, so the next transmission
    /// skipped rearming — if that whole burst was then lost, no timer was
    /// armed and the flow stalled forever.
    rto_timer: CancelToken,
    /// Generation stamped into RTO timer messages. Guards the one race
    /// cancellation cannot cover: an event already extracted into the
    /// current same-nanosecond dispatch batch fires despite `cancel`.
    rto_gen: u64,
    started: bool,
    /// RFC 3168 once-per-window gate: `snd_nxt` at the last ECE-triggered
    /// reduction. Echoes on ACKs for data sent before that point repeat
    /// the same congestion signal and are ignored.
    ecn_reduce_until: u64,
    /// Set CWR on the next new data segment to confirm the reduction.
    ecn_cwr_pending: bool,
    stats: SenderStats,
    /// Optional cwnd trace `(time, cwnd_bytes)`, sampled per ACK when
    /// enabled (for examples/diagnostics; off in large experiments).
    /// Bounded: at 16 bytes/entry the default cap retains ~1 MiB/flow.
    cwnd_trace: Option<BoundedLog<(SimTime, u64)>>,
    /// Optional flight recorder (ccsim-trace), attached by the harness
    /// when the scenario enables tracing.
    recorder: Option<FlowRecorder>,
    /// Optional registry-backed metrics (shared across all senders),
    /// attached when a run is observed.
    metrics: Option<SenderMetrics>,
    /// Dense hot-state mirror (see [`crate::slab`]): when attached, the
    /// sender writes its hot row back after every event it handles, so
    /// samplers scan columns instead of downcasting components. Purely
    /// derived state — not checkpointed, no effect on behavior.
    slab: Option<(SharedFlowSlab, FlowKey)>,
}

impl Sender {
    /// Build a sender with the given CCA instance.
    pub fn new(cfg: SenderConfig, cca: Box<dyn CongestionControl>) -> Sender {
        let mss = cfg.mss;
        Sender {
            cfg,
            cca,
            board: Scoreboard::new(mss),
            rtt: RttEstimator::default(),
            rate: RateEstimator::new(),
            state: CaState::Open,
            recovery_point: 0,
            prr_delivered: 0,
            prr_out: 0,
            prr_recover_fs: 0,
            prr_ssthresh: 0,
            last_newly_acked: 0,
            force_rtx: false,
            pacing_next: SimTime::ZERO,
            pace_pending: false,
            rto_timer: CancelToken::default(),
            rto_gen: 0,
            started: false,
            ecn_reduce_until: 0,
            ecn_cwr_pending: false,
            stats: SenderStats::default(),
            cwnd_trace: None,
            recorder: None,
            metrics: None,
            slab: None,
        }
    }

    /// Attach this sender's row in the shared hot-state slab and publish
    /// the current values into it. Subsequent events keep the row fresh.
    pub fn attach_slab(&mut self, slab: SharedFlowSlab, key: FlowKey) {
        self.slab = Some((slab, key));
        self.sync_slab();
    }

    /// Write the hot row back into the slab (no-op when detached). Called
    /// at the end of every handled event and after a checkpoint overlay,
    /// so column readers between events always observe exactly what a
    /// component walk would.
    fn sync_slab(&self) {
        if let Some((slab, key)) = &self.slab {
            slab.borrow_mut().write_sender(
                *key,
                self.cca.cwnd(),
                self.board.in_flight(),
                self.rtt.srtt().as_nanos(),
                self.pacing_next,
                self.stats.retransmits,
            );
        }
    }

    /// Enable per-ACK cwnd tracing (drop-oldest bounded; see
    /// [`ccsim_trace::DEFAULT_LOG_CAP`]).
    pub fn enable_cwnd_trace(&mut self) {
        self.cwnd_trace = Some(BoundedLog::default());
    }

    /// The recorded cwnd trace, if enabled.
    pub fn cwnd_trace(&self) -> Option<&BoundedLog<(SimTime, u64)>> {
        self.cwnd_trace.as_ref()
    }

    /// Attach a flight recorder; subsequent ACK processing records cwnd /
    /// ssthresh / srtt / pacing samples, CCA phase transitions, and
    /// congestion events into it.
    pub fn enable_trace(&mut self, recorder: FlowRecorder) {
        self.recorder = Some(recorder);
    }

    /// Detach and return the flight recorder (the harness drains it into
    /// the run trace after the simulation ends).
    pub fn take_trace(&mut self) -> Option<FlowRecorder> {
        self.recorder.take()
    }

    /// Attach registry-backed metrics; RTOs, fast-recovery entries, and
    /// pacing stalls count into the shared handles from then on.
    pub fn enable_metrics(&mut self, metrics: SenderMetrics) {
        self.metrics = Some(metrics);
    }

    /// Counters.
    pub fn stats(&self) -> &SenderStats {
        &self.stats
    }

    /// Approximate heap footprint of this flow's hot state: the sender
    /// struct (CCA box counted at its pointer size) plus the SACK
    /// scoreboard's segment storage. Harvested into the profiler's
    /// `tcp/senders` memory account — the numerator of the megascale
    /// memory-per-flow metric. Attached trace buffers are accounted
    /// separately via [`Sender::trace_memory_bytes`].
    pub fn memory_bytes(&self) -> u64 {
        std::mem::size_of::<Self>() as u64 + self.board.memory_bytes()
    }

    /// Heap bytes held by this flow's attached trace buffers (cwnd log
    /// and flight recorder), 0 when tracing is off. Feeds the profiler's
    /// `trace/rings` account, kept apart from `tcp/senders` so the
    /// memory-per-flow figure reflects the always-on cost.
    pub fn trace_memory_bytes(&self) -> u64 {
        let mut bytes = 0;
        if let Some(log) = &self.cwnd_trace {
            bytes += log.memory_bytes();
        }
        if let Some(rec) = &self.recorder {
            bytes += rec.memory_bytes();
        }
        bytes
    }

    /// The congestion controller (for cwnd/pacing inspection).
    pub fn cca(&self) -> &dyn CongestionControl {
        self.cca.as_ref()
    }

    /// Current smoothed RTT.
    pub fn srtt(&self) -> SimDuration {
        self.rtt.srtt()
    }

    /// Connection-lifetime minimum RTT.
    pub fn min_rtt(&self) -> SimDuration {
        self.rtt.min_rtt()
    }

    /// Current recovery state.
    pub fn ca_state(&self) -> CaState {
        self.state
    }

    /// Bytes currently considered in flight.
    pub fn in_flight(&self) -> u64 {
        self.board.in_flight()
    }

    /// Total bytes delivered (ACKed) on this flow.
    pub fn delivered_bytes(&self) -> u64 {
        self.rate.delivered()
    }

    /// The flow this sender drives.
    pub fn flow(&self) -> FlowId {
        self.cfg.flow
    }

    /// Serialize the sender's full mutable state for a checkpoint.
    ///
    /// `cfg` and `metrics` are configuration/harness attachments, rebuilt
    /// at restore; the CCA serializes last (through the mandatory trait
    /// methods), so a restore rebuilds the same algorithm from the
    /// scenario and overlays its state in place.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.u8(match self.state {
            CaState::Open => 0,
            CaState::Recovery => 1,
            CaState::Loss => 2,
        });
        w.u64(self.recovery_point);
        w.u64(self.prr_delivered);
        w.u64(self.prr_out);
        w.u64(self.prr_recover_fs);
        w.u64(self.prr_ssthresh);
        w.u64(self.last_newly_acked);
        w.bool(self.force_rtx);
        w.time(self.pacing_next);
        w.bool(self.pace_pending);
        self.rto_timer.save_state(w);
        w.u64(self.rto_gen);
        w.bool(self.started);
        w.u64(self.ecn_reduce_until);
        w.bool(self.ecn_cwr_pending);
        self.board.save_state(w);
        self.rtt.save_state(w);
        self.rate.save_state(w);
        self.stats.save_state(w);
        w.opt(self.cwnd_trace.as_ref(), |w, log| {
            log.save_state(w, |w, &(t, c)| {
                w.time(t);
                w.u64(c);
            });
        });
        w.opt(self.recorder.as_ref(), |w, rec| rec.save_state(w));
        self.cca.save_state(w);
    }

    /// Overlay checkpointed state onto a sender freshly built from the
    /// same scenario (same config, CCA kind, and trace attachments).
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.state = match r.u8()? {
            0 => CaState::Open,
            1 => CaState::Recovery,
            2 => CaState::Loss,
            t => return Err(SnapError::Corrupt(format!("sender CA-state tag {t}"))),
        };
        self.recovery_point = r.u64()?;
        self.prr_delivered = r.u64()?;
        self.prr_out = r.u64()?;
        self.prr_recover_fs = r.u64()?;
        self.prr_ssthresh = r.u64()?;
        self.last_newly_acked = r.u64()?;
        self.force_rtx = r.bool()?;
        self.pacing_next = r.time()?;
        self.pace_pending = r.bool()?;
        self.rto_timer = CancelToken::load_state(r)?;
        self.rto_gen = r.u64()?;
        self.started = r.bool()?;
        self.ecn_reduce_until = r.u64()?;
        self.ecn_cwr_pending = r.bool()?;
        self.board.load_state(r)?;
        self.rtt.load_state(r)?;
        self.rate.load_state(r)?;
        self.stats.load_state(r)?;
        let saved_trace = r.opt(|_| Ok(()))?;
        match (&mut self.cwnd_trace, saved_trace) {
            (Some(log), Some(())) => {
                log.load_state(r, |r| {
                    let t = r.time()?;
                    let c = r.u64()?;
                    Ok((t, c))
                })?;
            }
            (None, None) => {}
            (have, saved) => {
                return Err(SnapError::Corrupt(format!(
                    "cwnd-trace presence mismatch: built {}, snapshot {}",
                    have.is_some(),
                    saved.is_some()
                )));
            }
        }
        let saved_recorder = r.opt(|_| Ok(()))?;
        match (&mut self.recorder, saved_recorder) {
            (Some(rec), Some(())) => rec.load_state(r)?,
            (None, None) => {}
            (have, saved) => {
                return Err(SnapError::Corrupt(format!(
                    "flight-recorder presence mismatch: built {}, snapshot {}",
                    have.is_some(),
                    saved.is_some()
                )));
            }
        }
        self.cca.load_state(r)?;
        // The slab mirror is derived state, not checkpointed: refresh it
        // from the overlaid values so post-restore samplers stay exact.
        self.sync_slab();
        Ok(())
    }

    /// One-line internal-state dump for diagnostics.
    pub fn debug_state(&self) -> String {
        format!(
            "state={:?} cwnd={} ssthresh={} inflight={} lost={} sacked={} segs={} snd_nxt={} prr(d={},o={},fs={},ss={}) rto_gen={}",
            self.state,
            self.cca.cwnd(),
            self.cca.ssthresh(),
            self.board.in_flight(),
            self.board.lost_bytes(),
            self.board.sacked_bytes(),
            self.board.len(),
            self.board.snd_nxt(),
            self.prr_delivered,
            self.prr_out,
            self.prr_recover_fs,
            self.prr_ssthresh,
            self.rto_gen,
        )
    }

    // ----- transmission -------------------------------------------------

    /// Whether new data remains to be offered.
    fn new_data_available(&self) -> bool {
        self.cfg
            .data_limit
            .is_none_or(|limit| self.board.snd_nxt() < limit)
    }

    /// RFC 6937 PRR sndcnt: bytes this ACK permits us to (re)transmit.
    fn prr_allowance(&self) -> u64 {
        let pipe = self.board.in_flight();
        if pipe > self.prr_ssthresh {
            // Rate-reduction phase.
            let target =
                (self.prr_delivered * self.prr_ssthresh).div_ceil(self.prr_recover_fs.max(1));
            target.saturating_sub(self.prr_out)
        } else {
            // Slow-start reduction bound (PRR-SSRB).
            let limit = self
                .prr_delivered
                .saturating_sub(self.prr_out)
                .max(self.last_newly_acked)
                + self.cfg.mss as u64;
            limit.min(self.prr_ssthresh.saturating_sub(pipe))
        }
    }

    /// Whether the window (cwnd or PRR) permits sending one MSS now.
    fn window_permits(&self) -> bool {
        if self.force_rtx {
            return true;
        }
        let mss = self.cfg.mss as u64;
        if self.state == CaState::Recovery && self.cca.uses_prr() {
            self.prr_allowance() >= mss
        } else {
            self.board.in_flight() + mss <= self.cca.cwnd()
        }
    }

    fn arm_pace_timer(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if !self.pace_pending {
            self.pace_pending = true;
            if let Some(m) = &self.metrics {
                m.pacing_stalls.inc();
            }
            ctx.schedule_at(
                self.pacing_next,
                ctx.self_id(),
                Msg::Timer(TimerToken::pack(TIMER_PACE, 0)),
            );
        }
    }

    /// Cancel-and-rearm the RTO one full `rto()` from now.
    fn rearm_rto(&mut self, ctx: &mut Ctx<'_, Msg>) {
        ctx.cancel(self.rto_timer);
        self.rto_gen += 1;
        self.rto_timer = ctx.schedule_self_cancellable(
            self.rtt.rto(),
            Msg::Timer(TimerToken::pack(TIMER_RTO, self.rto_gen)),
        );
    }

    /// Disarm the RTO entirely (the flight has drained).
    fn disarm_rto(&mut self, ctx: &mut Ctx<'_, Msg>) {
        ctx.cancel(self.rto_timer);
        self.rto_timer = CancelToken::default();
        self.rto_gen += 1;
    }

    fn send_segment(
        &mut self,
        now: SimTime,
        seq: u64,
        end: u64,
        is_rtx: bool,
        ctx: &mut Ctx<'_, Msg>,
    ) {
        let flight_was_empty = self.board.is_empty();
        let tx = self.rate.on_send(now, flight_was_empty);
        if is_rtx {
            self.board.mark_retransmitted(seq, tx);
            self.stats.retransmits += 1;
        } else {
            self.board.on_send_new(end - seq, tx);
        }
        let mut p = Packet::data(self.cfg.flow, self.cfg.receiver, seq, end, now);
        p.retransmit = is_rtx;
        if self.cfg.ecn && !is_rtx {
            // RFC 3168 §6.1.5: retransmissions must not be ECT.
            p.set_ect();
            if self.ecn_cwr_pending {
                p.set_cwr();
                self.ecn_cwr_pending = false;
            }
        }
        ctx.send(self.cfg.first_hop, Msg::Packet(p));
        self.stats.data_pkts_sent += 1;
        self.stats.bytes_sent += end - seq;
        if self.state == CaState::Recovery {
            self.prr_out += end - seq;
        }
        if let Some(rate) = self.cca.pacing_rate() {
            let gap = rate.serialization_time(p.wire_bytes as u64);
            self.pacing_next = self.pacing_next.max(now) + gap;
        }
        if !ctx.is_pending(self.rto_timer) {
            self.rearm_rto(ctx);
        }
    }

    /// Transmit as much as the window, pacing, and data availability allow.
    fn try_transmit(&mut self, now: SimTime, ctx: &mut Ctx<'_, Msg>) {
        let mss = self.cfg.mss as u64;
        loop {
            // Pacing gate.
            if self.cca.pacing_rate().is_some() && now < self.pacing_next {
                self.arm_pace_timer(ctx);
                return;
            }
            // Choose the next segment: retransmissions first (RFC 6675
            // NextSeg rule 1), then new data.
            let candidate = match self.board.next_lost_below(u64::MAX) {
                Some((seq, end)) => Some((seq, end, true)),
                None => {
                    if self.new_data_available() {
                        let seq = self.board.snd_nxt();
                        let end = match self.cfg.data_limit {
                            Some(limit) => (seq + mss).min(limit),
                            None => seq + mss,
                        };
                        Some((seq, end, false))
                    } else {
                        None
                    }
                }
            };
            let Some((seq, end, is_rtx)) = candidate else {
                // Source exhausted: future rate samples are app-limited.
                self.rate.set_app_limited(self.board.in_flight());
                return;
            };
            if !self.window_permits() {
                return;
            }
            self.force_rtx = false;
            self.send_segment(now, seq, end, is_rtx, ctx);
        }
    }

    /// Feed the flight recorder after a CCA-visible state change: window /
    /// RTT / pacing samples (deduplicated inside the recorder) and the
    /// CCA's operating-phase label.
    fn record_state(&mut self, now: SimTime) {
        if let Some(rec) = &mut self.recorder {
            rec.on_ack(
                now,
                self.cca.cwnd(),
                self.cca.ssthresh(),
                self.rtt.srtt(),
                self.cca.pacing_rate().map_or(0, |r| r.as_bps()),
            );
            rec.on_phase(now, self.cca.phase());
        }
    }

    // ----- ACK processing -----------------------------------------------

    #[allow(clippy::too_many_arguments)] // one per AckSample input; a params struct would just rename it
    fn build_sample(
        &self,
        now: SimTime,
        rtt_sample: Option<SimDuration>,
        newly_acked: u64,
        newly_lost: u64,
        prior_delivered: u64,
        prior_in_flight: u64,
        delivery_rate: Option<ccsim_sim::Bandwidth>,
        interval: SimDuration,
        is_app_limited: bool,
        cumulative_ack: u64,
    ) -> AckSample {
        AckSample {
            now,
            rtt: rtt_sample,
            srtt: self.rtt.srtt(),
            min_rtt: self.rtt.min_rtt(),
            newly_acked,
            newly_lost,
            delivered: self.rate.delivered(),
            prior_delivered,
            prior_in_flight,
            in_flight: self.board.in_flight(),
            delivery_rate,
            interval,
            is_app_limited,
            in_recovery: self.state == CaState::Recovery,
            mss: self.cfg.mss,
            cumulative_ack,
        }
    }

    fn on_ack_packet(&mut self, now: SimTime, p: Packet, ctx: &mut Ctx<'_, Msg>) {
        self.stats.acks_received += 1;
        let prior_in_flight = self.board.in_flight();
        let res = self.board.process_ack(now, p.ack_seq, &p.sack);
        if let Some(rtt) = res.rtt_sample {
            self.rtt.on_sample(rtt);
        }
        let newly_lost = self.board.detect_losses();
        self.stats.segments_marked_lost += newly_lost / self.cfg.mss as u64;

        // Delivery-rate sample.
        let (delivery_rate, interval, prior_delivered, app_limited) =
            match (res.newly_acked > 0, res.latest_tx) {
                (true, Some(tx)) => {
                    let rs = self.rate.on_ack(now, res.newly_acked, &tx);
                    (
                        rs.delivery_rate,
                        rs.interval,
                        rs.prior_delivered,
                        rs.is_app_limited,
                    )
                }
                _ => (None, SimDuration::ZERO, self.rate.delivered(), false),
            };
        self.stats.delivered_bytes = self.rate.delivered();

        let mut sample = self.build_sample(
            now,
            res.rtt_sample,
            res.newly_acked,
            newly_lost,
            prior_delivered,
            prior_in_flight,
            delivery_rate,
            interval,
            app_limited,
            p.ack_seq,
        );

        // Episode exit: the recovery point has been cumulatively ACKed.
        if self.state != CaState::Open && p.ack_seq >= self.recovery_point {
            let after_rto = self.state == CaState::Loss;
            self.state = CaState::Open;
            sample.in_recovery = false;
            self.cca.on_exit_recovery(&sample, after_rto);
        }

        // Episode entry: lost data while Open (Linux `tcp_time_to_recover`).
        if self.state == CaState::Open && self.board.lost_bytes() > 0 {
            self.state = CaState::Recovery;
            self.recovery_point = self.board.snd_nxt();
            self.prr_delivered = 0;
            self.prr_out = 0;
            self.prr_recover_fs = (self.board.snd_nxt() - self.board.snd_una()).max(1);
            self.force_rtx = true;
            self.stats.fast_recoveries += 1;
            self.stats.congestion_event_log.push(now);
            if let Some(m) = &self.metrics {
                m.fast_recoveries.inc();
            }
            if let Some(rec) = &mut self.recorder {
                rec.on_congestion(now, CongestionKind::FastRecovery);
            }
            sample.in_recovery = true;
            self.cca.on_enter_recovery(&sample);
            self.prr_ssthresh = self.cca.ssthresh();
        }

        // ECE echo: one reduction per window of data while Open (RFC 3168
        // §6.1.2). Loss wins — if this ACK also entered recovery the CCA
        // has already applied its decrease.
        if self.cfg.ecn
            && p.has_ece()
            && self.state == CaState::Open
            && p.ack_seq >= self.ecn_reduce_until
        {
            self.ecn_reduce_until = self.board.snd_nxt();
            self.ecn_cwr_pending = true;
            self.stats.ecn_reductions += 1;
            self.stats.congestion_event_log.push(now);
            if let Some(rec) = &mut self.recorder {
                rec.on_congestion(now, CongestionKind::EcnReduce);
            }
            self.cca.on_ecn(&sample);
        }

        if self.state == CaState::Recovery {
            self.prr_delivered += res.newly_acked;
            self.last_newly_acked = res.newly_acked;
        }

        sample.in_recovery = self.state == CaState::Recovery;
        sample.in_flight = self.board.in_flight();
        self.cca.on_ack(&sample);

        if let Some(trace) = &mut self.cwnd_trace {
            trace.push((now, self.cca.cwnd()));
        }
        self.record_state(now);

        // RTO maintenance: while data is outstanding the deadline moves one
        // full rto() past the latest ACK (cancel-and-rearm, Linux
        // `sk_reset_timer` style); a drained flight disarms the timer
        // outright so no dead event stays parked in the queue.
        if self.board.is_empty() {
            self.disarm_rto(ctx);
        } else {
            self.rearm_rto(ctx);
        }

        self.try_transmit(now, ctx);
    }

    // ----- timers ---------------------------------------------------------

    fn on_rto_fire(&mut self, now: SimTime, gen: u64, ctx: &mut Ctx<'_, Msg>) {
        if gen != self.rto_gen {
            // Stale firing: the timer was cancelled or rearmed within the
            // same-nanosecond dispatch batch this event was extracted in,
            // too late for `cancel` to suppress it.
            return;
        }
        self.rto_timer = CancelToken::default();
        if self.board.is_empty() {
            return; // nothing outstanding
        }
        // Genuine timeout: a live-token firing is at the armed deadline by
        // construction (rearms always cancel), so no deadline re-check.
        self.stats.rtos += 1;
        self.stats.congestion_event_log.push(now);
        if let Some(m) = &self.metrics {
            m.rtos.inc();
        }
        if let Some(rec) = &mut self.recorder {
            rec.on_congestion(now, CongestionKind::Rto);
        }
        self.state = CaState::Loss;
        self.recovery_point = self.board.snd_nxt();
        let newly_lost = self.board.mark_all_lost();
        self.stats.segments_marked_lost += newly_lost / self.cfg.mss as u64;
        self.rtt.backoff();
        let sample = self.build_sample(
            now,
            None,
            0,
            newly_lost,
            self.rate.delivered(),
            self.board.in_flight(),
            None,
            SimDuration::ZERO,
            false,
            self.board.snd_una(),
        );
        self.cca.on_rto(&sample);
        self.record_state(now);
        // Pacing must not gate the timeout retransmission.
        self.pacing_next = now;
        self.rearm_rto(ctx);
        self.try_transmit(now, ctx);
    }

    fn on_start(&mut self, now: SimTime, ctx: &mut Ctx<'_, Msg>) {
        if self.started {
            return;
        }
        self.started = true;
        self.pacing_next = now;
        self.try_transmit(now, ctx);
    }
}

impl Component<Msg> for Sender {
    fn on_event(&mut self, now: SimTime, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        match msg {
            Msg::Packet(p) => {
                debug_assert!(!p.is_data(), "sender received a data packet");
                self.on_ack_packet(now, p, ctx);
            }
            Msg::Timer(t) => match t.kind() {
                TIMER_START => self.on_start(now, ctx),
                TIMER_RTO => self.on_rto_fire(now, t.generation(), ctx),
                TIMER_PACE => {
                    self.pace_pending = false;
                    if self.started {
                        self.try_transmit(now, ctx);
                    }
                }
                other => unreachable!("unknown sender timer kind {other}"),
            },
        }
        self.sync_slab();
    }
}
