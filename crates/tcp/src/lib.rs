//! # ccsim-tcp — the TCP endpoint model
//!
//! A from-scratch TCP sender/receiver pair faithful to the transport
//! behavior that drives the paper's findings:
//!
//! * [`scoreboard`] — SACK scoreboard with RFC 6675 loss detection, pipe
//!   accounting, and Karn-filtered RTT sampling.
//! * [`rtt`] — RFC 6298 SRTT/RTTVAR/RTO with exponential backoff.
//! * [`rate`] — delivery-rate estimation after Linux `tcp_rate.c` (feeds
//!   BBR's bandwidth filter).
//! * [`cc`] — the [`CongestionControl`] trait (Linux `tcp_congestion_ops`
//!   analog). Concrete algorithms live in `ccsim-cca`.
//! * [`sender`] — the sender endpoint: transmission loop, fast recovery
//!   with PRR (RFC 6937), RTO handling, pacing, congestion-event logging.
//! * [`receiver`] — the receiver endpoint: reassembly, delayed ACKs,
//!   SACK generation, and the netem-equivalent base-RTT delay.

pub mod cc;
pub mod endpoint_stats;
pub mod rate;
pub mod receiver;
pub mod rtt;
pub mod scoreboard;
pub mod sender;
pub mod slab;

pub use cc::{AckSample, CongestionControl, FixedWindow, INITIAL_CWND_SEGMENTS, MIN_CWND_SEGMENTS};
pub use endpoint_stats::{ReceiverStats, SenderStats};
pub use rate::{RateEstimator, RateSample, TxRecord};
pub use receiver::Receiver;
pub use rtt::RttEstimator;
pub use scoreboard::{AckResult, Scoreboard, Segment};
pub use sender::{start_msg, CaState, Sender, SenderConfig, SenderMetrics};
pub use slab::{FlowKey, FlowSlab, HotRow, SharedFlowSlab};
