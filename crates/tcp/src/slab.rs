//! Dense per-flow hot-state storage: a generational slab with
//! struct-of-arrays columns.
//!
//! At megascale (10⁶ flows) the runner's sampling paths dominated by
//! pointer-chasing: every slice boundary downcast each flow's boxed
//! component out of the simulator arena just to read four or five words
//! (cwnd, in-flight, srtt, delivered). This module keeps those
//! ACK-frequency fields in dense `u32`-indexed columns — one cache line
//! serves eight flows instead of one — mirroring the slab-based
//! per-connection recovery layout of s2n-quic.
//!
//! Ownership model: the slab is *derived* state. Each [`crate::sender::Sender`]
//! and [`crate::receiver::Receiver`] owns its authoritative fields exactly as
//! before (so unit tests, checkpoints, and the event pipeline are untouched)
//! and writes its row back after every event it handles. Readers — the
//! runner's timeline sampler, the convergence tracker, the memory profiler —
//! then scan columns instead of downcasting components. Because rows are
//! only written at event boundaries and only read between events, a slab
//! scan observes exactly the values a component walk would, and attaching
//! the slab cannot perturb scheduling: outcome digests are byte-identical
//! with the slab on or off (proven by the differential test in
//! `tests/integration_megascale.rs`).
//!
//! Slots are recycled through a free list with a generation stamp per slot,
//! so a stale [`FlowKey`] held across remove/insert can never alias the new
//! occupant (property-tested in `tests/proptest_slab.rs`). Long-lived bulk
//! flows never churn today, but ROADMAP item 5 (flow churn) will.

use ccsim_sim::SimTime;
use std::cell::RefCell;
use std::rc::Rc;

/// A generational handle into a [`FlowSlab`]. Stale keys (their slot was
/// removed, and possibly reused) fail validation instead of aliasing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    slot: u32,
    gen: u32,
}

impl FlowKey {
    /// The dense slot index (= flow id under the builder's insertion
    /// order; stable for the flow's lifetime).
    pub fn slot(&self) -> u32 {
        self.slot
    }
}

/// One flow's hot row, as read from / written to the columns.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HotRow {
    /// Congestion window, bytes.
    pub cwnd_bytes: u64,
    /// Bytes in flight.
    pub inflight_bytes: u64,
    /// Smoothed RTT, nanoseconds (0 when unmeasured).
    pub srtt_nanos: u64,
    /// Earliest instant the next segment may leave (pacing gate).
    pub pacing_next: SimTime,
    /// Cumulative retransmissions.
    pub retransmits: u64,
    /// Cumulative in-order bytes delivered at the receiver.
    pub delivered_bytes: u64,
}

/// Struct-of-arrays slab of per-flow hot state. See the module docs for
/// the ownership model.
#[derive(Debug, Default)]
pub struct FlowSlab {
    // One entry per slot, parallel arrays. `gens` is bumped on every
    // remove so freed keys go stale; `live` distinguishes occupancy.
    gens: Vec<u32>,
    live: Vec<bool>,
    free: Vec<u32>,
    live_count: usize,
    // Hot columns, indexed by slot.
    cwnd: Vec<u64>,
    inflight: Vec<u64>,
    srtt_nanos: Vec<u64>,
    pacing_next: Vec<SimTime>,
    retransmits: Vec<u64>,
    delivered: Vec<u64>,
}

impl FlowSlab {
    /// An empty slab.
    pub fn new() -> FlowSlab {
        FlowSlab::default()
    }

    /// An empty slab with room for `n` flows before reallocating.
    pub fn with_capacity(n: usize) -> FlowSlab {
        FlowSlab {
            gens: Vec::with_capacity(n),
            live: Vec::with_capacity(n),
            free: Vec::new(),
            live_count: 0,
            cwnd: Vec::with_capacity(n),
            inflight: Vec::with_capacity(n),
            srtt_nanos: Vec::with_capacity(n),
            pacing_next: Vec::with_capacity(n),
            retransmits: Vec::with_capacity(n),
            delivered: Vec::with_capacity(n),
        }
    }

    /// Insert a row, reusing a freed slot when one exists. The returned
    /// key is the only valid handle to the new occupant.
    pub fn insert(&mut self, row: HotRow) -> FlowKey {
        self.live_count += 1;
        if let Some(slot) = self.free.pop() {
            let i = slot as usize;
            debug_assert!(!self.live[i], "free list slot still live");
            self.live[i] = true;
            self.cwnd[i] = row.cwnd_bytes;
            self.inflight[i] = row.inflight_bytes;
            self.srtt_nanos[i] = row.srtt_nanos;
            self.pacing_next[i] = row.pacing_next;
            self.retransmits[i] = row.retransmits;
            self.delivered[i] = row.delivered_bytes;
            return FlowKey {
                slot,
                gen: self.gens[i],
            };
        }
        let slot = u32::try_from(self.gens.len()).expect("slab capped at u32 slots");
        self.gens.push(0);
        self.live.push(true);
        self.cwnd.push(row.cwnd_bytes);
        self.inflight.push(row.inflight_bytes);
        self.srtt_nanos.push(row.srtt_nanos);
        self.pacing_next.push(row.pacing_next);
        self.retransmits.push(row.retransmits);
        self.delivered.push(row.delivered_bytes);
        FlowKey { slot, gen: 0 }
    }

    /// Remove the row behind `key`. Returns `false` (and changes nothing)
    /// when the key is stale or was never issued.
    pub fn remove(&mut self, key: FlowKey) -> bool {
        if !self.contains(key) {
            return false;
        }
        let i = key.slot as usize;
        self.live[i] = false;
        // Go stale *now*, not at reuse: a dangling key must not read the
        // freed slot either.
        self.gens[i] = self.gens[i].wrapping_add(1);
        self.free.push(key.slot);
        self.live_count -= 1;
        true
    }

    /// Whether `key` addresses a live row.
    pub fn contains(&self, key: FlowKey) -> bool {
        let i = key.slot as usize;
        i < self.gens.len() && self.live[i] && self.gens[i] == key.gen
    }

    /// Live rows.
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// True when no rows are live.
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// Slots ever allocated (live + free).
    pub fn capacity(&self) -> usize {
        self.gens.len()
    }

    /// Read the full row behind `key`; `None` for stale keys.
    pub fn get(&self, key: FlowKey) -> Option<HotRow> {
        if !self.contains(key) {
            return None;
        }
        let i = key.slot as usize;
        Some(HotRow {
            cwnd_bytes: self.cwnd[i],
            inflight_bytes: self.inflight[i],
            srtt_nanos: self.srtt_nanos[i],
            pacing_next: self.pacing_next[i],
            retransmits: self.retransmits[i],
            delivered_bytes: self.delivered[i],
        })
    }

    /// Overwrite the sender-owned columns of `key`'s row (everything but
    /// `delivered_bytes`). No-op on stale keys.
    pub fn write_sender(
        &mut self,
        key: FlowKey,
        cwnd_bytes: u64,
        inflight_bytes: u64,
        srtt_nanos: u64,
        pacing_next: SimTime,
        retransmits: u64,
    ) {
        if !self.contains(key) {
            return;
        }
        let i = key.slot as usize;
        self.cwnd[i] = cwnd_bytes;
        self.inflight[i] = inflight_bytes;
        self.srtt_nanos[i] = srtt_nanos;
        self.pacing_next[i] = pacing_next;
        self.retransmits[i] = retransmits;
    }

    /// Overwrite the receiver-owned column (`delivered_bytes`). No-op on
    /// stale keys.
    pub fn write_delivered(&mut self, key: FlowKey, delivered_bytes: u64) {
        if !self.contains(key) {
            return;
        }
        self.delivered[key.slot as usize] = delivered_bytes;
    }

    /// The `delivered_bytes` column over slots `0..n` (all live in the
    /// builder's dense layout). The megascale replacement for walking
    /// every receiver component per slice.
    pub fn delivered_prefix(&self, n: usize) -> &[u64] {
        &self.delivered[..n]
    }

    /// Dense per-slot readout of the sender columns for slot `i`,
    /// liveness unchecked (the runner iterates `0..flow_count` where
    /// every slot is live by construction).
    pub fn sender_row(&self, i: usize) -> (u64, u64, u64, u64) {
        (
            self.cwnd[i],
            self.inflight[i],
            self.srtt_nanos[i],
            self.retransmits[i],
        )
    }

    /// Resident bytes of all columns and bookkeeping (for the profiler's
    /// `tcp/slab` memory account).
    pub fn memory_bytes(&self) -> u64 {
        use std::mem::size_of;
        (size_of::<Self>()
            + self.gens.capacity() * size_of::<u32>()
            + self.live.capacity()
            + self.free.capacity() * size_of::<u32>()
            + self.cwnd.capacity() * size_of::<u64>()
            + self.inflight.capacity() * size_of::<u64>()
            + self.srtt_nanos.capacity() * size_of::<u64>()
            + self.pacing_next.capacity() * size_of::<SimTime>()
            + self.retransmits.capacity() * size_of::<u64>()
            + self.delivered.capacity() * size_of::<u64>()) as u64
    }
}

/// The slab as shared by every endpoint of one simulation. Simulations are
/// single-threaded (parallelism lives at the campaign layer, one run per
/// worker), so `Rc<RefCell<..>>` is sufficient and keeps the per-event
/// write-back to a refcount-free borrow.
pub type SharedFlowSlab = Rc<RefCell<FlowSlab>>;

/// A fresh shared slab with room for `n` flows.
pub fn shared_with_capacity(n: usize) -> SharedFlowSlab {
    Rc::new(RefCell::new(FlowSlab::with_capacity(n)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(cwnd: u64) -> HotRow {
        HotRow {
            cwnd_bytes: cwnd,
            ..HotRow::default()
        }
    }

    #[test]
    fn insert_read_write_round_trip() {
        let mut slab = FlowSlab::new();
        let k = slab.insert(row(14600));
        assert_eq!(k.slot(), 0);
        assert_eq!(slab.get(k).unwrap().cwnd_bytes, 14600);
        slab.write_sender(k, 29200, 7300, 20_000_000, SimTime::from_millis(1), 3);
        slab.write_delivered(k, 1_000_000);
        let r = slab.get(k).unwrap();
        assert_eq!(r.cwnd_bytes, 29200);
        assert_eq!(r.inflight_bytes, 7300);
        assert_eq!(r.srtt_nanos, 20_000_000);
        assert_eq!(r.pacing_next, SimTime::from_millis(1));
        assert_eq!(r.retransmits, 3);
        assert_eq!(r.delivered_bytes, 1_000_000);
    }

    #[test]
    fn dense_insertion_order_matches_flow_ids() {
        let mut slab = FlowSlab::with_capacity(4);
        for i in 0..4u64 {
            let k = slab.insert(row(i));
            assert_eq!(k.slot() as u64, i);
        }
        assert_eq!(slab.len(), 4);
        assert_eq!(slab.capacity(), 4);
        assert_eq!(slab.sender_row(2).0, 2);
    }

    #[test]
    fn removed_keys_go_stale_and_slots_recycle() {
        let mut slab = FlowSlab::new();
        let a = slab.insert(row(1));
        let b = slab.insert(row(2));
        assert!(slab.remove(a));
        assert!(!slab.remove(a), "double remove refused");
        assert!(!slab.contains(a));
        assert_eq!(slab.get(a), None);
        // Writes through the stale key must not touch the freed slot.
        slab.write_sender(a, 999, 0, 0, SimTime::ZERO, 0);
        let c = slab.insert(row(3));
        assert_eq!(c.slot(), a.slot(), "slot recycled through the free list");
        assert_ne!(c, a, "but under a fresh generation");
        assert_eq!(slab.get(c).unwrap().cwnd_bytes, 3);
        assert!(!slab.contains(a), "old key stays dead after reuse");
        assert_eq!(slab.get(b).unwrap().cwnd_bytes, 2);
        assert_eq!(slab.len(), 2);
    }

    #[test]
    fn delivered_prefix_reads_the_dense_column() {
        let mut slab = FlowSlab::new();
        let keys: Vec<FlowKey> = (0..3).map(|_| slab.insert(HotRow::default())).collect();
        slab.write_delivered(keys[1], 500);
        assert_eq!(slab.delivered_prefix(3), &[0, 500, 0]);
    }

    #[test]
    fn memory_accounting_tracks_columns() {
        let slab = FlowSlab::with_capacity(1000);
        // 6 u64-ish columns + u32 gens + bool live ≈ 53 B/slot.
        let b = slab.memory_bytes();
        assert!(b >= 1000 * 53, "{b}");
        assert!(b < 1000 * 80, "{b}");
    }
}
