//! Endpoint-level integration tests: a sender/receiver pair over a real
//! (simulated) link, exercising slow start, fast retransmit, RTO backoff,
//! and ACK clocking without any experiment-harness machinery.

use ccsim_net::link::{Link, NextHop};
use ccsim_net::msg::Msg;
use ccsim_net::packet::{FlowId, Packet, PacketKind, SackBlocks};
use ccsim_sim::{Bandwidth, Component, ComponentId, Ctx, SimDuration, SimTime, Simulator};
use ccsim_tcp::cc::{AckSample, CongestionControl, FixedWindow};
use ccsim_tcp::receiver::Receiver;
use ccsim_tcp::sender::{start_msg, CaState, Sender, SenderConfig};

const MSS: u32 = 1000;

/// Minimal AIMD congestion response for recovery tests: FixedWindow never
/// reduces its window, so a burst-loss scenario RTO-thrashes forever with
/// it — which is correct protocol behavior, but not what these tests probe.
struct MiniAimd {
    cwnd: u64,
    ssthresh: u64,
}

impl MiniAimd {
    fn new(cwnd_segments: u64) -> Self {
        MiniAimd {
            cwnd: cwnd_segments * MSS as u64,
            ssthresh: u64::MAX,
        }
    }
}

impl CongestionControl for MiniAimd {
    fn name(&self) -> &'static str {
        "mini-aimd"
    }
    fn cwnd(&self) -> u64 {
        self.cwnd
    }
    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }
    fn pacing_rate(&self) -> Option<ccsim_sim::Bandwidth> {
        None
    }
    fn on_ack(&mut self, s: &AckSample) {
        if !s.in_recovery {
            self.cwnd += s.newly_acked.min(MSS as u64);
        }
    }
    fn on_enter_recovery(&mut self, _s: &AckSample) {
        self.ssthresh = (self.cwnd / 2).max(2 * MSS as u64);
    }
    fn on_exit_recovery(&mut self, _s: &AckSample, after_rto: bool) {
        if !after_rto {
            self.cwnd = self.ssthresh;
        }
    }
    fn on_rto(&mut self, _s: &AckSample) {
        self.ssthresh = (self.cwnd / 2).max(2 * MSS as u64);
        self.cwnd = MSS as u64;
    }
    fn save_state(&self, w: &mut ccsim_sim::SnapWriter) {
        w.u64(self.cwnd);
        w.u64(self.ssthresh);
    }
    fn load_state(
        &mut self,
        r: &mut ccsim_sim::SnapReader<'_>,
    ) -> Result<(), ccsim_sim::SnapError> {
        self.cwnd = r.u64()?;
        self.ssthresh = r.u64()?;
        Ok(())
    }
}

/// Wire one flow: sender -> link -> receiver; ACKs return after `rtt`.
/// Returns (sim, sender_id, receiver_id, link_id).
fn one_flow(
    rate: Bandwidth,
    buffer: u64,
    rtt_ms: u64,
    cwnd_segments: u64,
    data_limit: Option<u64>,
) -> (Simulator<Msg>, ComponentId, ComponentId, ComponentId) {
    one_flow_with(
        rate,
        buffer,
        rtt_ms,
        Box::new(FixedWindow::new(cwnd_segments * MSS as u64)),
        data_limit,
    )
}

/// Like [`one_flow`] with an explicit CCA instance.
fn one_flow_with(
    rate: Bandwidth,
    buffer: u64,
    rtt_ms: u64,
    cca: Box<dyn CongestionControl>,
    data_limit: Option<u64>,
) -> (Simulator<Msg>, ComponentId, ComponentId, ComponentId) {
    let mut sim = Simulator::new(0);
    let link = sim.add_component(Link::new(
        rate,
        SimDuration::ZERO,
        buffer,
        NextHop::ToPacketDst,
    ));
    let sender_id = ComponentId::from_raw(1);
    let receiver_id = ComponentId::from_raw(2);
    let cfg = SenderConfig {
        flow: FlowId(0),
        mss: MSS,
        receiver: receiver_id,
        first_hop: link,
        data_limit,
        ecn: false,
    };
    let s = sim.add_component(Sender::new(cfg, cca));
    assert_eq!(s, sender_id);
    let r = sim.add_component(Receiver::new(
        FlowId(0),
        sender_id,
        SimDuration::from_millis(rtt_ms),
        MSS,
    ));
    assert_eq!(r, receiver_id);
    sim.schedule(SimTime::ZERO, sender_id, start_msg());
    (sim, sender_id, receiver_id, link)
}

#[test]
fn bounded_transfer_completes_exactly() {
    // 100 segments over a clean link.
    let (mut sim, sender, receiver, _) = one_flow(
        Bandwidth::from_mbps(10),
        u64::MAX,
        20,
        10,
        Some(100 * MSS as u64),
    );
    sim.run();
    let rx = sim.component::<Receiver>(receiver);
    assert_eq!(rx.delivered_bytes(), 100 * MSS as u64);
    assert_eq!(rx.ooo_ranges(), 0);
    let st = sim.component::<Sender>(sender).stats();
    assert_eq!(st.data_pkts_sent, 100);
    assert_eq!(st.retransmits, 0);
    assert_eq!(st.rtos, 0);
    assert_eq!(sim.component::<Sender>(sender).in_flight(), 0);
}

#[test]
fn throughput_is_window_limited_when_window_is_small() {
    // cwnd = 4 segments, RTT 100 ms => ~40 segs/sec = 40 KB/s regardless
    // of the 10 Mbps link.
    let (mut sim, _, receiver, _) = one_flow(Bandwidth::from_mbps(10), u64::MAX, 100, 4, None);
    sim.run_until(SimTime::from_secs(10));
    let delivered = sim.component::<Receiver>(receiver).delivered_bytes();
    let rate = delivered as f64 / 10.0;
    let expected = 4.0 * MSS as f64 / 0.1;
    assert!(
        (rate - expected).abs() / expected < 0.15,
        "rate {rate} vs window-limited {expected}"
    );
}

#[test]
fn fast_retransmit_repairs_single_drop_without_rto() {
    // Buffer sized to drop a few burst packets, with an AIMD responder so
    // the window adapts: recovery must complete via SACK fast retransmit.
    // Infinite source: there is always fresh data whose delivery provides
    // the loss-detection evidence, so no repair ever needs an RTO. (With a
    // bounded source, a loss of the final segments is a genuine tail loss
    // that only an RTO can repair — we model pre-TLP stacks.)
    let (mut sim, sender, receiver, link) = one_flow_with(
        Bandwidth::from_mbps(5),
        12 * 1500,
        20,
        Box::new(MiniAimd::new(16)),
        None,
    );
    sim.run_until(SimTime::from_secs(30));
    let st = sim.component::<Sender>(sender).stats();
    let drops = sim.component::<Link>(link).stats().dropped_pkts;
    assert!(drops > 0, "scenario must induce drops");
    assert!(st.retransmits > 0, "drops must trigger retransmissions");
    // The link must stay productive: ≥80% of 5 Mbps over 30 s.
    let delivered = sim.component::<Receiver>(receiver).delivered_bytes();
    assert!(
        delivered as f64 > 0.8 * 5e6 / 8.0 * 30.0,
        "delivered only {delivered} bytes"
    );
    // Fast recovery, not timeouts, does all the repair.
    assert!(
        st.fast_recoveries > 0,
        "expected SACK-based recovery episodes"
    );
    assert_eq!(
        st.rtos, 0,
        "no RTO should be needed with an infinite source"
    );
}

/// A blackhole that swallows every packet (for RTO tests).
struct Blackhole;

impl Component<Msg> for Blackhole {
    fn on_event(&mut self, _now: SimTime, _msg: Msg, _ctx: &mut Ctx<'_, Msg>) {}
}

#[test]
fn rto_fires_and_backs_off_through_a_blackhole() {
    let mut sim = Simulator::new(0);
    let hole = sim.add_component(Blackhole);
    let sender_id = ComponentId::from_raw(1);
    let cfg = SenderConfig {
        flow: FlowId(0),
        mss: MSS,
        receiver: hole,
        first_hop: hole,
        data_limit: None,
        ecn: false,
    };
    let s = sim.add_component(Sender::new(cfg, Box::new(FixedWindow::new(10_000))));
    assert_eq!(s, sender_id);
    sim.schedule(SimTime::ZERO, sender_id, start_msg());
    sim.run_until(SimTime::from_secs(30));
    let snd = sim.component::<Sender>(sender_id);
    // Initial RTO is 1 s; doubling thereafter: fires at ~1, 3, 7, 15 s.
    assert!(snd.stats().rtos >= 4, "rtos = {}", snd.stats().rtos);
    assert!(
        snd.stats().rtos <= 6,
        "rtos = {} (backoff broken?)",
        snd.stats().rtos
    );
    assert_eq!(snd.ca_state(), CaState::Loss);
    // Each timeout retransmits the head segment.
    assert!(snd.stats().retransmits >= snd.stats().rtos - 1);
}

#[test]
fn recovery_after_total_blackout_resumes_delivery() {
    // Normal link, but the buffer is so small that most of the initial
    // window burst is wiped out; the AIMD responder collapses its window
    // and the transfer must still complete.
    let (mut sim, sender, receiver, _) = one_flow_with(
        Bandwidth::from_kbps(500),
        2 * 1500,
        20,
        Box::new(MiniAimd::new(32)),
        Some(60 * MSS as u64),
    );
    sim.run_until(SimTime::from_secs(120));
    assert_eq!(
        sim.component::<Receiver>(receiver).delivered_bytes(),
        60 * MSS as u64
    );
    let st = sim.component::<Sender>(sender).stats();
    assert!(st.retransmits > 0);
}

#[test]
fn delayed_acks_halve_ack_volume_on_clean_paths() {
    let (mut sim, sender, receiver, _) = one_flow(
        Bandwidth::from_mbps(10),
        u64::MAX,
        20,
        20,
        Some(1000 * MSS as u64),
    );
    sim.run();
    let sent = sim.component::<Sender>(sender).stats().data_pkts_sent;
    let acks = sim.component::<Receiver>(receiver).stats().acks_sent;
    assert_eq!(sent, 1000);
    // Delayed ACKs: about one ACK per two segments (plus timer stragglers).
    assert!(acks >= 500, "acks = {acks}");
    assert!(acks < 650, "acks = {acks}: delayed ACKing not effective");
}

/// Fixed window plus a fixed pacing rate: lets a test drain the flight
/// entirely between transmissions (the pacing gate blocks new data while
/// zero bytes are outstanding), which no pure window CCA can do.
struct PacedWindow {
    cwnd: u64,
    rate: Bandwidth,
}

impl CongestionControl for PacedWindow {
    fn name(&self) -> &'static str {
        "paced-window"
    }
    fn cwnd(&self) -> u64 {
        self.cwnd
    }
    fn ssthresh(&self) -> u64 {
        u64::MAX
    }
    fn pacing_rate(&self) -> Option<Bandwidth> {
        Some(self.rate)
    }
    fn on_ack(&mut self, _s: &AckSample) {}
    fn on_enter_recovery(&mut self, _s: &AckSample) {}
    fn on_exit_recovery(&mut self, _s: &AckSample, _after_rto: bool) {}
    fn on_rto(&mut self, _s: &AckSample) {}
    fn save_state(&self, w: &mut ccsim_sim::SnapWriter) {
        w.u64(self.cwnd);
    }
    fn load_state(
        &mut self,
        r: &mut ccsim_sim::SnapReader<'_>,
    ) -> Result<(), ccsim_sim::SnapError> {
        self.cwnd = r.u64()?;
        Ok(())
    }
}

/// Forwards packets to their destination after a fixed one-way delay,
/// except the *first* transmission of the data segment starting at
/// `drop_seq`, which it swallows (retransmissions pass).
struct DropFirstTx {
    drop_seq: u64,
    delay: SimDuration,
}

impl Component<Msg> for DropFirstTx {
    fn on_event(&mut self, _now: SimTime, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        if let Msg::Packet(p) = msg {
            if p.kind == PacketKind::Data && p.seq == self.drop_seq && !p.retransmit {
                return;
            }
            ctx.schedule_in(self.delay, p.dst, Msg::Packet(p));
        }
    }
}

/// Regression test for the flight-drain stall bug fixed by cancellation
/// tokens. A paced flow drains its flight (segment 1 is ACKed long before
/// pacing releases segment 2), which disarms the RTO. Segment 2 — the last
/// of the transfer — is then lost. The fix arms a fresh RTO when segment 2
/// is sent, so the loss is repaired in well under a second.
///
/// Under the old lazy-cancellation scheme this scenario stalled *forever*:
/// the drain set `rto_deadline = MAX` but left the initial 1 s timer event
/// parked in the queue (`rto_pending` still true), so the segment-2 send at
/// t ≈ 300 ms armed nothing. The parked event then fired as a no-op
/// (deadline was MAX), the queue went empty, and the flow hung with one
/// segment delivered and zero timeouts.
#[test]
fn rto_rearms_after_flight_drain_so_tail_loss_cannot_stall() {
    let mut sim = Simulator::new(0);
    // One-way 5 ms; drop the first transmission of the second segment.
    let hop = sim.add_component(DropFirstTx {
        drop_seq: MSS as u64,
        delay: SimDuration::from_millis(5),
    });
    let sender_id = ComponentId::from_raw(1);
    let receiver_id = ComponentId::from_raw(2);
    let cfg = SenderConfig {
        flow: FlowId(0),
        mss: MSS,
        receiver: receiver_id,
        first_hop: hop,
        data_limit: Some(2 * MSS as u64),
        ecn: false,
    };
    // ~28 kbps pacing => ~300 ms between 1052-byte wire segments: segment 1
    // is ACKed (flight drains, RTO disarmed) long before segment 2 leaves.
    let s = sim.add_component(Sender::new(
        cfg,
        Box::new(PacedWindow {
            cwnd: 10 * MSS as u64,
            rate: Bandwidth::from_bps(28_000),
        }),
    ));
    assert_eq!(s, sender_id);
    let r = sim.add_component(Receiver::new(
        FlowId(0),
        sender_id,
        SimDuration::from_millis(5),
        MSS,
    ));
    assert_eq!(r, receiver_id);
    sim.schedule(SimTime::ZERO, sender_id, start_msg());
    sim.run();
    let snd = sim.component::<Sender>(sender_id);
    let rx = sim.component::<Receiver>(receiver_id);
    assert_eq!(
        rx.delivered_bytes(),
        2 * MSS as u64,
        "tail loss after a flight drain must be repaired, not stall"
    );
    assert_eq!(snd.stats().rtos, 1, "exactly one timeout repairs the loss");
    assert_eq!(snd.stats().retransmits, 1);
    assert_eq!(snd.in_flight(), 0);
    // The RTO must fire from the deadline armed at the segment-2 send
    // (~500 ms), not from the stale initial-RTO event parked at t = 1 s.
    assert!(
        sim.now() < SimTime::from_secs(1),
        "transfer finished only at {} — timer fired late",
        sim.now()
    );
}

/// A backed-off RTO that is rearmed mid-recovery must fire exactly once, at
/// the rearmed deadline — neither early (from the superseded pre-ACK timer)
/// nor twice (superseded plus rearmed both dispatching).
///
/// Timeline (all exact, the sim is deterministic): two segments enter a
/// blackhole at t = 0; the initial RTO fires at 1 s and backs off to 2 s;
/// a straggler ACK for the head segment arrives at 1.5 s. Karn's rule
/// takes no RTT sample from the retransmitted head, so the backoff
/// survives and the rearm lands at 1.5 + 2 = 3.5 s. The superseded timer
/// sat at 3.0 s; firing there would be early, firing at both would double.
#[test]
fn backed_off_rto_rearmed_mid_recovery_fires_once_at_new_deadline() {
    let mut sim = Simulator::new(0);
    let hole = sim.add_component(Blackhole);
    let sender_id = ComponentId::from_raw(1);
    let cfg = SenderConfig {
        flow: FlowId(0),
        mss: MSS,
        receiver: hole,
        first_hop: hole,
        data_limit: Some(2 * MSS as u64),
        ecn: false,
    };
    let s = sim.add_component(Sender::new(cfg, Box::new(FixedWindow::new(2 * MSS as u64))));
    assert_eq!(s, sender_id);
    sim.schedule(SimTime::ZERO, sender_id, start_msg());
    // Straggler ACK covering the head segment, injected mid-backoff.
    let ack_at = SimTime::from_millis(1500);
    sim.schedule(
        ack_at,
        sender_id,
        Msg::Packet(Packet::ack(
            FlowId(0),
            sender_id,
            MSS as u64,
            SackBlocks::EMPTY,
            ack_at,
        )),
    );
    sim.run_until(SimTime::from_secs(4));
    let snd = sim.component::<Sender>(sender_id);
    let st = snd.stats();
    assert_eq!(st.rtos, 2, "initial fire plus exactly one rearmed fire");
    // Both segments retransmitted at 1 s, the surviving tail again at 3.5 s.
    assert_eq!(st.retransmits, 3);
    assert_eq!(snd.ca_state(), CaState::Loss);
    let fires: Vec<SimTime> = st.congestion_event_log.to_vec();
    assert_eq!(
        fires,
        vec![SimTime::from_secs(1), SimTime::from_millis(3500)],
        "rearmed RTO must fire at lastACK + backed-off RTO, exactly once"
    );
}

#[test]
fn srtt_converges_to_path_rtt() {
    let (mut sim, sender, _, _) = one_flow(Bandwidth::from_mbps(50), u64::MAX, 50, 10, None);
    sim.run_until(SimTime::from_secs(5));
    let srtt = sim.component::<Sender>(sender).srtt();
    let ms = srtt.as_nanos() as f64 / 1e6;
    // Base 50 ms + sub-ms serialization.
    assert!((49.0..55.0).contains(&ms), "srtt = {ms} ms");
    let min = sim.component::<Sender>(sender).min_rtt();
    assert!(min <= srtt);
}
