//! Property-based tests of the flight recorder's hard memory bound: no
//! sequence of offers/pushes may push a ring — or a whole recorder —
//! past its byte budget, and the admission accounting must balance.

use ccsim_sim::{SimDuration, SimTime};
use ccsim_trace::{
    CongestionKind, FlowRecorder, QueueRecorder, RetentionPolicy, SampleRing, TraceConfig,
    TraceRecord, RECORD_BYTES,
};
use proptest::prelude::*;

fn policy(tag: u8, n: u32) -> RetentionPolicy {
    match tag % 3 {
        0 => RetentionPolicy::KeepAll,
        1 => RetentionPolicy::Decimate(n),
        _ => RetentionPolicy::Reservoir(n),
    }
}

proptest! {
    /// A ring's held bytes never exceed its budget (modulo the documented
    /// one-record minimum), for any policy and any offer/push mix.
    #[test]
    fn ring_never_exceeds_byte_budget(
        budget in 0u64..4_000,
        tag in 0u8..3,
        n in 0u32..50,
        ops in prop::collection::vec(0u8..2, 1..400),
    ) {
        let mut ring = SampleRing::new(policy(tag, n), budget, 99);
        let bound = budget.max(RECORD_BYTES);
        for (i, op) in ops.iter().enumerate() {
            let rec = TraceRecord::cwnd(SimTime::from_nanos(i as u64), 0, i as u64, 0);
            if *op == 1 {
                ring.push(rec);
            } else {
                ring.offer(rec);
            }
            prop_assert!(ring.bytes() <= bound, "{} > {}", ring.bytes(), bound);
        }
    }

    /// seen = kept + thinned + evicted for pure sample streams: every
    /// offered record is either held, rejected by the policy, or was
    /// admitted and later evicted.
    #[test]
    fn admission_accounting_balances(
        budget in 0u64..4_000,
        tag in 0u8..3,
        n in 1u32..50,
        offers in 1usize..500,
    ) {
        let mut ring = SampleRing::new(policy(tag, n), budget, 7);
        for i in 0..offers {
            ring.offer(TraceRecord::cwnd(SimTime::from_nanos(i as u64), 0, i as u64, 0));
        }
        // Reservoir replacement counts the displaced record as thinned, so
        // kept + thinned + evicted can only meet or exceed seen for it;
        // KeepAll/Decimate balance exactly.
        let total = ring.len() as u64 + ring.thinned() + ring.evicted();
        match policy(tag, n) {
            RetentionPolicy::Reservoir(_) => prop_assert!(total >= offers as u64),
            _ => prop_assert_eq!(total, offers as u64),
        }
    }

    /// A flow recorder's two rings together stay within its budget no
    /// matter how samples and events interleave.
    #[test]
    fn flow_recorder_respects_budget(
        budget in 0u64..8_000,
        tag in 0u8..3,
        n in 1u32..20,
        acks in prop::collection::vec((1u64..1_000_000, 1u64..1_000_000), 1..300),
    ) {
        let mut rec = FlowRecorder::new(0, policy(tag, n), budget, 5);
        // Each of the two rings may round a sub-record budget share up to
        // one whole record, so the exact bound carries that headroom.
        let bound = budget + 2 * RECORD_BYTES;
        for (i, (cwnd, srtt_ns)) in acks.iter().enumerate() {
            let now = SimTime::from_nanos(i as u64 * 1_000);
            rec.on_ack(now, *cwnd, cwnd / 2, SimDuration::from_nanos(*srtt_ns), cwnd * 8);
            if i % 7 == 0 {
                rec.on_congestion(now, CongestionKind::FastRecovery);
            }
            if i % 11 == 0 {
                rec.on_phase(now, if i % 2 == 0 { "slowstart" } else { "avoidance" });
            }
            prop_assert!(rec.bytes() <= bound, "{} > {}", rec.bytes(), bound);
        }
    }

    /// Same for the queue recorder: arrivals plus drops stay within its
    /// budget.
    #[test]
    fn queue_recorder_respects_budget(
        budget in 0u64..8_000,
        every in 0u32..16,
        events in prop::collection::vec((0u8..2, 0u64..1_000_000), 1..300),
    ) {
        let mut rec = QueueRecorder::new(RetentionPolicy::KeepAll, budget, every, 5);
        let bound = budget + 2 * RECORD_BYTES;
        for (i, (op, backlog)) in events.iter().enumerate() {
            let now = SimTime::from_nanos(i as u64 * 1_000);
            if *op == 1 {
                rec.on_drop(now, (i % 4) as u32, *backlog);
            } else {
                rec.on_arrival(now, *backlog, backlog / 1_448);
            }
            prop_assert!(rec.bytes() <= bound, "{} > {}", rec.bytes(), bound);
        }
    }

    /// The static budget partition can never hand out more than the
    /// global budget across the queue recorder and any number of flows.
    #[test]
    fn budget_partition_is_conservative(
        max_bytes in 0u64..1u64 << 40,
        n_flows in 0u32..100_000,
    ) {
        let cfg = TraceConfig {
            enabled: true,
            policy: RetentionPolicy::KeepAll,
            max_bytes,
            queue_sample_every: 64,
        };
        let total = cfg.queue_budget() + u64::from(n_flows) * cfg.flow_budget(n_flows);
        prop_assert!(total <= max_bytes, "{} > {}", total, max_bytes);
    }
}
