//! The typed trace-event model.
//!
//! Every recordable occurrence is a [`TraceRecord`]: a fixed-width
//! `(time, flow, kind, a, b)` tuple. The fixed shape is deliberate — it is
//! what makes ring-buffer byte accounting exact ([`RECORD_BYTES`] per
//! record, no heap payload), lets the binary exporter write plain columns,
//! and keeps recording off the simulator's allocation path entirely.
//!
//! The `a`/`b` payload words are interpreted per [`TraceKind`]; typed
//! constructors and accessors on [`TraceRecord`] keep call sites honest.
//! CCA phase labels (≤ [`PhaseLabel::MAX_LEN`] ASCII bytes) are packed
//! *into* the two payload words rather than interned in a side table, so a
//! record is self-contained and traces from different runs concatenate.

use ccsim_sim::{SimDuration, SimTime, SnapError, SnapReader, SnapWriter};
use serde::{Deserialize, Serialize};

/// Serialized size of one record: 8 (time) + 4 (flow) + 1 (kind) + 8 + 8.
///
/// The in-memory `TraceRecord` is padded to 32 bytes; budgets are stated in
/// *wire* bytes so an exported file never exceeds the configured budget.
pub const RECORD_BYTES: u64 = 29;

/// Sentinel flow id for link-scoped records (queue-depth samples).
pub const QUEUE_FLOW: u32 = u32::MAX;

/// What a record describes. The discriminant is the on-disk kind byte.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum TraceKind {
    /// Congestion-window sample: `a` = cwnd bytes, `b` = ssthresh bytes.
    Cwnd = 0,
    /// Smoothed-RTT sample: `a` = srtt nanoseconds.
    Srtt = 1,
    /// Pacing-rate sample: `a` = bits per second (0 = ACK-clocked).
    Pacing = 2,
    /// CCA phase transition: `a`/`b` = packed ASCII label.
    Phase = 3,
    /// Congestion event (cwnd reduction): `a` = [`CongestionKind`].
    Congestion = 4,
    /// Bottleneck queue-depth sample (`flow` = [`QUEUE_FLOW`]):
    /// `a` = backlog bytes, `b` = queued packets.
    QueueDepth = 5,
    /// Packet drop at the bottleneck: `a` = backlog bytes at drop time.
    Drop = 6,
    /// ECN CE mark applied by an AQM: `a` = backlog bytes at mark time,
    /// `b` = hop (link) index within the topology.
    EcnMark = 7,
    /// Queue-depth sample at a non-primary hop (`flow` = hop index):
    /// `a` = backlog bytes, `b` = queued packets. The primary bottleneck
    /// keeps emitting [`TraceKind::QueueDepth`] so legacy extractors and
    /// baselines are untouched.
    HopDepth = 8,
}

impl TraceKind {
    /// All kinds, in discriminant order.
    pub const ALL: [TraceKind; 9] = [
        TraceKind::Cwnd,
        TraceKind::Srtt,
        TraceKind::Pacing,
        TraceKind::Phase,
        TraceKind::Congestion,
        TraceKind::QueueDepth,
        TraceKind::Drop,
        TraceKind::EcnMark,
        TraceKind::HopDepth,
    ];

    /// Decode a kind byte.
    pub fn from_u8(v: u8) -> Option<TraceKind> {
        TraceKind::ALL.get(v as usize).copied()
    }

    /// Stable string name (the JSONL `kind` field).
    pub fn as_str(self) -> &'static str {
        match self {
            TraceKind::Cwnd => "cwnd",
            TraceKind::Srtt => "srtt",
            TraceKind::Pacing => "pacing",
            TraceKind::Phase => "phase",
            TraceKind::Congestion => "congestion",
            TraceKind::QueueDepth => "queue",
            TraceKind::Drop => "drop",
            TraceKind::EcnMark => "ecn_mark",
            TraceKind::HopDepth => "hop_queue",
        }
    }

    /// Parse the JSONL `kind` field.
    pub fn from_str_name(s: &str) -> Option<TraceKind> {
        TraceKind::ALL.into_iter().find(|k| k.as_str() == s)
    }

    /// Whether this kind is a dense *sample* (subject to retention
    /// thinning) as opposed to a discrete *event* (always kept until the
    /// ring evicts).
    pub fn is_sample(self) -> bool {
        matches!(
            self,
            TraceKind::Cwnd
                | TraceKind::Srtt
                | TraceKind::Pacing
                | TraceKind::QueueDepth
                | TraceKind::HopDepth
        )
    }
}

/// Why a congestion event fired.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[repr(u8)]
pub enum CongestionKind {
    /// SACK-detected loss: entry into fast recovery (multiplicative
    /// decrease — the paper's "CWND halving" event).
    FastRecovery = 0,
    /// Retransmission timeout.
    Rto = 1,
    /// ECE-triggered reduction (RFC 3168 response, no retransmission).
    EcnReduce = 2,
}

impl CongestionKind {
    /// Decode from a payload word.
    pub fn from_u64(v: u64) -> Option<CongestionKind> {
        match v {
            0 => Some(CongestionKind::FastRecovery),
            1 => Some(CongestionKind::Rto),
            2 => Some(CongestionKind::EcnReduce),
            _ => None,
        }
    }

    /// Stable string name (the JSONL `event` field).
    pub fn as_str(self) -> &'static str {
        match self {
            CongestionKind::FastRecovery => "fast_recovery",
            CongestionKind::Rto => "rto",
            CongestionKind::EcnReduce => "ecn_reduce",
        }
    }

    /// Parse the JSONL `event` field.
    pub fn from_str_name(s: &str) -> Option<CongestionKind> {
        match s {
            "fast_recovery" => Some(CongestionKind::FastRecovery),
            "rto" => Some(CongestionKind::Rto),
            "ecn_reduce" => Some(CongestionKind::EcnReduce),
            _ => None,
        }
    }
}

/// A CCA phase label packed into 16 ASCII bytes (zero-padded).
///
/// Labels come from [`CongestionControl::phase`] and are short static
/// strings ("slowstart", "probe_bw", …); 16 bytes fits every label with
/// room to spare and packs exactly into the record's two payload words.
///
/// [`CongestionControl::phase`]: https://docs.rs/ccsim-tcp
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct PhaseLabel([u8; 16]);

impl PhaseLabel {
    /// Maximum label length in bytes.
    pub const MAX_LEN: usize = 16;

    /// Pack a label; truncates past [`PhaseLabel::MAX_LEN`] bytes and
    /// replaces non-ASCII-printable bytes with `'?'` (labels are static
    /// identifiers, so neither case occurs in practice).
    pub fn new(label: &str) -> PhaseLabel {
        let mut buf = [0u8; 16];
        for (dst, &src) in buf.iter_mut().zip(label.as_bytes()) {
            *dst = if src.is_ascii_graphic() { src } else { b'?' };
        }
        PhaseLabel(buf)
    }

    /// The label as a string slice (zero padding stripped).
    pub fn as_str(&self) -> &str {
        let end = self.0.iter().position(|&b| b == 0).unwrap_or(16);
        // Construction guarantees ASCII.
        std::str::from_utf8(&self.0[..end]).unwrap_or("")
    }

    /// Pack into the record payload words (little-endian halves).
    pub fn to_words(self) -> (u64, u64) {
        (
            u64::from_le_bytes(self.0[..8].try_into().unwrap()),
            u64::from_le_bytes(self.0[8..].try_into().unwrap()),
        )
    }

    /// Unpack from record payload words.
    pub fn from_words(a: u64, b: u64) -> PhaseLabel {
        let mut buf = [0u8; 16];
        buf[..8].copy_from_slice(&a.to_le_bytes());
        buf[8..].copy_from_slice(&b.to_le_bytes());
        PhaseLabel(buf)
    }
}

/// One recorded occurrence. See [`TraceKind`] for the `a`/`b` semantics.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// When it happened.
    pub time: SimTime,
    /// Owning flow, or [`QUEUE_FLOW`] for link-scoped records.
    pub flow: u32,
    /// What happened.
    pub kind: TraceKind,
    /// First payload word.
    pub a: u64,
    /// Second payload word.
    pub b: u64,
}

impl TraceRecord {
    /// A congestion-window sample.
    pub fn cwnd(time: SimTime, flow: u32, cwnd: u64, ssthresh: u64) -> TraceRecord {
        TraceRecord {
            time,
            flow,
            kind: TraceKind::Cwnd,
            a: cwnd,
            b: ssthresh,
        }
    }

    /// A smoothed-RTT sample.
    pub fn srtt(time: SimTime, flow: u32, srtt: SimDuration) -> TraceRecord {
        TraceRecord {
            time,
            flow,
            kind: TraceKind::Srtt,
            a: srtt.as_nanos(),
            b: 0,
        }
    }

    /// A pacing-rate sample (`bps` = 0 for ACK-clocked senders).
    pub fn pacing(time: SimTime, flow: u32, bps: u64) -> TraceRecord {
        TraceRecord {
            time,
            flow,
            kind: TraceKind::Pacing,
            a: bps,
            b: 0,
        }
    }

    /// A CCA phase transition.
    pub fn phase(time: SimTime, flow: u32, label: PhaseLabel) -> TraceRecord {
        let (a, b) = label.to_words();
        TraceRecord {
            time,
            flow,
            kind: TraceKind::Phase,
            a,
            b,
        }
    }

    /// A congestion event.
    pub fn congestion(time: SimTime, flow: u32, kind: CongestionKind) -> TraceRecord {
        TraceRecord {
            time,
            flow,
            kind: TraceKind::Congestion,
            a: kind as u64,
            b: 0,
        }
    }

    /// A bottleneck queue-depth sample.
    pub fn queue_depth(time: SimTime, backlog_bytes: u64, queued_pkts: u64) -> TraceRecord {
        TraceRecord {
            time,
            flow: QUEUE_FLOW,
            kind: TraceKind::QueueDepth,
            a: backlog_bytes,
            b: queued_pkts,
        }
    }

    /// A per-flow drop at the bottleneck.
    pub fn drop(time: SimTime, flow: u32, backlog_bytes: u64) -> TraceRecord {
        TraceRecord {
            time,
            flow,
            kind: TraceKind::Drop,
            a: backlog_bytes,
            b: 0,
        }
    }

    /// An ECN CE mark applied to `flow`'s packet at hop `hop`.
    pub fn ecn_mark(time: SimTime, flow: u32, backlog_bytes: u64, hop: u64) -> TraceRecord {
        TraceRecord {
            time,
            flow,
            kind: TraceKind::EcnMark,
            a: backlog_bytes,
            b: hop,
        }
    }

    /// A queue-depth sample at a non-primary hop.
    pub fn hop_depth(time: SimTime, hop: u32, backlog_bytes: u64, queued_pkts: u64) -> TraceRecord {
        TraceRecord {
            time,
            flow: hop,
            kind: TraceKind::HopDepth,
            a: backlog_bytes,
            b: queued_pkts,
        }
    }

    /// The phase label, if this is a phase record.
    pub fn phase_label(&self) -> Option<PhaseLabel> {
        (self.kind == TraceKind::Phase).then(|| PhaseLabel::from_words(self.a, self.b))
    }

    /// The congestion kind, if this is a congestion record.
    pub fn congestion_kind(&self) -> Option<CongestionKind> {
        if self.kind == TraceKind::Congestion {
            CongestionKind::from_u64(self.a)
        } else {
            None
        }
    }

    /// Sort key: time, then flow, then kind — the canonical merged order.
    pub fn sort_key(&self) -> (SimTime, u32, u8, u64, u64) {
        (self.time, self.flow, self.kind as u8, self.a, self.b)
    }

    /// Serialize for a checkpoint.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.time(self.time);
        w.u32(self.flow);
        w.u8(self.kind as u8);
        w.u64(self.a);
        w.u64(self.b);
    }

    /// Deserialize a record written by [`TraceRecord::save_state`].
    pub fn load_state(r: &mut SnapReader<'_>) -> Result<TraceRecord, SnapError> {
        let time = r.time()?;
        let flow = r.u32()?;
        let kind_byte = r.u8()?;
        let kind = TraceKind::from_u8(kind_byte)
            .ok_or_else(|| SnapError::Corrupt(format!("trace kind {kind_byte}")))?;
        Ok(TraceRecord {
            time,
            flow,
            kind,
            a: r.u64()?,
            b: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_bytes_round_trip() {
        for k in TraceKind::ALL {
            assert_eq!(TraceKind::from_u8(k as u8), Some(k));
            assert_eq!(TraceKind::from_str_name(k.as_str()), Some(k));
        }
        assert_eq!(TraceKind::from_u8(9), None);
        assert_eq!(TraceKind::from_str_name("bogus"), None);
    }

    #[test]
    fn phase_label_round_trips_through_words() {
        for label in ["slowstart", "avoidance", "probe_bw", "probe_rtt", "x"] {
            let l = PhaseLabel::new(label);
            assert_eq!(l.as_str(), label);
            let (a, b) = l.to_words();
            assert_eq!(PhaseLabel::from_words(a, b), l);
        }
    }

    #[test]
    fn phase_label_truncates_and_sanitizes() {
        let long = PhaseLabel::new("a_very_long_phase_label_indeed");
        assert_eq!(long.as_str().len(), 16);
        let odd = PhaseLabel::new("a b");
        assert_eq!(odd.as_str(), "a?b");
    }

    #[test]
    fn typed_constructors_set_kinds() {
        let t = SimTime::from_millis(5);
        assert_eq!(TraceRecord::cwnd(t, 1, 10, 20).kind, TraceKind::Cwnd);
        assert_eq!(
            TraceRecord::srtt(t, 1, SimDuration::from_millis(30)).a,
            30_000_000
        );
        assert_eq!(TraceRecord::queue_depth(t, 9, 2).flow, QUEUE_FLOW);
        let c = TraceRecord::congestion(t, 3, CongestionKind::Rto);
        assert_eq!(c.congestion_kind(), Some(CongestionKind::Rto));
        assert_eq!(c.phase_label(), None);
        let p = TraceRecord::phase(t, 3, PhaseLabel::new("drain"));
        assert_eq!(p.phase_label().unwrap().as_str(), "drain");
    }

    #[test]
    fn congestion_kind_round_trips() {
        for k in [
            CongestionKind::FastRecovery,
            CongestionKind::Rto,
            CongestionKind::EcnReduce,
        ] {
            assert_eq!(CongestionKind::from_u64(k as u64), Some(k));
            assert_eq!(CongestionKind::from_str_name(k.as_str()), Some(k));
        }
        assert_eq!(CongestionKind::from_u64(3), None);
    }
}
