//! # ccsim-trace — the unified flight recorder
//!
//! Before this crate, run-time visibility was a scatter of ad-hoc hooks:
//! the sender's optional `cwnd_trace` vector, the unbounded
//! `congestion_event_log`, and the link's capped-but-huge drop log. Each
//! had its own memory behavior and none could answer "what did flow 37 do
//! between t=80s and t=90s?" after a 5000-flow CoreScale run without
//! risking gigabytes of resident state.
//!
//! `ccsim-trace` replaces them with one memory-bounded recording pipeline:
//!
//! * [`event`] — the typed, fixed-width [`TraceRecord`] model: cwnd /
//!   ssthresh / srtt / pacing-rate samples, CCA phase transitions,
//!   congestion events, queue-depth samples, and per-flow drops.
//! * [`ring`] — per-flow ring buffers with [`RetentionPolicy`]
//!   (`KeepAll` / `Decimate(n)` / `Reservoir(k)`) under a global byte
//!   budget, plus the generic [`BoundedLog`] that now backs the legacy
//!   diagnostic logs.
//! * [`recorder`] — the endpoints the sender and bottleneck link drive
//!   ([`FlowRecorder`], [`QueueRecorder`]), configured by [`TraceConfig`],
//!   and the assembled [`RunTrace`].
//! * [`export`] — greppable JSONL, one record per line.
//! * [`binary`] — the compact columnar `.cctr` format with a streaming
//!   [`BinaryTraceReader`].
//!
//! The crate depends only on `ccsim-sim` (for time types), so every layer
//! above — net, tcp, analysis, core — can record into it without cycles.

pub mod binary;
pub mod event;
pub mod export;
pub mod recorder;
pub mod ring;

pub use binary::{read_binary, write_binary, BinaryTraceReader};
pub use event::{CongestionKind, PhaseLabel, TraceKind, TraceRecord, QUEUE_FLOW, RECORD_BYTES};
pub use export::{read_jsonl, write_jsonl};
pub use recorder::{FlowRecorder, QueueRecorder, RunTrace, TraceConfig, TraceMeta};
pub use ring::{BoundedLog, RetentionPolicy, SampleRing, DEFAULT_LOG_CAP};
