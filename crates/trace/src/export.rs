//! JSONL export — one self-describing JSON object per line.
//!
//! The first line carries the run metadata; every following line is one
//! record with kind-specific field names (`cwnd`, `ssthresh`, `bps`, …),
//! so the file greps and `jq`s naturally. The format is hand-rolled on
//! both sides: the offline serde stand-in (vendor/README.md) provides no
//! serializer, and the schema is small and fixed. [`read_jsonl`] parses
//! exactly what [`write_jsonl`] emits (strict field order is *not*
//! required; unknown fields are ignored).

use crate::event::{CongestionKind, PhaseLabel, TraceKind, TraceRecord, QUEUE_FLOW};
use crate::recorder::{RunTrace, TraceMeta};
use ccsim_sim::{SimDuration, SimTime};
use std::io::{self, BufRead, Write};

/// Escape a string for a JSON literal (quotes, backslashes, control
/// bytes — scenario names are the only free-form strings here).
fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Write a trace as JSONL.
pub fn write_jsonl<W: Write>(trace: &RunTrace, mut w: W) -> io::Result<()> {
    let mut name = String::new();
    escape(&trace.meta.scenario, &mut name);
    writeln!(
        w,
        "{{\"meta\":{{\"scenario\":\"{}\",\"seed\":{},\"flows\":{},\"records\":{},\"evicted\":{},\"thinned\":{}}}}}",
        name,
        trace.meta.seed,
        trace.meta.flows,
        trace.records.len(),
        trace.evicted,
        trace.thinned
    )?;
    let mut line = String::with_capacity(128);
    for r in &trace.records {
        line.clear();
        let t = r.time.as_nanos();
        match r.kind {
            TraceKind::Cwnd => {
                line.push_str(&format!(
                    "{{\"t\":{t},\"flow\":{},\"kind\":\"cwnd\",\"cwnd\":{},\"ssthresh\":{}}}",
                    r.flow, r.a, r.b
                ));
            }
            TraceKind::Srtt => {
                line.push_str(&format!(
                    "{{\"t\":{t},\"flow\":{},\"kind\":\"srtt\",\"ns\":{}}}",
                    r.flow, r.a
                ));
            }
            TraceKind::Pacing => {
                line.push_str(&format!(
                    "{{\"t\":{t},\"flow\":{},\"kind\":\"pacing\",\"bps\":{}}}",
                    r.flow, r.a
                ));
            }
            TraceKind::Phase => {
                let label = r.phase_label().unwrap_or_default();
                line.push_str(&format!(
                    "{{\"t\":{t},\"flow\":{},\"kind\":\"phase\",\"label\":\"{}\"}}",
                    r.flow,
                    label.as_str()
                ));
            }
            TraceKind::Congestion => {
                let ev = r
                    .congestion_kind()
                    .map(CongestionKind::as_str)
                    .unwrap_or("unknown");
                line.push_str(&format!(
                    "{{\"t\":{t},\"flow\":{},\"kind\":\"congestion\",\"event\":\"{ev}\"}}",
                    r.flow
                ));
            }
            TraceKind::QueueDepth => {
                line.push_str(&format!(
                    "{{\"t\":{t},\"kind\":\"queue\",\"bytes\":{},\"pkts\":{}}}",
                    r.a, r.b
                ));
            }
            TraceKind::Drop => {
                line.push_str(&format!(
                    "{{\"t\":{t},\"flow\":{},\"kind\":\"drop\",\"queue_bytes\":{}}}",
                    r.flow, r.a
                ));
            }
            TraceKind::EcnMark => {
                line.push_str(&format!(
                    "{{\"t\":{t},\"flow\":{},\"kind\":\"ecn_mark\",\"queue_bytes\":{},\"hop\":{}}}",
                    r.flow, r.a, r.b
                ));
            }
            TraceKind::HopDepth => {
                line.push_str(&format!(
                    "{{\"t\":{t},\"kind\":\"hop_queue\",\"hop\":{},\"bytes\":{},\"pkts\":{}}}",
                    r.flow, r.a, r.b
                ));
            }
        }
        writeln!(w, "{line}")?;
    }
    Ok(())
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Extract `"key":<number>` from a JSON line.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extract and unescape `"key":"<string>"` from a JSON line.
fn field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let mut out = String::new();
    let mut chars = line[start..].chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let v = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(v)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

/// Parse one record line (as produced by [`write_jsonl`]).
fn parse_record(line: &str) -> io::Result<TraceRecord> {
    let t = SimTime::from_nanos(field_u64(line, "t").ok_or_else(|| bad("record missing \"t\""))?);
    let kind_name = field_str(line, "kind").ok_or_else(|| bad("record missing \"kind\""))?;
    let kind = TraceKind::from_str_name(&kind_name)
        .ok_or_else(|| bad(format!("unknown kind {kind_name:?}")))?;
    let flow = match kind {
        TraceKind::QueueDepth => QUEUE_FLOW,
        TraceKind::HopDepth => field_u64(line, "hop").ok_or_else(|| bad("hop missing"))? as u32,
        _ => field_u64(line, "flow").ok_or_else(|| bad("record missing \"flow\""))? as u32,
    };
    let rec = match kind {
        TraceKind::Cwnd => TraceRecord::cwnd(
            t,
            flow,
            field_u64(line, "cwnd").ok_or_else(|| bad("cwnd missing"))?,
            field_u64(line, "ssthresh").ok_or_else(|| bad("ssthresh missing"))?,
        ),
        TraceKind::Srtt => TraceRecord::srtt(
            t,
            flow,
            SimDuration::from_nanos(field_u64(line, "ns").ok_or_else(|| bad("ns missing"))?),
        ),
        TraceKind::Pacing => TraceRecord::pacing(
            t,
            flow,
            field_u64(line, "bps").ok_or_else(|| bad("bps missing"))?,
        ),
        TraceKind::Phase => {
            let label = field_str(line, "label").ok_or_else(|| bad("label missing"))?;
            TraceRecord::phase(t, flow, PhaseLabel::new(&label))
        }
        TraceKind::Congestion => {
            let ev = field_str(line, "event").ok_or_else(|| bad("event missing"))?;
            let ck = CongestionKind::from_str_name(&ev)
                .ok_or_else(|| bad(format!("unknown congestion event {ev:?}")))?;
            TraceRecord::congestion(t, flow, ck)
        }
        TraceKind::QueueDepth => TraceRecord::queue_depth(
            t,
            field_u64(line, "bytes").ok_or_else(|| bad("bytes missing"))?,
            field_u64(line, "pkts").ok_or_else(|| bad("pkts missing"))?,
        ),
        TraceKind::Drop => TraceRecord::drop(
            t,
            flow,
            field_u64(line, "queue_bytes").ok_or_else(|| bad("queue_bytes missing"))?,
        ),
        TraceKind::EcnMark => TraceRecord::ecn_mark(
            t,
            flow,
            field_u64(line, "queue_bytes").ok_or_else(|| bad("queue_bytes missing"))?,
            field_u64(line, "hop").ok_or_else(|| bad("hop missing"))?,
        ),
        TraceKind::HopDepth => TraceRecord::hop_depth(
            t,
            flow,
            field_u64(line, "bytes").ok_or_else(|| bad("bytes missing"))?,
            field_u64(line, "pkts").ok_or_else(|| bad("pkts missing"))?,
        ),
    };
    Ok(rec)
}

/// Read a trace from JSONL (the inverse of [`write_jsonl`]).
pub fn read_jsonl<R: BufRead>(r: R) -> io::Result<RunTrace> {
    let mut lines = r.lines();
    let header = lines.next().ok_or_else(|| bad("empty trace file"))??;
    if !header.contains("\"meta\"") {
        return Err(bad("first line is not a meta header"));
    }
    let meta = TraceMeta {
        scenario: field_str(&header, "scenario").ok_or_else(|| bad("meta missing scenario"))?,
        seed: field_u64(&header, "seed").ok_or_else(|| bad("meta missing seed"))?,
        flows: field_u64(&header, "flows").ok_or_else(|| bad("meta missing flows"))? as u32,
    };
    let evicted = field_u64(&header, "evicted").unwrap_or(0);
    let thinned = field_u64(&header, "thinned").unwrap_or(0);
    let mut records = Vec::new();
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        records.push(parse_record(&line)?);
    }
    Ok(RunTrace {
        meta,
        records,
        evicted,
        thinned,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CongestionKind;

    fn sample_trace() -> RunTrace {
        let t = SimTime::from_millis;
        RunTrace {
            meta: TraceMeta {
                scenario: "edge \"quoted\" \\ name".into(),
                seed: 42,
                flows: 2,
            },
            records: vec![
                TraceRecord::cwnd(t(1), 0, 14_480, u64::MAX),
                TraceRecord::srtt(t(2), 0, SimDuration::from_micros(20_500)),
                TraceRecord::pacing(t(3), 1, 1_250_000),
                TraceRecord::phase(t(4), 1, PhaseLabel::new("probe_bw")),
                TraceRecord::congestion(t(5), 0, CongestionKind::FastRecovery),
                TraceRecord::queue_depth(t(6), 123_456, 83),
                TraceRecord::drop(t(7), 1, 99_000),
                TraceRecord::ecn_mark(t(8), 0, 64_000, 2),
                TraceRecord::hop_depth(t(9), 1, 32_000, 21),
            ],
            evicted: 3,
            thinned: 17,
        }
    }

    #[test]
    fn jsonl_round_trips() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_jsonl(&trace, &mut buf).unwrap();
        let back = read_jsonl(io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn jsonl_lines_are_self_describing() {
        let mut buf = Vec::new();
        write_jsonl(&sample_trace(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.lines().count() == 10); // header + 9 records
        assert!(text.contains("\"kind\":\"cwnd\""));
        assert!(text.contains("\"event\":\"fast_recovery\""));
        assert!(text.contains("\"label\":\"probe_bw\""));
        // Every line is brace-delimited.
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_jsonl(io::BufReader::new(&b""[..])).is_err());
        assert!(read_jsonl(io::BufReader::new(&b"{\"t\":1}\n"[..])).is_err());
        let noheader = b"{\"t\":1,\"flow\":0,\"kind\":\"cwnd\",\"cwnd\":1,\"ssthresh\":2}\n";
        assert!(read_jsonl(io::BufReader::new(&noheader[..])).is_err());
    }

    #[test]
    fn escape_handles_control_chars() {
        let mut s = String::new();
        escape("a\"b\\c\nd", &mut s);
        assert_eq!(s, "a\\\"b\\\\c\\u000ad");
    }
}
