//! Compact columnar binary export (`.cctr`) with a streaming reader.
//!
//! ## Format (version 1, all integers little-endian)
//!
//! ```text
//! magic   b"CCTR"
//! u16     version = 1
//! u16     scenario-name length, followed by that many UTF-8 bytes
//! u64     seed
//! u32     flows
//! u64     evicted
//! u64     thinned
//! blocks:
//!   u32   n  (0 terminates the stream)
//!   n×u64 time (ns)    — one column per field, in record order
//!   n×u32 flow
//!   n×u8  kind
//!   n×u64 a
//!   n×u64 b
//! ```
//!
//! Records are written in [`BLOCK_RECORDS`]-sized columnar blocks:
//! column-major layout compresses well externally, reads with five bulk
//! `read_exact`s per block, and — unlike a single monolithic column file —
//! streams: the writer never needs the record count up front and the
//! [`BinaryTraceReader`] holds one block in memory at a time.

use crate::event::{TraceKind, TraceRecord, RECORD_BYTES};
use crate::recorder::{RunTrace, TraceMeta};
use ccsim_sim::SimTime;
use std::io::{self, Read, Write};

/// File magic.
pub const MAGIC: [u8; 4] = *b"CCTR";
/// Format version written by this crate.
pub const VERSION: u16 = 1;
/// Records per columnar block.
pub const BLOCK_RECORDS: usize = 4096;

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Write a trace in the columnar binary format.
pub fn write_binary<W: Write>(trace: &RunTrace, mut w: W) -> io::Result<()> {
    w.write_all(&MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    let name = trace.meta.scenario.as_bytes();
    let name_len =
        u16::try_from(name.len()).map_err(|_| bad("scenario name exceeds 65535 bytes"))?;
    w.write_all(&name_len.to_le_bytes())?;
    w.write_all(name)?;
    w.write_all(&trace.meta.seed.to_le_bytes())?;
    w.write_all(&trace.meta.flows.to_le_bytes())?;
    w.write_all(&trace.evicted.to_le_bytes())?;
    w.write_all(&trace.thinned.to_le_bytes())?;

    let mut col = Vec::with_capacity(BLOCK_RECORDS * RECORD_BYTES as usize);
    for block in trace.records.chunks(BLOCK_RECORDS) {
        w.write_all(&(block.len() as u32).to_le_bytes())?;
        col.clear();
        for r in block {
            col.extend_from_slice(&r.time.as_nanos().to_le_bytes());
        }
        for r in block {
            col.extend_from_slice(&r.flow.to_le_bytes());
        }
        for r in block {
            col.push(r.kind as u8);
        }
        for r in block {
            col.extend_from_slice(&r.a.to_le_bytes());
        }
        for r in block {
            col.extend_from_slice(&r.b.to_le_bytes());
        }
        w.write_all(&col)?;
    }
    w.write_all(&0u32.to_le_bytes())?;
    Ok(())
}

fn read_u16<R: Read>(r: &mut R) -> io::Result<u16> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Streaming reader: parses the header eagerly, then yields records
/// block-by-block through the [`Iterator`] impl, holding at most one
/// block ([`BLOCK_RECORDS`] records) in memory.
pub struct BinaryTraceReader<R: Read> {
    src: R,
    meta: TraceMeta,
    evicted: u64,
    thinned: u64,
    block: Vec<TraceRecord>,
    /// Next index into `block`.
    cursor: usize,
    /// Set once the zero-length terminator block is seen.
    done: bool,
}

impl<R: Read> BinaryTraceReader<R> {
    /// Open a stream and parse the header.
    pub fn new(mut src: R) -> io::Result<BinaryTraceReader<R>> {
        let mut magic = [0u8; 4];
        src.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(bad("not a ccsim trace (bad magic)"));
        }
        let version = read_u16(&mut src)?;
        if version != VERSION {
            return Err(bad(format!("unsupported trace version {version}")));
        }
        let name_len = read_u16(&mut src)? as usize;
        let mut name = vec![0u8; name_len];
        src.read_exact(&mut name)?;
        let scenario = String::from_utf8(name).map_err(|_| bad("scenario name is not UTF-8"))?;
        let seed = read_u64(&mut src)?;
        let flows = read_u32(&mut src)?;
        let evicted = read_u64(&mut src)?;
        let thinned = read_u64(&mut src)?;
        Ok(BinaryTraceReader {
            src,
            meta: TraceMeta {
                scenario,
                seed,
                flows,
            },
            evicted,
            thinned,
            block: Vec::new(),
            cursor: 0,
            done: false,
        })
    }

    /// Run identity from the header.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Eviction count from the header.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Thinned-sample count from the header.
    pub fn thinned(&self) -> u64 {
        self.thinned
    }

    fn read_block(&mut self) -> io::Result<bool> {
        let n = read_u32(&mut self.src)? as usize;
        if n == 0 {
            self.done = true;
            return Ok(false);
        }
        if n > BLOCK_RECORDS {
            return Err(bad(format!("oversized block ({n} records)")));
        }
        let mut buf = vec![0u8; n * RECORD_BYTES as usize];
        self.src.read_exact(&mut buf)?;
        let (times, rest) = buf.split_at(n * 8);
        let (flows, rest) = rest.split_at(n * 4);
        let (kinds, rest) = rest.split_at(n);
        let (col_a, col_b) = rest.split_at(n * 8);
        self.block.clear();
        self.block.reserve(n);
        for i in 0..n {
            let time = u64::from_le_bytes(times[i * 8..i * 8 + 8].try_into().unwrap());
            let flow = u32::from_le_bytes(flows[i * 4..i * 4 + 4].try_into().unwrap());
            let kind = TraceKind::from_u8(kinds[i])
                .ok_or_else(|| bad(format!("unknown kind byte {}", kinds[i])))?;
            let a = u64::from_le_bytes(col_a[i * 8..i * 8 + 8].try_into().unwrap());
            let b = u64::from_le_bytes(col_b[i * 8..i * 8 + 8].try_into().unwrap());
            self.block.push(TraceRecord {
                time: SimTime::from_nanos(time),
                flow,
                kind,
                a,
                b,
            });
        }
        self.cursor = 0;
        Ok(true)
    }

    /// Drain the remaining records into a full [`RunTrace`].
    pub fn into_trace(mut self) -> io::Result<RunTrace> {
        let mut records = Vec::new();
        for r in &mut self {
            records.push(r?);
        }
        Ok(RunTrace {
            meta: self.meta,
            records,
            evicted: self.evicted,
            thinned: self.thinned,
        })
    }
}

impl<R: Read> Iterator for BinaryTraceReader<R> {
    type Item = io::Result<TraceRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.cursor < self.block.len() {
                let r = self.block[self.cursor];
                self.cursor += 1;
                return Some(Ok(r));
            }
            if self.done {
                return None;
            }
            match self.read_block() {
                Ok(true) => continue,
                Ok(false) => return None,
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

/// Read a whole trace from a binary stream (the inverse of
/// [`write_binary`]).
pub fn read_binary<R: Read>(src: R) -> io::Result<RunTrace> {
    BinaryTraceReader::new(src)?.into_trace()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CongestionKind, PhaseLabel};
    use ccsim_sim::SimDuration;

    fn sample_trace(n: usize) -> RunTrace {
        let records = (0..n as u64)
            .map(|i| match i % 5 {
                0 => TraceRecord::cwnd(SimTime::from_nanos(i), (i % 7) as u32, i * 3, i * 2),
                1 => TraceRecord::srtt(
                    SimTime::from_nanos(i),
                    (i % 7) as u32,
                    SimDuration::from_nanos(i * 11),
                ),
                2 => TraceRecord::phase(
                    SimTime::from_nanos(i),
                    (i % 7) as u32,
                    PhaseLabel::new("probe_bw"),
                ),
                3 => TraceRecord::congestion(
                    SimTime::from_nanos(i),
                    (i % 7) as u32,
                    CongestionKind::Rto,
                ),
                _ => TraceRecord::queue_depth(SimTime::from_nanos(i), i * 100, i),
            })
            .collect();
        RunTrace {
            meta: TraceMeta {
                scenario: "binary-test".into(),
                seed: 99,
                flows: 7,
            },
            records,
            evicted: 5,
            thinned: 6,
        }
    }

    #[test]
    fn binary_round_trips_across_block_boundaries() {
        // Exercise empty, sub-block, exact-block, and multi-block sizes.
        for n in [
            0,
            1,
            BLOCK_RECORDS - 1,
            BLOCK_RECORDS,
            BLOCK_RECORDS + 1,
            3 * BLOCK_RECORDS + 17,
        ] {
            let trace = sample_trace(n);
            let mut buf = Vec::new();
            write_binary(&trace, &mut buf).unwrap();
            let back = read_binary(&buf[..]).unwrap();
            assert_eq!(back, trace, "n = {n}");
        }
    }

    #[test]
    fn streaming_reader_yields_in_order_with_meta_first() {
        let trace = sample_trace(10_000);
        let mut buf = Vec::new();
        write_binary(&trace, &mut buf).unwrap();
        let reader = BinaryTraceReader::new(&buf[..]).unwrap();
        assert_eq!(reader.meta().scenario, "binary-test");
        assert_eq!(reader.meta().flows, 7);
        assert_eq!(reader.evicted(), 5);
        let records: Vec<TraceRecord> = reader.map(Result::unwrap).collect();
        assert_eq!(records, trace.records);
    }

    #[test]
    fn identical_traces_export_byte_identically() {
        let a = sample_trace(5_000);
        let b = sample_trace(5_000);
        let (mut ba, mut bb) = (Vec::new(), Vec::new());
        write_binary(&a, &mut ba).unwrap();
        write_binary(&b, &mut bb).unwrap();
        assert_eq!(ba, bb);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        assert!(read_binary(&b"NOPE"[..]).is_err());
        let mut buf = Vec::new();
        write_binary(&sample_trace(1), &mut buf).unwrap();
        buf[4] = 0xFF; // corrupt version
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn rejects_truncated_stream() {
        let mut buf = Vec::new();
        write_binary(&sample_trace(100), &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        let items: Vec<_> = BinaryTraceReader::new(&buf[..]).unwrap().collect();
        assert!(items.last().unwrap().is_err());
    }
}
