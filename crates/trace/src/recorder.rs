//! Recording endpoints and the assembled run trace.
//!
//! A [`TraceConfig`] (carried by the experiment scenario) turns recording
//! on and fixes the **global byte budget**; the budget is partitioned
//! statically across recorders at build time — one [`FlowRecorder`] per
//! sender, one [`QueueRecorder`] on the bottleneck — so every ring has a
//! hard local bound and their sum can never exceed the global one. Static
//! partitioning (rather than a shared pool) keeps recording free of
//! cross-component state and byte-for-byte deterministic.
//!
//! After a run, the harness drains every recorder into a [`RunTrace`]:
//! one time-sorted record vector plus bookkeeping about what the bounds
//! discarded, ready for export ([`crate::export`], [`crate::binary`]) and
//! analysis.

use crate::event::{CongestionKind, PhaseLabel, TraceKind, TraceRecord};
use crate::ring::{RetentionPolicy, SampleRing};
use ccsim_sim::{SimDuration, SimTime, SnapError, SnapReader, SnapWriter};
use serde::{Deserialize, Serialize};

/// Flight-recorder configuration, carried by the scenario.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Master switch. When false, no recorder is attached and the hot
    /// path pays a single branch per ACK.
    pub enabled: bool,
    /// How dense sample streams (cwnd/srtt/pacing/queue-depth) are
    /// thinned. Discrete events are never thinned.
    pub policy: RetentionPolicy,
    /// Global byte budget across *all* recorders (wire bytes).
    pub max_bytes: u64,
    /// Sample the bottleneck queue depth every n-th packet arrival
    /// (0 disables queue-depth sampling; drops are always recorded).
    pub queue_sample_every: u32,
}

/// Fraction of the global budget reserved for the bottleneck recorder
/// (expressed as a divisor: 1/8 of the budget).
const QUEUE_BUDGET_DIV: u64 = 8;

/// Fraction of a flow's budget reserved for discrete events (divisor).
const EVENT_BUDGET_DIV: u64 = 4;

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::disabled()
    }
}

impl TraceConfig {
    /// Recording off (the default; zero overhead beyond a branch).
    pub fn disabled() -> TraceConfig {
        TraceConfig {
            enabled: false,
            policy: RetentionPolicy::KeepAll,
            max_bytes: 0,
            queue_sample_every: 0,
        }
    }

    /// Record everything within a 64 MiB global budget, sampling the
    /// queue every 64th arrival — a sensible default for EdgeScale runs
    /// and for CoreScale with `Decimate`/`Reservoir` policies.
    pub fn standard() -> TraceConfig {
        TraceConfig {
            enabled: true,
            policy: RetentionPolicy::KeepAll,
            max_bytes: 64 * 1024 * 1024,
            queue_sample_every: 64,
        }
    }

    /// Budget share of the bottleneck queue recorder.
    pub fn queue_budget(&self) -> u64 {
        self.max_bytes / QUEUE_BUDGET_DIV
    }

    /// Budget share of each of `n_flows` flow recorders: the remainder
    /// after the queue share, split evenly.
    pub fn flow_budget(&self, n_flows: u32) -> u64 {
        if n_flows == 0 {
            return 0;
        }
        (self.max_bytes - self.queue_budget()) / u64::from(n_flows)
    }
}

/// Per-flow recording endpoint, owned by the sender.
///
/// Samples are recorded **on change** (a cwnd sample is only stored when
/// cwnd or ssthresh moved since the last stored sample), which is lossless
/// for step-valued signals and collapses the per-ACK firehose massively.
#[derive(Debug)]
pub struct FlowRecorder {
    flow: u32,
    samples: SampleRing,
    events: SampleRing,
    last_cwnd: u64,
    last_ssthresh: u64,
    last_srtt: u64,
    last_pacing: u64,
    last_phase: Option<PhaseLabel>,
}

impl FlowRecorder {
    /// A recorder for `flow` with a private `budget_bytes` bound, split
    /// between samples and (a reserve for) discrete events. `seed` drives
    /// reservoir retention only.
    pub fn new(flow: u32, policy: RetentionPolicy, budget_bytes: u64, seed: u64) -> FlowRecorder {
        let event_budget = budget_bytes / EVENT_BUDGET_DIV;
        let sample_budget = budget_bytes - event_budget;
        FlowRecorder {
            flow,
            samples: SampleRing::new(policy, sample_budget, seed),
            // Events are always kept in arrival order until evicted.
            events: SampleRing::new(RetentionPolicy::KeepAll, event_budget, seed),
            last_cwnd: 0,
            last_ssthresh: 0,
            last_srtt: 0,
            last_pacing: 0,
            last_phase: None,
        }
    }

    /// The flow this recorder serves.
    pub fn flow(&self) -> u32 {
        self.flow
    }

    /// Approximate heap footprint of this recorder's rings (profiler
    /// `trace/rings` account).
    pub fn memory_bytes(&self) -> u64 {
        std::mem::size_of::<Self>() as u64
            + self.samples.memory_bytes()
            + self.events.memory_bytes()
    }

    /// Per-ACK sampling hook: records cwnd/ssthresh, srtt, and pacing
    /// rate, each only when changed since its last stored value.
    pub fn on_ack(
        &mut self,
        now: SimTime,
        cwnd: u64,
        ssthresh: u64,
        srtt: SimDuration,
        pacing_bps: u64,
    ) {
        if cwnd != self.last_cwnd || ssthresh != self.last_ssthresh {
            self.last_cwnd = cwnd;
            self.last_ssthresh = ssthresh;
            self.samples
                .offer(TraceRecord::cwnd(now, self.flow, cwnd, ssthresh));
        }
        let srtt_ns = srtt.as_nanos();
        if srtt_ns != self.last_srtt {
            self.last_srtt = srtt_ns;
            self.samples.offer(TraceRecord::srtt(now, self.flow, srtt));
        }
        if pacing_bps != self.last_pacing {
            self.last_pacing = pacing_bps;
            self.samples
                .offer(TraceRecord::pacing(now, self.flow, pacing_bps));
        }
    }

    /// CCA phase hook: records a transition when `label` differs from the
    /// previous call's.
    pub fn on_phase(&mut self, now: SimTime, label: &str) {
        let packed = PhaseLabel::new(label);
        if self.last_phase != Some(packed) {
            self.last_phase = Some(packed);
            self.events.push(TraceRecord::phase(now, self.flow, packed));
        }
    }

    /// Congestion-event hook (fast-recovery entry or RTO).
    pub fn on_congestion(&mut self, now: SimTime, kind: CongestionKind) {
        self.events
            .push(TraceRecord::congestion(now, self.flow, kind));
    }

    /// Current wire bytes held across both rings.
    pub fn bytes(&self) -> u64 {
        self.samples.bytes() + self.events.bytes()
    }

    /// Drain into `(records, evicted, thinned)`.
    pub fn finish(self) -> (Vec<TraceRecord>, u64, u64) {
        let evicted = self.samples.evicted() + self.events.evicted();
        let thinned = self.samples.thinned() + self.events.thinned();
        let mut v = self.samples.into_sorted_vec();
        v.extend(self.events.into_sorted_vec());
        v.sort_by_key(|r| r.sort_key());
        (v, evicted, thinned)
    }

    /// Serialize runtime state for a checkpoint (flow id, policy, and
    /// budgets are configuration, rebuilt from the scenario).
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.samples.save_state(w);
        self.events.save_state(w);
        w.u64(self.last_cwnd);
        w.u64(self.last_ssthresh);
        w.u64(self.last_srtt);
        w.u64(self.last_pacing);
        w.opt(self.last_phase, |w, p| {
            let (a, b) = p.to_words();
            w.u64(a);
            w.u64(b);
        });
    }

    /// Overlay checkpointed state onto a recorder built with the same
    /// configuration.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.samples.load_state(r)?;
        self.events.load_state(r)?;
        self.last_cwnd = r.u64()?;
        self.last_ssthresh = r.u64()?;
        self.last_srtt = r.u64()?;
        self.last_pacing = r.u64()?;
        self.last_phase = r.opt(|r| {
            let a = r.u64()?;
            let b = r.u64()?;
            Ok(PhaseLabel::from_words(a, b))
        })?;
        Ok(())
    }
}

/// Link recording endpoint: queue-depth samples, drops, and ECN marks.
///
/// The primary bottleneck (hop 0) emits legacy [`TraceKind::QueueDepth`]
/// samples; recorders attached to other hops of a multi-link topology emit
/// [`TraceKind::HopDepth`] keyed by the hop index, so legacy extractors and
/// committed baselines keep their meaning.
#[derive(Debug)]
pub struct QueueRecorder {
    depth: SampleRing,
    drops: SampleRing,
    every: u32,
    arrivals: u64,
    hop: u32,
}

impl QueueRecorder {
    /// A recorder with a private `budget_bytes` bound, split between
    /// depth samples and the (never-thinned) drop/mark train.
    pub fn new(policy: RetentionPolicy, budget_bytes: u64, every: u32, seed: u64) -> QueueRecorder {
        let half = budget_bytes / 2;
        QueueRecorder {
            depth: SampleRing::new(policy, half, seed),
            drops: SampleRing::new(RetentionPolicy::KeepAll, budget_bytes - half, seed),
            every,
            arrivals: 0,
            hop: 0,
        }
    }

    /// Re-key this recorder to a non-primary hop: depth samples become
    /// [`TraceKind::HopDepth`] records carrying `hop`.
    pub fn with_hop(mut self, hop: u32) -> QueueRecorder {
        self.hop = hop;
        self
    }

    /// The hop index this recorder is keyed to (0 = primary bottleneck).
    pub fn hop(&self) -> u32 {
        self.hop
    }

    /// Approximate heap footprint of this recorder's rings (profiler
    /// `trace/rings` account).
    pub fn memory_bytes(&self) -> u64 {
        std::mem::size_of::<Self>() as u64 + self.depth.memory_bytes() + self.drops.memory_bytes()
    }

    /// Packet-arrival hook: samples the backlog every n-th arrival.
    pub fn on_arrival(&mut self, now: SimTime, backlog_bytes: u64, queued_pkts: u64) {
        if self.every == 0 {
            return;
        }
        self.arrivals += 1;
        if (self.arrivals - 1).is_multiple_of(u64::from(self.every)) {
            let rec = if self.hop == 0 {
                TraceRecord::queue_depth(now, backlog_bytes, queued_pkts)
            } else {
                TraceRecord::hop_depth(now, self.hop, backlog_bytes, queued_pkts)
            };
            self.depth.offer(rec);
        }
    }

    /// Drop hook: always recorded (subject to the ring capacity).
    pub fn on_drop(&mut self, now: SimTime, flow: u32, backlog_bytes: u64) {
        self.drops.push(TraceRecord::drop(now, flow, backlog_bytes));
    }

    /// ECN CE-mark hook: always recorded, like drops — a mark is the
    /// AQM's congestion signal and must never be thinned away.
    pub fn on_ecn_mark(&mut self, now: SimTime, flow: u32, backlog_bytes: u64) {
        self.drops.push(TraceRecord::ecn_mark(
            now,
            flow,
            backlog_bytes,
            u64::from(self.hop),
        ));
    }

    /// Current wire bytes held across both rings.
    pub fn bytes(&self) -> u64 {
        self.depth.bytes() + self.drops.bytes()
    }

    /// Drain into `(records, evicted, thinned)`.
    pub fn finish(self) -> (Vec<TraceRecord>, u64, u64) {
        let evicted = self.depth.evicted() + self.drops.evicted();
        let thinned = self.depth.thinned() + self.drops.thinned();
        let mut v = self.depth.into_sorted_vec();
        v.extend(self.drops.into_sorted_vec());
        v.sort_by_key(|r| r.sort_key());
        (v, evicted, thinned)
    }

    /// Serialize runtime state for a checkpoint (`every` and `hop` are
    /// configuration, rebuilt from the scenario).
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.depth.save_state(w);
        self.drops.save_state(w);
        w.u64(self.arrivals);
    }

    /// Overlay checkpointed state onto a recorder built with the same
    /// configuration.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.depth.load_state(r)?;
        self.drops.load_state(r)?;
        self.arrivals = r.u64()?;
        Ok(())
    }
}

/// Run identity carried in trace exports so a trace file is
/// self-describing.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TraceMeta {
    /// Scenario label.
    pub scenario: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Number of flows in the run.
    pub flows: u32,
}

/// The assembled trace of one run: every surviving record, time-sorted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunTrace {
    /// Run identity.
    pub meta: TraceMeta,
    /// All records, sorted by `(time, flow, kind)`.
    pub records: Vec<TraceRecord>,
    /// Records admitted by retention but evicted by ring capacities.
    pub evicted: u64,
    /// Samples rejected by the retention policy.
    pub thinned: u64,
}

impl RunTrace {
    /// Assemble from drained recorder outputs (each already sorted);
    /// merges into canonical `(time, flow, kind)` order.
    pub fn assemble(meta: TraceMeta, parts: Vec<(Vec<TraceRecord>, u64, u64)>) -> RunTrace {
        let mut evicted = 0;
        let mut thinned = 0;
        let mut records = Vec::with_capacity(parts.iter().map(|p| p.0.len()).sum());
        for (recs, e, t) in parts {
            records.extend(recs);
            evicted += e;
            thinned += t;
        }
        records.sort_by_key(|r| r.sort_key());
        RunTrace {
            meta,
            records,
            evicted,
            thinned,
        }
    }

    /// Total wire bytes the records occupy when exported in binary form
    /// (excluding headers).
    pub fn wire_bytes(&self) -> u64 {
        self.records.len() as u64 * crate::event::RECORD_BYTES
    }

    /// Records of one kind.
    pub fn of_kind(&self, kind: TraceKind) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter().filter(move |r| r.kind == kind)
    }

    /// Records belonging to one flow.
    pub fn for_flow(&self, flow: u32) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter().filter(move |r| r.flow == flow)
    }

    /// Per-flow congestion-event timestamp trains (index = flow id) —
    /// the input shape of the synchronization index.
    pub fn congestion_event_trains(&self) -> Vec<Vec<SimTime>> {
        let mut trains = vec![Vec::new(); self.meta.flows as usize];
        for r in self.of_kind(TraceKind::Congestion) {
            if let Some(train) = trains.get_mut(r.flow as usize) {
                train.push(r.time);
            }
        }
        trains
    }

    /// Bottleneck drop timestamps, time-sorted — the input shape of the
    /// burstiness score.
    pub fn drop_times(&self) -> Vec<SimTime> {
        self.of_kind(TraceKind::Drop).map(|r| r.time).collect()
    }

    /// One flow's cwnd series as `(time, cwnd_bytes)`.
    pub fn cwnd_series(&self, flow: u32) -> Vec<(SimTime, u64)> {
        self.for_flow(flow)
            .filter(|r| r.kind == TraceKind::Cwnd)
            .map(|r| (r.time, r.a))
            .collect()
    }

    /// The bottleneck queue-depth series as `(time, backlog_bytes)`.
    pub fn queue_depth_series(&self) -> Vec<(SimTime, u64)> {
        self.of_kind(TraceKind::QueueDepth)
            .map(|r| (r.time, r.a))
            .collect()
    }

    /// ECN CE-mark timestamps, time-sorted — the marking analogue of
    /// [`RunTrace::drop_times`].
    pub fn ecn_mark_times(&self) -> Vec<SimTime> {
        self.of_kind(TraceKind::EcnMark).map(|r| r.time).collect()
    }

    /// One hop's queue-depth series as `(time, backlog_bytes)`
    /// (hop 0 = the primary bottleneck's legacy series).
    pub fn hop_depth_series(&self, hop: u32) -> Vec<(SimTime, u64)> {
        if hop == 0 {
            return self.queue_depth_series();
        }
        self.of_kind(TraceKind::HopDepth)
            .filter(|r| r.flow == hop)
            .map(|r| (r.time, r.a))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::QUEUE_FLOW;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn budget_partition_never_exceeds_global() {
        let cfg = TraceConfig {
            enabled: true,
            policy: RetentionPolicy::KeepAll,
            max_bytes: 1_000_000,
            queue_sample_every: 64,
        };
        for n in [1u32, 3, 7, 1000] {
            let total = cfg.queue_budget() + u64::from(n) * cfg.flow_budget(n);
            assert!(total <= cfg.max_bytes, "n={n}: {total}");
        }
        assert_eq!(cfg.flow_budget(0), 0);
    }

    #[test]
    fn flow_recorder_dedups_unchanged_samples() {
        let mut r = FlowRecorder::new(0, RetentionPolicy::KeepAll, 1 << 20, 1);
        for i in 0..10 {
            // cwnd changes only twice; srtt constant; no pacing.
            let cwnd = if i < 5 { 10_000 } else { 20_000 };
            r.on_ack(t(i), cwnd, 5_000, SimDuration::from_millis(20), 0);
        }
        let (recs, _, _) = r.finish();
        let cwnds: Vec<_> = recs.iter().filter(|r| r.kind == TraceKind::Cwnd).collect();
        assert_eq!(cwnds.len(), 2);
        let srtts: Vec<_> = recs.iter().filter(|r| r.kind == TraceKind::Srtt).collect();
        assert_eq!(srtts.len(), 1);
        // pacing 0 == initial last value: nothing recorded.
        assert!(recs.iter().all(|r| r.kind != TraceKind::Pacing));
    }

    #[test]
    fn flow_recorder_records_phase_transitions_only() {
        let mut r = FlowRecorder::new(2, RetentionPolicy::KeepAll, 1 << 20, 1);
        r.on_phase(t(0), "slowstart");
        r.on_phase(t(1), "slowstart");
        r.on_phase(t(2), "avoidance");
        r.on_phase(t(3), "avoidance");
        let (recs, _, _) = r.finish();
        let labels: Vec<String> = recs
            .iter()
            .filter_map(|r| r.phase_label())
            .map(|l| l.as_str().to_string())
            .collect();
        assert_eq!(labels, vec!["slowstart", "avoidance"]);
    }

    #[test]
    fn queue_recorder_samples_every_nth() {
        let mut q = QueueRecorder::new(RetentionPolicy::KeepAll, 1 << 20, 4, 1);
        for i in 0..16 {
            q.on_arrival(t(i), i * 100, i);
        }
        q.on_drop(t(99), 3, 1234);
        let (recs, _, _) = q.finish();
        let depths: Vec<_> = recs
            .iter()
            .filter(|r| r.kind == TraceKind::QueueDepth)
            .collect();
        assert_eq!(depths.len(), 4);
        assert!(depths.iter().all(|r| r.flow == QUEUE_FLOW));
        let drops: Vec<_> = recs.iter().filter(|r| r.kind == TraceKind::Drop).collect();
        assert_eq!(drops.len(), 1);
        assert_eq!(drops[0].flow, 3);
    }

    #[test]
    fn queue_recorder_records_ecn_marks_and_hop_depth() {
        let mut q = QueueRecorder::new(RetentionPolicy::KeepAll, 1 << 20, 2, 1).with_hop(3);
        assert_eq!(q.hop(), 3);
        for i in 0..4 {
            q.on_arrival(t(i), i * 10, i);
        }
        q.on_ecn_mark(t(5), 7, 4321);
        let (recs, _, _) = q.finish();
        let depths: Vec<_> = recs
            .iter()
            .filter(|r| r.kind == TraceKind::HopDepth)
            .collect();
        assert_eq!(depths.len(), 2);
        assert!(depths.iter().all(|r| r.flow == 3));
        assert!(recs.iter().all(|r| r.kind != TraceKind::QueueDepth));
        let marks: Vec<_> = recs
            .iter()
            .filter(|r| r.kind == TraceKind::EcnMark)
            .collect();
        assert_eq!(marks.len(), 1);
        assert_eq!((marks[0].flow, marks[0].a, marks[0].b), (7, 4321, 3));
    }

    #[test]
    fn queue_recorder_zero_every_disables_sampling() {
        let mut q = QueueRecorder::new(RetentionPolicy::KeepAll, 1 << 20, 0, 1);
        for i in 0..16 {
            q.on_arrival(t(i), 100, 1);
        }
        let (recs, _, _) = q.finish();
        assert!(recs.is_empty());
    }

    #[test]
    fn assemble_merges_time_sorted() {
        let meta = TraceMeta {
            scenario: "x".into(),
            seed: 1,
            flows: 2,
        };
        let a = vec![
            TraceRecord::cwnd(t(5), 0, 1, 1),
            TraceRecord::cwnd(t(9), 0, 2, 2),
        ];
        let b = vec![
            TraceRecord::cwnd(t(3), 1, 1, 1),
            TraceRecord::cwnd(t(7), 1, 2, 2),
        ];
        let tr = RunTrace::assemble(meta, vec![(a, 1, 2), (b, 3, 4)]);
        assert_eq!(tr.evicted, 4);
        assert_eq!(tr.thinned, 6);
        let times: Vec<u64> = tr.records.iter().map(|r| r.time.as_nanos()).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
    }

    #[test]
    fn trains_and_series_extractors() {
        let meta = TraceMeta {
            scenario: "x".into(),
            seed: 1,
            flows: 2,
        };
        let recs = vec![
            TraceRecord::congestion(t(1), 0, CongestionKind::FastRecovery),
            TraceRecord::congestion(t(2), 1, CongestionKind::Rto),
            TraceRecord::drop(t(3), 0, 500),
            TraceRecord::queue_depth(t(4), 900, 3),
            TraceRecord::cwnd(t(5), 0, 14_480, 7_240),
        ];
        let tr = RunTrace::assemble(meta, vec![(recs, 0, 0)]);
        let trains = tr.congestion_event_trains();
        assert_eq!(trains.len(), 2);
        assert_eq!(trains[0], vec![t(1)]);
        assert_eq!(trains[1], vec![t(2)]);
        assert_eq!(tr.drop_times(), vec![t(3)]);
        assert_eq!(tr.queue_depth_series(), vec![(t(4), 900)]);
        assert_eq!(tr.cwnd_series(0), vec![(t(5), 14_480)]);
        assert_eq!(tr.wire_bytes(), 5 * crate::event::RECORD_BYTES);
    }
}
