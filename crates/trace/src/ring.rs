//! Bounded storage: retention-policy ring buffers and a generic bounded
//! log.
//!
//! The flight recorder's core guarantee is a **hard memory bound**: no
//! matter how long a run lasts or how many events fire, a ring never holds
//! more than its configured capacity. Two mechanisms compose:
//!
//! * a **retention policy** decides which offered *samples* are admitted
//!   (all of them, every n-th, or a uniform random subset), and
//! * **drop-oldest eviction** enforces the capacity for whatever was
//!   admitted — newest data survives, which is what a flight recorder
//!   wants.
//!
//! Discrete *events* (phase transitions, congestion events, drops) bypass
//! the policy — thinning them would corrupt event-rate metrics — but still
//! respect the capacity.

use crate::event::{TraceRecord, RECORD_BYTES};
use ccsim_sim::{SnapError, SnapReader, SnapWriter};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// How a ring thins dense sample streams.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum RetentionPolicy {
    /// Admit every sample (bounded only by the ring capacity).
    #[default]
    KeepAll,
    /// Admit every n-th sample (n = 0 behaves like n = 1).
    Decimate(u32),
    /// Keep a uniform random subset of at most k samples (Algorithm R).
    /// Deterministic for a given ring seed.
    Reservoir(u32),
}

/// SplitMix64 step — the deterministic source for reservoir replacement.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A bounded buffer of [`TraceRecord`]s with a retention policy.
#[derive(Debug, Clone)]
pub struct SampleRing {
    buf: VecDeque<TraceRecord>,
    /// Hard record capacity (derived from the byte budget).
    cap: usize,
    policy: RetentionPolicy,
    /// Samples offered so far (policy input).
    seen: u64,
    /// Admitted then evicted by the capacity bound.
    evicted: u64,
    /// Rejected by the retention policy.
    thinned: u64,
    rng: u64,
}

impl SampleRing {
    /// A ring holding at most `budget_bytes` worth of records (at least
    /// one record, so a tiny budget still records *something*). `seed`
    /// drives reservoir replacement only.
    pub fn new(policy: RetentionPolicy, budget_bytes: u64, seed: u64) -> SampleRing {
        let cap = (budget_bytes / RECORD_BYTES).max(1) as usize;
        SampleRing {
            buf: VecDeque::new(),
            cap,
            policy,
            seen: 0,
            evicted: 0,
            thinned: 0,
            rng: seed,
        }
    }

    /// Offer a *sample* — subject to the retention policy.
    pub fn offer(&mut self, rec: TraceRecord) {
        self.seen += 1;
        match self.policy {
            RetentionPolicy::KeepAll => self.push(rec),
            RetentionPolicy::Decimate(n) => {
                if (self.seen - 1).is_multiple_of(u64::from(n.max(1))) {
                    self.push(rec);
                } else {
                    self.thinned += 1;
                }
            }
            RetentionPolicy::Reservoir(k) => {
                let target = (k as usize).min(self.cap);
                if self.buf.len() < target {
                    self.buf.push_back(rec);
                } else if target == 0 {
                    self.thinned += 1;
                } else {
                    // Algorithm R: admit with probability target/seen.
                    let j = (splitmix64(&mut self.rng) % self.seen) as usize;
                    if j < target {
                        self.buf[j] = rec;
                    }
                    self.thinned += 1;
                }
            }
        }
    }

    /// Push an *event* — bypasses the policy, respects the capacity.
    pub fn push(&mut self, rec: TraceRecord) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.evicted += 1;
        }
        self.buf.push_back(rec);
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True iff nothing is held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Hard record capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Current contents in wire bytes (never exceeds the budget rounded
    /// down to a whole record, except for the one-record minimum).
    pub fn bytes(&self) -> u64 {
        self.buf.len() as u64 * RECORD_BYTES
    }

    /// Approximate heap footprint of the ring itself: the allocated buffer
    /// at its in-memory record size (not the wire size), plus the struct.
    /// Feeds the profiler's `trace/rings` memory account.
    pub fn memory_bytes(&self) -> u64 {
        (std::mem::size_of::<Self>() + self.buf.capacity() * std::mem::size_of::<TraceRecord>())
            as u64
    }

    /// Records admitted then evicted by the capacity bound.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Samples rejected by the retention policy.
    pub fn thinned(&self) -> u64 {
        self.thinned
    }

    /// Consume the ring, returning its records sorted by time (reservoir
    /// retention scrambles insertion order; the merged trace is canonical
    /// time order).
    pub fn into_sorted_vec(self) -> Vec<TraceRecord> {
        let mut v: Vec<TraceRecord> = self.buf.into();
        v.sort_by_key(|r| r.sort_key());
        v
    }

    /// Serialize runtime state for a checkpoint. Capacity and policy are
    /// configuration (rebuilt from the scenario); the buffer is written in
    /// insertion order — reservoir replacement indexes positions, so the
    /// order itself is state.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.usize(self.buf.len());
        for rec in &self.buf {
            rec.save_state(w);
        }
        w.u64(self.seen);
        w.u64(self.evicted);
        w.u64(self.thinned);
        w.u64(self.rng);
    }

    /// Overlay checkpointed state onto a ring freshly built with the same
    /// policy/budget/seed configuration.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.usize()?;
        if n > self.cap {
            return Err(SnapError::Corrupt(format!(
                "ring holds {n} records but capacity is {}",
                self.cap
            )));
        }
        let mut buf = VecDeque::with_capacity(n);
        for _ in 0..n {
            buf.push_back(TraceRecord::load_state(r)?);
        }
        self.buf = buf;
        self.seen = r.u64()?;
        self.evicted = r.u64()?;
        self.thinned = r.u64()?;
        self.rng = r.u64()?;
        Ok(())
    }
}

/// A generic drop-oldest bounded log — the replacement for the unbounded
/// `Vec` diagnostic logs that predate the flight recorder (sender
/// congestion-event logs, cwnd traces).
#[derive(Debug, Clone)]
pub struct BoundedLog<T> {
    buf: VecDeque<T>,
    cap: usize,
    evicted: u64,
}

/// Default capacity for legacy diagnostic logs: 65 536 entries. At 8–16
/// bytes per entry that is 0.5–1 MiB per flow — two orders of magnitude
/// below the unbounded worst case (a CoreScale Paper-fidelity flow logs
/// millions of events), while far exceeding what any analysis window
/// consumes.
pub const DEFAULT_LOG_CAP: usize = 65_536;

impl<T> Default for BoundedLog<T> {
    fn default() -> Self {
        BoundedLog::new(DEFAULT_LOG_CAP)
    }
}

impl<T> BoundedLog<T> {
    /// An empty log retaining at most `cap` entries (`cap` ≥ 1).
    pub fn new(cap: usize) -> BoundedLog<T> {
        BoundedLog {
            buf: VecDeque::new(),
            cap: cap.max(1),
            evicted: 0,
        }
    }

    /// Append, evicting the oldest entry when full.
    pub fn push(&mut self, value: T) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.evicted += 1;
        }
        self.buf.push_back(value);
    }

    /// Iterate oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Retention capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Entries evicted to honor the capacity.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Remove all entries (capacity and eviction count are kept).
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Approximate heap footprint (allocated buffer + struct).
    pub fn memory_bytes(&self) -> u64 {
        (std::mem::size_of::<Self>() + self.buf.capacity() * std::mem::size_of::<T>()) as u64
    }

    /// Serialize runtime state for a checkpoint; `save_entry` encodes one
    /// retained entry. Capacity is configuration and not written.
    pub fn save_state(&self, w: &mut SnapWriter, mut save_entry: impl FnMut(&mut SnapWriter, &T)) {
        w.usize(self.buf.len());
        for entry in &self.buf {
            save_entry(w, entry);
        }
        w.u64(self.evicted);
    }

    /// Overlay checkpointed state onto a log built with the same capacity.
    pub fn load_state<'a>(
        &mut self,
        r: &mut SnapReader<'a>,
        mut load_entry: impl FnMut(&mut SnapReader<'a>) -> Result<T, SnapError>,
    ) -> Result<(), SnapError> {
        let n = r.usize()?;
        if n > self.cap {
            return Err(SnapError::Corrupt(format!(
                "log holds {n} entries but capacity is {}",
                self.cap
            )));
        }
        let mut buf = VecDeque::with_capacity(n);
        for _ in 0..n {
            buf.push_back(load_entry(r)?);
        }
        self.buf = buf;
        self.evicted = r.u64()?;
        Ok(())
    }
}

impl<T: Clone> BoundedLog<T> {
    /// Copy the retained entries into a `Vec`, oldest first.
    pub fn to_vec(&self) -> Vec<T> {
        self.buf.iter().cloned().collect()
    }
}

// The offline serde stand-in's traits are markers (vendor/README.md);
// under real serde these become `#[serde(transparent)]`-style impls over
// the retained entries.
impl<T: Serialize> Serialize for BoundedLog<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for BoundedLog<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_sim::SimTime;

    fn rec(i: u64) -> TraceRecord {
        TraceRecord::cwnd(SimTime::from_nanos(i), 0, i, 0)
    }

    #[test]
    fn keep_all_respects_capacity_drop_oldest() {
        let mut r = SampleRing::new(RetentionPolicy::KeepAll, 10 * RECORD_BYTES, 1);
        for i in 0..25 {
            r.offer(rec(i));
        }
        assert_eq!(r.len(), 10);
        assert_eq!(r.evicted(), 15);
        let v = r.into_sorted_vec();
        assert_eq!(v[0].a, 15, "oldest surviving record");
        assert_eq!(v[9].a, 24, "newest record survives");
    }

    #[test]
    fn decimate_keeps_every_nth() {
        let mut r = SampleRing::new(RetentionPolicy::Decimate(4), 100 * RECORD_BYTES, 1);
        for i in 0..20 {
            r.offer(rec(i));
        }
        assert_eq!(r.len(), 5);
        assert_eq!(r.thinned(), 15);
        let kept: Vec<u64> = r.into_sorted_vec().iter().map(|x| x.a).collect();
        assert_eq!(kept, vec![0, 4, 8, 12, 16]);
    }

    #[test]
    fn decimate_zero_behaves_like_one() {
        let mut r = SampleRing::new(RetentionPolicy::Decimate(0), 100 * RECORD_BYTES, 1);
        for i in 0..5 {
            r.offer(rec(i));
        }
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn reservoir_holds_k_uniformish() {
        let mut r = SampleRing::new(RetentionPolicy::Reservoir(50), 1000 * RECORD_BYTES, 42);
        for i in 0..10_000 {
            r.offer(rec(i));
        }
        assert_eq!(r.len(), 50);
        let v = r.into_sorted_vec();
        // A uniform subset spans the stream: some early, some late.
        assert!(v.first().unwrap().a < 2_000, "early records represented");
        assert!(v.last().unwrap().a > 8_000, "late records represented");
    }

    #[test]
    fn reservoir_is_deterministic_per_seed() {
        let run = |seed| {
            let mut r = SampleRing::new(RetentionPolicy::Reservoir(20), 100 * RECORD_BYTES, seed);
            for i in 0..1_000 {
                r.offer(rec(i));
            }
            r.into_sorted_vec()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn reservoir_capped_by_budget() {
        let mut r = SampleRing::new(RetentionPolicy::Reservoir(1_000), 10 * RECORD_BYTES, 1);
        for i in 0..500 {
            r.offer(rec(i));
        }
        assert_eq!(r.len(), 10, "budget wins over k");
    }

    #[test]
    fn events_bypass_policy() {
        let mut r = SampleRing::new(RetentionPolicy::Decimate(1_000), 100 * RECORD_BYTES, 1);
        for i in 0..10 {
            r.push(rec(i));
        }
        assert_eq!(r.len(), 10, "pushed events are never thinned");
    }

    #[test]
    fn minimum_one_record() {
        let mut r = SampleRing::new(RetentionPolicy::KeepAll, 0, 1);
        r.offer(rec(1));
        assert_eq!(r.len(), 1);
        assert_eq!(r.capacity(), 1);
    }

    #[test]
    fn bounded_log_drops_oldest() {
        let mut l: BoundedLog<u64> = BoundedLog::new(3);
        for i in 0..7 {
            l.push(i);
        }
        assert_eq!(l.to_vec(), vec![4, 5, 6]);
        assert_eq!(l.evicted(), 4);
        assert_eq!(l.capacity(), 3);
        l.clear();
        assert!(l.is_empty());
    }

    #[test]
    fn bounded_log_default_cap() {
        let l: BoundedLog<u8> = BoundedLog::default();
        assert_eq!(l.capacity(), DEFAULT_LOG_CAP);
    }
}
