//! Wall-clock profiling spans, aggregated per label.
//!
//! The paper's testbed lived on knowing where its *own* time went (BESS
//! forwarding vs. tcpprobe overhead vs. bookkeeping); the simulator's
//! equivalent is coarse wall-clock scopes around the runner's phases —
//! build, warm-up, measurement slices, collection — cheap enough to be
//! always-on when a run is observed, and aggregated per label so a
//! thousand measurement slices collapse into one row.
//!
//! Usage:
//!
//! ```
//! use ccsim_telemetry::Profiler;
//!
//! let prof = Profiler::new();
//! {
//!     let _span = prof.span("build");
//!     // ... work ...
//! } // recorded on drop
//! assert_eq!(prof.stats()[0].0, "build");
//! ```
//!
//! Spans use real time ([`std::time::Instant`]) and are therefore
//! non-deterministic — they feed dashboards and manifests, never the
//! simulation itself.

use crate::registry::Registry;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Aggregated wall-clock statistics for one span label.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Number of completed spans.
    pub count: u64,
    /// Total wall-clock nanoseconds across all spans.
    pub total_nanos: u64,
    /// Longest single span, nanoseconds.
    pub max_nanos: u64,
}

impl SpanStats {
    /// Total time as seconds.
    pub fn total_secs(&self) -> f64 {
        self.total_nanos as f64 / 1e9
    }

    /// Mean span length in seconds (0 when no spans completed).
    pub fn mean_secs(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_secs() / self.count as f64
        }
    }
}

/// Per-label wall-clock aggregation. Labels are `&'static str` so the
/// hot path never allocates; a `BTreeMap` keeps export order stable.
#[derive(Debug, Default)]
pub struct Profiler {
    spans: Mutex<BTreeMap<&'static str, SpanStats>>,
}

impl Profiler {
    /// An empty profiler.
    pub fn new() -> Profiler {
        Profiler::default()
    }

    /// Open a span; it records itself into this profiler when dropped.
    pub fn span<'a>(&'a self, label: &'static str) -> ProfSpan<'a> {
        ProfSpan {
            profiler: self,
            label,
            start: Instant::now(),
            done: false,
        }
    }

    /// Record an already-measured duration under `label`.
    pub fn record(&self, label: &'static str, elapsed: Duration) {
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        let mut spans = self.spans.lock().unwrap();
        let s = spans.entry(label).or_default();
        s.count += 1;
        s.total_nanos = s.total_nanos.saturating_add(nanos);
        s.max_nanos = s.max_nanos.max(nanos);
    }

    /// Snapshot of all labels and their aggregates, in label order.
    pub fn stats(&self) -> Vec<(&'static str, SpanStats)> {
        self.spans
            .lock()
            .unwrap()
            .iter()
            .map(|(&l, &s)| (l, s))
            .collect()
    }

    /// Publish every span aggregate into `registry` as the
    /// `ccsim_phase_wall_nanos_total` / `ccsim_phase_calls_total`
    /// counter families, labeled by phase.
    pub fn export_into(&self, registry: &Registry) {
        for (label, stats) in self.stats() {
            registry
                .counter_with(
                    "ccsim_phase_wall_nanos_total",
                    "Wall-clock nanoseconds spent in each runner phase",
                    &[("phase", label)],
                )
                .add(stats.total_nanos);
            registry
                .counter_with(
                    "ccsim_phase_calls_total",
                    "Completed profiling spans per runner phase",
                    &[("phase", label)],
                )
                .add(stats.count);
        }
    }
}

/// An open profiling scope; records its elapsed wall time on drop.
#[must_use = "a ProfSpan records on drop; binding it to _ drops it immediately"]
pub struct ProfSpan<'a> {
    profiler: &'a Profiler,
    label: &'static str,
    start: Instant,
    done: bool,
}

impl ProfSpan<'_> {
    /// Close the span early (otherwise it closes on drop).
    pub fn finish(mut self) {
        self.close();
    }

    fn close(&mut self) {
        if !self.done {
            self.done = true;
            self.profiler.record(self.label, self.start.elapsed());
        }
    }
}

impl Drop for ProfSpan<'_> {
    fn drop(&mut self) {
        self.close();
    }
}

/// Register a run's [`ccsim_prof::Profile`] into `registry` so the
/// per-component attribution rides in the same Prometheus dump as the
/// run metrics. Families:
///
/// | family | kind | labels |
/// |---|---|---|
/// | `ccsim_prof_events_total` | counter | `class`, `kind` |
/// | `ccsim_prof_sampled_nanos_total` | counter | `class`, `kind` |
/// | `ccsim_wheel_level_high_water` | gauge | `level` |
/// | `ccsim_wheel_cascades_total` | counter | — |
/// | `ccsim_wheel_cascaded_entries_total` | counter | — |
/// | `ccsim_wheel_cancels_total` | counter | — |
/// | `ccsim_wheel_cancel_misses_total` | counter | — |
/// | `ccsim_mem_bytes` | gauge | `pool` |
/// | `ccsim_dispatch_nanos_total` | counter | — |
///
/// Zero-count cells are skipped so a profiled run's exposition stays
/// proportional to the activity it actually saw.
pub fn export_profile_into(profile: &ccsim_prof::Profile, registry: &Registry) {
    let ev = &profile.events;
    for (ci, class) in ev.classes.iter().enumerate() {
        for (ki, kind) in ev.kinds.iter().enumerate() {
            let idx = ci * ev.kinds.len() + ki;
            let (count, nanos) = (ev.counts[idx], ev.nanos[idx]);
            if count == 0 {
                continue;
            }
            let labels = [("class", class.as_str()), ("kind", kind.as_str())];
            registry
                .counter_with(
                    "ccsim_prof_events_total",
                    "Engine events dispatched, by component class and event kind",
                    &labels,
                )
                .add(count);
            registry
                .counter_with(
                    "ccsim_prof_sampled_nanos_total",
                    "Strided-sample wall nanoseconds attributed to the cell",
                    &labels,
                )
                .add(nanos);
        }
    }
    for (level, &hw) in profile.wheel.level_high_water.iter().enumerate() {
        if hw == 0 {
            continue;
        }
        let level = level.to_string();
        registry
            .gauge_with(
                "ccsim_wheel_level_high_water",
                "Peak live entries per timer-wheel level",
                &[("level", level.as_str())],
            )
            .set(hw as f64);
    }
    registry
        .counter(
            "ccsim_wheel_cascades_total",
            "Timer-wheel higher-level bucket drains (cascades)",
        )
        .add(profile.wheel.cascades);
    registry
        .counter(
            "ccsim_wheel_cascaded_entries_total",
            "Entries re-filed to lower wheel levels by cascades",
        )
        .add(profile.wheel.cascaded_entries);
    registry
        .counter(
            "ccsim_wheel_cancels_total",
            "Timer cancellations that found a live entry",
        )
        .add(profile.wheel.cancels);
    registry
        .counter(
            "ccsim_wheel_cancel_misses_total",
            "Timer cancellations whose entry had already fired or died",
        )
        .add(profile.wheel.cancel_misses);
    for g in &profile.memory {
        registry
            .gauge_with(
                "ccsim_mem_bytes",
                "Approximate heap bytes held per subsystem pool",
                &[("pool", g.name.as_str())],
            )
            .set(g.bytes as f64);
    }
    registry
        .counter(
            "ccsim_dispatch_nanos_total",
            "Wall nanoseconds spent inside engine dispatch",
        )
        .add(profile.dispatch_nanos);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_aggregate_per_label() {
        let p = Profiler::new();
        for _ in 0..3 {
            let _s = p.span("slice");
        }
        p.span("build").finish();
        let stats = p.stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].0, "build");
        assert_eq!(stats[0].1.count, 1);
        assert_eq!(stats[1].0, "slice");
        assert_eq!(stats[1].1.count, 3);
        assert!(stats[1].1.max_nanos <= stats[1].1.total_nanos);
    }

    #[test]
    fn record_accumulates_totals_and_max() {
        let p = Profiler::new();
        p.record("x", Duration::from_nanos(10));
        p.record("x", Duration::from_nanos(30));
        let (_, s) = p.stats()[0];
        assert_eq!(s.count, 2);
        assert_eq!(s.total_nanos, 40);
        assert_eq!(s.max_nanos, 30);
        assert!((s.mean_secs() - 20e-9).abs() < 1e-15);
    }

    #[test]
    fn profile_export_emits_expected_families() {
        let p = ccsim_prof::Profile::from_json(
            "{\"prof_classes\":[\"link\",\"sender\"],\"prof_kinds\":[\"data\",\"ack\"],\
             \"prof_stride\":1024,\"prof_counts\":[5,0,7,8],\"prof_nanos\":[1,0,3,4],\
             \"prof_samples\":[1,0,1,1],\"wheel_high_water\":[9,2,0,0,0,0,0,0,0],\
             \"wheel_cascades\":2,\"wheel_cascaded\":3,\
             \"wheel_batch_hist\":[1,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0],\"wheel_cancels\":4,\
             \"wheel_cancel_misses\":5,\"wheel_cancellable\":6,\
             \"mem_accounts\":[{\"pool\":\"tcp/senders\",\"pool_bytes\":4096}],\
             \"dispatch_nanos\":1000000,\"prof_flows\":2}",
        )
        .unwrap();
        let r = Registry::new();
        export_profile_into(&p, &r);
        let text = crate::prometheus::write_exposition(&r);
        crate::validate_exposition(&text).unwrap();
        assert!(text.contains("ccsim_prof_events_total{class=\"link\",kind=\"data\"} 5"));
        // The zero-count (link, ack) cell is skipped.
        assert!(!text.contains("class=\"link\",kind=\"ack\""));
        assert!(text.contains("ccsim_wheel_level_high_water{level=\"1\"} 2"));
        assert!(text.contains("ccsim_mem_bytes{pool=\"tcp/senders\"} 4096"));
        assert!(text.contains("ccsim_dispatch_nanos_total 1000000"));
    }

    #[test]
    fn export_produces_labeled_counters() {
        let p = Profiler::new();
        p.record("build", Duration::from_micros(5));
        let r = Registry::new();
        p.export_into(&r);
        assert_eq!(r.len(), 2);
        let entries = r.entries();
        assert!(entries
            .iter()
            .any(|e| e.name == "ccsim_phase_wall_nanos_total"
                && e.labels == vec![("phase".to_string(), "build".to_string())]));
    }
}
