//! Wall-clock profiling spans, aggregated per label.
//!
//! The paper's testbed lived on knowing where its *own* time went (BESS
//! forwarding vs. tcpprobe overhead vs. bookkeeping); the simulator's
//! equivalent is coarse wall-clock scopes around the runner's phases —
//! build, warm-up, measurement slices, collection — cheap enough to be
//! always-on when a run is observed, and aggregated per label so a
//! thousand measurement slices collapse into one row.
//!
//! Usage:
//!
//! ```
//! use ccsim_telemetry::Profiler;
//!
//! let prof = Profiler::new();
//! {
//!     let _span = prof.span("build");
//!     // ... work ...
//! } // recorded on drop
//! assert_eq!(prof.stats()[0].0, "build");
//! ```
//!
//! Spans use real time ([`std::time::Instant`]) and are therefore
//! non-deterministic — they feed dashboards and manifests, never the
//! simulation itself.

use crate::registry::Registry;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Aggregated wall-clock statistics for one span label.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Number of completed spans.
    pub count: u64,
    /// Total wall-clock nanoseconds across all spans.
    pub total_nanos: u64,
    /// Longest single span, nanoseconds.
    pub max_nanos: u64,
}

impl SpanStats {
    /// Total time as seconds.
    pub fn total_secs(&self) -> f64 {
        self.total_nanos as f64 / 1e9
    }

    /// Mean span length in seconds (0 when no spans completed).
    pub fn mean_secs(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_secs() / self.count as f64
        }
    }
}

/// Per-label wall-clock aggregation. Labels are `&'static str` so the
/// hot path never allocates; a `BTreeMap` keeps export order stable.
#[derive(Debug, Default)]
pub struct Profiler {
    spans: Mutex<BTreeMap<&'static str, SpanStats>>,
}

impl Profiler {
    /// An empty profiler.
    pub fn new() -> Profiler {
        Profiler::default()
    }

    /// Open a span; it records itself into this profiler when dropped.
    pub fn span<'a>(&'a self, label: &'static str) -> ProfSpan<'a> {
        ProfSpan {
            profiler: self,
            label,
            start: Instant::now(),
            done: false,
        }
    }

    /// Record an already-measured duration under `label`.
    pub fn record(&self, label: &'static str, elapsed: Duration) {
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        let mut spans = self.spans.lock().unwrap();
        let s = spans.entry(label).or_default();
        s.count += 1;
        s.total_nanos = s.total_nanos.saturating_add(nanos);
        s.max_nanos = s.max_nanos.max(nanos);
    }

    /// Snapshot of all labels and their aggregates, in label order.
    pub fn stats(&self) -> Vec<(&'static str, SpanStats)> {
        self.spans
            .lock()
            .unwrap()
            .iter()
            .map(|(&l, &s)| (l, s))
            .collect()
    }

    /// Publish every span aggregate into `registry` as the
    /// `ccsim_phase_wall_nanos_total` / `ccsim_phase_calls_total`
    /// counter families, labeled by phase.
    pub fn export_into(&self, registry: &Registry) {
        for (label, stats) in self.stats() {
            registry
                .counter_with(
                    "ccsim_phase_wall_nanos_total",
                    "Wall-clock nanoseconds spent in each runner phase",
                    &[("phase", label)],
                )
                .add(stats.total_nanos);
            registry
                .counter_with(
                    "ccsim_phase_calls_total",
                    "Completed profiling spans per runner phase",
                    &[("phase", label)],
                )
                .add(stats.count);
        }
    }
}

/// An open profiling scope; records its elapsed wall time on drop.
#[must_use = "a ProfSpan records on drop; binding it to _ drops it immediately"]
pub struct ProfSpan<'a> {
    profiler: &'a Profiler,
    label: &'static str,
    start: Instant,
    done: bool,
}

impl ProfSpan<'_> {
    /// Close the span early (otherwise it closes on drop).
    pub fn finish(mut self) {
        self.close();
    }

    fn close(&mut self) {
        if !self.done {
            self.done = true;
            self.profiler.record(self.label, self.start.elapsed());
        }
    }
}

impl Drop for ProfSpan<'_> {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_aggregate_per_label() {
        let p = Profiler::new();
        for _ in 0..3 {
            let _s = p.span("slice");
        }
        p.span("build").finish();
        let stats = p.stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].0, "build");
        assert_eq!(stats[0].1.count, 1);
        assert_eq!(stats[1].0, "slice");
        assert_eq!(stats[1].1.count, 3);
        assert!(stats[1].1.max_nanos <= stats[1].1.total_nanos);
    }

    #[test]
    fn record_accumulates_totals_and_max() {
        let p = Profiler::new();
        p.record("x", Duration::from_nanos(10));
        p.record("x", Duration::from_nanos(30));
        let (_, s) = p.stats()[0];
        assert_eq!(s.count, 2);
        assert_eq!(s.total_nanos, 40);
        assert_eq!(s.max_nanos, 30);
        assert!((s.mean_secs() - 20e-9).abs() < 1e-15);
    }

    #[test]
    fn export_produces_labeled_counters() {
        let p = Profiler::new();
        p.record("build", Duration::from_micros(5));
        let r = Registry::new();
        p.export_into(&r);
        assert_eq!(r.len(), 2);
        let entries = r.entries();
        assert!(entries
            .iter()
            .any(|e| e.name == "ccsim_phase_wall_nanos_total"
                && e.labels == vec![("phase".to_string(), "build".to_string())]));
    }
}
