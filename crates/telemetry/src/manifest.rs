//! Per-run provenance manifests.
//!
//! The paper's pipeline kept per-experiment bookkeeping across thousands
//! of runs (§3); CoCo-Beholder makes the same point for any CC evaluation
//! harness. The [`RunManifest`] is ccsim's version: one small JSON file
//! written next to a run's outputs that answers, months later, *what ran,
//! from which configuration, how fast, and what it produced* — without
//! re-opening multi-megabyte traces.
//!
//! The JSON is hand-rolled on both sides for the same reason the trace
//! JSONL exporter is (`vendor/README.md`): the offline serde stand-in
//! provides derive macros but no serializer. `f64` fields print with
//! Rust's shortest-round-trip `Display` and parse back bit-exact, so
//! [`RunManifest::to_json`] → [`RunManifest::from_json`] is lossless
//! (asserted in tests and in CI's self-observability smoke job).

use ccsim_sim::jsonfmt::{escape_into, json_f64};
use std::io;

/// 64-bit FNV-1a hash — the workspace's canonical digest for scenario
/// configurations and run outcomes (stable across platforms, trivially
/// reimplementable by external tooling).
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Machine-readable provenance record for one simulator run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Scenario label.
    pub scenario: String,
    /// Master seed.
    pub seed: u64,
    /// Number of flows.
    pub flows: u32,
    /// FNV-1a digest (hex) of the full scenario configuration.
    pub config_digest: String,
    /// FNV-1a digest (hex) of the canonical `RunOutcome` export. Two runs
    /// with equal digests produced identical results — the metrics
    /// inertness check compares exactly this field.
    pub outcome_digest: String,
    /// Simulated seconds covered (warm-up + measurement).
    pub sim_secs: f64,
    /// Wall-clock seconds the run took.
    pub wall_secs: f64,
    /// Sim-time / wall-time ratio (how much faster than real time).
    pub sim_wall_ratio: f64,
    /// Engine events processed.
    pub events_processed: u64,
    /// Engine events per wall-clock second.
    pub events_per_sec: f64,
    /// Peak bottleneck queue occupancy, bytes.
    pub peak_queue_bytes: u64,
    /// Peak pending events in the engine's queue.
    pub peak_pending_events: u64,
    /// Wire bytes of the recorded flight-recorder trace (0 when tracing
    /// was off).
    pub trace_bytes: u64,
    /// Bytes of the Prometheus metrics dump for this run.
    pub metric_bytes: u64,
    /// Number of metric series registered for this run.
    pub metric_series: u64,
    /// Whether the convergence rule stopped the run early.
    pub converged: bool,
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn field_raw<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = json.find(&pat)? + pat.len();
    let rest = json[start..].trim_start();
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn field_u64(json: &str, key: &str) -> io::Result<u64> {
    field_raw(json, key)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| bad(format!("manifest missing/invalid \"{key}\"")))
}

fn field_f64(json: &str, key: &str) -> io::Result<f64> {
    field_raw(json, key)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| bad(format!("manifest missing/invalid \"{key}\"")))
}

fn field_bool(json: &str, key: &str) -> io::Result<bool> {
    match field_raw(json, key) {
        Some("true") => Ok(true),
        Some("false") => Ok(false),
        _ => Err(bad(format!("manifest missing/invalid \"{key}\""))),
    }
}

fn field_str(json: &str, key: &str) -> io::Result<String> {
    let pat = format!("\"{key}\":");
    let start = json
        .find(&pat)
        .ok_or_else(|| bad(format!("manifest missing \"{key}\"")))?
        + pat.len();
    let rest = json[start..].trim_start();
    let rest = rest
        .strip_prefix('"')
        .ok_or_else(|| bad(format!("\"{key}\" is not a string")))?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Ok(out),
            '\\' => match chars.next().ok_or_else(|| bad("truncated escape"))? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let v = u32::from_str_radix(&hex, 16).map_err(|_| bad("bad \\u escape"))?;
                    out.push(char::from_u32(v).ok_or_else(|| bad("bad \\u escape"))?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    Err(bad(format!("unterminated string for \"{key}\"")))
}

impl RunManifest {
    /// Serialize to a single pretty-enough JSON object (one field per
    /// line, so diffs between runs read naturally).
    pub fn to_json(&self) -> String {
        let mut scenario = String::new();
        escape_into(&self.scenario, &mut scenario);
        let mut s = String::with_capacity(512);
        s.push_str("{\n");
        s.push_str(&format!("  \"scenario\": \"{scenario}\",\n"));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"flows\": {},\n", self.flows));
        s.push_str(&format!(
            "  \"config_digest\": \"{}\",\n",
            self.config_digest
        ));
        s.push_str(&format!(
            "  \"outcome_digest\": \"{}\",\n",
            self.outcome_digest
        ));
        s.push_str(&format!("  \"sim_secs\": {},\n", json_f64(self.sim_secs)));
        s.push_str(&format!("  \"wall_secs\": {},\n", json_f64(self.wall_secs)));
        s.push_str(&format!(
            "  \"sim_wall_ratio\": {},\n",
            json_f64(self.sim_wall_ratio)
        ));
        s.push_str(&format!(
            "  \"events_processed\": {},\n",
            self.events_processed
        ));
        s.push_str(&format!(
            "  \"events_per_sec\": {},\n",
            json_f64(self.events_per_sec)
        ));
        s.push_str(&format!(
            "  \"peak_queue_bytes\": {},\n",
            self.peak_queue_bytes
        ));
        s.push_str(&format!(
            "  \"peak_pending_events\": {},\n",
            self.peak_pending_events
        ));
        s.push_str(&format!("  \"trace_bytes\": {},\n", self.trace_bytes));
        s.push_str(&format!("  \"metric_bytes\": {},\n", self.metric_bytes));
        s.push_str(&format!("  \"metric_series\": {},\n", self.metric_series));
        s.push_str(&format!("  \"converged\": {}\n", self.converged));
        s.push('}');
        s
    }

    /// Single-line variant of [`RunManifest::to_json`], for embedding the
    /// manifest inside line-oriented formats (the campaign run ledger is
    /// one manifest-bearing JSON object per line). Parses back with
    /// [`RunManifest::from_json`] exactly like the pretty form.
    pub fn to_json_inline(&self) -> String {
        let mut out = String::with_capacity(512);
        for (i, line) in self.to_json().lines().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(line.trim_start());
        }
        out
    }

    /// Parse a manifest produced by [`RunManifest::to_json`] (field order
    /// is not required; unknown fields are ignored).
    pub fn from_json(json: &str) -> io::Result<RunManifest> {
        Ok(RunManifest {
            scenario: field_str(json, "scenario")?,
            seed: field_u64(json, "seed")?,
            flows: field_u64(json, "flows")? as u32,
            config_digest: field_str(json, "config_digest")?,
            outcome_digest: field_str(json, "outcome_digest")?,
            sim_secs: field_f64(json, "sim_secs")?,
            wall_secs: field_f64(json, "wall_secs")?,
            sim_wall_ratio: field_f64(json, "sim_wall_ratio")?,
            events_processed: field_u64(json, "events_processed")?,
            events_per_sec: field_f64(json, "events_per_sec")?,
            peak_queue_bytes: field_u64(json, "peak_queue_bytes")?,
            peak_pending_events: field_u64(json, "peak_pending_events")?,
            trace_bytes: field_u64(json, "trace_bytes")?,
            metric_bytes: field_u64(json, "metric_bytes")?,
            metric_series: field_u64(json, "metric_series")?,
            converged: field_bool(json, "converged")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunManifest {
        RunManifest {
            scenario: "Core \"quoted\" \\ name".into(),
            seed: 42,
            flows: 1000,
            config_digest: format!("{:016x}", fnv1a_64(b"config")),
            outcome_digest: format!("{:016x}", fnv1a_64(b"outcome")),
            sim_secs: 160.0,
            wall_secs: 12.345678901234567,
            sim_wall_ratio: 12.960001,
            events_processed: 987_654_321,
            events_per_sec: 8.0000001e7,
            peak_queue_bytes: 250_000_000,
            peak_pending_events: 12_345,
            trace_bytes: 0,
            metric_bytes: 4096,
            metric_series: 23,
            converged: true,
        }
    }

    #[test]
    fn json_round_trips_bit_exact() {
        let m = sample();
        let back = RunManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
        // Floats survive exactly (shortest-round-trip Display).
        assert_eq!(back.wall_secs.to_bits(), m.wall_secs.to_bits());
        assert_eq!(back.events_per_sec.to_bits(), m.events_per_sec.to_bits());
    }

    #[test]
    fn inline_form_is_one_line_and_round_trips() {
        let m = sample();
        let inline = m.to_json_inline();
        assert!(!inline.contains('\n'));
        assert_eq!(RunManifest::from_json(&inline).unwrap(), m);
    }

    #[test]
    fn non_finite_floats_degrade_to_zero() {
        let mut m = sample();
        m.sim_wall_ratio = f64::INFINITY;
        let back = RunManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back.sim_wall_ratio, 0.0);
    }

    #[test]
    fn rejects_missing_fields() {
        assert!(RunManifest::from_json("{}").is_err());
        assert!(RunManifest::from_json("{\"scenario\":\"x\"}").is_err());
    }

    #[test]
    fn fnv_is_stable() {
        // Reference vectors for the canonical 64-bit FNV-1a.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a_64(b"ab"), fnv1a_64(b"ba"));
    }
}
