//! Per-run provenance manifests.
//!
//! The paper's pipeline kept per-experiment bookkeeping across thousands
//! of runs (§3); CoCo-Beholder makes the same point for any CC evaluation
//! harness. The [`RunManifest`] is ccsim's version: one small JSON file
//! written next to a run's outputs that answers, months later, *what ran,
//! from which configuration, how fast, and what it produced* — without
//! re-opening multi-megabyte traces.
//!
//! The JSON is hand-rolled on both sides for the same reason the trace
//! JSONL exporter is (`vendor/README.md`): the offline serde stand-in
//! provides derive macros but no serializer. `f64` fields print with
//! Rust's shortest-round-trip `Display` and parse back bit-exact, so
//! [`RunManifest::to_json`] → [`RunManifest::from_json`] is lossless
//! (asserted in tests and in CI's self-observability smoke job).

use ccsim_sim::jsonfmt::{escape_into, json_f64};
use std::io;

/// 64-bit FNV-1a hash — the workspace's canonical digest for scenario
/// configurations and run outcomes (stable across platforms, trivially
/// reimplementable by external tooling).
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Per-bottleneck metrics embedded in the manifest. A manifest-local
/// mirror of `ccsim-core`'s `BottleneckMetrics` (this crate sits below
/// core in the dependency DAG, so it cannot name that type directly);
/// absent entirely for single-bottleneck legacy runs.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestBottleneck {
    /// Link index in the built topology.
    pub link: u32,
    /// Topology label for the link.
    pub label: String,
    /// Delivered-bytes utilization of the link's rate over the window.
    pub utilization: f64,
    /// Jain fairness across the flows crossing this link, when >1 flow.
    pub jfi: Option<f64>,
    /// Fraction of arrivals dropped at this link.
    pub loss_rate: f64,
    /// Peak queue occupancy, bytes.
    pub max_queue_bytes: u64,
    /// ECN CE marks applied at this link.
    pub ce_marked_pkts: u64,
}

/// Timeline capture summary embedded in the manifest — the sim-
/// deterministic facts about a run's windowed time-series capture. A
/// manifest-local mirror of `ccsim-timeline`'s `TimelineSummary` (same
/// layering rule as [`ManifestBottleneck`]); absent entirely for runs
/// that did not sample a timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestTimeline {
    /// Configured window width, seconds.
    pub window_secs: f64,
    /// Rows ever closed by the sampler.
    pub rows: u64,
    /// Rows still retained under the byte budget.
    pub retained: u64,
    /// Rows evicted to stay under budget.
    pub evicted: u64,
    /// Flows with per-flow series (aggregates always cover all flows).
    pub flows_sampled: u32,
    /// Total series columns captured.
    pub series: u32,
    /// α used for time-to-α-fair.
    pub alpha: f64,
    /// End time (seconds) of the first measurement window after which the
    /// JFI trajectory stayed ≥ α; `null`/`None` when the run never
    /// converged to α-fairness.
    pub time_to_alpha_fair: Option<f64>,
    /// JFI of the last retained window.
    pub final_jfi: Option<f64>,
}

/// Machine-readable provenance record for one simulator run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Scenario label.
    pub scenario: String,
    /// Master seed.
    pub seed: u64,
    /// Number of flows.
    pub flows: u32,
    /// FNV-1a digest (hex) of the full scenario configuration.
    pub config_digest: String,
    /// FNV-1a digest (hex) of the canonical `RunOutcome` export. Two runs
    /// with equal digests produced identical results — the metrics
    /// inertness check compares exactly this field.
    pub outcome_digest: String,
    /// Simulated seconds covered (warm-up + measurement).
    pub sim_secs: f64,
    /// Wall-clock seconds the run took.
    pub wall_secs: f64,
    /// Wall-clock seconds spent inside engine dispatch (`advance` calls)
    /// only — excludes build, warm-up bookkeeping, snapshot collection,
    /// and trace drain. `0.0` in legacy manifests that predate the field.
    pub dispatch_secs: f64,
    /// Sim-time / wall-time ratio (how much faster than real time).
    pub sim_wall_ratio: f64,
    /// Engine events processed.
    pub events_processed: u64,
    /// Engine events per *dispatch* second (events_processed /
    /// dispatch_secs): the engine's own throughput, not diluted by
    /// harness phases. Legacy manifests divided by total wall time.
    pub events_per_sec: f64,
    /// Peak bottleneck queue occupancy, bytes.
    pub peak_queue_bytes: u64,
    /// Peak pending events in the engine's queue.
    pub peak_pending_events: u64,
    /// Wire bytes of the recorded flight-recorder trace (0 when tracing
    /// was off).
    pub trace_bytes: u64,
    /// Bytes of the Prometheus metrics dump for this run.
    pub metric_bytes: u64,
    /// Number of metric series registered for this run.
    pub metric_series: u64,
    /// Whether the convergence rule stopped the run early.
    pub converged: bool,
    /// Encoded size of the checkpoint this run captured, bytes. Zero (and
    /// absent from the JSON) for runs that took no checkpoint, so legacy
    /// manifests re-serialize byte-identically.
    pub checkpoint_bytes: u64,
    /// Engine events by classified kind (`data`/`ack`/`timer`), in
    /// classifier order. Empty for unobserved or legacy runs; the key is
    /// then absent from the JSON so old manifests re-serialize
    /// byte-identically.
    pub events_by_kind: Vec<(String, u64)>,
    /// Per-bottleneck metrics for multi-bottleneck topologies. Empty (and
    /// absent from the JSON) for legacy single-bottleneck runs.
    pub bottlenecks: Vec<ManifestBottleneck>,
    /// Profiler output when the run was profiled (absent otherwise). The
    /// profile's own JSON is single-line and integers-only, so it embeds
    /// in both the pretty and inline manifest forms without float drift.
    pub profile: Option<ccsim_prof::Profile>,
    /// Timeline capture summary when the run sampled a windowed timeline
    /// (absent otherwise, so legacy manifests re-serialize byte-identically).
    pub timeline: Option<ManifestTimeline>,
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn field_raw<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = json.find(&pat)? + pat.len();
    let rest = json[start..].trim_start();
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn field_u64(json: &str, key: &str) -> io::Result<u64> {
    field_raw(json, key)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| bad(format!("manifest missing/invalid \"{key}\"")))
}

fn field_f64(json: &str, key: &str) -> io::Result<f64> {
    field_raw(json, key)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| bad(format!("manifest missing/invalid \"{key}\"")))
}

fn field_bool(json: &str, key: &str) -> io::Result<bool> {
    match field_raw(json, key) {
        Some("true") => Ok(true),
        Some("false") => Ok(false),
        _ => Err(bad(format!("manifest missing/invalid \"{key}\""))),
    }
}

/// Extract the balanced `{...}` or `[...]` value for `key`, tolerating
/// nested braces/brackets and quoted strings (with escapes). The scalar
/// helpers above stop at the first `,`/`}`, which would truncate a nested
/// section; every structured manifest field goes through this instead.
fn field_section<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = json.find(&pat)? + pat.len();
    let rest = json[start..].trim_start();
    if !matches!(rest.chars().next(), Some('{' | '[')) {
        return None;
    }
    let mut depth = 0usize;
    let mut in_str = false;
    let mut esc = false;
    for (i, c) in rest.char_indices() {
        if esc {
            esc = false;
            continue;
        }
        match c {
            '\\' if in_str => esc = true,
            '"' => in_str = !in_str,
            '{' | '[' if !in_str => depth += 1,
            '}' | ']' if !in_str => {
                depth -= 1;
                if depth == 0 {
                    return Some(&rest[..=i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Split a JSON array section into its top-level `{...}` object slices.
fn section_objects(arr: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    let mut in_str = false;
    let mut esc = false;
    for (i, c) in arr.char_indices() {
        if esc {
            esc = false;
            continue;
        }
        match c {
            '\\' if in_str => esc = true,
            '"' => in_str = !in_str,
            '{' if !in_str => {
                if depth == 0 {
                    start = i;
                }
                depth += 1;
            }
            '}' if !in_str => {
                depth -= 1;
                if depth == 0 {
                    out.push(&arr[start..=i]);
                }
            }
            _ => {}
        }
    }
    out
}

fn field_str(json: &str, key: &str) -> io::Result<String> {
    let pat = format!("\"{key}\":");
    let start = json
        .find(&pat)
        .ok_or_else(|| bad(format!("manifest missing \"{key}\"")))?
        + pat.len();
    let rest = json[start..].trim_start();
    let rest = rest
        .strip_prefix('"')
        .ok_or_else(|| bad(format!("\"{key}\" is not a string")))?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Ok(out),
            '\\' => match chars.next().ok_or_else(|| bad("truncated escape"))? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let v = u32::from_str_radix(&hex, 16).map_err(|_| bad("bad \\u escape"))?;
                    out.push(char::from_u32(v).ok_or_else(|| bad("bad \\u escape"))?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    Err(bad(format!("unterminated string for \"{key}\"")))
}

impl RunManifest {
    /// Serialize to a single pretty-enough JSON object (one field per
    /// line, so diffs between runs read naturally).
    pub fn to_json(&self) -> String {
        let mut scenario = String::new();
        escape_into(&self.scenario, &mut scenario);
        let mut s = String::with_capacity(512);
        s.push_str("{\n");
        s.push_str(&format!("  \"scenario\": \"{scenario}\",\n"));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"flows\": {},\n", self.flows));
        s.push_str(&format!(
            "  \"config_digest\": \"{}\",\n",
            self.config_digest
        ));
        s.push_str(&format!(
            "  \"outcome_digest\": \"{}\",\n",
            self.outcome_digest
        ));
        s.push_str(&format!("  \"sim_secs\": {},\n", json_f64(self.sim_secs)));
        s.push_str(&format!("  \"wall_secs\": {},\n", json_f64(self.wall_secs)));
        s.push_str(&format!(
            "  \"dispatch_secs\": {},\n",
            json_f64(self.dispatch_secs)
        ));
        s.push_str(&format!(
            "  \"sim_wall_ratio\": {},\n",
            json_f64(self.sim_wall_ratio)
        ));
        s.push_str(&format!(
            "  \"events_processed\": {},\n",
            self.events_processed
        ));
        s.push_str(&format!(
            "  \"events_per_sec\": {},\n",
            json_f64(self.events_per_sec)
        ));
        s.push_str(&format!(
            "  \"peak_queue_bytes\": {},\n",
            self.peak_queue_bytes
        ));
        s.push_str(&format!(
            "  \"peak_pending_events\": {},\n",
            self.peak_pending_events
        ));
        s.push_str(&format!("  \"trace_bytes\": {},\n", self.trace_bytes));
        s.push_str(&format!("  \"metric_bytes\": {},\n", self.metric_bytes));
        s.push_str(&format!("  \"metric_series\": {},\n", self.metric_series));
        s.push_str(&format!("  \"converged\": {}", self.converged));
        // Structured sections go last, each absent when empty so legacy
        // manifests (and their ledger lines) re-serialize byte-identically.
        if self.checkpoint_bytes > 0 {
            s.push_str(&format!(
                ",\n  \"checkpoint_bytes\": {}",
                self.checkpoint_bytes
            ));
        }
        if !self.events_by_kind.is_empty() {
            s.push_str(",\n  \"events_by_kind\": {");
            for (i, (kind, count)) in self.events_by_kind.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let mut k = String::new();
                escape_into(kind, &mut k);
                s.push_str(&format!("\"{k}\": {count}"));
            }
            s.push('}');
        }
        if !self.bottlenecks.is_empty() {
            s.push_str(",\n  \"bottlenecks\": [");
            for (i, b) in self.bottlenecks.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let mut label = String::new();
                escape_into(&b.label, &mut label);
                s.push_str(&format!(
                    "{{\"link\": {}, \"label\": \"{label}\", \"utilization\": {}, \
                     \"jfi\": {}, \"loss_rate\": {}, \"max_queue_bytes\": {}, \
                     \"ce_marked\": {}}}",
                    b.link,
                    json_f64(b.utilization),
                    match b.jfi {
                        Some(j) => json_f64(j),
                        None => "null".into(),
                    },
                    json_f64(b.loss_rate),
                    b.max_queue_bytes,
                    b.ce_marked_pkts,
                ));
            }
            s.push(']');
        }
        if let Some(p) = &self.profile {
            s.push_str(",\n  \"profile\": ");
            s.push_str(&p.to_json());
        }
        if let Some(t) = &self.timeline {
            s.push_str(&format!(
                ",\n  \"timeline\": {{\"window_secs\": {}, \"rows\": {}, \
                 \"retained\": {}, \"evicted\": {}, \"flows_sampled\": {}, \
                 \"series\": {}, \"alpha\": {}, \"time_to_alpha_fair\": {}, \
                 \"final_jfi\": {}}}",
                json_f64(t.window_secs),
                t.rows,
                t.retained,
                t.evicted,
                t.flows_sampled,
                t.series,
                json_f64(t.alpha),
                match t.time_to_alpha_fair {
                    Some(v) => json_f64(v),
                    None => "null".into(),
                },
                match t.final_jfi {
                    Some(v) => json_f64(v),
                    None => "null".into(),
                },
            ));
        }
        s.push_str("\n}");
        s
    }

    /// Single-line variant of [`RunManifest::to_json`], for embedding the
    /// manifest inside line-oriented formats (the campaign run ledger is
    /// one manifest-bearing JSON object per line). Parses back with
    /// [`RunManifest::from_json`] exactly like the pretty form.
    pub fn to_json_inline(&self) -> String {
        let mut out = String::with_capacity(512);
        for (i, line) in self.to_json().lines().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(line.trim_start());
        }
        out
    }

    /// Parse a manifest produced by [`RunManifest::to_json`] (scalar field
    /// order is not required; unknown fields are ignored). The structured
    /// sections added after the format's first release — `events_by_kind`,
    /// `bottlenecks`, `profile`, and the `dispatch_secs` scalar — default
    /// to empty/zero when absent, so legacy manifests still parse.
    pub fn from_json(json: &str) -> io::Result<RunManifest> {
        let events_by_kind = match field_section(json, "events_by_kind") {
            Some(sec) => parse_kind_counts(sec),
            None => Vec::new(),
        };
        let bottlenecks = match field_section(json, "bottlenecks") {
            Some(sec) => parse_bottlenecks(sec)?,
            None => Vec::new(),
        };
        let profile = match field_section(json, "profile") {
            Some(sec) => Some(
                ccsim_prof::Profile::from_json(sec)
                    .map_err(|e| bad(format!("bad embedded profile: {e}")))?,
            ),
            None => None,
        };
        let timeline = match field_section(json, "timeline") {
            Some(sec) => Some(parse_timeline(sec)?),
            None => None,
        };
        Ok(RunManifest {
            scenario: field_str(json, "scenario")?,
            seed: field_u64(json, "seed")?,
            flows: field_u64(json, "flows")? as u32,
            config_digest: field_str(json, "config_digest")?,
            outcome_digest: field_str(json, "outcome_digest")?,
            sim_secs: field_f64(json, "sim_secs")?,
            wall_secs: field_f64(json, "wall_secs")?,
            dispatch_secs: field_f64(json, "dispatch_secs").unwrap_or(0.0),
            sim_wall_ratio: field_f64(json, "sim_wall_ratio")?,
            events_processed: field_u64(json, "events_processed")?,
            events_per_sec: field_f64(json, "events_per_sec")?,
            peak_queue_bytes: field_u64(json, "peak_queue_bytes")?,
            peak_pending_events: field_u64(json, "peak_pending_events")?,
            trace_bytes: field_u64(json, "trace_bytes")?,
            metric_bytes: field_u64(json, "metric_bytes")?,
            metric_series: field_u64(json, "metric_series")?,
            converged: field_bool(json, "converged")?,
            checkpoint_bytes: field_u64(json, "checkpoint_bytes").unwrap_or(0),
            events_by_kind,
            bottlenecks,
            profile,
            timeline,
        })
    }

    /// Engine events per dispatch second, split by classified kind: the
    /// quantity the campaign sentinel gates per-kind regressions on.
    /// Empty when the run recorded no kind counts or no dispatch time.
    pub fn eps_by_kind(&self) -> Vec<(String, f64)> {
        if self.dispatch_secs <= 0.0 {
            return Vec::new();
        }
        self.events_by_kind
            .iter()
            .map(|(kind, count)| {
                let eps = ccsim_sim::jsonfmt::safe_rate(*count as f64, self.dispatch_secs);
                (kind.clone(), eps)
            })
            .collect()
    }
}

/// Parse an `{"kind": count, ...}` section. Kind names come from the
/// engine classifier's fixed table, so they never contain `,`/`:`.
fn parse_kind_counts(sec: &str) -> Vec<(String, u64)> {
    let inner = sec.trim().trim_start_matches('{').trim_end_matches('}');
    let mut out = Vec::new();
    for part in inner.split(',') {
        let mut halves = part.splitn(2, ':');
        let (Some(k), Some(v)) = (halves.next(), halves.next()) else {
            continue;
        };
        let k = k.trim().trim_matches('"');
        if let Ok(n) = v.trim().parse::<u64>() {
            out.push((k.to_string(), n));
        }
    }
    out
}

fn parse_timeline(sec: &str) -> io::Result<ManifestTimeline> {
    let opt_f64 = |key: &str| -> io::Result<Option<f64>> {
        match field_raw(sec, key) {
            Some("null") | None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| bad(format!("timeline \"{key}\" is not a number"))),
        }
    };
    Ok(ManifestTimeline {
        window_secs: field_f64(sec, "window_secs")?,
        rows: field_u64(sec, "rows")?,
        retained: field_u64(sec, "retained")?,
        evicted: field_u64(sec, "evicted")?,
        flows_sampled: field_u64(sec, "flows_sampled")? as u32,
        series: field_u64(sec, "series")? as u32,
        alpha: field_f64(sec, "alpha")?,
        time_to_alpha_fair: opt_f64("time_to_alpha_fair")?,
        final_jfi: opt_f64("final_jfi")?,
    })
}

fn parse_bottlenecks(sec: &str) -> io::Result<Vec<ManifestBottleneck>> {
    let mut out = Vec::new();
    for obj in section_objects(sec) {
        out.push(ManifestBottleneck {
            link: field_u64(obj, "link")? as u32,
            label: field_str(obj, "label")?,
            utilization: field_f64(obj, "utilization")?,
            jfi: match field_raw(obj, "jfi") {
                Some("null") | None => None,
                Some(v) => Some(
                    v.parse()
                        .map_err(|_| bad("bottleneck \"jfi\" is not a number"))?,
                ),
            },
            loss_rate: field_f64(obj, "loss_rate")?,
            max_queue_bytes: field_u64(obj, "max_queue_bytes")?,
            ce_marked_pkts: field_u64(obj, "ce_marked")?,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunManifest {
        RunManifest {
            scenario: "Core \"quoted\" \\ name".into(),
            seed: 42,
            flows: 1000,
            config_digest: format!("{:016x}", fnv1a_64(b"config")),
            outcome_digest: format!("{:016x}", fnv1a_64(b"outcome")),
            sim_secs: 160.0,
            wall_secs: 12.345678901234567,
            dispatch_secs: 10.5000000001,
            sim_wall_ratio: 12.960001,
            events_processed: 987_654_321,
            events_per_sec: 8.0000001e7,
            peak_queue_bytes: 250_000_000,
            peak_pending_events: 12_345,
            trace_bytes: 0,
            metric_bytes: 4096,
            metric_series: 23,
            converged: true,
            checkpoint_bytes: 0,
            events_by_kind: Vec::new(),
            bottlenecks: Vec::new(),
            profile: None,
            timeline: None,
        }
    }

    /// `sample()` with every structured section populated.
    fn sample_full() -> RunManifest {
        let mut m = sample();
        m.events_by_kind = vec![
            ("data".into(), 600_000_000),
            ("ack".into(), 300_000_000),
            ("timer".into(), 87_654_321),
        ];
        m.bottlenecks = vec![
            ManifestBottleneck {
                link: 0,
                label: "core \"bn\"".into(),
                utilization: 0.912345,
                jfi: Some(0.87654321),
                loss_rate: 0.00123,
                max_queue_bytes: 250_000,
                ce_marked_pkts: 0,
            },
            ManifestBottleneck {
                link: 3,
                label: "edge".into(),
                utilization: 0.5,
                jfi: None,
                loss_rate: 0.0,
                max_queue_bytes: 1_200,
                ce_marked_pkts: 42,
            },
        ];
        m.profile = Some(
            ccsim_prof::Profile::from_json(
                "{\"prof_classes\":[\"link\",\"sender\"],\"prof_kinds\":[\"data\",\"ack\"],\
             \"prof_stride\":1024,\"prof_counts\":[5,6,7,8],\"prof_nanos\":[1,2,3,4],\
             \"prof_samples\":[1,1,1,1],\"wheel_high_water\":[9,0,0,0,0,0,0,0,0],\
             \"wheel_cascades\":2,\"wheel_cascaded\":3,\
             \"wheel_batch_hist\":[1,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0],\"wheel_cancels\":4,\
             \"wheel_cancel_misses\":5,\"wheel_cancellable\":6,\
             \"mem_accounts\":[{\"pool\":\"tcp/senders\",\"pool_bytes\":4096}],\
             \"dispatch_nanos\":1000000,\"prof_flows\":2}",
            )
            .unwrap(),
        );
        m.timeline = Some(ManifestTimeline {
            window_secs: 2.0,
            rows: 80,
            retained: 64,
            evicted: 16,
            flows_sampled: 64,
            series: 326,
            alpha: 0.9,
            time_to_alpha_fair: Some(41.5000000003),
            final_jfi: Some(0.98765),
        });
        m
    }

    #[test]
    fn zero_dispatch_manifests_stay_finite_end_to_end() {
        // Regression: a zero-event (or sub-microsecond) run must never put
        // inf/NaN into the manifest, its eps split, or the rendered JSON.
        let mut m = sample_full();
        m.dispatch_secs = 0.0;
        m.wall_secs = 0.0;
        m.events_per_sec = ccsim_sim::jsonfmt::safe_rate(m.events_processed as f64, 0.0);
        m.sim_wall_ratio = ccsim_sim::jsonfmt::safe_rate(m.sim_secs, 0.0);
        assert_eq!(m.events_per_sec, 0.0);
        assert_eq!(m.sim_wall_ratio, 0.0);
        assert!(m.eps_by_kind().is_empty(), "no rate without a denominator");
        let json = m.to_json();
        // Field *names* legitimately contain "nanos"; only value-position
        // tokens (`:inf`, `:NaN`, ...) would mean a non-finite leaked out.
        for tok in [":inf", ":-inf", ":NaN", ":-NaN", ":nan"] {
            assert!(!json.contains(tok), "non-finite value in manifest JSON");
        }
        let back = RunManifest::from_json(&json).unwrap();
        assert_eq!(back.events_per_sec, 0.0);
        assert!(back.eps_by_kind().is_empty());
    }

    #[test]
    fn json_round_trips_bit_exact() {
        let m = sample();
        let back = RunManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
        // Floats survive exactly (shortest-round-trip Display).
        assert_eq!(back.wall_secs.to_bits(), m.wall_secs.to_bits());
        assert_eq!(back.events_per_sec.to_bits(), m.events_per_sec.to_bits());
    }

    #[test]
    fn inline_form_is_one_line_and_round_trips() {
        let m = sample();
        let inline = m.to_json_inline();
        assert!(!inline.contains('\n'));
        assert_eq!(RunManifest::from_json(&inline).unwrap(), m);
    }

    #[test]
    fn structured_sections_are_absent_when_empty() {
        let json = sample().to_json();
        assert!(!json.contains("events_by_kind"));
        assert!(!json.contains("bottlenecks"));
        assert!(!json.contains("\"profile\""));
        assert!(!json.contains("\"timeline\""));
        // dispatch_secs is a scalar and always present.
        assert!(json.contains("\"dispatch_secs\""));
    }

    #[test]
    fn structured_sections_round_trip_in_both_forms() {
        let m = sample_full();
        let back = RunManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
        let inline = m.to_json_inline();
        assert!(!inline.contains('\n'));
        assert_eq!(RunManifest::from_json(&inline).unwrap(), m);
        // Floats inside bottleneck records survive bit-exactly.
        assert_eq!(
            back.bottlenecks[0].utilization.to_bits(),
            m.bottlenecks[0].utilization.to_bits()
        );
    }

    #[test]
    fn legacy_manifests_without_new_fields_still_parse() {
        let mut m = sample_full();
        let json = m.to_json();
        // Strip the new sections and scalar the way a pre-profiler
        // manifest would simply not have them.
        let legacy: String = json
            .lines()
            .filter(|l| {
                let t = l.trim_start();
                !(t.starts_with("\"dispatch_secs\"")
                    || t.starts_with("\"events_by_kind\"")
                    || t.starts_with("\"bottlenecks\"")
                    || t.starts_with("\"profile\"")
                    || t.starts_with("\"timeline\""))
            })
            .collect::<Vec<_>>()
            .join("\n");
        // `converged` is now the last field again; drop its trailing comma.
        let legacy = legacy.replace(
            &format!("\"converged\": {},", m.converged),
            &format!("\"converged\": {}", m.converged),
        );
        let back = RunManifest::from_json(&legacy).unwrap();
        m.dispatch_secs = 0.0;
        m.events_by_kind.clear();
        m.bottlenecks.clear();
        m.profile = None;
        m.timeline = None;
        assert_eq!(back, m);
    }

    #[test]
    fn unconverged_timeline_round_trips_its_nulls() {
        let mut m = sample();
        m.timeline = Some(ManifestTimeline {
            window_secs: 1.0,
            rows: 3,
            retained: 3,
            evicted: 0,
            flows_sampled: 2,
            series: 12,
            alpha: 0.95,
            time_to_alpha_fair: None,
            final_jfi: None,
        });
        let json = m.to_json();
        assert!(json.contains("\"time_to_alpha_fair\": null"));
        assert_eq!(RunManifest::from_json(&json).unwrap(), m);
        assert_eq!(RunManifest::from_json(&m.to_json_inline()).unwrap(), m);
    }

    #[test]
    fn eps_by_kind_divides_by_dispatch_time() {
        let mut m = sample_full();
        m.dispatch_secs = 2.0;
        m.events_by_kind = vec![("data".into(), 100), ("ack".into(), 50)];
        let eps = m.eps_by_kind();
        assert_eq!(eps[0], ("data".to_string(), 50.0));
        assert_eq!(eps[1], ("ack".to_string(), 25.0));
        m.dispatch_secs = 0.0;
        assert!(m.eps_by_kind().is_empty());
    }

    #[test]
    fn non_finite_floats_degrade_to_zero() {
        let mut m = sample();
        m.sim_wall_ratio = f64::INFINITY;
        let back = RunManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back.sim_wall_ratio, 0.0);
    }

    #[test]
    fn rejects_missing_fields() {
        assert!(RunManifest::from_json("{}").is_err());
        assert!(RunManifest::from_json("{\"scenario\":\"x\"}").is_err());
    }

    #[test]
    fn fnv_is_stable() {
        // Reference vectors for the canonical 64-bit FNV-1a.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a_64(b"ab"), fnv1a_64(b"ba"));
    }
}
