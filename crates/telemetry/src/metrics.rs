//! Per-flow measurement records.

use serde::{Deserialize, Serialize};

/// Everything the analysis needs to know about one flow after a run.
///
/// Rates are computed over the measurement window (after warm-up
/// exclusion), matching the paper's methodology of discarding the first
/// minutes of each experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowMetrics {
    /// Flow index.
    pub flow: u32,
    /// CCA name ("reno", "cubic", "bbr").
    pub cca: String,
    /// Configured base RTT in seconds.
    pub base_rtt_secs: f64,
    /// Goodput over the measurement window, bytes/sec (receiver-side).
    pub throughput_bytes_per_sec: f64,
    /// Bytes delivered in the measurement window.
    pub delivered_bytes: u64,
    /// Data segments sent in the window (including retransmissions).
    pub data_pkts_sent: u64,
    /// Retransmitted segments in the window.
    pub retransmits: u64,
    /// Congestion events (fast recoveries + RTOs) in the window — the
    /// CWND-halving count.
    pub congestion_events: u64,
    /// RTOs in the window.
    pub rtos: u64,
    /// This flow's packets dropped at the bottleneck queue in the window.
    pub queue_drops: u64,
    /// This flow's packets that arrived at the bottleneck queue in the
    /// window.
    pub queue_arrivals: u64,
}

impl FlowMetrics {
    /// Packet loss rate at the bottleneck: drops / arrivals.
    pub fn loss_rate(&self) -> f64 {
        if self.queue_arrivals == 0 {
            0.0
        } else {
            self.queue_drops as f64 / self.queue_arrivals as f64
        }
    }

    /// CWND-halving rate: congestion events per *delivered* packet, the
    /// `p` interpretation the original Mathis paper prescribes for
    /// SACK-enabled TCP.
    pub fn halving_rate(&self, mss_bytes: u32) -> f64 {
        let delivered_pkts = self.delivered_bytes as f64 / mss_bytes as f64;
        if delivered_pkts <= 0.0 {
            0.0
        } else {
            self.congestion_events as f64 / delivered_pkts
        }
    }

    /// Throughput in Mbits/sec (for report tables).
    pub fn throughput_mbps(&self) -> f64 {
        self.throughput_bytes_per_sec * 8.0 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> FlowMetrics {
        FlowMetrics {
            flow: 0,
            cca: "reno".into(),
            base_rtt_secs: 0.02,
            throughput_bytes_per_sec: 1_250_000.0,
            delivered_bytes: 14_480_000,
            data_pkts_sent: 10_100,
            retransmits: 100,
            congestion_events: 20,
            rtos: 1,
            queue_drops: 120,
            queue_arrivals: 10_100,
        }
    }

    #[test]
    fn loss_rate_is_drops_over_arrivals() {
        let metrics = m();
        assert!((metrics.loss_rate() - 120.0 / 10_100.0).abs() < 1e-12);
    }

    #[test]
    fn loss_rate_without_arrivals_is_zero() {
        let mut metrics = m();
        metrics.queue_arrivals = 0;
        assert_eq!(metrics.loss_rate(), 0.0);
    }

    #[test]
    fn halving_rate_is_events_per_delivered_packet() {
        let metrics = m();
        // 14_480_000 / 1448 = 10_000 delivered packets; 20 events.
        assert!((metrics.halving_rate(1448) - 0.002).abs() < 1e-12);
    }

    #[test]
    fn halving_rate_without_delivery_is_zero() {
        let mut metrics = m();
        metrics.delivered_bytes = 0;
        assert_eq!(metrics.halving_rate(1448), 0.0);
    }

    #[test]
    fn mbps_conversion() {
        assert!((m().throughput_mbps() - 10.0).abs() < 1e-12);
    }
}
