//! Per-flow delivered-bytes snapshots over time.
//!
//! The experiment runner advances the simulation in slices and records a
//! snapshot of every flow's cumulative delivered bytes after each slice.
//! From these the tracker derives windowed throughputs (excluding warm-up)
//! and implements the paper's stopping rule: *run until the metric changes
//! by less than 1% over a window* (§3.2; 20 minutes in the paper,
//! configurable here because the harness scales time).

use ccsim_sim::{SimTime, SnapError, SnapReader, SnapWriter};

/// Snapshots of cumulative per-flow delivered bytes.
#[derive(Debug, Clone, Default)]
pub struct ThroughputTracker {
    times: Vec<SimTime>,
    /// `snapshots[i][f]` = flow f's cumulative delivered bytes at `times[i]`.
    snapshots: Vec<Vec<u64>>,
}

impl ThroughputTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a snapshot. `per_flow_delivered[f]` is flow f's cumulative
    /// delivered byte count at `time`. Snapshots must arrive in time order.
    pub fn record(&mut self, time: SimTime, per_flow_delivered: Vec<u64>) {
        if let Some(&last) = self.times.last() {
            assert!(time >= last, "snapshots must be time-ordered");
            assert_eq!(
                self.snapshots[0].len(),
                per_flow_delivered.len(),
                "flow count changed between snapshots"
            );
        }
        self.times.push(time);
        self.snapshots.push(per_flow_delivered);
    }

    /// Serialize the recorded snapshots for a checkpoint.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.seq(&self.times, |w, &t| w.time(t));
        w.seq(&self.snapshots, |w, snap| {
            w.seq(snap, |w, &v| w.u64(v));
        });
    }

    /// Overlay checkpointed state, replacing any recorded snapshots.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let times = r.seq(|r| r.time())?;
        let snapshots = r.seq(|r| r.seq(|r| r.u64()))?;
        if times.len() != snapshots.len() {
            return Err(SnapError::Corrupt(format!(
                "tracker has {} times but {} snapshots",
                times.len(),
                snapshots.len()
            )));
        }
        self.times = times;
        self.snapshots = snapshots;
        Ok(())
    }

    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True iff no snapshots recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Snapshot times.
    pub fn times(&self) -> &[SimTime] {
        &self.times
    }

    /// Index of the first snapshot at or after `t`, if any.
    fn index_at_or_after(&self, t: SimTime) -> Option<usize> {
        self.times.iter().position(|&x| x >= t)
    }

    /// Per-flow throughput (bytes/sec) between the first snapshot at or
    /// after `from` and the last snapshot. `None` if fewer than two
    /// snapshots span the window.
    pub fn window_throughputs(&self, from: SimTime) -> Option<Vec<f64>> {
        let i = self.index_at_or_after(from)?;
        let j = self.times.len() - 1;
        if j <= i {
            return None;
        }
        self.throughputs_between(i, j)
    }

    /// Per-flow throughput between snapshot indices `i < j`.
    pub fn throughputs_between(&self, i: usize, j: usize) -> Option<Vec<f64>> {
        if i >= j || j >= self.times.len() {
            return None;
        }
        let dt = (self.times[j] - self.times[i]).as_secs_f64();
        if dt <= 0.0 {
            return None;
        }
        Some(
            self.snapshots[i]
                .iter()
                .zip(&self.snapshots[j])
                .map(|(&a, &b)| (b.saturating_sub(a)) as f64 / dt)
                .collect(),
        )
    }

    /// Aggregate throughput (bytes/sec) over the window starting at `from`.
    pub fn aggregate_throughput(&self, from: SimTime) -> Option<f64> {
        Some(self.window_throughputs(from)?.iter().sum())
    }

    /// The paper's convergence rule: compare `metric` over the last
    /// `window_snapshots` against the preceding equal-length window and
    /// report the relative change. `None` until enough snapshots exist or
    /// when the earlier value is zero.
    pub fn relative_change<F>(&self, window_snapshots: usize, metric: F) -> Option<f64>
    where
        F: Fn(&[f64]) -> Option<f64>,
    {
        let n = self.times.len();
        if window_snapshots == 0 || n < 2 * window_snapshots + 1 {
            return None;
        }
        let recent = metric(&self.throughputs_between(n - 1 - window_snapshots, n - 1)?)?;
        let earlier = metric(
            &self.throughputs_between(n - 1 - 2 * window_snapshots, n - 1 - window_snapshots)?,
        )?;
        if earlier == 0.0 {
            return None;
        }
        Some(((recent - earlier) / earlier).abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    /// Two flows: one at 1000 B/s, one at 500 B/s, snapshots each second.
    fn steady(n: u64) -> ThroughputTracker {
        let mut tr = ThroughputTracker::new();
        for i in 0..n {
            tr.record(t(i), vec![i * 1000, i * 500]);
        }
        tr
    }

    #[test]
    fn window_throughputs_are_rates() {
        let tr = steady(11);
        let rates = tr.window_throughputs(t(5)).unwrap();
        assert_eq!(rates, vec![1000.0, 500.0]);
        assert_eq!(tr.aggregate_throughput(t(5)), Some(1500.0));
    }

    #[test]
    fn warmup_exclusion_changes_nothing_for_steady_flows() {
        let tr = steady(20);
        assert_eq!(
            tr.window_throughputs(t(0)).unwrap(),
            tr.window_throughputs(t(10)).unwrap()
        );
    }

    #[test]
    fn insufficient_span_yields_none() {
        let tr = steady(3);
        assert!(tr.window_throughputs(t(2)).is_none()); // only last snapshot
        assert!(tr.window_throughputs(t(99)).is_none()); // beyond range
        assert!(ThroughputTracker::new().window_throughputs(t(0)).is_none());
    }

    #[test]
    fn convergence_detects_steady_state() {
        let tr = steady(21);
        let change = tr
            .relative_change(5, |rates| Some(rates.iter().sum()))
            .unwrap();
        assert!(change < 1e-12);
    }

    #[test]
    fn convergence_detects_ramping_flows() {
        // Quadratic delivery = linearly growing rate: windows differ.
        let mut tr = ThroughputTracker::new();
        for i in 0..21u64 {
            tr.record(t(i), vec![i * i * 100]);
        }
        let change = tr
            .relative_change(5, |rates| Some(rates.iter().sum()))
            .unwrap();
        assert!(change > 0.2, "change = {change}");
    }

    #[test]
    fn convergence_needs_enough_snapshots() {
        let tr = steady(10);
        assert!(tr.relative_change(5, |r| Some(r.iter().sum())).is_none());
        assert!(tr.relative_change(0, |r| Some(r.iter().sum())).is_none());
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_snapshots_panic() {
        let mut tr = ThroughputTracker::new();
        tr.record(t(5), vec![0]);
        tr.record(t(4), vec![0]);
    }

    #[test]
    #[should_panic(expected = "flow count changed")]
    fn flow_count_change_panics() {
        let mut tr = ThroughputTracker::new();
        tr.record(t(1), vec![0, 0]);
        tr.record(t(2), vec![0]);
    }
}
