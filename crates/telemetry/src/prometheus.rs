//! Prometheus text-exposition export for the [`Registry`].
//!
//! Emits the classic 0.0.4 text format: `# HELP` / `# TYPE` headers per
//! metric family, then one sample line per series. Histograms expand into
//! cumulative `_bucket{le="..."}` series (upper bounds `2^k - 1`, matching
//! [`crate::registry::Histogram`]'s log2 buckets) plus `_sum` and
//! `_count`. The dump is a point-in-time snapshot written after a run —
//! there is no HTTP endpoint; sweeps produce one file per run, next to
//! the run's other artifacts.
//!
//! [`validate_exposition`] is the CI-facing line-format checker: it
//! accepts exactly what [`write_exposition`] emits (and standard
//! exposition output generally) and reports the first malformed line.

use crate::registry::{Histogram, Metric, MetricEntry, Registry, HISTOGRAM_BUCKETS};
use std::fmt::Write as _;

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label_value(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Render `{k="v",...}` for a label set, with an optional extra label
/// (used for histogram `le`). Empty label sets render as nothing.
fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Render a sample value the way Prometheus expects (integers without a
/// decimal point; floats via shortest round-trip).
fn render_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn write_histogram(out: &mut String, entry: &MetricEntry, h: &Histogram, ts: &str) {
    let counts = h.bucket_counts();
    // Trailing empty buckets add no information (their cumulative count
    // equals the total); emit up to the highest non-empty bucket, then
    // +Inf, so a 65-bucket family stays readable.
    let top = h.max_bucket().map_or(0, |k| k + 1).min(HISTOGRAM_BUCKETS);
    let mut cumulative = 0u64;
    for (k, &c) in counts.iter().enumerate().take(top) {
        cumulative += c;
        let le = Histogram::bucket_upper_bound(k).to_string();
        let _ = writeln!(
            out,
            "{}_bucket{} {}{ts}",
            entry.name,
            label_block(&entry.labels, Some(("le", &le))),
            cumulative
        );
    }
    let _ = writeln!(
        out,
        "{}_bucket{} {}{ts}",
        entry.name,
        label_block(&entry.labels, Some(("le", "+Inf"))),
        h.count()
    );
    let _ = writeln!(
        out,
        "{}_sum{} {}{ts}",
        entry.name,
        label_block(&entry.labels, None),
        h.sum()
    );
    let _ = writeln!(
        out,
        "{}_count{} {}{ts}",
        entry.name,
        label_block(&entry.labels, None),
        h.count()
    );
}

/// Render the registry as Prometheus text exposition (no timestamps —
/// byte-identical to every dump this workspace has ever written).
pub fn write_exposition(registry: &Registry) -> String {
    write_exposition_at(registry, None)
}

/// Render the registry as Prometheus text exposition, optionally stamping
/// every sample line with an explicit timestamp (milliseconds since the
/// Unix epoch, per the 0.0.4 format). With `None` the output is
/// byte-identical to [`write_exposition`]; with `Some(ts)` each sample
/// gains a trailing ` <ts>`, which is what lets windowed series replay
/// into a real scraper in recorded time rather than collapsing onto the
/// scrape instant.
pub fn write_exposition_at(registry: &Registry, timestamp_millis: Option<i64>) -> String {
    let ts = timestamp_millis.map_or(String::new(), |t| format!(" {t}"));
    let ts = ts.as_str();
    let entries = registry.entries();
    let mut out = String::with_capacity(256 + entries.len() * 128);
    let mut last_family: Option<String> = None;
    for entry in &entries {
        // HELP/TYPE once per family; series of one family are registered
        // consecutively (the registry preserves insertion order).
        if last_family.as_deref() != Some(entry.name.as_str()) {
            let kind = match &entry.metric {
                Metric::Counter(_) => "counter",
                Metric::Gauge(_) => "gauge",
                Metric::Histogram(_) => "histogram",
            };
            let _ = writeln!(out, "# HELP {} {}", entry.name, escape_help(&entry.help));
            let _ = writeln!(out, "# TYPE {} {}", entry.name, kind);
            last_family = Some(entry.name.clone());
        }
        match &entry.metric {
            Metric::Counter(c) => {
                let _ = writeln!(
                    out,
                    "{}{} {}{ts}",
                    entry.name,
                    label_block(&entry.labels, None),
                    c.get()
                );
            }
            Metric::Gauge(g) => {
                let _ = writeln!(
                    out,
                    "{}{} {}{ts}",
                    entry.name,
                    label_block(&entry.labels, None),
                    render_value(g.get())
                );
            }
            Metric::Histogram(h) => write_histogram(&mut out, entry, h, ts),
        }
    }
    out
}

fn is_name(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Split a sample line into (name, rest-after-labels); returns `None` on
/// malformed label blocks.
fn strip_name_and_labels(line: &str) -> Option<(&str, &str)> {
    let name_end = line
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == ':'))
        .unwrap_or(line.len());
    let (name, rest) = line.split_at(name_end);
    if !is_name(name) {
        return None;
    }
    if let Some(body) = rest.strip_prefix('{') {
        // Walk to the closing brace outside any quoted value.
        let mut in_quotes = false;
        let mut escaped = false;
        for (i, c) in body.char_indices() {
            match c {
                _ if escaped => escaped = false,
                '\\' if in_quotes => escaped = true,
                '"' => in_quotes = !in_quotes,
                '}' if !in_quotes => return Some((name, &body[i + 1..])),
                _ => {}
            }
        }
        None
    } else {
        Some((name, rest))
    }
}

/// Validate Prometheus text-exposition line format.
///
/// Checks per line: comments are well-formed `# HELP <name> ...` /
/// `# TYPE <name> <counter|gauge|histogram|summary|untyped>`; samples are
/// `<name>[{labels}] <value> [timestamp]` with a valid metric name and a
/// parseable value; and every sample's family (modulo `_bucket`/`_sum`/
/// `_count` suffixes) was declared by a preceding `# TYPE`. Returns the
/// first offending line on failure.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    let mut typed: Vec<String> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.trim().is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.trim_start().splitn(3, ' ');
            match parts.next() {
                Some("HELP") => {
                    let name = parts.next().unwrap_or("");
                    if !is_name(name) {
                        return Err(format!("line {n}: bad HELP metric name: {line}"));
                    }
                }
                Some("TYPE") => {
                    let name = parts.next().unwrap_or("");
                    let kind = parts.next().unwrap_or("");
                    if !is_name(name) {
                        return Err(format!("line {n}: bad TYPE metric name: {line}"));
                    }
                    if !matches!(
                        kind,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return Err(format!("line {n}: unknown TYPE {kind:?}: {line}"));
                    }
                    typed.push(name.to_string());
                }
                // Free-form comments are legal exposition.
                _ => {}
            }
            continue;
        }
        let Some((name, rest)) = strip_name_and_labels(line) else {
            return Err(format!("line {n}: malformed sample: {line}"));
        };
        let mut fields = rest.split_whitespace();
        let Some(value) = fields.next() else {
            return Err(format!("line {n}: sample missing value: {line}"));
        };
        let value_ok = matches!(value, "NaN" | "+Inf" | "-Inf") || value.parse::<f64>().is_ok();
        if !value_ok {
            return Err(format!("line {n}: unparseable value {value:?}: {line}"));
        }
        if let Some(ts) = fields.next() {
            if ts.parse::<i64>().is_err() {
                return Err(format!("line {n}: bad timestamp {ts:?}: {line}"));
            }
        }
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|f| typed.iter().any(|t| t == f))
            .unwrap_or(name);
        if !typed.iter().any(|t| t == family) {
            return Err(format!("line {n}: sample {name:?} has no preceding TYPE"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter_with("ccsim_events_total", "events", &[("kind", "data")])
            .add(10);
        r.counter_with("ccsim_events_total", "events", &[("kind", "ack")])
            .add(5);
        r.gauge("ccsim_events_per_sec", "rate").set(1.5e6);
        let h = r.histogram("ccsim_link_queue_bytes", "occupancy");
        h.record(0);
        h.record(3);
        h.record(100);
        r
    }

    #[test]
    fn exposition_has_headers_and_samples() {
        let text = write_exposition(&sample_registry());
        assert!(text.contains("# TYPE ccsim_events_total counter"));
        assert!(text.contains("ccsim_events_total{kind=\"data\"} 10"));
        assert!(text.contains("# TYPE ccsim_link_queue_bytes histogram"));
        assert!(text.contains("ccsim_link_queue_bytes_bucket{le=\"0\"} 1"));
        assert!(text.contains("ccsim_link_queue_bytes_bucket{le=\"3\"} 2"));
        assert!(text.contains("ccsim_link_queue_bytes_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("ccsim_link_queue_bytes_sum 103"));
        assert!(text.contains("ccsim_link_queue_bytes_count 3"));
        // HELP/TYPE emitted once per family, not per series.
        assert_eq!(text.matches("# TYPE ccsim_events_total").count(), 1);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let text = write_exposition(&sample_registry());
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("ccsim_link_queue_bytes_bucket"))
            .map(|l| l.split_whitespace().last().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
    }

    #[test]
    fn own_output_validates() {
        let text = write_exposition(&sample_registry());
        validate_exposition(&text).unwrap();
    }

    #[test]
    fn explicit_timestamps_stamp_samples_not_comments() {
        let r = sample_registry();
        let text = write_exposition_at(&r, Some(1_700_000_123_456));
        validate_exposition(&text).unwrap();
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(!line.ends_with("1700000123456"), "comment stamped: {line}");
            } else {
                assert!(
                    line.ends_with(" 1700000123456"),
                    "sample missing timestamp: {line}"
                );
            }
        }
        // Negative (pre-epoch) timestamps are legal exposition too.
        validate_exposition(&write_exposition_at(&r, Some(-5))).unwrap();
    }

    #[test]
    fn no_timestamp_stays_byte_identical_to_the_plain_writer() {
        let r = sample_registry();
        assert_eq!(write_exposition(&r), write_exposition_at(&r, None));
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_exposition("0bad_name 1").is_err());
        assert!(validate_exposition("# TYPE x flub\n").is_err());
        assert!(validate_exposition("# TYPE x counter\nx notanumber").is_err());
        assert!(validate_exposition("orphan_sample 1").is_err());
        assert!(validate_exposition("# TYPE x counter\nx{unclosed 1").is_err());
    }

    #[test]
    fn validator_accepts_label_edge_cases() {
        let ok = "# TYPE m gauge\nm{a=\"with \\\"quote\\\" and }brace\"} 2.5\n";
        validate_exposition(ok).unwrap();
        let with_ts = "# TYPE m gauge\nm 2.5 1700000000\n";
        validate_exposition(with_ts).unwrap();
    }

    #[test]
    fn empty_registry_is_valid() {
        let text = write_exposition(&Registry::new());
        assert!(text.is_empty());
        validate_exposition(&text).unwrap();
    }
}
