//! # ccsim-telemetry — measurement glue
//!
//! The instrumentation layer between raw component counters (senders,
//! receivers, the bottleneck link) and the analysis crate:
//!
//! * [`FlowMetrics`] — one flow's complete measurement record, combining
//!   endpoint and queue counters into the quantities the paper's analysis
//!   consumes (throughput, per-flow loss rate, CWND-halving rate).
//! * [`ThroughputTracker`] — periodic snapshots of per-flow delivered
//!   bytes, supporting warm-up exclusion, windowed rate computation, and
//!   the paper's convergence rule ("metric changes < 1% over a window").
//!
//! Plus the simulator's self-observability layer (what the harness knows
//! about *itself*, as opposed to what it measures about TCP):
//!
//! * [`registry`] — zero-dependency [`Counter`] / [`Gauge`] /
//!   [`Histogram`] primitives and the [`Registry`] that names them; cheap
//!   enough for the hot event loop (one relaxed atomic add per count).
//! * [`profile`] — wall-clock [`Profiler`] spans aggregated per label.
//! * [`manifest`] — the per-run provenance [`RunManifest`] and the
//!   workspace digest function [`fnv1a_64`].
//! * [`prometheus`] — text-exposition export ([`write_exposition`]) and
//!   the CI line-format checker ([`validate_exposition`]).
//! * [`progress`] — stderr live progress ([`RunProgress`],
//!   [`SweepProgress`], [`CampaignProgress`]) and labeled stage timing
//!   ([`StageTimer`]).

pub mod manifest;
pub mod metrics;
pub mod profile;
pub mod progress;
pub mod prometheus;
pub mod registry;
pub mod tracker;

pub use manifest::{fnv1a_64, ManifestBottleneck, RunManifest};
pub use metrics::FlowMetrics;
pub use profile::{export_profile_into, ProfSpan, Profiler, SpanStats};
pub use progress::{CampaignProgress, RunProgress, StageTimer, SweepProgress};
pub use prometheus::{validate_exposition, write_exposition};
pub use registry::{Counter, Gauge, Histogram, Metric, MetricEntry, Registry};
pub use tracker::ThroughputTracker;
