//! # ccsim-telemetry — measurement glue
//!
//! The instrumentation layer between raw component counters (senders,
//! receivers, the bottleneck link) and the analysis crate:
//!
//! * [`FlowMetrics`] — one flow's complete measurement record, combining
//!   endpoint and queue counters into the quantities the paper's analysis
//!   consumes (throughput, per-flow loss rate, CWND-halving rate).
//! * [`ThroughputTracker`] — periodic snapshots of per-flow delivered
//!   bytes, supporting warm-up exclusion, windowed rate computation, and
//!   the paper's convergence rule ("metric changes < 1% over a window").

pub mod metrics;
pub mod tracker;

pub use metrics::FlowMetrics;
pub use tracker::ThroughputTracker;
