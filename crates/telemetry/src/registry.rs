//! The metrics registry: named counters, gauges, and log2-bucket
//! histograms cheap enough for the simulator's hot event loop.
//!
//! Design constraints, in order:
//!
//! 1. **Inert.** Recording a metric must never influence the simulation —
//!    the primitives only touch their own atomics, never virtual time,
//!    RNG streams, or the event queue. A run with metrics on and off must
//!    produce byte-identical outcomes (tested in
//!    `tests/integration_metrics.rs`).
//! 2. **Cheap.** One `Counter::inc` is a single relaxed atomic add; one
//!    `Histogram::record` is three. Components hold [`Arc`] handles
//!    directly (no name lookup on the hot path) and pay a single `Option`
//!    branch when metrics are disabled — the same pattern the flight
//!    recorder (`ccsim-trace`) uses.
//! 3. **Zero-dependency.** Only `std` atomics, so every crate above
//!    `ccsim-sim` can record without dependency cycles.
//!
//! The registry itself is only touched at registration and export time
//! (a `Mutex` is fine there); the handles it returns are lock-free.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: bucket `k` counts values of bit length
/// `k`, i.e. `v == 0` lands in bucket 0 and `v` in `[2^(k-1), 2^k)` lands
/// in bucket `k`, so `u64::MAX` lands in bucket 64.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move in either direction. Stored as `f64`
/// bits so derived quantities (events/sec, time ratios) fit alongside
/// byte counts; integers up to 2^53 are represented exactly.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Set the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if `v` exceeds the current value
    /// (high-water-mark tracking).
    #[inline]
    pub fn set_max(&self, v: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self.bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A histogram with power-of-two (log2) bucket boundaries.
///
/// Bucket `k` has the upper bound `2^k - 1`: bucket 0 holds only zeros,
/// bucket 1 holds `{1}`, bucket 2 holds `{2, 3}`, bucket `k` holds
/// `[2^(k-1), 2^k)`. Exponential buckets cover the full `u64` range in 65
/// slots with constant-time classification (one `leading_zeros`), which
/// is what queue occupancies and wall-clock latencies need: the
/// interesting structure spans many orders of magnitude.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [(); HISTOGRAM_BUCKETS].map(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// The bucket index for `v`: its bit length (0 for 0).
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// The inclusive upper bound of bucket `k` (`2^k - 1`; `u64::MAX`
    /// for the last bucket).
    pub fn bucket_upper_bound(k: usize) -> u64 {
        debug_assert!(k < HISTOGRAM_BUCKETS);
        if k >= 64 {
            u64::MAX
        } else {
            (1u64 << k) - 1
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket (non-cumulative) counts.
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut out = [0u64; HISTOGRAM_BUCKETS];
        for (o, b) in out.iter_mut().zip(&self.buckets) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }

    /// Index of the highest non-empty bucket, if any observation exists.
    pub fn max_bucket(&self) -> Option<usize> {
        let counts = self.bucket_counts();
        counts.iter().rposition(|&c| c > 0)
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) by linear interpolation
    /// inside the log2 bucket containing the target rank. The estimate is
    /// exact for bucket boundaries and at worst off by the bucket width —
    /// the usual Prometheus-style reconstruction. Returns `None` on an
    /// empty histogram.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based; q = 0 maps to rank 1.
        let rank = (q * total as f64).max(1.0);
        let counts = self.bucket_counts();
        let mut seen = 0u64;
        for (k, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let upto = seen + c;
            if (upto as f64) >= rank {
                // Bucket k spans [lower, upper]: [0,0] for k = 0, else
                // [2^(k-1), 2^k - 1].
                let lower = if k == 0 {
                    0.0
                } else {
                    (1u64 << (k - 1)) as f64
                };
                let upper = if k == 0 {
                    0.0
                } else if k >= 64 {
                    u64::MAX as f64
                } else {
                    ((1u64 << k) - 1) as f64
                };
                let frac = (rank - seen as f64) / c as f64;
                return Some(lower + (upper - lower) * frac.clamp(0.0, 1.0));
            }
            seen = upto;
        }
        Some(Self::bucket_upper_bound(HISTOGRAM_BUCKETS - 1) as f64)
    }
}

/// What a registered metric is, for export purposes.
#[derive(Clone, Debug)]
pub enum Metric {
    /// A monotonically increasing count.
    Counter(Arc<Counter>),
    /// A point-in-time value.
    Gauge(Arc<Gauge>),
    /// A log2-bucket distribution.
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// One registry entry: a named, optionally labeled metric.
#[derive(Clone, Debug)]
pub struct MetricEntry {
    /// Metric family name (Prometheus-valid: `[a-zA-Z_:][a-zA-Z0-9_:]*`).
    pub name: String,
    /// One-line description, emitted as `# HELP`.
    pub help: String,
    /// Label pairs distinguishing this series within the family.
    pub labels: Vec<(String, String)>,
    /// The live metric.
    pub metric: Metric,
}

/// A collection of named metrics, shared between the instrumented
/// components (which hold `Arc` handles) and the exporter.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<MetricEntry>>,
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    // Label names allow no colon.
    valid_name(name) && !name.contains(':')
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        assert!(valid_name(name), "invalid metric name {name:?}");
        for (k, _) in labels {
            assert!(valid_label_name(k), "invalid label name {k:?}");
        }
        let mut entries = self.entries.lock().unwrap();
        if let Some(e) = entries.iter().find(|e| {
            e.name == name && e.labels.len() == labels.len() && {
                e.labels
                    .iter()
                    .zip(labels)
                    .all(|((ek, ev), (k, v))| ek == k && ev == v)
            }
        }) {
            // Same series requested twice: hand out the existing handle so
            // independent components can share one aggregate.
            let existing = e.metric.clone();
            drop(entries);
            let wanted = make();
            assert_eq!(
                existing.kind_name(),
                wanted.kind_name(),
                "metric {name:?} re-registered with a different kind"
            );
            return existing;
        }
        let metric = make();
        entries.push(MetricEntry {
            name: name.to_string(),
            help: help.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            metric: metric.clone(),
        });
        metric
    }

    /// Register (or retrieve) a counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Register (or retrieve) a labeled counter series.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.register(name, help, labels, || {
            Metric::Counter(Arc::new(Counter::new()))
        }) {
            Metric::Counter(c) => c,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Register (or retrieve) a gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Register (or retrieve) a labeled gauge series.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.register(name, help, labels, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Register (or retrieve) a histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with(name, help, &[])
    }

    /// Register (or retrieve) a labeled histogram series.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        match self.register(name, help, labels, || {
            Metric::Histogram(Arc::new(Histogram::new()))
        }) {
            Metric::Histogram(h) => h,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Snapshot every registered entry (for export).
    pub fn entries(&self) -> Vec<MetricEntry> {
        self.entries.lock().unwrap().clone()
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// True iff nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().unwrap().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_set_and_high_water() {
        let g = Gauge::new();
        g.set(5.0);
        g.set_max(3.0);
        assert_eq!(g.get(), 5.0);
        g.set_max(9.5);
        assert_eq!(g.get(), 9.5);
        g.set(1.0);
        assert_eq!(g.get(), 1.0);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_upper_bound(0), 0);
        assert_eq!(Histogram::bucket_upper_bound(3), 7);
        assert_eq!(Histogram::bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn histogram_records() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 106);
        let b = h.bucket_counts();
        assert_eq!(b[0], 1); // 0
        assert_eq!(b[1], 1); // 1
        assert_eq!(b[2], 2); // 2, 3
        assert_eq!(b[7], 1); // 100 in [64, 128)
        assert_eq!(h.max_bucket(), Some(7));
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);

        // 100 observations spread across buckets 4 ([8,15]) and 7 ([64,127]).
        for _ in 0..90 {
            h.record(10);
        }
        for _ in 0..10 {
            h.record(100);
        }
        let p50 = h.quantile(0.50).unwrap();
        assert!((8.0..=15.0).contains(&p50), "p50 = {p50}");
        let p90 = h.quantile(0.90).unwrap();
        assert!((8.0..=15.0).contains(&p90), "p90 = {p90}");
        let p99 = h.quantile(0.99).unwrap();
        assert!((64.0..=127.0).contains(&p99), "p99 = {p99}");
        // Monotone in q, and the extremes land in the extreme buckets.
        assert!(p50 <= p90 && p90 <= p99);
        assert!(h.quantile(0.0).unwrap() <= p50);
        assert!(h.quantile(1.0).unwrap() >= p99);
    }

    #[test]
    fn registry_dedupes_by_name_and_labels() {
        let r = Registry::new();
        let a = r.counter("ccsim_x_total", "x");
        let b = r.counter("ccsim_x_total", "x");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(r.len(), 1);
        let c = r.counter_with("ccsim_x_total", "x", &[("kind", "data")]);
        c.add(7);
        assert_eq!(r.len(), 2);
        assert_eq!(a.get(), 2);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn registry_rejects_kind_mismatch() {
        let r = Registry::new();
        let _ = r.counter("ccsim_x", "x");
        let _ = r.gauge("ccsim_x", "x");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn registry_rejects_bad_names() {
        let r = Registry::new();
        let _ = r.counter("0bad name", "x");
    }
}
