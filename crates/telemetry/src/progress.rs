//! Live progress reporting for runs and sweeps.
//!
//! Long CoreScale runs used to go silent for minutes between ad-hoc
//! `eprintln!` lines scattered over the bench binaries; this module is
//! the uniform replacement. Everything writes to **stderr** (stdout is
//! reserved for reports and machine-readable output) and is wall-clock
//! rate-limited, so callers can invoke `update` as often as they like —
//! e.g. once per runner snapshot slice — without flooding terminals or
//! CI logs.
//!
//! * [`RunProgress`] — one in-flight run: percent of sim-time, ETA, and
//!   current events/sec, rewritten in place on TTYs.
//! * [`SweepProgress`] — N-of-M completion for scenario sweeps, driven
//!   from `run_all_with_progress` worker threads (thread-safe).
//! * [`StageTimer`] — a labeled wall-clock stage that prints one
//!   `[label: 12.3s]` line when finished; the uniform replacement for
//!   the `Stopwatch` + `eprintln!` pattern.

use std::io::{IsTerminal, Write};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Render a duration as a compact human figure (`850ms`, `12s`, `3m40s`,
/// `2h05m`).
pub fn fmt_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs < 1.0 {
        format!("{:.0}ms", secs * 1e3)
    } else if secs < 100.0 {
        format!("{secs:.1}s")
    } else if secs < 3600.0 {
        format!("{}m{:02}s", d.as_secs() / 60, d.as_secs() % 60)
    } else {
        format!("{}h{:02}m", d.as_secs() / 3600, (d.as_secs() % 3600) / 60)
    }
}

/// Render a rate or count with an SI suffix (`953`, `80.5 k`, `3.2 M`).
pub fn fmt_si(v: f64) -> String {
    let (scaled, suffix) = if v >= 1e9 {
        (v / 1e9, " G")
    } else if v >= 1e6 {
        (v / 1e6, " M")
    } else if v >= 1e3 {
        (v / 1e3, " k")
    } else {
        (v, "")
    };
    if suffix.is_empty() {
        format!("{scaled:.0}")
    } else {
        format!("{scaled:.1}{suffix}")
    }
}

/// Live progress for a single simulator run.
///
/// Call [`RunProgress::update`] from the runner's progress callback; the
/// reporter decides when to actually draw. On a TTY the line is redrawn
/// in place (`\r`); otherwise one line is printed per ~10% step so CI
/// logs stay bounded.
pub struct RunProgress {
    label: String,
    started: Instant,
    tty: bool,
    last_draw: Option<Instant>,
    last_events: u64,
    last_events_at: Instant,
    last_sim_secs: f64,
    last_fraction_drawn: f64,
    needs_clear: bool,
}

impl RunProgress {
    /// A reporter labeled `label` (shown in every line).
    pub fn new(label: impl Into<String>) -> RunProgress {
        let now = Instant::now();
        RunProgress {
            label: label.into(),
            started: now,
            tty: std::io::stderr().is_terminal(),
            last_draw: None,
            last_events: 0,
            last_events_at: now,
            last_sim_secs: 0.0,
            last_fraction_drawn: -1.0,
            needs_clear: false,
        }
    }

    /// Report progress: `fraction` of sim-time covered (0..=1) and total
    /// engine events processed so far. Draws at most ~4×/sec on a TTY,
    /// once per 10% otherwise.
    pub fn update(&mut self, fraction: f64, events_processed: u64) {
        self.draw(fraction, events_processed, None);
    }

    /// Like [`RunProgress::update`], additionally reporting the current
    /// sim-time position (seconds) so the line shows the *instantaneous*
    /// sim-time/wall-time ratio — how much faster than real time the
    /// engine is moving right now, not averaged over the whole run.
    pub fn update_sim(&mut self, fraction: f64, events_processed: u64, sim_secs: f64) {
        self.draw(fraction, events_processed, Some(sim_secs));
    }

    fn draw(&mut self, fraction: f64, events_processed: u64, sim_secs: Option<f64>) {
        let now = Instant::now();
        let due = if self.tty {
            self.last_draw
                .is_none_or(|t| now - t >= Duration::from_millis(250))
        } else {
            fraction - self.last_fraction_drawn >= 0.10
        };
        if !due || fraction >= 1.0 {
            return;
        }
        let dt = (now - self.last_events_at).as_secs_f64();
        let rate = if dt > 0.0 {
            (events_processed.saturating_sub(self.last_events)) as f64 / dt
        } else {
            0.0
        };
        // Instantaneous Δsim/Δwall over the same interval as the rate.
        let ratio = sim_secs.map(|sim| {
            if dt > 0.0 {
                (sim - self.last_sim_secs).max(0.0) / dt
            } else {
                0.0
            }
        });
        if let Some(sim) = sim_secs {
            self.last_sim_secs = sim;
        }
        self.last_events = events_processed;
        self.last_events_at = now;
        self.last_draw = Some(now);
        self.last_fraction_drawn = fraction;

        let elapsed = now - self.started;
        let eta = if fraction > 1e-6 {
            let total = elapsed.as_secs_f64() / fraction;
            fmt_duration(Duration::from_secs_f64(
                (total - elapsed.as_secs_f64()).max(0.0),
            ))
        } else {
            "?".to_string()
        };
        let mut line = format!(
            "[{}] {:5.1}% | ETA {} | {} ev/s",
            self.label,
            fraction * 100.0,
            eta,
            fmt_si(rate)
        );
        if let Some(r) = ratio {
            line.push_str(&format!(" | {r:.1}x rt"));
        }
        let mut err = std::io::stderr().lock();
        if self.tty {
            // Pad to clear any longer previous line.
            let _ = write!(err, "\r{line:<60}");
            let _ = err.flush();
            self.needs_clear = true;
        } else {
            let _ = writeln!(err, "{line}");
        }
    }

    /// Finish: clear the live line and print one summary line with total
    /// wall time, events, and overall events/sec.
    pub fn finish(&mut self, events_processed: u64) {
        let elapsed = self.started.elapsed();
        let rate = if elapsed.as_secs_f64() > 0.0 {
            events_processed as f64 / elapsed.as_secs_f64()
        } else {
            0.0
        };
        let mut err = std::io::stderr().lock();
        if self.needs_clear {
            let _ = write!(err, "\r{:<60}\r", "");
        }
        let _ = writeln!(
            err,
            "[{}] done in {} | {} events | {} ev/s",
            self.label,
            fmt_duration(elapsed),
            fmt_si(events_processed as f64),
            fmt_si(rate)
        );
    }
}

/// Thread-safe N-of-M progress for scenario sweeps.
///
/// Designed to be the `on_done` callback of `run_all_with_progress`:
/// every completion prints one line with the running count, percent, ETA
/// extrapolated from the mean per-item wall time, and the item's label.
pub struct SweepProgress {
    label: String,
    total: usize,
    done: AtomicUsize,
    started: Instant,
    // Serializes the line assembly so concurrent completions don't
    // interleave; the atomic alone orders the counts.
    print_lock: Mutex<()>,
}

impl SweepProgress {
    /// A sweep of `total` items labeled `label`.
    pub fn new(label: impl Into<String>, total: usize) -> SweepProgress {
        SweepProgress {
            label: label.into(),
            total,
            done: AtomicUsize::new(0),
            started: Instant::now(),
            print_lock: Mutex::new(()),
        }
    }

    /// Record one completed item and print a progress line.
    pub fn item_done(&self, item: &str) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        let _guard = self.print_lock.lock().unwrap();
        let elapsed = self.started.elapsed();
        let eta = if done > 0 && done < self.total {
            let per_item = elapsed.as_secs_f64() / done as f64;
            fmt_duration(Duration::from_secs_f64(
                per_item * (self.total - done) as f64,
            ))
        } else {
            "0s".to_string()
        };
        eprintln!(
            "[{}] {}/{} ({:.0}%) | ETA {} | {}",
            self.label,
            done,
            self.total,
            done as f64 / self.total.max(1) as f64 * 100.0,
            eta,
            item
        );
    }

    /// Number of completed items so far.
    pub fn completed(&self) -> usize {
        self.done.load(Ordering::Relaxed)
    }

    /// Print the closing summary line.
    pub fn finish(&self) {
        eprintln!(
            "[{}] {} items in {}",
            self.label,
            self.done.load(Ordering::Relaxed),
            fmt_duration(self.started.elapsed())
        );
    }
}

/// Thread-safe live aggregate for campaign runs: jobs done/failed, ETA
/// from the mean per-job wall time, and the pooled events/sec rollup.
///
/// This is the campaign executor's `on_done` counterpart to
/// [`SweepProgress`]: one line per completed job plus a closing summary,
/// safe to call from any worker thread.
pub struct CampaignProgress {
    label: String,
    total: usize,
    done: AtomicUsize,
    failed: AtomicUsize,
    events: AtomicU64,
    started: Instant,
    print_lock: Mutex<()>,
}

impl CampaignProgress {
    /// A campaign of `total` jobs labeled `label`.
    pub fn new(label: impl Into<String>, total: usize) -> CampaignProgress {
        CampaignProgress {
            label: label.into(),
            total,
            done: AtomicUsize::new(0),
            failed: AtomicUsize::new(0),
            events: AtomicU64::new(0),
            started: Instant::now(),
            print_lock: Mutex::new(()),
        }
    }

    /// Record one completed job (`ok` false for failures) with the engine
    /// events it processed, and print the aggregate line.
    pub fn job_done(&self, job: &str, events: u64, ok: bool) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if !ok {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
        let total_events = self.events.fetch_add(events, Ordering::Relaxed) + events;
        let _guard = self.print_lock.lock().unwrap();
        let failed = self.failed.load(Ordering::Relaxed);
        let elapsed = self.started.elapsed();
        let eta = if done < self.total {
            let per_job = elapsed.as_secs_f64() / done as f64;
            fmt_duration(Duration::from_secs_f64(
                per_job * (self.total - done) as f64,
            ))
        } else {
            "0s".to_string()
        };
        let rate = if elapsed.as_secs_f64() > 0.0 {
            total_events as f64 / elapsed.as_secs_f64()
        } else {
            0.0
        };
        eprintln!(
            "[{}] {}/{} done ({} failed) | ETA {} | {} ev/s | {} {}",
            self.label,
            done,
            self.total,
            failed,
            eta,
            fmt_si(rate),
            if ok { "ok" } else { "FAILED" },
            job
        );
    }

    /// Jobs completed so far (including failures).
    pub fn completed(&self) -> usize {
        self.done.load(Ordering::Relaxed)
    }

    /// Failed jobs so far.
    pub fn failures(&self) -> usize {
        self.failed.load(Ordering::Relaxed)
    }

    /// Print the closing summary line.
    pub fn finish(&self) {
        let elapsed = self.started.elapsed();
        let events = self.events.load(Ordering::Relaxed);
        let rate = if elapsed.as_secs_f64() > 0.0 {
            events as f64 / elapsed.as_secs_f64()
        } else {
            0.0
        };
        eprintln!(
            "[{}] {} jobs ({} failed) in {} | {} events | {} ev/s",
            self.label,
            self.done.load(Ordering::Relaxed),
            self.failed.load(Ordering::Relaxed),
            fmt_duration(elapsed),
            fmt_si(events as f64),
            fmt_si(rate)
        );
    }
}

/// A labeled wall-clock stage: prints `[label: 12.3s]` to stderr when
/// finished (or dropped). The uniform replacement for ad-hoc
/// `Stopwatch` + `eprintln!` timing lines.
pub struct StageTimer {
    label: String,
    started: Instant,
    reported: bool,
}

impl StageTimer {
    /// Start timing `label`.
    pub fn new(label: impl Into<String>) -> StageTimer {
        StageTimer {
            label: label.into(),
            started: Instant::now(),
            reported: false,
        }
    }

    /// Elapsed seconds so far.
    pub fn secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Stop and print the stage line now.
    pub fn finish(mut self) {
        self.report();
    }

    fn report(&mut self) {
        if !self.reported {
            self.reported = true;
            eprintln!("[{}: {}]", self.label, fmt_duration(self.started.elapsed()));
        }
    }
}

impl Drop for StageTimer {
    fn drop(&mut self) {
        self.report();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_format_compactly() {
        assert_eq!(fmt_duration(Duration::from_millis(850)), "850ms");
        assert_eq!(fmt_duration(Duration::from_secs_f64(12.34)), "12.3s");
        assert_eq!(fmt_duration(Duration::from_secs(220)), "3m40s");
        assert_eq!(fmt_duration(Duration::from_secs(7500)), "2h05m");
    }

    #[test]
    fn si_suffixes() {
        assert_eq!(fmt_si(953.0), "953");
        assert_eq!(fmt_si(80_500.0), "80.5 k");
        assert_eq!(fmt_si(3_200_000.0), "3.2 M");
        assert_eq!(fmt_si(1.5e9), "1.5 G");
    }

    #[test]
    fn sweep_counts_thread_safely() {
        let sweep = SweepProgress::new("test", 8);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| sweep.item_done("item"));
            }
        });
        assert_eq!(sweep.completed(), 8);
        sweep.finish();
    }

    #[test]
    fn campaign_counts_thread_safely() {
        let progress = CampaignProgress::new("camp", 8);
        std::thread::scope(|s| {
            let progress = &progress;
            for i in 0..8 {
                s.spawn(move || progress.job_done("job", 1000, i % 4 != 0));
            }
        });
        assert_eq!(progress.completed(), 8);
        assert_eq!(progress.failures(), 2);
        progress.finish();
    }

    #[test]
    fn run_progress_smoke() {
        // Exercise the state machine; output goes to stderr and is not
        // asserted (rate limiting makes it timing-dependent).
        let mut p = RunProgress::new("test");
        p.update(0.0, 0);
        p.update(0.5, 1000);
        p.update(1.0, 2000);
        p.finish(2000);
    }

    #[test]
    fn run_progress_with_sim_ratio_smoke() {
        let mut p = RunProgress::new("test");
        p.update_sim(0.0, 0, 0.0);
        p.update_sim(0.3, 1000, 21.0);
        // Mixing the plain form in keeps working (ratio just disappears).
        p.update(0.6, 2000);
        p.update_sim(0.9, 3000, 63.0);
        p.finish(3000);
    }
}
