//! Property-based tests for the metrics registry primitives: log2-bucket
//! boundary invariants and thread-safety of the counters.

use ccsim_telemetry::{Counter, Gauge, Histogram};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    /// Bucket `k` holds exactly `[2^(k-1), 2^k)`, with bucket 0 reserved
    /// for zero: every value lands in the bucket whose range contains it.
    #[test]
    fn bucket_index_brackets_value(v in 0u64..=u64::MAX) {
        let k = Histogram::bucket_index(v);
        if v == 0 {
            prop_assert_eq!(k, 0);
        } else {
            prop_assert!(1u64.checked_shl(k as u32 - 1).unwrap() <= v);
            if k < 64 {
                prop_assert!(v < (1u64 << k));
            }
        }
    }

    /// `bucket_upper_bound` is the inclusive boundary consistent with
    /// `bucket_index`: `v <= upper(k)` and `v > upper(k-1)`.
    #[test]
    fn bucket_bounds_are_inclusive_and_tight(v in 0u64..=u64::MAX) {
        let k = Histogram::bucket_index(v);
        prop_assert!(v <= Histogram::bucket_upper_bound(k));
        if k > 0 {
            prop_assert!(v > Histogram::bucket_upper_bound(k - 1));
        }
    }

    /// Boundary values straddle buckets exactly: `2^k - 1` is the last
    /// value of bucket `k` and `2^k` the first of bucket `k + 1`.
    #[test]
    fn powers_of_two_straddle_buckets(k in 1u32..64) {
        let boundary = 1u64 << k;
        prop_assert_eq!(Histogram::bucket_index(boundary - 1), k as usize);
        prop_assert_eq!(Histogram::bucket_index(boundary), k as usize + 1);
        prop_assert_eq!(Histogram::bucket_upper_bound(k as usize), boundary - 1);
    }

    /// Recording any set of values keeps count/sum/buckets consistent:
    /// count equals the number of observations, the buckets partition
    /// them, and sum matches (wrapping, like the implementation).
    #[test]
    fn histogram_accounting_is_exact(values in prop::collection::vec(0u64..=u64::MAX, 0..200)) {
        let h = Histogram::new();
        let mut expect_sum = 0u64;
        for &v in &values {
            h.record(v);
            expect_sum = expect_sum.wrapping_add(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), expect_sum);
        prop_assert_eq!(h.bucket_counts().iter().sum::<u64>(), values.len() as u64);
        if let Some(max) = values.iter().max() {
            prop_assert_eq!(h.max_bucket(), Some(Histogram::bucket_index(*max)));
        } else {
            prop_assert_eq!(h.max_bucket(), None);
        }
    }

    /// `Gauge::set_max` is an upper-envelope fold: order-independent and
    /// equal to the plain maximum.
    #[test]
    fn gauge_set_max_is_the_maximum(values in prop::collection::vec(0u32..1_000_000, 1..50)) {
        let g = Gauge::new();
        for &v in &values {
            g.set_max(f64::from(v));
        }
        let expect = f64::from(*values.iter().max().unwrap());
        prop_assert_eq!(g.get(), expect);
    }
}

/// Concurrent increments from many threads are never lost.
#[test]
fn counter_increments_concurrently_exact() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let counter = Arc::new(Counter::new());
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let counter = Arc::clone(&counter);
            s.spawn(move || {
                for _ in 0..PER_THREAD {
                    counter.inc();
                }
            });
        }
    });
    assert_eq!(counter.get(), THREADS as u64 * PER_THREAD);
}

/// Concurrent histogram records from many threads are never lost, in
/// count, sum, or per-bucket tallies.
#[test]
fn histogram_records_concurrently_exact() {
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 10_000;
    let h = Arc::new(Histogram::new());
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let h = Arc::clone(&h);
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    h.record(t * PER_THREAD + i);
                }
            });
        }
    });
    assert_eq!(h.count(), THREADS * PER_THREAD);
    let n = THREADS * PER_THREAD;
    assert_eq!(h.sum(), n * (n - 1) / 2);
    assert_eq!(h.bucket_counts().iter().sum::<u64>(), n);
}
