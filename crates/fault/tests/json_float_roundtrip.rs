//! Shared float round-trip property: every float the workspace's
//! hand-rolled writers emit (via `ccsim_sim::jsonfmt::json_f64`) must be
//! (a) accepted by the in-workspace parser (`ccsim_fault::json`),
//! (b) bit-exact after parsing, and (c) a byte-level fixpoint under
//! format → parse → format. Exercised over arbitrary bit patterns so
//! -0.0, subnormals, and huge-magnitude values are all covered.

use ccsim_fault::json::Json;
use ccsim_fault::FaultPlan;
use ccsim_sim::jsonfmt::json_f64;
use ccsim_sim::SimTime;
use proptest::prelude::*;

/// Interpret arbitrary bits as f64, folding non-finite patterns onto
/// finite edge cases so every generated case exercises the real path.
fn finite_from_bits(bits: u64) -> f64 {
    let v = f64::from_bits(bits);
    if v.is_finite() {
        v
    } else if v.is_nan() {
        f64::MIN_POSITIVE // a normal-boundary value
    } else {
        f64::MAX.copysign(v)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    /// format → parse → format is a byte-level fixpoint, and the parsed
    /// value is bit-exact, for arbitrary finite floats.
    #[test]
    fn format_parse_format_is_fixpoint(bits in 0u64..u64::MAX) {
        let x = finite_from_bits(bits);
        let s1 = json_f64(x);
        let doc = Json::parse(&format!("{{\"v\": {s1}}}"))
            .expect("jsonfmt output must be parseable");
        let y = doc.get("v").and_then(Json::as_f64).expect("numeric field");
        prop_assert_eq!(y.to_bits(), x.to_bits(), "parse must be bit-exact");
        prop_assert_eq!(json_f64(y), s1, "reformat must be a fixpoint");
    }

    /// A fault plan whose loss/reorder/duplicate rates are arbitrary
    /// finite floats survives to_json → from_json bit-for-bit, and a
    /// second encode is byte-identical to the first.
    #[test]
    fn fault_plan_rates_round_trip(a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
        let enter = finite_from_bits(a).abs();
        let exit = finite_from_bits(b).abs();
        let plan = FaultPlan::none()
            .burst_loss(SimTime::from_secs(1), enter, exit)
            .iid_loss(SimTime::from_secs(2), exit);
        let json = plan.to_json();
        let back = FaultPlan::from_json(&json).expect("plan JSON must parse");
        prop_assert_eq!(back.to_json(), json, "decode -> encode must be byte-identical");
    }
}

#[test]
fn parser_accepts_edge_case_literals() {
    // The exact spellings json_f64 now emits for the historical trouble
    // spots: negative zero, the smallest subnormal, and a magnitude whose
    // positional expansion would be 300+ digits.
    for (text, bits) in [
        ("-0.0", (-0.0f64).to_bits()),
        ("5e-324", 5e-324f64.to_bits()),
        ("1e300", 1e300f64.to_bits()),
        ("2.2250738585072014e-308", f64::MIN_POSITIVE.to_bits()),
    ] {
        let doc = Json::parse(&format!("[{text}]")).unwrap();
        let v = doc.as_arr().unwrap()[0].as_f64().unwrap();
        assert_eq!(v.to_bits(), bits, "{text} must parse bit-exact");
    }
}

#[test]
fn non_finite_rates_degrade_to_valid_json() {
    // Non-finite floats must never corrupt a document: json_f64 degrades
    // them to 0 and the plan still parses.
    let plan = FaultPlan::none().iid_loss(SimTime::from_secs(1), f64::NAN);
    let json = plan.to_json();
    assert!(FaultPlan::from_json(&json).is_ok(), "emitted: {json}");
}
