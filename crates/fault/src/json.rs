//! A minimal recursive-descent JSON parser.
//!
//! The offline serde stand-in provides derive markers but no
//! (de)serializer, so every wire format in the workspace is hand-rolled.
//! Flat documents (`RunManifest`) get by with substring field extraction;
//! crash bundles need to read back *nested* scenario and fault-plan
//! documents, which requires an actual parser. This one covers the full
//! JSON grammar minus only surrogate-pair `\u` escapes, in ~150 lines.
//!
//! Numbers are kept as their raw source text ([`Json::Num`]) and converted
//! on access: parsing through `f64` would silently corrupt 64-bit seeds
//! (`u64` values above 2^53 are not representable), and seeds are exactly
//! what crash-bundle replay must preserve bit-for-bit.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Raw number text, converted lazily by [`Json::as_u64`] /
    /// [`Json::as_f64`] so integers round-trip exactly.
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    /// Key–value pairs in document order (no hashing needed at this size).
    Obj(Vec<(String, Json)>),
}

/// Parse failure with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse a complete document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Serialize back to compact JSON text. The writing counterpart of
    /// [`Json::parse`]: numbers keep their raw source text (so u64 seeds
    /// survive), strings use the workspace escaping rules. `render` →
    /// `parse` is the identity on the value.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(raw) => out.push_str(raw),
            Json::Str(s) => {
                out.push('"');
                ccsim_sim::jsonfmt::escape_into(s, out);
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    ccsim_sim::jsonfmt::escape_into(k, out);
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Escape a string for embedding in hand-rolled JSON output (the writing
/// counterpart of this parser; same escapes `RunManifest` uses). Shared
/// with every other hand-rolled writer via [`ccsim_sim::jsonfmt`].
pub use ccsim_sim::jsonfmt::escape;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn lit(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let v = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(v)
                                    .ok_or_else(|| self.err("bad \\u escape (surrogate)"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Advance over one UTF-8 scalar (content bytes are
                    // copied verbatim).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xc0 == 0x80 {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if raw.is_empty() || raw == "-" || raw.parse::<f64>().is_err() {
            return Err(self.err("malformed number"));
        }
        Ok(Json::Num(raw.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": null, "d": true}, "e": "x\ny"}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert!(v.get("b").unwrap().get("c").unwrap().is_null());
        assert_eq!(v.get("b").unwrap().get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn u64_seeds_round_trip_exactly() {
        // 2^63 + 1 is not representable in f64; the raw-text path must
        // preserve it.
        let v = Json::parse("{\"seed\": 9223372036854775809}").unwrap();
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(9223372036854775809));
    }

    #[test]
    fn floats_round_trip_bit_exact() {
        let x = 0.123_456_789_012_345_68_f64;
        let v = Json::parse(&format!("{{\"x\": {x}}}")).unwrap();
        assert_eq!(v.get("x").unwrap().as_f64().unwrap().to_bits(), x.to_bits());
    }

    #[test]
    fn escape_round_trips() {
        let s = "a \"b\" \\ c \u{0007}";
        let doc = format!("{{\"k\": \"{}\"}}", escape(s));
        let v = Json::parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(s));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\": 1} x").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("-").is_err());
    }

    #[test]
    fn render_parse_is_identity() {
        let doc = r#"{"a":[1,2.5,-3e2,9223372036854775809],"b":{"c":null,"d":true},"e":"x\"y\\z"}"#;
        let v = Json::parse(doc).unwrap();
        let rendered = v.render();
        assert_eq!(Json::parse(&rendered).unwrap(), v);
        // Raw number text survives verbatim (u64 seeds stay exact).
        assert!(rendered.contains("9223372036854775809"));
        assert!(rendered.contains("-3e2"));
    }

    #[test]
    fn whitespace_tolerant() {
        let v = Json::parse(" \n\t{ \"a\" : [ ] , \"b\" : { } } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 0);
        assert!(v.get("b").is_some());
    }
}
