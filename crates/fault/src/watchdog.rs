//! Vocabulary of the runtime invariant watchdog.
//!
//! The watchdog itself runs inside `ccsim-core` (it needs access to the
//! built network's links and endpoints); this module defines what it
//! *says*: a serde-roundtrippable [`WatchdogConfig`] carried by the
//! `Scenario`, and structured [`InvariantViolation`]s collected into a
//! [`WatchdogReport`] instead of `assert!`-style aborts. Like PR 2's
//! metrics, the watchdog is opt-in and digest-inert when off: checks are
//! read-only and the report never enters the `RunOutcome`.

use ccsim_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Watchdog switch carried by the scenario. Default is disabled — a
/// scenario that doesn't mention the watchdog behaves (and digests)
/// exactly as before.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WatchdogConfig {
    /// Master switch; when false no check ever runs.
    pub enabled: bool,
    /// Run the checks every `every`-th runner slice (≥ 1). Slices are
    /// `snapshot_interval` long, so `every: 1` on the default scenarios
    /// checks once per simulated second.
    pub every: u32,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig::disabled()
    }
}

impl WatchdogConfig {
    /// No checks (the default).
    pub const fn disabled() -> WatchdogConfig {
        WatchdogConfig {
            enabled: false,
            every: 1,
        }
    }

    /// Check at every slice boundary — what CI's fault matrix runs.
    pub const fn every_slice() -> WatchdogConfig {
        WatchdogConfig {
            enabled: true,
            every: 1,
        }
    }

    /// Check every `every`-th slice boundary.
    pub const fn every_n(every: u32) -> WatchdogConfig {
        WatchdogConfig {
            enabled: true,
            every,
        }
    }

    /// Effective stride (guards against a hand-built `every: 0`).
    pub fn stride(&self) -> u64 {
        u64::from(self.every.max(1))
    }
}

/// Which invariant class a violation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InvariantKind {
    /// Packet conservation at the bottleneck: over any interval,
    /// arrivals = drops (queue + fault) + transmissions + backlog change.
    Conservation,
    /// Queue occupancy within the configured buffer plus one in-service
    /// frame.
    QueueBound,
    /// Sender congestion state sane: cwnd ≥ 1 MSS, in-flight not
    /// wildly past cwnd, delivered ≤ sent.
    CwndSanity,
    /// Engine clock and processed-event counters never move backwards.
    TimeMonotonic,
}

impl InvariantKind {
    pub fn name(&self) -> &'static str {
        match self {
            InvariantKind::Conservation => "conservation",
            InvariantKind::QueueBound => "queue_bound",
            InvariantKind::CwndSanity => "cwnd_sanity",
            InvariantKind::TimeMonotonic => "time_monotonic",
        }
    }
}

impl fmt::Display for InvariantKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One failed invariant check, with enough context to debug it from a
/// crash bundle alone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InvariantViolation {
    /// Engine time of the check that failed.
    pub at: SimTime,
    pub kind: InvariantKind,
    /// Human-readable specifics (the numbers that disagreed).
    pub detail: String,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] at {}: {}", self.kind, self.at, self.detail)
    }
}

/// Everything the watchdog observed during a run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct WatchdogReport {
    /// Number of check passes executed (a clean report with zero checks
    /// means the watchdog never actually ran — CI distinguishes that).
    pub checks_run: u64,
    pub violations: Vec<InvariantViolation>,
}

impl WatchdogReport {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for WatchdogReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "watchdog: {} checks, {} violations",
            self.checks_run,
            self.violations.len()
        )?;
        for v in &self.violations {
            write!(f, "\n  {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled() {
        assert!(!WatchdogConfig::default().enabled);
        assert!(WatchdogConfig::every_slice().enabled);
        assert_eq!(WatchdogConfig::every_n(5).stride(), 5);
    }

    #[test]
    fn zero_stride_is_clamped() {
        let cfg = WatchdogConfig {
            enabled: true,
            every: 0,
        };
        assert_eq!(cfg.stride(), 1);
    }

    #[test]
    fn report_displays_violations() {
        let mut report = WatchdogReport {
            checks_run: 3,
            violations: vec![],
        };
        assert!(report.is_clean());
        report.violations.push(InvariantViolation {
            at: SimTime::from_secs(7),
            kind: InvariantKind::Conservation,
            detail: "arrived 10 != accounted 9".into(),
        });
        let text = report.to_string();
        assert!(text.contains("1 violations"));
        assert!(text.contains("conservation"));
        assert!(!report.is_clean());
    }
}
