//! Runtime execution of a [`FaultPlan`] at a link.
//!
//! [`LinkFaultInjector`] is a pure state machine so its semantics are
//! testable without building a network. The owning `Link` drives it from
//! three places:
//!
//! * a dedicated fault timer fires at each action's timestamp →
//!   [`LinkFaultInjector::advance_to`] applies every due action and
//!   reports the next timer deadline;
//! * every packet arrival → [`LinkFaultInjector::arrival_drop`] answers
//!   whether the blackout or the active loss process eats it;
//! * every delivery (serialization done) →
//!   [`LinkFaultInjector::delivery_fate`] answers how the delivery is
//!   mangled (extra delay, reorder hold-back, duplication).
//!
//! Determinism: all randomness comes from one `SmallRng` seeded from the
//! scenario's `RngFactory` (`derive_seed("fault", 0)`), and draws happen
//! in event order on a single thread, so a faulted run is exactly as
//! reproducible as a clean one. Draws are skipped entirely while no
//! probabilistic model is active, so a plan of purely deterministic
//! actions (blackouts, rate steps) costs zero RNG state.

use crate::plan::{FaultAction, FaultKind, FaultPlan, LossModel};
use ccsim_sim::{Bandwidth, SimDuration, SimTime, SnapError, SnapReader, SnapWriter};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Why an arrival was dropped by the injector (kept distinct from
/// drop-tail queue overflow in link statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The link is in a blackout window.
    Blackout,
    /// The active random-loss process fired.
    RandomLoss,
}

/// How one delivery should be mangled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeliveryFate {
    /// Extra one-way delay to add on top of propagation delay (base-RTT
    /// step plus any reorder hold-back).
    pub extra_delay: SimDuration,
    /// Schedule a second copy of the packet.
    pub duplicate: bool,
}

/// Settings changed by a batch of applied actions that the link itself
/// must act on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AppliedChanges {
    /// New serialization rate, if a bandwidth step fired.
    pub new_rate: Option<Bandwidth>,
}

/// Counters for every injector decision, reported alongside link stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Arrivals dropped by blackout windows.
    pub blackout_dropped: u64,
    /// Arrivals dropped by the random-loss process.
    pub loss_dropped: u64,
    /// Deliveries held back by reordering.
    pub reordered: u64,
    /// Deliveries duplicated.
    pub duplicated: u64,
    /// Plan actions applied so far.
    pub actions_applied: u64,
}

impl FaultStats {
    /// Total arrivals the injector dropped (blackout + random loss).
    pub fn dropped(&self) -> u64 {
        self.blackout_dropped + self.loss_dropped
    }
}

#[derive(Debug, Clone)]
enum LossState {
    Iid { rate: f64 },
    Burst { enter: f64, exit: f64, bad: bool },
}

/// Executes a sorted [`FaultPlan`] against a link's event stream.
#[derive(Debug, Clone)]
pub struct LinkFaultInjector {
    actions: Vec<FaultAction>,
    cursor: usize,
    rng: SmallRng,
    blackout_until: Option<SimTime>,
    loss: Option<LossState>,
    reorder_rate: f64,
    reorder_extra: SimDuration,
    dup_rate: f64,
    extra_delay: SimDuration,
    stats: FaultStats,
}

impl LinkFaultInjector {
    /// Build from a plan (sorted internally) and a derived seed.
    pub fn new(plan: &FaultPlan, seed: u64) -> LinkFaultInjector {
        LinkFaultInjector {
            actions: plan.sorted_actions(),
            cursor: 0,
            rng: SmallRng::seed_from_u64(seed),
            blackout_until: None,
            loss: None,
            reorder_rate: 0.0,
            reorder_extra: SimDuration::ZERO,
            dup_rate: 0.0,
            extra_delay: SimDuration::ZERO,
            stats: FaultStats::default(),
        }
    }

    /// When the link's fault timer should next fire, if ever.
    pub fn next_action_at(&self) -> Option<SimTime> {
        self.actions.get(self.cursor).map(|a| a.at)
    }

    /// Apply every action due at or before `now`; returns settings the
    /// link must apply to itself.
    pub fn advance_to(&mut self, now: SimTime) -> AppliedChanges {
        let mut changes = AppliedChanges::default();
        while let Some(a) = self.actions.get(self.cursor) {
            if a.at > now {
                break;
            }
            match a.kind {
                FaultKind::Blackout { duration } => {
                    self.blackout_until = Some(a.at + duration);
                }
                FaultKind::SetBandwidth { rate } => changes.new_rate = Some(rate),
                FaultKind::SetExtraDelay { delay } => self.extra_delay = delay,
                FaultKind::SetLoss { model } => {
                    self.loss = model.map(|m| match m {
                        LossModel::Iid { rate } => LossState::Iid { rate },
                        LossModel::Burst { enter, exit } => LossState::Burst {
                            enter,
                            exit,
                            bad: false,
                        },
                    });
                }
                FaultKind::SetReorder { rate, extra } => {
                    self.reorder_rate = rate;
                    self.reorder_extra = extra;
                }
                FaultKind::SetDuplicate { rate } => self.dup_rate = rate,
            }
            self.stats.actions_applied += 1;
            self.cursor += 1;
        }
        changes
    }

    /// Decide the fate of one arrival at `now`. `Some(reason)` means the
    /// packet is dropped before it reaches the queue.
    pub fn arrival_drop(&mut self, now: SimTime) -> Option<DropReason> {
        if let Some(until) = self.blackout_until {
            if now < until {
                self.stats.blackout_dropped += 1;
                return Some(DropReason::Blackout);
            }
            // Window over — clear so steady-state arrivals skip the check.
            self.blackout_until = None;
        }
        match &mut self.loss {
            None => None,
            Some(LossState::Iid { rate }) => {
                let rate = *rate;
                if rate > 0.0 && self.rng.gen_bool(rate) {
                    self.stats.loss_dropped += 1;
                    Some(DropReason::RandomLoss)
                } else {
                    None
                }
            }
            Some(LossState::Burst { enter, exit, bad }) => {
                if *bad {
                    // Every arrival in the bad state is lost; leave with
                    // probability `exit`.
                    let exit = *exit;
                    if exit > 0.0 && self.rng.gen_bool(exit) {
                        *bad = false;
                    }
                    self.stats.loss_dropped += 1;
                    Some(DropReason::RandomLoss)
                } else {
                    let enter = *enter;
                    if enter > 0.0 && self.rng.gen_bool(enter) {
                        *bad = true;
                        self.stats.loss_dropped += 1;
                        Some(DropReason::RandomLoss)
                    } else {
                        None
                    }
                }
            }
        }
    }

    /// Decide how one delivery is mangled (called at serialization done).
    pub fn delivery_fate(&mut self) -> DeliveryFate {
        let mut fate = DeliveryFate {
            extra_delay: self.extra_delay,
            duplicate: false,
        };
        if self.reorder_rate > 0.0 && self.rng.gen_bool(self.reorder_rate) {
            fate.extra_delay += self.reorder_extra;
            self.stats.reordered += 1;
        }
        if self.dup_rate > 0.0 && self.rng.gen_bool(self.dup_rate) {
            fate.duplicate = true;
            self.stats.duplicated += 1;
        }
        fate
    }

    /// Serialize runtime state for a checkpoint. The action list itself
    /// is *not* written — it is deterministic from the scenario's
    /// `FaultPlan`, so restore rebuilds the injector from the plan and
    /// overlays this state (cursor, RNG, active impairments, counters).
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.usize(self.cursor);
        for word in self.rng.state() {
            w.u64(word);
        }
        w.opt(self.blackout_until, |w, t| w.time(t));
        match &self.loss {
            None => w.u8(0),
            Some(LossState::Iid { rate }) => {
                w.u8(1);
                w.f64(*rate);
            }
            Some(LossState::Burst { enter, exit, bad }) => {
                w.u8(2);
                w.f64(*enter);
                w.f64(*exit);
                w.bool(*bad);
            }
        }
        w.f64(self.reorder_rate);
        w.duration(self.reorder_extra);
        w.f64(self.dup_rate);
        w.duration(self.extra_delay);
        w.u64(self.stats.blackout_dropped);
        w.u64(self.stats.loss_dropped);
        w.u64(self.stats.reordered);
        w.u64(self.stats.duplicated);
        w.u64(self.stats.actions_applied);
    }

    /// Overlay checkpointed runtime state onto an injector freshly built
    /// from the same `FaultPlan` (see [`LinkFaultInjector::save_state`]).
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let cursor = r.usize()?;
        if cursor > self.actions.len() {
            return Err(SnapError::Corrupt(format!(
                "fault cursor {cursor} past {} actions",
                self.actions.len()
            )));
        }
        self.cursor = cursor;
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = r.u64()?;
        }
        self.rng = SmallRng::from_state(s);
        self.blackout_until = r.opt(|r| r.time())?;
        self.loss = match r.u8()? {
            0 => None,
            1 => Some(LossState::Iid { rate: r.f64()? }),
            2 => Some(LossState::Burst {
                enter: r.f64()?,
                exit: r.f64()?,
                bad: r.bool()?,
            }),
            b => return Err(SnapError::Corrupt(format!("loss-state tag {b}"))),
        };
        self.reorder_rate = r.f64()?;
        self.reorder_extra = r.duration()?;
        self.dup_rate = r.f64()?;
        self.extra_delay = r.duration()?;
        self.stats.blackout_dropped = r.u64()?;
        self.stats.loss_dropped = r.u64()?;
        self.stats.reordered = r.u64()?;
        self.stats.duplicated = r.u64()?;
        self.stats.actions_applied = r.u64()?;
        Ok(())
    }

    /// True while the blackout window is open at `now` (read-only; used
    /// by tests and diagnostics).
    pub fn in_blackout(&self, now: SimTime) -> bool {
        self.blackout_until.is_some_and(|until| now < until)
    }

    /// Injector decision counters.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_sim::SimTime;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn blackout_opens_and_self_restores() {
        let plan = FaultPlan::none().blackout(t(5), SimDuration::from_secs(2));
        let mut inj = LinkFaultInjector::new(&plan, 1);
        assert_eq!(inj.next_action_at(), Some(t(5)));
        assert_eq!(inj.arrival_drop(t(4)), None);
        inj.advance_to(t(5));
        assert_eq!(inj.arrival_drop(t(5)), Some(DropReason::Blackout));
        assert_eq!(inj.arrival_drop(t(6)), Some(DropReason::Blackout));
        assert_eq!(inj.arrival_drop(t(7)), None); // end is exclusive
        assert_eq!(inj.stats().blackout_dropped, 2);
        assert_eq!(inj.next_action_at(), None);
    }

    #[test]
    fn iid_loss_hits_close_to_rate_and_is_seed_deterministic() {
        let plan = FaultPlan::none().iid_loss(t(0), 0.2);
        let run = |seed| {
            let mut inj = LinkFaultInjector::new(&plan, seed);
            inj.advance_to(t(0));
            let mut drops = Vec::new();
            for i in 0..10_000 {
                drops.push(
                    inj.arrival_drop(t(1) + SimDuration::from_nanos(i))
                        .is_some(),
                );
            }
            drops
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed must give the identical drop pattern");
        let hits = a.iter().filter(|&&d| d).count();
        assert!((1_700..2_300).contains(&hits), "got {hits} drops at p=0.2");
        let c = run(8);
        assert_ne!(a, c, "different seed should give a different pattern");
    }

    #[test]
    fn burst_loss_produces_longer_runs_than_iid() {
        // Same long-run loss rate (~2%), very different clustering.
        let run_lengths = |plan: FaultPlan| {
            let mut inj = LinkFaultInjector::new(&plan, 42);
            inj.advance_to(t(0));
            let mut lengths = Vec::new();
            let mut cur = 0u32;
            for i in 0..200_000u64 {
                if inj
                    .arrival_drop(t(1) + SimDuration::from_nanos(i))
                    .is_some()
                {
                    cur += 1;
                } else if cur > 0 {
                    lengths.push(cur);
                    cur = 0;
                }
            }
            lengths
        };
        let iid = run_lengths(FaultPlan::none().iid_loss(t(0), 0.02));
        let burst = run_lengths(FaultPlan::none().burst_loss(t(0), 0.004, 0.2));
        let mean = |v: &[u32]| v.iter().map(|&x| x as f64).sum::<f64>() / v.len() as f64;
        assert!(
            mean(&burst) > 2.0 * mean(&iid),
            "burst mean run {} vs iid {}",
            mean(&burst),
            mean(&iid)
        );
    }

    #[test]
    fn bandwidth_and_delay_steps_apply_at_their_times() {
        let plan = FaultPlan::none()
            .set_bandwidth(t(5), Bandwidth::from_mbps(50))
            .set_extra_delay(t(10), SimDuration::from_millis(20));
        let mut inj = LinkFaultInjector::new(&plan, 1);
        assert_eq!(inj.advance_to(t(4)).new_rate, None);
        assert_eq!(
            inj.advance_to(t(5)).new_rate,
            Some(Bandwidth::from_mbps(50))
        );
        assert_eq!(inj.delivery_fate().extra_delay, SimDuration::ZERO);
        inj.advance_to(t(10));
        assert_eq!(
            inj.delivery_fate().extra_delay,
            SimDuration::from_millis(20)
        );
        assert_eq!(inj.stats().actions_applied, 2);
    }

    #[test]
    fn certain_reorder_and_duplicate_fire_every_delivery() {
        let plan = FaultPlan::none()
            .reorder(t(0), 1.0, SimDuration::from_millis(5))
            .duplicate(t(0), 1.0);
        let mut inj = LinkFaultInjector::new(&plan, 1);
        inj.advance_to(t(0));
        for _ in 0..100 {
            let fate = inj.delivery_fate();
            assert_eq!(fate.extra_delay, SimDuration::from_millis(5));
            assert!(fate.duplicate);
        }
        assert_eq!(inj.stats().reordered, 100);
        assert_eq!(inj.stats().duplicated, 100);
    }

    #[test]
    fn clear_loss_stops_dropping() {
        let plan = FaultPlan::none().iid_loss(t(0), 1.0).clear_loss(t(10));
        let mut inj = LinkFaultInjector::new(&plan, 1);
        inj.advance_to(t(0));
        assert_eq!(inj.arrival_drop(t(1)), Some(DropReason::RandomLoss));
        inj.advance_to(t(10));
        assert_eq!(inj.arrival_drop(t(11)), None);
    }

    #[test]
    fn no_active_model_means_no_rng_draws() {
        // With only deterministic actions the RNG must never advance, so
        // two injectors with different seeds behave identically.
        let plan = FaultPlan::none().blackout(t(5), SimDuration::from_secs(1));
        let mut a = LinkFaultInjector::new(&plan, 1);
        let mut b = LinkFaultInjector::new(&plan, 999);
        for i in 0..1000u64 {
            let now = t(4) + SimDuration::from_millis(i * 3);
            a.advance_to(now);
            b.advance_to(now);
            assert_eq!(a.arrival_drop(now), b.arrival_drop(now));
            assert_eq!(a.delivery_fate(), b.delivery_fate());
        }
    }
}
