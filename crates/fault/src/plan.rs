//! Declarative fault schedules.
//!
//! A [`FaultPlan`] is the simulator's replacement for the `tc netem` /
//! `tbf` knob-turning a physical testbed does mid-experiment: an ordered
//! list of `(time, action)` pairs applied at the bottleneck link. Plans
//! are pure data — validated up front ([`FaultPlan::validate`]), carried
//! inside the `Scenario`, serialized into crash bundles
//! ([`FaultPlan::to_json`] / [`FaultPlan::from_json`]) — and only become
//! behaviour when a `LinkFaultInjector` executes them against the engine
//! clock.

use crate::json::{Json, JsonError};
use ccsim_sim::jsonfmt::json_f64;
use ccsim_sim::{Bandwidth, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Random-loss process applied to packet arrivals.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LossModel {
    /// Independent per-packet loss with probability `rate` — `netem loss
    /// random`, the process the Mathis model assumes.
    Iid { rate: f64 },
    /// Two-state Gilbert model: in the good state each arrival enters the
    /// bad state with probability `enter`; in the bad state every arrival
    /// is dropped and the process leaves with probability `exit` (mean
    /// burst length `1/exit`). Correlated loss is what defeats
    /// Mathis-style square-root models in practice.
    Burst { enter: f64, exit: f64 },
}

/// One timed impairment. "Set" actions replace the previous setting of
/// the same kind and persist until the next one; `Blackout` is
/// self-restoring after `duration`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Total outage: every arrival during `[at, at + duration)` is
    /// dropped. Packets already queued or in serialization still drain —
    /// the cable is cut in front of the queue, not through it.
    Blackout { duration: SimDuration },
    /// Step the link rate (takes effect at the next serialization start).
    SetBandwidth { rate: Bandwidth },
    /// Add constant extra one-way delay to every delivery (a base-RTT
    /// step; `netem delay` on the forward path).
    SetExtraDelay { delay: SimDuration },
    /// Install (or with `None` clear) a random-loss process.
    SetLoss { model: Option<LossModel> },
    /// Reorder: each delivery is independently held back by `extra` with
    /// probability `rate` (0 disables), letting later packets overtake it.
    SetReorder { rate: f64, extra: SimDuration },
    /// Duplicate each delivery with probability `rate` (0 disables).
    SetDuplicate { rate: f64 },
}

/// A [`FaultKind`] pinned to an engine timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultAction {
    pub at: SimTime,
    pub kind: FaultKind,
}

/// An ordered fault schedule. Default (empty) means "no faults" and is
/// guaranteed digest-inert: the link never consults RNG or timers for an
/// empty plan.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    pub actions: Vec<FaultAction>,
}

/// Structured validation failure for a [`FaultPlan`].
#[derive(Debug, Clone, PartialEq)]
pub enum FaultPlanError {
    /// Action scheduled at or past the scenario horizon (warm-up +
    /// measurement duration) — it could never fire.
    BeyondHorizon { at: SimTime, horizon: SimTime },
    /// A blackout starts before the previous one ended.
    OverlappingBlackouts {
        first_end: SimTime,
        second_start: SimTime,
    },
    /// Probability outside `[0, 1]`.
    BadProbability { at: SimTime, value: f64 },
    /// A bandwidth step to zero (the link could never drain again).
    ZeroBandwidth { at: SimTime },
    /// A blackout of zero duration (a no-op that is almost certainly a
    /// units mistake).
    ZeroBlackout { at: SimTime },
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::BeyondHorizon { at, horizon } => {
                write!(f, "fault at {at} is beyond the scenario horizon {horizon}")
            }
            FaultPlanError::OverlappingBlackouts {
                first_end,
                second_start,
            } => write!(
                f,
                "blackout starting at {second_start} overlaps one ending at {first_end}"
            ),
            FaultPlanError::BadProbability { at, value } => {
                write!(f, "fault at {at} has probability {value} outside [0, 1]")
            }
            FaultPlanError::ZeroBandwidth { at } => {
                write!(f, "fault at {at} steps bandwidth to zero")
            }
            FaultPlanError::ZeroBlackout { at } => {
                write!(f, "blackout at {at} has zero duration")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

impl FaultPlan {
    /// The empty plan (no faults; identical behaviour to a build without
    /// the fault subsystem).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    fn push(mut self, at: SimTime, kind: FaultKind) -> FaultPlan {
        self.actions.push(FaultAction { at, kind });
        self
    }

    /// Cut the link for `duration` starting at `at`.
    pub fn blackout(self, at: SimTime, duration: SimDuration) -> FaultPlan {
        self.push(at, FaultKind::Blackout { duration })
    }

    /// Step the link rate at `at`.
    pub fn set_bandwidth(self, at: SimTime, rate: Bandwidth) -> FaultPlan {
        self.push(at, FaultKind::SetBandwidth { rate })
    }

    /// Step the extra one-way delay at `at`.
    pub fn set_extra_delay(self, at: SimTime, delay: SimDuration) -> FaultPlan {
        self.push(at, FaultKind::SetExtraDelay { delay })
    }

    /// Install i.i.d. loss of probability `rate` at `at`.
    pub fn iid_loss(self, at: SimTime, rate: f64) -> FaultPlan {
        self.push(
            at,
            FaultKind::SetLoss {
                model: Some(LossModel::Iid { rate }),
            },
        )
    }

    /// Install Gilbert burst loss at `at`.
    pub fn burst_loss(self, at: SimTime, enter: f64, exit: f64) -> FaultPlan {
        self.push(
            at,
            FaultKind::SetLoss {
                model: Some(LossModel::Burst { enter, exit }),
            },
        )
    }

    /// Clear any random-loss process at `at`.
    pub fn clear_loss(self, at: SimTime) -> FaultPlan {
        self.push(at, FaultKind::SetLoss { model: None })
    }

    /// Install reordering at `at`.
    pub fn reorder(self, at: SimTime, rate: f64, extra: SimDuration) -> FaultPlan {
        self.push(at, FaultKind::SetReorder { rate, extra })
    }

    /// Install duplication at `at`.
    pub fn duplicate(self, at: SimTime, rate: f64) -> FaultPlan {
        self.push(at, FaultKind::SetDuplicate { rate })
    }

    /// Actions sorted by firing time (stable, so same-time actions keep
    /// plan order).
    pub fn sorted_actions(&self) -> Vec<FaultAction> {
        let mut actions = self.actions.clone();
        actions.sort_by_key(|a| a.at);
        actions
    }

    /// Check the plan against a scenario horizon: every action must fire
    /// inside the run, probabilities must be probabilities, blackouts
    /// must not overlap, and bandwidth steps must keep the link drainable.
    pub fn validate(&self, horizon: SimTime) -> Result<(), FaultPlanError> {
        let actions = self.sorted_actions();
        let mut blackout_end: Option<SimTime> = None;
        for a in &actions {
            if a.at >= horizon {
                return Err(FaultPlanError::BeyondHorizon { at: a.at, horizon });
            }
            let check_p = |value: f64| -> Result<(), FaultPlanError> {
                if (0.0..=1.0).contains(&value) && value.is_finite() {
                    Ok(())
                } else {
                    Err(FaultPlanError::BadProbability { at: a.at, value })
                }
            };
            match a.kind {
                FaultKind::Blackout { duration } => {
                    if duration.is_zero() {
                        return Err(FaultPlanError::ZeroBlackout { at: a.at });
                    }
                    if let Some(end) = blackout_end {
                        if a.at < end {
                            return Err(FaultPlanError::OverlappingBlackouts {
                                first_end: end,
                                second_start: a.at,
                            });
                        }
                    }
                    blackout_end = Some(a.at + duration);
                }
                FaultKind::SetBandwidth { rate } => {
                    if rate == Bandwidth::ZERO {
                        return Err(FaultPlanError::ZeroBandwidth { at: a.at });
                    }
                }
                FaultKind::SetExtraDelay { .. } => {}
                FaultKind::SetLoss { model } => match model {
                    Some(LossModel::Iid { rate }) => check_p(rate)?,
                    Some(LossModel::Burst { enter, exit }) => {
                        check_p(enter)?;
                        check_p(exit)?;
                    }
                    None => {}
                },
                FaultKind::SetReorder { rate, .. } => check_p(rate)?,
                FaultKind::SetDuplicate { rate } => check_p(rate)?,
            }
        }
        Ok(())
    }

    /// Serialize to a single-line JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"actions\":[");
        for (i, a) in self.actions.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("{{\"at_ns\":{},", a.at.as_nanos()));
            match a.kind {
                FaultKind::Blackout { duration } => s.push_str(&format!(
                    "\"kind\":\"blackout\",\"duration_ns\":{}",
                    duration.as_nanos()
                )),
                FaultKind::SetBandwidth { rate } => s.push_str(&format!(
                    "\"kind\":\"set_bandwidth\",\"bps\":{}",
                    rate.as_bps()
                )),
                FaultKind::SetExtraDelay { delay } => s.push_str(&format!(
                    "\"kind\":\"set_extra_delay\",\"delay_ns\":{}",
                    delay.as_nanos()
                )),
                FaultKind::SetLoss { model } => {
                    s.push_str("\"kind\":\"set_loss\",\"model\":");
                    match model {
                        None => s.push_str("null"),
                        Some(LossModel::Iid { rate }) => {
                            s.push_str(&format!("{{\"iid\":{{\"rate\":{}}}}}", json_f64(rate)))
                        }
                        Some(LossModel::Burst { enter, exit }) => s.push_str(&format!(
                            "{{\"burst\":{{\"enter\":{},\"exit\":{}}}}}",
                            json_f64(enter),
                            json_f64(exit)
                        )),
                    }
                }
                FaultKind::SetReorder { rate, extra } => s.push_str(&format!(
                    "\"kind\":\"set_reorder\",\"rate\":{},\"extra_ns\":{}",
                    json_f64(rate),
                    extra.as_nanos()
                )),
                FaultKind::SetDuplicate { rate } => s.push_str(&format!(
                    "\"kind\":\"set_duplicate\",\"rate\":{}",
                    json_f64(rate)
                )),
            }
            s.push('}');
        }
        s.push_str("]}");
        s
    }

    /// Parse a document produced by [`FaultPlan::to_json`].
    pub fn from_json(text: &str) -> Result<FaultPlan, JsonError> {
        let doc = Json::parse(text)?;
        Self::from_value(&doc)
    }

    /// Decode from an already-parsed [`Json`] value (used when the plan is
    /// embedded in a larger scenario document).
    pub fn from_value(doc: &Json) -> Result<FaultPlan, JsonError> {
        let bad = |message: &str| JsonError {
            offset: 0,
            message: message.to_string(),
        };
        let actions_json = doc
            .get("actions")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("fault plan missing \"actions\" array"))?;
        let mut actions = Vec::with_capacity(actions_json.len());
        for a in actions_json {
            let at = a
                .get("at_ns")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("fault action missing \"at_ns\""))?;
            let kind = a
                .get("kind")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("fault action missing \"kind\""))?;
            let u64_field = |key: &str| -> Result<u64, JsonError> {
                a.get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad(&format!("fault action missing \"{key}\"")))
            };
            let f64_field = |v: &Json, key: &str| -> Result<f64, JsonError> {
                v.get(key)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| bad(&format!("fault action missing \"{key}\"")))
            };
            let kind = match kind {
                "blackout" => FaultKind::Blackout {
                    duration: SimDuration::from_nanos(u64_field("duration_ns")?),
                },
                "set_bandwidth" => FaultKind::SetBandwidth {
                    rate: Bandwidth::from_bps(u64_field("bps")?),
                },
                "set_extra_delay" => FaultKind::SetExtraDelay {
                    delay: SimDuration::from_nanos(u64_field("delay_ns")?),
                },
                "set_loss" => {
                    let model = a
                        .get("model")
                        .ok_or_else(|| bad("set_loss missing \"model\""))?;
                    let model = if model.is_null() {
                        None
                    } else if let Some(iid) = model.get("iid") {
                        Some(LossModel::Iid {
                            rate: f64_field(iid, "rate")?,
                        })
                    } else if let Some(burst) = model.get("burst") {
                        Some(LossModel::Burst {
                            enter: f64_field(burst, "enter")?,
                            exit: f64_field(burst, "exit")?,
                        })
                    } else {
                        return Err(bad("unknown loss model"));
                    };
                    FaultKind::SetLoss { model }
                }
                "set_reorder" => FaultKind::SetReorder {
                    rate: f64_field(a, "rate")?,
                    extra: SimDuration::from_nanos(u64_field("extra_ns")?),
                },
                "set_duplicate" => FaultKind::SetDuplicate {
                    rate: f64_field(a, "rate")?,
                },
                other => return Err(bad(&format!("unknown fault kind \"{other}\""))),
            };
            actions.push(FaultAction {
                at: SimTime::from_nanos(at),
                kind,
            });
        }
        Ok(FaultPlan { actions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn horizon() -> SimTime {
        SimTime::from_secs(60)
    }

    fn full_plan() -> FaultPlan {
        FaultPlan::none()
            .blackout(SimTime::from_secs(5), SimDuration::from_secs(1))
            .set_bandwidth(SimTime::from_secs(10), Bandwidth::from_mbps(50))
            .set_extra_delay(SimTime::from_secs(15), SimDuration::from_millis(20))
            .iid_loss(SimTime::from_secs(20), 0.01)
            .burst_loss(SimTime::from_secs(25), 0.001, 0.25)
            .clear_loss(SimTime::from_secs(30))
            .reorder(SimTime::from_secs(35), 0.02, SimDuration::from_millis(5))
            .duplicate(SimTime::from_secs(40), 0.005)
    }

    #[test]
    fn json_round_trips_every_kind() {
        let plan = full_plan();
        let back = FaultPlan::from_json(&plan.to_json()).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn empty_plan_round_trips() {
        let plan = FaultPlan::none();
        assert_eq!(FaultPlan::from_json(&plan.to_json()).unwrap(), plan);
    }

    #[test]
    fn valid_plan_passes() {
        full_plan().validate(horizon()).unwrap();
    }

    #[test]
    fn rejects_action_beyond_horizon() {
        let plan = FaultPlan::none().iid_loss(SimTime::from_secs(61), 0.01);
        assert!(matches!(
            plan.validate(horizon()),
            Err(FaultPlanError::BeyondHorizon { .. })
        ));
    }

    #[test]
    fn rejects_overlapping_blackouts() {
        let plan = FaultPlan::none()
            .blackout(SimTime::from_secs(5), SimDuration::from_secs(2))
            .blackout(SimTime::from_secs(6), SimDuration::from_secs(1));
        assert!(matches!(
            plan.validate(horizon()),
            Err(FaultPlanError::OverlappingBlackouts { .. })
        ));
        // Back-to-back (end == start) is fine.
        let plan = FaultPlan::none()
            .blackout(SimTime::from_secs(5), SimDuration::from_secs(1))
            .blackout(SimTime::from_secs(6), SimDuration::from_secs(1));
        plan.validate(horizon()).unwrap();
    }

    #[test]
    fn overlap_detected_regardless_of_push_order() {
        let plan = FaultPlan::none()
            .blackout(SimTime::from_secs(6), SimDuration::from_secs(1))
            .blackout(SimTime::from_secs(5), SimDuration::from_secs(2));
        assert!(matches!(
            plan.validate(horizon()),
            Err(FaultPlanError::OverlappingBlackouts { .. })
        ));
    }

    #[test]
    fn rejects_bad_probability() {
        for plan in [
            FaultPlan::none().iid_loss(SimTime::from_secs(1), 1.5),
            FaultPlan::none().iid_loss(SimTime::from_secs(1), -0.1),
            FaultPlan::none().iid_loss(SimTime::from_secs(1), f64::NAN),
            FaultPlan::none().duplicate(SimTime::from_secs(1), 2.0),
            FaultPlan::none().reorder(SimTime::from_secs(1), 1.1, SimDuration::from_millis(1)),
            FaultPlan::none().burst_loss(SimTime::from_secs(1), 0.5, 1.2),
        ] {
            assert!(matches!(
                plan.validate(horizon()),
                Err(FaultPlanError::BadProbability { .. })
            ));
        }
    }

    #[test]
    fn rejects_zero_bandwidth_and_zero_blackout() {
        let plan = FaultPlan::none().set_bandwidth(SimTime::from_secs(1), Bandwidth::ZERO);
        assert!(matches!(
            plan.validate(horizon()),
            Err(FaultPlanError::ZeroBandwidth { .. })
        ));
        let plan = FaultPlan::none().blackout(SimTime::from_secs(1), SimDuration::ZERO);
        assert!(matches!(
            plan.validate(horizon()),
            Err(FaultPlanError::ZeroBlackout { .. })
        ));
    }

    #[test]
    fn errors_display_cleanly() {
        let err = FaultPlan::none()
            .iid_loss(SimTime::from_secs(1), 1.5)
            .validate(horizon())
            .unwrap_err();
        assert!(err.to_string().contains("outside [0, 1]"));
    }
}
