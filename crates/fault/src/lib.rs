//! Fault injection and runtime invariants for ccsim.
//!
//! The paper's measurements run over *steady* emulated links, but the
//! regimes that stress its throughput models — loss episodes, rate and
//! delay transients, reordering — are exactly what real testbeds (and
//! emulation harnesses like CoCo-Beholder, PAPERS.md) impose with
//! `netem`/`tc` mid-run. This crate brings those impairments into the
//! simulator while keeping its core guarantee: byte-for-byte
//! reproducibility from a seed.
//!
//! Three pieces:
//!
//! * [`FaultPlan`] — a declarative, validated, JSON-roundtrippable
//!   schedule of timed faults (blackout/restore, bandwidth and extra-delay
//!   steps, i.i.d. and burst loss, reordering, duplication). Plans are
//!   pure data; nothing here touches the event loop.
//! * [`LinkFaultInjector`] — the runtime state machine a `Link` drives:
//!   it applies due actions at exact engine timestamps and answers, per
//!   packet, "drop on arrival?" and "how should this delivery be mangled?"
//!   using a dedicated seeded RNG stream so faulted runs stay
//!   deterministic.
//! * [`WatchdogConfig`] / [`InvariantViolation`] — the vocabulary of the
//!   runtime invariant watchdog. The checks themselves live in
//!   `ccsim-core` (they need the built network); this crate defines the
//!   structured violations they report instead of `assert!`ing.
//!
//! The crate also hosts [`json`], a minimal recursive-descent JSON parser:
//! the vendored serde stand-in has no deserializer (`vendor/README.md`),
//! and crash-bundle replay needs to read back nested scenario/fault-plan
//! documents that the flat field extractors in `ccsim-telemetry` cannot.

pub mod injector;
pub mod json;
pub mod plan;
pub mod watchdog;

pub use injector::{AppliedChanges, DeliveryFate, DropReason, FaultStats, LinkFaultInjector};
pub use json::{Json, JsonError};
pub use plan::{FaultAction, FaultKind, FaultPlan, FaultPlanError, LossModel};
pub use watchdog::{InvariantKind, InvariantViolation, WatchdogConfig, WatchdogReport};
