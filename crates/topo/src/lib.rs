//! # ccsim-topo — routed multi-bottleneck topologies
//!
//! The topology layer between scenario configuration and the live
//! simulator: value-type [`Topology`] descriptions (nodes, directed links
//! with per-link rate/delay/buffer/AQM, static per-flow route tables),
//! generators for the shapes the fairness literature sweeps
//! (single-bottleneck, dumbbell, parking-lot, asymmetric reverse path),
//! and deterministic instantiation into `ccsim-net` [`Link`]s chained by
//! lightweight per-flow [`Router`]s.
//!
//! Design constraints, in order:
//!
//! 1. **Digest fidelity.** The default [`TopologyKind::SingleBottleneck`]
//!    instantiates to exactly the component layout and event sequence of
//!    the pre-topology engine (one drop-tail link, id 0, direct ACK
//!    delivery), so every existing baseline digest stays valid.
//! 2. **Pay only for divergence.** Routers are elided wherever the
//!    next hop is static ([`plan_wiring`]); a dumbbell is two chained
//!    links and zero routers.
//! 3. **Descriptions are data.** [`Topology`] round-trips through
//!    single-line JSON byte-identically, so specs can embed, log, and
//!    diff topologies like any other configuration.
//!
//! [`Link`]: ccsim_net::Link

pub mod instantiate;
pub mod router;
pub mod topology;

pub use instantiate::{
    instantiate, plan_wiring, BuiltTopology, PlannedNextHop, RouterPlan, WiringPlan,
};
pub use router::Router;
pub use topology::{LinkSpec, Topology, TopologyError, TopologyKind};
