//! Per-flow forwarding between links.
//!
//! A [`Router`] sits behind a link whose flows diverge: some continue to
//! another link, others exit toward their destination endpoint. It holds a
//! static per-flow route table computed at instantiation time and forwards
//! each packet with zero delay — all queueing and serialization happens in
//! the links themselves, so a router never reorders or drops.
//!
//! Routers are elided whenever possible (see [`plan_wiring`]): a link whose
//! flows all exit uses [`NextHop::ToPacketDst`] directly, and a link whose
//! flows all continue to the same next link chains via [`NextHop::Fixed`].
//! Only genuinely diverging links pay for a router hop, which keeps the
//! single-bottleneck event sequence byte-identical to the router-free
//! engine.
//!
//! [`plan_wiring`]: crate::instantiate::plan_wiring
//! [`NextHop::ToPacketDst`]: ccsim_net::NextHop::ToPacketDst
//! [`NextHop::Fixed`]: ccsim_net::NextHop::Fixed

use ccsim_net::Msg;
use ccsim_sim::{Component, ComponentId, Ctx, SimTime, SnapError, SnapReader, SnapWriter};

/// A zero-delay per-flow packet forwarder.
#[derive(Debug)]
pub struct Router {
    /// `routes[flow]` — next component for the flow's packets. `None` (or
    /// an index beyond the table) delivers to the packet's own `dst`
    /// endpoint, the "exit" action.
    routes: Vec<Option<ComponentId>>,
    forwarded_pkts: u64,
}

impl Router {
    /// A router with the given per-flow route table.
    pub fn new(routes: Vec<Option<ComponentId>>) -> Router {
        Router {
            routes,
            forwarded_pkts: 0,
        }
    }

    /// Packets forwarded so far (exits included).
    pub fn forwarded_pkts(&self) -> u64 {
        self.forwarded_pkts
    }

    /// The route table (for diagnostics/tests).
    pub fn routes(&self) -> &[Option<ComponentId>] {
        &self.routes
    }

    /// Serialize mutable state for a checkpoint (the route table is
    /// configuration, recomputed at instantiation).
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.forwarded_pkts);
    }

    /// Overlay checkpointed state.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.forwarded_pkts = r.u64()?;
        Ok(())
    }
}

impl Component<Msg> for Router {
    fn on_event(&mut self, _now: SimTime, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        if let Msg::Packet(p) = msg {
            let next = self
                .routes
                .get(p.flow.index())
                .copied()
                .flatten()
                .unwrap_or(p.dst);
            self.forwarded_pkts += 1;
            ctx.send(next, Msg::Packet(p));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_net::{FlowId, Packet};
    use ccsim_sim::{SimTime, Simulator};

    #[derive(Default)]
    struct Sink {
        got: Vec<Packet>,
    }

    impl Component<Msg> for Sink {
        fn on_event(&mut self, _now: SimTime, msg: Msg, _ctx: &mut Ctx<'_, Msg>) {
            if let Msg::Packet(p) = msg {
                self.got.push(p);
            }
        }
    }

    fn pkt(flow: u32, dst: ComponentId) -> Packet {
        Packet::data(FlowId(flow), dst, 0, 1448, SimTime::ZERO)
    }

    #[test]
    fn routes_by_flow_and_falls_back_to_packet_dst() {
        let mut sim: Simulator<Msg> = Simulator::new(0);
        let next_hop = sim.add_component(Sink::default());
        let endpoint = sim.add_component(Sink::default());
        let router = sim.add_component(Router::new(vec![Some(next_hop), None]));

        // Flow 0 is routed onward; flow 1 exits; flow 7 (beyond the table)
        // also exits.
        sim.schedule(SimTime::ZERO, router, Msg::Packet(pkt(0, endpoint)));
        sim.schedule(SimTime::ZERO, router, Msg::Packet(pkt(1, endpoint)));
        sim.schedule(SimTime::ZERO, router, Msg::Packet(pkt(7, endpoint)));
        sim.run_until(SimTime::from_nanos(1));

        assert_eq!(sim.component::<Sink>(next_hop).got.len(), 1);
        assert_eq!(sim.component::<Sink>(next_hop).got[0].flow, FlowId(0));
        assert_eq!(sim.component::<Sink>(endpoint).got.len(), 2);
        assert_eq!(sim.component::<Router>(router).forwarded_pkts(), 3);
    }
}
