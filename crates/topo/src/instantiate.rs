//! Turning a [`Topology`] description into live simulator components.
//!
//! [`plan_wiring`] is the pure half: from the route tables it computes,
//! for every link, what happens to a packet after serialization —
//! deliver to its destination endpoint, chain to one fixed next link, or
//! go through a per-flow [`Router`]. Routers are created only for links
//! whose flows genuinely diverge, so the single-bottleneck topology
//! instantiates to exactly one component (the link, in
//! [`NextHop::ToPacketDst`] mode) — byte-identical to the pre-topology
//! engine.
//!
//! [`instantiate`] is the impure half: it adds the links (ids `0..L`)
//! and routers (ids `L..L+R`) to a **fresh** simulator in deterministic
//! order, applies per-link AQM overrides through the caller's factory
//! closure (which keeps RNG seed derivation in `ccsim-core`), and
//! returns a [`BuiltTopology`] with the handles the endpoint wiring
//! needs: each flow's first forward hop, its first reverse (ACK) hop if
//! the topology models one, and the per-link trace hop indices.

use crate::router::Router;
use crate::topology::{LinkSpec, Topology, TopologyError};
use ccsim_net::{AqmQueue, Link, Msg, NextHop};
use ccsim_sim::{ComponentId, Simulator};

/// What a link does with a packet after serializing it, before component
/// ids exist. Link/router indices, not `ComponentId`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannedNextHop {
    /// Every flow on this link exits here: deliver to `Packet::dst`.
    ToPacketDst,
    /// Every flow on this link continues to the same link.
    FixedLink(u32),
    /// Flows diverge: go through the router with this index.
    Router(u32),
}

/// A router to be created after a diverging link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterPlan {
    /// The link this router sits behind.
    pub after_link: u32,
    /// Per-flow next link index; `None` = exit to `Packet::dst`.
    pub routes: Vec<Option<u32>>,
}

/// The complete pre-instantiation wiring decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WiringPlan {
    /// Per-link next-hop choice, indexed like `topology.links`.
    pub link_next: Vec<PlannedNextHop>,
    /// Routers to create, in creation order.
    pub routers: Vec<RouterPlan>,
}

/// Compute the next link (or exit) for `flow` after traversing `link`,
/// scanning both the forward and the reverse path. Validation guarantees
/// a link appears at most once across the two.
fn next_after(topo: &Topology, flow: usize, link: u32) -> Option<Option<u32>> {
    for path in [&topo.forward_paths[flow], &topo.reverse_paths[flow]] {
        if let Some(pos) = path.iter().position(|&l| l == link) {
            return Some(path.get(pos + 1).copied());
        }
    }
    None
}

/// Decide, for every link, between direct delivery, a fixed chain, and a
/// per-flow router. Pure; the topology must already validate.
pub fn plan_wiring(topo: &Topology) -> WiringPlan {
    let flows = topo.forward_paths.len();
    let mut link_next = Vec::with_capacity(topo.links.len());
    let mut routers = Vec::new();
    for link in 0..topo.links.len() as u32 {
        // `None` outer = flow skips this link; `Some(None)` = exits here.
        let nexts: Vec<Option<Option<u32>>> =
            (0..flows).map(|f| next_after(topo, f, link)).collect();
        let mut present = nexts.iter().flatten();
        let first = present.next().copied();
        let uniform = present.all(|&n| Some(n) == first);
        link_next.push(match first {
            None => PlannedNextHop::ToPacketDst, // no flows: inert link
            Some(None) if uniform => PlannedNextHop::ToPacketDst,
            Some(Some(j)) if uniform => PlannedNextHop::FixedLink(j),
            _ => {
                routers.push(RouterPlan {
                    after_link: link,
                    routes: nexts.into_iter().map(Option::flatten).collect(),
                });
                PlannedNextHop::Router(routers.len() as u32 - 1)
            }
        });
    }
    WiringPlan { link_next, routers }
}

/// Handles into an instantiated topology.
#[derive(Debug, Clone)]
pub struct BuiltTopology {
    /// Link component ids, indexed like `topology.links`.
    pub links: Vec<ComponentId>,
    /// Router component ids, in [`WiringPlan::routers`] order.
    pub routers: Vec<ComponentId>,
    /// Per flow: the first link of its forward path (where the sender
    /// injects data packets).
    pub first_hop: Vec<ComponentId>,
    /// Per flow: the first link of its reverse path, if the topology
    /// models ACK-path queueing (`None` = deliver ACKs directly).
    pub ack_first_hop: Vec<Option<ComponentId>>,
    /// Index (into `links`) of the primary bottleneck — the anchor for
    /// legacy single-link reporting.
    pub primary: usize,
    /// Per-link trace hop number: the primary bottleneck is hop 0 (its
    /// queue-depth records keep the legacy shape); every other link `i`
    /// is hop `i + 1`.
    pub hop_index: Vec<u32>,
}

/// Instantiate `topo` into a **fresh** simulator. Links take component
/// ids `0..L` and routers `L..L+R`, in index order — asserted, because
/// downstream endpoint-id prediction depends on it.
///
/// `make_aqm(link_index, spec)` may return a queue discipline to install
/// on that link (e.g. the scenario-wide AQM with a per-link seed);
/// `None` keeps the link's built-in drop-tail, which is the
/// digest-identical legacy path.
pub fn instantiate<F>(
    topo: &Topology,
    sim: &mut Simulator<Msg>,
    mut make_aqm: F,
) -> Result<BuiltTopology, TopologyError>
where
    F: FnMut(usize, &LinkSpec) -> Option<Box<dyn AqmQueue>>,
{
    topo.validate()?;
    let plan = plan_wiring(topo);
    let link_count = topo.links.len();
    let link_ids: Vec<ComponentId> = (0..link_count).map(ComponentId::from_raw).collect();
    let router_ids: Vec<ComponentId> = (0..plan.routers.len())
        .map(|k| ComponentId::from_raw(link_count + k))
        .collect();

    for (i, spec) in topo.links.iter().enumerate() {
        let next = match plan.link_next[i] {
            PlannedNextHop::ToPacketDst => NextHop::ToPacketDst,
            PlannedNextHop::FixedLink(j) => NextHop::Fixed(link_ids[j as usize]),
            PlannedNextHop::Router(k) => NextHop::Fixed(router_ids[k as usize]),
        };
        let mut link = Link::new(spec.rate, spec.prop_delay, spec.buffer_bytes, next);
        if let Some(queue) = make_aqm(i, spec) {
            link.set_aqm(queue);
        }
        let id = sim.add_component(link);
        assert_eq!(id, link_ids[i], "instantiate requires a fresh simulator");
    }
    for (k, rp) in plan.routers.iter().enumerate() {
        let routes = rp
            .routes
            .iter()
            .map(|r| r.map(|j| link_ids[j as usize]))
            .collect();
        let id = sim.add_component(Router::new(routes));
        assert_eq!(id, router_ids[k], "router id prediction out of sync");
    }

    let primary = topo.primary_bottleneck();
    let hop_index = (0..link_count as u32)
        .map(|i| if i as usize == primary { 0 } else { i + 1 })
        .collect();
    Ok(BuiltTopology {
        first_hop: topo
            .forward_paths
            .iter()
            .map(|p| link_ids[p[0] as usize])
            .collect(),
        ack_first_hop: topo
            .reverse_paths
            .iter()
            .map(|p| p.first().map(|&i| link_ids[i as usize]))
            .collect(),
        links: link_ids,
        routers: router_ids,
        primary,
        hop_index,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_net::{FlowId, Packet};
    use ccsim_sim::{Bandwidth, Component, Ctx, SimDuration, SimTime};

    const RATE: Bandwidth = Bandwidth::from_mbps(100);

    fn no_aqm(_: usize, _: &LinkSpec) -> Option<Box<dyn AqmQueue>> {
        None
    }

    #[test]
    fn single_bottleneck_elides_everything() {
        let topo = Topology::single_bottleneck(RATE, 3_000_000, 8);
        let plan = plan_wiring(&topo);
        assert_eq!(plan.link_next, vec![PlannedNextHop::ToPacketDst]);
        assert!(plan.routers.is_empty());

        let mut sim: Simulator<Msg> = Simulator::new(0);
        let built = instantiate(&topo, &mut sim, no_aqm).unwrap();
        // Exactly one component, id 0 — the legacy layout.
        assert_eq!(built.links, vec![ComponentId::from_raw(0)]);
        assert!(built.routers.is_empty());
        assert_eq!(built.first_hop, vec![ComponentId::from_raw(0); 8]);
        assert!(built.ack_first_hop.iter().all(Option::is_none));
        assert_eq!(built.primary, 0);
        assert_eq!(built.hop_index, vec![0]);
        // The next component id is 1, where the first sender lands.
        assert_eq!(
            sim.add_component(Probe::default()),
            ComponentId::from_raw(1)
        );
    }

    #[test]
    fn dumbbell_chains_without_routers() {
        let topo = Topology::dumbbell(RATE, 3_000_000, 4);
        let plan = plan_wiring(&topo);
        assert_eq!(
            plan.link_next,
            vec![PlannedNextHop::FixedLink(1), PlannedNextHop::ToPacketDst]
        );
        assert!(plan.routers.is_empty());

        let mut sim: Simulator<Msg> = Simulator::new(0);
        let built = instantiate(&topo, &mut sim, no_aqm).unwrap();
        assert_eq!(built.links.len(), 2);
        assert!(built.routers.is_empty());
        assert_eq!(built.primary, 1);
        // Bottleneck (link 1) is trace hop 0; the aggregation link is hop 1.
        assert_eq!(built.hop_index, vec![1, 0]);
        assert_eq!(built.first_hop, vec![ComponentId::from_raw(0); 4]);
    }

    #[test]
    fn parking_lot_creates_routers_only_where_flows_diverge() {
        let topo = Topology::parking_lot(3, RATE, 1_000_000, 4);
        let plan = plan_wiring(&topo);
        // Links 0 and 1 mix the long flow (continues) with short flows
        // (exit); link 2's flows all exit.
        assert_eq!(
            plan.link_next,
            vec![
                PlannedNextHop::Router(0),
                PlannedNextHop::Router(1),
                PlannedNextHop::ToPacketDst
            ]
        );
        assert_eq!(plan.routers.len(), 2);
        assert_eq!(plan.routers[0].after_link, 0);
        // After link 0: flow 0 → link 1; flow 1 exits; flows 2,3 absent.
        assert_eq!(plan.routers[0].routes, vec![Some(1), None, None, None]);
        assert_eq!(plan.routers[1].routes, vec![Some(2), None, None, None]);

        let mut sim: Simulator<Msg> = Simulator::new(0);
        let built = instantiate(&topo, &mut sim, no_aqm).unwrap();
        assert_eq!(
            built.routers,
            vec![ComponentId::from_raw(3), ComponentId::from_raw(4)]
        );
        // Primary bottleneck (link 0) is hop 0; the rest keep index + 1.
        assert_eq!(built.hop_index, vec![0, 2, 3]);
        // Short flows inject at their single bottleneck.
        assert_eq!(built.first_hop[2], built.links[1]);
    }

    #[test]
    fn asymmetric_dumbbell_exposes_the_ack_hop() {
        let topo = Topology::dumbbell_asym(RATE, 3_000_000, 2);
        let plan = plan_wiring(&topo);
        // The ACK-return link's flows all exit: direct delivery.
        assert_eq!(plan.link_next[2], PlannedNextHop::ToPacketDst);
        assert!(plan.routers.is_empty());

        let mut sim: Simulator<Msg> = Simulator::new(0);
        let built = instantiate(&topo, &mut sim, no_aqm).unwrap();
        assert_eq!(
            built.ack_first_hop,
            vec![Some(built.links[2]), Some(built.links[2])]
        );
    }

    /// End-to-end: packets injected at each flow's first hop reach their
    /// destination endpoint through the routed parking lot.
    #[test]
    fn packets_traverse_the_parking_lot_end_to_end() {
        let topo = Topology::parking_lot(3, RATE, 1_000_000, 3);
        let mut sim: Simulator<Msg> = Simulator::new(0);
        let built = instantiate(&topo, &mut sim, no_aqm).unwrap();
        let sinks: Vec<ComponentId> = (0..3)
            .map(|_| sim.add_component(Probe::default()))
            .collect();

        for flow in 0..3u32 {
            let p = Packet::data(FlowId(flow), sinks[flow as usize], 0, 1448, SimTime::ZERO);
            sim.schedule(
                SimTime::ZERO,
                built.first_hop[flow as usize],
                Msg::Packet(p),
            );
        }
        sim.run_until(SimTime::from_nanos(SimDuration::from_millis(10).as_nanos()));

        for (flow, &sink) in sinks.iter().enumerate() {
            let got = &sim.component::<Probe>(sink).got;
            assert_eq!(got.len(), 1, "flow {flow} packet lost");
            assert_eq!(got[0].flow, FlowId(flow as u32));
        }
        // Each router saw the long flow (onward) plus one short flow (exit).
        assert_eq!(
            sim.component::<Router>(built.routers[0]).forwarded_pkts(),
            2
        );
        assert_eq!(
            sim.component::<Router>(built.routers[1]).forwarded_pkts(),
            2
        );
    }

    #[derive(Default)]
    struct Probe {
        got: Vec<Packet>,
    }

    impl Component<Msg> for Probe {
        fn on_event(&mut self, _now: SimTime, msg: Msg, _ctx: &mut Ctx<'_, Msg>) {
            if let Msg::Packet(p) = msg {
                self.got.push(p);
            }
        }
    }
}
