//! Codec-level float round-trip property: a scenario document written by
//! `ccsim_core::codec` and read back through `ccsim_fault::json` must
//! preserve its one float field (the convergence tolerance) bit-for-bit —
//! including -0.0, subnormals, and magnitudes whose positional expansion
//! would be hundreds of digits — and a second encode must be
//! byte-identical to the first.

use ccsim_core::codec::{scenario_from_json, scenario_to_json};
use ccsim_core::scenario::{ConvergenceRule, Scenario};
use proptest::prelude::*;

fn finite_from_bits(bits: u64) -> f64 {
    let v = f64::from_bits(bits);
    if v.is_finite() {
        v
    } else if v.is_nan() {
        5e-324 // smallest subnormal: a historical trouble spot
    } else {
        f64::MAX.copysign(v)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn tolerance_survives_encode_decode_bit_exact(bits in 0u64..u64::MAX) {
        let tolerance = finite_from_bits(bits);
        let mut s = Scenario::edge_scale();
        s.convergence = Some(ConvergenceRule {
            window_snapshots: 5,
            tolerance,
        });
        let json = scenario_to_json(&s);
        let back = scenario_from_json(&json).expect("codec output must parse");
        let got = back.convergence.as_ref().expect("rule present").tolerance;
        prop_assert_eq!(got.to_bits(), tolerance.to_bits(), "tolerance must be bit-exact");
        prop_assert_eq!(scenario_to_json(&back), json, "re-encode must be byte-identical");
    }
}

#[test]
fn non_finite_tolerance_still_produces_valid_json() {
    // The old `{:?}` formatting emitted the literal `inf`, which the
    // parser rejects — a crash bundle with a corrupted rule became
    // unreplayable. json_f64 degrades it to 0 instead.
    let mut s = Scenario::edge_scale();
    s.convergence = Some(ConvergenceRule {
        window_snapshots: 3,
        tolerance: f64::INFINITY,
    });
    let json = scenario_to_json(&s);
    let back = scenario_from_json(&json).expect("document must stay parseable");
    assert_eq!(back.convergence.unwrap().tolerance, 0.0);
}
