//! Plain-text table rendering for experiment reports.

/// Render rows as an aligned, pipe-separated table with a header rule —
/// valid Markdown and readable on a terminal.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (cell, w) in cells.iter().zip(widths) {
            line.push_str(&format!(" {cell:<w$} |"));
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('|');
    for w in &widths {
        out.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Format an optional value, rendering `None` as "-".
pub fn opt<T: std::fmt::Display>(v: Option<T>) -> String {
    v.map(|x| x.to_string()).unwrap_or_else(|| "-".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("| name"));
        assert!(lines[1].starts_with("|---"));
        // All lines equal width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.456), "45.6%");
        assert_eq!(pct(1.0), "100.0%");
    }

    #[test]
    fn opt_formats() {
        assert_eq!(opt(Some(3)), "3");
        assert_eq!(opt::<u32>(None), "-");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_rows_panic() {
        render_table(&["a", "b"], &[vec!["x".into()]]);
    }
}
