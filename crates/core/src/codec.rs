//! Scenario serialization: a hand-rolled, dependency-free JSON codec.
//!
//! Crash bundles must embed the *complete* scenario so a run can be
//! replayed from the bundle alone (`ccsim replay`). The vendored serde
//! provides only marker traits, so — like the telemetry manifests and the
//! fault plans — the scenario document is written by hand and read back
//! with [`ccsim_fault::json`]'s recursive-descent parser. Numbers are
//! emitted in their exact integer form (nanoseconds, bits/sec, bytes), so
//! a decode–encode cycle is byte-identical and a replayed scenario is
//! bit-for-bit the one that crashed.

use crate::scenario::{ConvergenceRule, FlowGroup, Scenario, Tuning};
use ccsim_fault::json::{escape, Json, JsonError};
use ccsim_fault::{FaultPlan, WatchdogConfig};
use ccsim_net::AqmKind;
use ccsim_sim::jsonfmt::json_f64;
use ccsim_sim::{Bandwidth, SimDuration};
use ccsim_topo::TopologyKind;
use ccsim_trace::{RetentionPolicy, TraceConfig};
use std::fmt::Write as _;

/// Serialize a scenario to a single-line JSON document.
pub fn scenario_to_json(s: &Scenario) -> String {
    let mut out = String::with_capacity(512);
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"bottleneck_bps\":{},\"buffer_bytes\":{},\"mss\":{}",
        escape(&s.name),
        s.bottleneck.as_bps(),
        s.buffer_bytes,
        s.mss
    );
    out.push_str(",\"flows\":[");
    for (i, g) in s.flows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"cca\":\"{}\",\"count\":{},\"base_rtt_ns\":{}}}",
            g.cca.name(),
            g.count,
            g.base_rtt.as_nanos()
        );
    }
    let _ = write!(
        out,
        "],\"seed\":{},\"start_jitter_ns\":{},\"warmup_ns\":{},\"duration_ns\":{},\
         \"snapshot_interval_ns\":{}",
        s.seed,
        s.start_jitter.as_nanos(),
        s.warmup.as_nanos(),
        s.duration.as_nanos(),
        s.snapshot_interval.as_nanos()
    );
    match &s.convergence {
        None => out.push_str(",\"convergence\":null"),
        Some(c) => {
            let _ = write!(
                out,
                ",\"convergence\":{{\"window_snapshots\":{},\"tolerance\":{}}}",
                c.window_snapshots,
                json_f64(c.tolerance)
            );
        }
    }
    let policy = match s.trace.policy {
        RetentionPolicy::KeepAll => "keepall".to_string(),
        RetentionPolicy::Decimate(n) => format!("decimate:{n}"),
        RetentionPolicy::Reservoir(k) => format!("reservoir:{k}"),
    };
    let _ = write!(
        out,
        ",\"trace\":{{\"enabled\":{},\"policy\":\"{policy}\",\"max_bytes\":{},\
         \"queue_sample_every\":{}}}",
        s.trace.enabled, s.trace.max_bytes, s.trace.queue_sample_every
    );
    let _ = write!(out, ",\"fault\":{}", s.fault.to_json());
    let _ = write!(
        out,
        ",\"watchdog\":{{\"enabled\":{},\"every\":{}}}",
        s.watchdog.enabled, s.watchdog.every
    );
    // Topology / AQM / ECN: emitted only when non-default, so documents
    // written before these fields existed re-encode byte-identically.
    if s.topology != TopologyKind::SingleBottleneck {
        let _ = write!(out, ",\"topology\":\"{}\"", s.topology.as_str());
    }
    if s.aqm != AqmKind::DropTail {
        let _ = write!(out, ",\"aqm\":\"{}\"", s.aqm.as_str());
    }
    if s.ecn {
        out.push_str(",\"ecn\":true");
    }
    if !s.tuning.is_default() {
        let _ = write!(
            out,
            ",\"tuning\":{{\"delack_segments\":{},\"tx_burst\":{}}}",
            s.tuning.delack_segments, s.tuning.tx_burst
        );
    }
    out.push('}');
    out
}

fn bad(message: impl Into<String>) -> JsonError {
    JsonError {
        offset: 0,
        message: message.into(),
    }
}

fn get_u64(doc: &Json, key: &str) -> Result<u64, JsonError> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| bad(format!("missing or non-integer \"{key}\"")))
}

fn get_u32(doc: &Json, key: &str) -> Result<u32, JsonError> {
    u32::try_from(get_u64(doc, key)?).map_err(|_| bad(format!("\"{key}\" exceeds u32")))
}

fn get_duration(doc: &Json, key: &str) -> Result<SimDuration, JsonError> {
    Ok(SimDuration::from_nanos(get_u64(doc, key)?))
}

fn get_str<'a>(doc: &'a Json, key: &str) -> Result<&'a str, JsonError> {
    doc.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| bad(format!("missing or non-string \"{key}\"")))
}

fn get_bool(doc: &Json, key: &str) -> Result<bool, JsonError> {
    doc.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| bad(format!("missing or non-boolean \"{key}\"")))
}

fn parse_policy(text: &str) -> Result<RetentionPolicy, JsonError> {
    if text == "keepall" {
        return Ok(RetentionPolicy::KeepAll);
    }
    if let Some(n) = text.strip_prefix("decimate:") {
        let n = n.parse().map_err(|_| bad("bad decimate stride"))?;
        return Ok(RetentionPolicy::Decimate(n));
    }
    if let Some(k) = text.strip_prefix("reservoir:") {
        let k = k.parse().map_err(|_| bad("bad reservoir size"))?;
        return Ok(RetentionPolicy::Reservoir(k));
    }
    Err(bad(format!("unknown retention policy \"{text}\"")))
}

/// Parse a document produced by [`scenario_to_json`].
pub fn scenario_from_json(text: &str) -> Result<Scenario, JsonError> {
    let doc = Json::parse(text)?;

    let flows_json = doc
        .get("flows")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("missing \"flows\" array"))?;
    let mut flows = Vec::with_capacity(flows_json.len());
    for g in flows_json {
        let cca = get_str(g, "cca")?
            .parse()
            .map_err(|_| bad("unknown CCA kind"))?;
        flows.push(FlowGroup {
            cca,
            count: get_u32(g, "count")?,
            base_rtt: get_duration(g, "base_rtt_ns")?,
        });
    }

    let convergence = match doc.get("convergence") {
        None => return Err(bad("missing \"convergence\"")),
        Some(v) if v.is_null() => None,
        Some(v) => Some(ConvergenceRule {
            window_snapshots: get_u64(v, "window_snapshots")? as usize,
            tolerance: v
                .get("tolerance")
                .and_then(Json::as_f64)
                .ok_or_else(|| bad("missing convergence tolerance"))?,
        }),
    };

    let trace_json = doc.get("trace").ok_or_else(|| bad("missing \"trace\""))?;
    let trace = TraceConfig {
        enabled: get_bool(trace_json, "enabled")?,
        policy: parse_policy(get_str(trace_json, "policy")?)?,
        max_bytes: get_u64(trace_json, "max_bytes")?,
        queue_sample_every: get_u32(trace_json, "queue_sample_every")?,
    };

    let fault = match doc.get("fault") {
        Some(v) => FaultPlan::from_value(v)?,
        None => FaultPlan::none(),
    };

    let watchdog = match doc.get("watchdog") {
        Some(v) => WatchdogConfig {
            enabled: get_bool(v, "enabled")?,
            every: get_u32(v, "every")?,
        },
        None => WatchdogConfig::disabled(),
    };

    let topology = match doc.get("topology") {
        None => TopologyKind::SingleBottleneck,
        Some(v) => {
            let name = v.as_str().ok_or_else(|| bad("non-string \"topology\""))?;
            TopologyKind::parse(name).ok_or_else(|| bad(format!("unknown topology \"{name}\"")))?
        }
    };
    let aqm = match doc.get("aqm") {
        None => AqmKind::DropTail,
        Some(v) => {
            let name = v.as_str().ok_or_else(|| bad("non-string \"aqm\""))?;
            AqmKind::parse(name).ok_or_else(|| bad(format!("unknown AQM \"{name}\"")))?
        }
    };
    let ecn = match doc.get("ecn") {
        None => false,
        Some(v) => v.as_bool().ok_or_else(|| bad("non-boolean \"ecn\""))?,
    };
    let tuning = match doc.get("tuning") {
        None => Tuning::default(),
        Some(v) => Tuning {
            delack_segments: get_u32(v, "delack_segments")?,
            tx_burst: get_u32(v, "tx_burst")?,
        },
    };

    Ok(Scenario {
        name: get_str(&doc, "name")?.to_string(),
        bottleneck: Bandwidth::from_bps(get_u64(&doc, "bottleneck_bps")?),
        buffer_bytes: get_u64(&doc, "buffer_bytes")?,
        mss: get_u32(&doc, "mss")?,
        flows,
        seed: get_u64(&doc, "seed")?,
        start_jitter: get_duration(&doc, "start_jitter_ns")?,
        warmup: get_duration(&doc, "warmup_ns")?,
        duration: get_duration(&doc, "duration_ns")?,
        snapshot_interval: get_duration(&doc, "snapshot_interval_ns")?,
        convergence,
        trace,
        fault,
        watchdog,
        topology,
        aqm,
        ecn,
        tuning,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_cca::CcaKind;
    use ccsim_sim::SimTime;

    fn full_scenario() -> Scenario {
        let mut s = Scenario::edge_scale()
            .named("codec \"quoted\" ✓")
            .flows(vec![
                FlowGroup::new(CcaKind::Reno, 3, SimDuration::from_millis(20)),
                FlowGroup::new(CcaKind::Bbr, 2, SimDuration::from_micros(12_345)),
            ])
            .seed(u64::MAX - 7)
            .faulted(
                FaultPlan::none()
                    .blackout(SimTime::from_secs(40), SimDuration::from_secs(2))
                    .iid_loss(SimTime::from_secs(60), 0.015),
            )
            .watched(WatchdogConfig::every_n(4));
        s.trace = TraceConfig {
            enabled: true,
            policy: RetentionPolicy::Reservoir(512),
            max_bytes: 1 << 20,
            queue_sample_every: 16,
        };
        s
    }

    #[test]
    fn round_trips_every_field() {
        let s = full_scenario();
        let json = scenario_to_json(&s);
        let back = scenario_from_json(&json).unwrap();
        // The Debug form covers every field at full precision.
        assert_eq!(format!("{s:?}"), format!("{back:?}"));
        // Decode → encode is byte-identical.
        assert_eq!(scenario_to_json(&back), json);
    }

    #[test]
    fn topology_fields_round_trip_and_stay_silent_at_defaults() {
        // Default: the three new keys are absent, so documents predating
        // them re-encode byte-identically.
        let s = full_scenario();
        let json = scenario_to_json(&s);
        assert!(!json.contains("\"topology\""));
        assert!(!json.contains("\"aqm\""));
        assert!(!json.contains("\"ecn\""));
        let back = scenario_from_json(&json).unwrap();
        assert_eq!(back.topology, TopologyKind::SingleBottleneck);
        assert_eq!(back.aqm, AqmKind::DropTail);
        assert!(!back.ecn);

        // Non-default: all three round-trip exactly.
        let s = full_scenario()
            .topology(TopologyKind::ParkingLot(3))
            .aqm(AqmKind::Codel)
            .ecn(true);
        let json = scenario_to_json(&s);
        assert!(json.contains("\"topology\":\"parking_lot:3\""));
        assert!(json.contains("\"aqm\":\"codel\""));
        assert!(json.contains("\"ecn\":true"));
        let back = scenario_from_json(&json).unwrap();
        assert_eq!(back.topology, TopologyKind::ParkingLot(3));
        assert_eq!(back.aqm, AqmKind::Codel);
        assert!(back.ecn);
        assert_eq!(scenario_to_json(&back), json);
    }

    #[test]
    fn tuning_round_trips_and_stays_silent_at_default() {
        // Default tuning emits no key, so pre-tuning documents re-encode
        // byte-identically.
        let s = full_scenario();
        let json = scenario_to_json(&s);
        assert!(!json.contains("\"tuning\""));
        let back = scenario_from_json(&json).unwrap();
        assert!(back.tuning.is_default());

        let s = full_scenario().tuned(Tuning {
            delack_segments: 4,
            tx_burst: 8,
        });
        let json = scenario_to_json(&s);
        assert!(json.contains("\"tuning\":{\"delack_segments\":4,\"tx_burst\":8}"));
        let back = scenario_from_json(&json).unwrap();
        assert_eq!(back.tuning, s.tuning);
        assert_eq!(scenario_to_json(&back), json);
    }

    #[test]
    fn big_seed_survives_exactly() {
        let s = full_scenario().seed((1 << 63) + 3);
        let back = scenario_from_json(&scenario_to_json(&s)).unwrap();
        assert_eq!(back.seed, (1 << 63) + 3);
    }

    #[test]
    fn null_convergence_round_trips() {
        let mut s = full_scenario();
        s.convergence = None;
        let back = scenario_from_json(&scenario_to_json(&s)).unwrap();
        assert_eq!(back.convergence, None);
    }

    #[test]
    fn missing_fields_are_reported() {
        let err = scenario_from_json("{\"name\":\"x\"}").unwrap_err();
        assert!(err.message.contains("bottleneck_bps") || err.message.contains("flows"));
        assert!(scenario_from_json("not json").is_err());
    }

    #[test]
    fn policies_round_trip() {
        for policy in [
            RetentionPolicy::KeepAll,
            RetentionPolicy::Decimate(7),
            RetentionPolicy::Reservoir(33),
        ] {
            let mut s = full_scenario();
            s.trace.policy = policy;
            let back = scenario_from_json(&scenario_to_json(&s)).unwrap();
            assert_eq!(back.trace.policy, policy);
        }
    }
}
