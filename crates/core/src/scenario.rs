//! Scenario definitions: the paper's EdgeScale and CoreScale settings.
//!
//! A [`Scenario`] is a complete, reproducible experiment description: the
//! bottleneck (bandwidth + drop-tail buffer), the competing flow groups
//! (CCA × count × base RTT), timing (start jitter, warm-up exclusion,
//! measurement horizon, convergence rule), and the master seed.
//!
//! Presets implement §3.1 of the paper:
//!
//! | | EdgeScale | CoreScale |
//! |---|---|---|
//! | bottleneck | 100 Mbps | 10 Gbps |
//! | buffer (≈1 BDP @ 200 ms) | 3 MB | 375 MB* |
//! | flows | 2–50 | 1000–5000 |
//!
//! *The paper sizes buffers as `bandwidth × 200 ms` but reports "375 MB"
//! for 10 Gbps (10 Gbps × 300 ms); we follow the stated 1-BDP rule
//! (250 MB at 200 ms) by default and expose the knob — EXPERIMENTS.md uses
//! the paper's literal 375 MB figure.
//!
//! Time parameters default to scaled-down values (the DES is noise-free, so
//! stationary metrics emerge in simulated tens of seconds rather than the
//! paper's wall-clock hours); [`Fidelity`] presets switch between them.

use ccsim_cca::CcaKind;
use ccsim_fault::{FaultPlan, FaultPlanError, WatchdogConfig};
use ccsim_net::AqmKind;
use ccsim_sim::{Bandwidth, SimDuration, SimTime};
use ccsim_topo::{Topology, TopologyError, TopologyKind};
use ccsim_trace::TraceConfig;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The paper's fixed MSS.
pub const DEFAULT_MSS: u32 = ccsim_net::DEFAULT_MSS;

/// A group of identical flows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowGroup {
    /// Congestion control algorithm.
    pub cca: CcaKind,
    /// Number of flows.
    pub count: u32,
    /// Base RTT.
    pub base_rtt: SimDuration,
}

impl FlowGroup {
    /// A group of `count` flows of `cca` at `base_rtt`.
    pub fn new(cca: CcaKind, count: u32, base_rtt: SimDuration) -> FlowGroup {
        FlowGroup {
            cca,
            count,
            base_rtt,
        }
    }
}

/// The paper's stopping rule: stop early once the headline metrics change
/// by less than `tolerance` between consecutive windows of
/// `window_snapshots` snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceRule {
    /// Window length, in snapshots.
    pub window_snapshots: usize,
    /// Relative-change threshold (the paper uses 1%).
    pub tolerance: f64,
}

/// Event-economy tuning: the batching knobs of the megascale overhaul.
///
/// Every non-default value changes packet/ACK timing and therefore the
/// outcome digest, so the knobs live in the scenario (hashed into the
/// config digest, printed in `Debug` only when non-default) rather than
/// being ambient engine settings. The defaults reproduce the legacy
/// per-segment behavior byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tuning {
    /// Receiver ACK decimation: one ACK per this many full-size segments
    /// (RFC 5681 delayed ACK, generalized). The legacy value is 2.
    pub delack_segments: u32,
    /// Link-side transmit batching: serialize up to this many queued
    /// packets under one timer event. 1 = one SERIALIZATION_DONE per
    /// packet (legacy).
    pub tx_burst: u32,
}

impl Default for Tuning {
    fn default() -> Tuning {
        Tuning {
            delack_segments: ccsim_tcp::receiver::DELACK_SEGMENTS,
            tx_burst: 1,
        }
    }
}

impl Tuning {
    /// True when every knob is at its legacy default (the digest-inert
    /// configuration).
    pub fn is_default(&self) -> bool {
        *self == Tuning::default()
    }
}

/// Time-parameter presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fidelity {
    /// Fast CI-friendly runs (seconds of simulated time).
    Quick,
    /// Default experiment runs (tens of simulated seconds).
    Standard,
    /// Paper-faithful horizons (minutes of jitter/warm-up; use only for
    /// targeted validation — CoreScale at this fidelity simulates hours).
    Paper,
}

/// A complete experiment description.
///
/// `Debug` is hand-written (not derived) because the campaign layer's
/// `config_digest` hashes the `Debug` representation: the topology / AQM /
/// ECN fields are printed **only when non-default**, so every scenario
/// that predates them keeps its exact historical digest.
#[derive(Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Human-readable label used in reports.
    pub name: String,
    /// Bottleneck link rate.
    pub bottleneck: Bandwidth,
    /// Drop-tail buffer capacity in bytes.
    pub buffer_bytes: u64,
    /// Maximum segment size.
    pub mss: u32,
    /// Competing flow groups.
    pub flows: Vec<FlowGroup>,
    /// Master seed for all randomness (start jitter, BBR phases).
    pub seed: u64,
    /// Flows start uniformly at random in `[0, start_jitter)`.
    pub start_jitter: SimDuration,
    /// Measurement excludes everything before this instant (from t = 0;
    /// must cover the jitter window).
    pub warmup: SimDuration,
    /// Maximum measurement-window length (after warm-up).
    pub duration: SimDuration,
    /// Interval between delivered-bytes snapshots.
    pub snapshot_interval: SimDuration,
    /// Early-stopping rule, if any.
    pub convergence: Option<ConvergenceRule>,
    /// Flight-recorder configuration (disabled by default; see
    /// [`ccsim_trace::TraceConfig`]).
    pub trace: TraceConfig,
    /// Timed link impairments (empty by default — a plan-free scenario
    /// behaves and digests exactly as before the fault subsystem existed).
    pub fault: FaultPlan,
    /// Runtime invariant watchdog (disabled by default; checks are
    /// read-only, so enabling it never changes an outcome digest).
    pub watchdog: WatchdogConfig,
    /// Network shape ([`TopologyKind::SingleBottleneck`] by default — the
    /// paper's network, byte-identical to the pre-topology engine).
    pub topology: TopologyKind,
    /// Queue discipline on every link ([`AqmKind::DropTail`] by default).
    pub aqm: AqmKind,
    /// ECN negotiation (RFC 3168): senders mark data ECT, AQMs mark CE
    /// instead of dropping, receivers echo ECE. Off by default.
    pub ecn: bool,
    /// Event-economy knobs (ACK decimation, transmit batching). Default
    /// values are digest-inert; see [`Tuning`].
    pub tuning: Tuning,
}

impl fmt::Debug for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("Scenario");
        d.field("name", &self.name)
            .field("bottleneck", &self.bottleneck)
            .field("buffer_bytes", &self.buffer_bytes)
            .field("mss", &self.mss)
            .field("flows", &self.flows)
            .field("seed", &self.seed)
            .field("start_jitter", &self.start_jitter)
            .field("warmup", &self.warmup)
            .field("duration", &self.duration)
            .field("snapshot_interval", &self.snapshot_interval)
            .field("convergence", &self.convergence)
            .field("trace", &self.trace)
            .field("fault", &self.fault)
            .field("watchdog", &self.watchdog);
        // Digest stability: print only when configured (see type docs).
        if self.topology != TopologyKind::SingleBottleneck {
            d.field("topology", &self.topology);
        }
        if self.aqm != AqmKind::DropTail {
            d.field("aqm", &self.aqm);
        }
        if self.ecn {
            d.field("ecn", &self.ecn);
        }
        if !self.tuning.is_default() {
            d.field("tuning", &self.tuning);
        }
        d.finish()
    }
}

/// Structured scenario-validation failure, replacing the former
/// `assert!`-based validation. `Display` keeps the old assert messages so
/// operators (and tests) recognize them.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    NoFlows,
    ZeroBandwidth,
    ZeroMss,
    /// `warmup < start_jitter`: flows could start inside the measurement
    /// window.
    JitterExceedsWarmup,
    ZeroSnapshotInterval,
    ZeroDuration,
    BadConvergence,
    /// A [`Tuning`] knob is zero (both are batch sizes; minimum 1).
    BadTuning,
    /// The fault plan is invalid for this scenario's horizon.
    Fault(FaultPlanError),
    /// The generated topology fails structural validation.
    Topology(TopologyError),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::NoFlows => f.write_str("scenario has no flows"),
            ScenarioError::ZeroBandwidth => f.write_str("zero bottleneck bandwidth"),
            ScenarioError::ZeroMss => f.write_str("zero MSS"),
            ScenarioError::JitterExceedsWarmup => {
                f.write_str("warm-up must cover the start-jitter window")
            }
            ScenarioError::ZeroSnapshotInterval => f.write_str("zero snapshot interval"),
            ScenarioError::ZeroDuration => f.write_str("zero measurement duration"),
            ScenarioError::BadConvergence => f.write_str("bad convergence rule"),
            ScenarioError::BadTuning => f.write_str("tuning batch sizes must be at least 1"),
            ScenarioError::Fault(e) => write!(f, "invalid fault plan: {e}"),
            ScenarioError::Topology(e) => write!(f, "invalid topology: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::Fault(e) => Some(e),
            ScenarioError::Topology(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FaultPlanError> for ScenarioError {
    fn from(e: FaultPlanError) -> Self {
        ScenarioError::Fault(e)
    }
}

impl From<TopologyError> for ScenarioError {
    fn from(e: TopologyError) -> Self {
        ScenarioError::Topology(e)
    }
}

impl Scenario {
    /// EdgeScale preset: 100 Mbps bottleneck, 3 MB drop-tail buffer
    /// (≈1 BDP at 200 ms + headroom, the paper's stated figure).
    pub fn edge_scale() -> Scenario {
        Scenario {
            name: "EdgeScale".into(),
            bottleneck: Bandwidth::from_mbps(100),
            buffer_bytes: 3 * 1024 * 1024,
            mss: DEFAULT_MSS,
            flows: Vec::new(),
            seed: 0,
            start_jitter: SimDuration::from_secs(2),
            // With few flows and a 3 MB buffer the queue-inflated RTT is
            // ~260 ms and one Reno sawtooth lasts ~30 s: fairness needs
            // many periods. EdgeScale is ~100x cheaper than CoreScale per
            // simulated second, so run it long (the paper ran hours).
            warmup: SimDuration::from_secs(30),
            duration: SimDuration::from_secs(300),
            snapshot_interval: SimDuration::from_secs(1),
            convergence: Some(ConvergenceRule {
                window_snapshots: 10,
                tolerance: 0.01,
            }),
            trace: TraceConfig::disabled(),
            fault: FaultPlan::none(),
            watchdog: WatchdogConfig::disabled(),
            topology: TopologyKind::SingleBottleneck,
            aqm: AqmKind::DropTail,
            ecn: false,
            tuning: Tuning::default(),
        }
    }

    /// CoreScale preset: 10 Gbps bottleneck, 1 BDP (at 200 ms) drop-tail
    /// buffer.
    pub fn core_scale() -> Scenario {
        Scenario {
            name: "CoreScale".into(),
            bottleneck: Bandwidth::from_gbps(10),
            // 10 Gbps × 200 ms = 250 MB (the 1-BDP rule of §3.1).
            buffer_bytes: 250 * 1000 * 1000,
            mss: DEFAULT_MSS,
            flows: Vec::new(),
            seed: 0,
            start_jitter: SimDuration::from_secs(2),
            // Per-flow sawtooth periods at core scale are ~20 s (10 Mbps
            // share, queue-inflated 220 ms RTT), so shares and fairness
            // need a couple of minutes of simulated time to stabilize.
            warmup: SimDuration::from_secs(40),
            duration: SimDuration::from_secs(120),
            snapshot_interval: SimDuration::from_secs(2),
            convergence: Some(ConvergenceRule {
                window_snapshots: 10,
                tolerance: 0.01,
            }),
            trace: TraceConfig::disabled(),
            fault: FaultPlan::none(),
            watchdog: WatchdogConfig::disabled(),
            topology: TopologyKind::SingleBottleneck,
            aqm: AqmKind::DropTail,
            ecn: false,
            tuning: Tuning::default(),
        }
    }

    /// MegaScale preset: 100 Gbps bottleneck, 1 BDP (at 200 ms) drop-tail
    /// buffer, and a deliberately short horizon — with ~1 M flows each
    /// flow's fair share is ~12 kbps (≈1 MSS per second), so per-flow
    /// dynamics are RTO-dominated and stationary metrics emerge within a
    /// couple of simulated seconds. Batching knobs are on (`delack 4`,
    /// `tx_burst 8`): at this scale the preset trades per-segment event
    /// fidelity for event economy, which is the point of the regime.
    pub fn mega_scale() -> Scenario {
        Scenario {
            name: "MegaScale".into(),
            bottleneck: Bandwidth::from_gbps(100),
            // 100 Gbps × 200 ms = 2.5 GB (the 1-BDP rule of §3.1).
            buffer_bytes: 2_500_000_000,
            mss: DEFAULT_MSS,
            flows: Vec::new(),
            seed: 0,
            start_jitter: SimDuration::from_secs(1),
            warmup: SimDuration::from_millis(1500),
            duration: SimDuration::from_secs(1),
            snapshot_interval: SimDuration::from_millis(250),
            convergence: None,
            trace: TraceConfig::disabled(),
            fault: FaultPlan::none(),
            watchdog: WatchdogConfig::disabled(),
            topology: TopologyKind::SingleBottleneck,
            aqm: AqmKind::DropTail,
            ecn: false,
            tuning: Tuning {
                delack_segments: 4,
                tx_burst: 8,
            },
        }
    }

    /// Replace the flow groups.
    pub fn flows(mut self, flows: Vec<FlowGroup>) -> Scenario {
        self.flows = flows;
        self
    }

    /// Set the master seed.
    pub fn seed(mut self, seed: u64) -> Scenario {
        self.seed = seed;
        self
    }

    /// Set the report label.
    pub fn named(mut self, name: impl Into<String>) -> Scenario {
        self.name = name.into();
        self
    }

    /// Apply a fidelity preset, scaling jitter/warm-up/duration.
    pub fn fidelity(mut self, f: Fidelity) -> Scenario {
        let (jitter, warmup, duration) = match f {
            Fidelity::Quick => (
                SimDuration::from_millis(500),
                SimDuration::from_secs(5),
                SimDuration::from_secs(20),
            ),
            Fidelity::Standard => (self.start_jitter, self.warmup, self.duration),
            Fidelity::Paper => (
                SimDuration::from_secs(120),
                SimDuration::from_secs(300),
                SimDuration::from_secs(3 * 3600),
            ),
        };
        self.start_jitter = jitter;
        self.warmup = warmup;
        self.duration = duration;
        self
    }

    /// Enable the flight recorder with the given configuration.
    pub fn traced(mut self, trace: TraceConfig) -> Scenario {
        self.trace = trace;
        self
    }

    /// Override warm-up and measurement duration.
    pub fn horizon(mut self, warmup: SimDuration, duration: SimDuration) -> Scenario {
        self.warmup = warmup;
        self.duration = duration;
        self
    }

    /// Install a fault plan (validated against the horizon by
    /// [`Scenario::validate`]).
    pub fn faulted(mut self, fault: FaultPlan) -> Scenario {
        self.fault = fault;
        self
    }

    /// Enable the runtime invariant watchdog.
    pub fn watched(mut self, watchdog: WatchdogConfig) -> Scenario {
        self.watchdog = watchdog;
        self
    }

    /// Select the network shape.
    pub fn topology(mut self, kind: TopologyKind) -> Scenario {
        self.topology = kind;
        self
    }

    /// Select the queue discipline applied to every link.
    pub fn aqm(mut self, aqm: AqmKind) -> Scenario {
        self.aqm = aqm;
        self
    }

    /// Enable or disable ECN end-to-end.
    pub fn ecn(mut self, on: bool) -> Scenario {
        self.ecn = on;
        self
    }

    /// Override the event-economy tuning knobs.
    pub fn tuned(mut self, tuning: Tuning) -> Scenario {
        self.tuning = tuning;
        self
    }

    /// Generate this scenario's full [`Topology`] description (route
    /// tables included) from its kind, bottleneck, and buffer.
    pub fn topology_description(&self) -> Topology {
        Topology::generate(
            self.topology,
            self.bottleneck,
            self.buffer_bytes,
            self.flow_count(),
        )
    }

    /// Total number of flows.
    pub fn flow_count(&self) -> u32 {
        self.flows.iter().map(|g| g.count).sum()
    }

    /// End of the scenario's time horizon (warm-up + measurement window);
    /// fault actions must fire before this.
    pub fn horizon_end(&self) -> SimTime {
        SimTime::ZERO + self.warmup + self.duration
    }

    /// Validate internal consistency, returning a structured error.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.flow_count() == 0 {
            return Err(ScenarioError::NoFlows);
        }
        if self.bottleneck.as_bps() == 0 {
            return Err(ScenarioError::ZeroBandwidth);
        }
        if self.mss == 0 {
            return Err(ScenarioError::ZeroMss);
        }
        if self.warmup < self.start_jitter {
            return Err(ScenarioError::JitterExceedsWarmup);
        }
        if self.snapshot_interval.is_zero() {
            return Err(ScenarioError::ZeroSnapshotInterval);
        }
        if self.duration.is_zero() {
            return Err(ScenarioError::ZeroDuration);
        }
        if let Some(c) = &self.convergence {
            if c.window_snapshots == 0 || c.tolerance <= 0.0 {
                return Err(ScenarioError::BadConvergence);
            }
        }
        if self.tuning.delack_segments == 0 || self.tuning.tx_burst == 0 {
            return Err(ScenarioError::BadTuning);
        }
        self.fault.validate(self.horizon_end())?;
        self.topology_description().validate()?;
        Ok(())
    }

    /// The buffer in bandwidth-delay products at the given RTT.
    pub fn buffer_in_bdp(&self, rtt: SimDuration) -> f64 {
        let bdp = self.bottleneck.as_bytes_per_sec() * rtt.as_secs_f64();
        self.buffer_bytes as f64 / bdp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_the_paper() {
        let e = Scenario::edge_scale();
        assert_eq!(e.bottleneck, Bandwidth::from_mbps(100));
        assert_eq!(e.buffer_bytes, 3 * 1024 * 1024);
        let c = Scenario::core_scale();
        assert_eq!(c.bottleneck, Bandwidth::from_gbps(10));
        assert_eq!(c.buffer_bytes, 250_000_000);
        assert_eq!(c.mss, 1448);
    }

    #[test]
    fn buffer_is_about_one_bdp_at_200ms() {
        let e = Scenario::edge_scale();
        let ratio = e.buffer_in_bdp(SimDuration::from_millis(200));
        assert!((0.9..=1.5).contains(&ratio), "EdgeScale ratio {ratio}");
        let c = Scenario::core_scale();
        let ratio = c.buffer_in_bdp(SimDuration::from_millis(200));
        assert!((0.9..=1.1).contains(&ratio), "CoreScale ratio {ratio}");
    }

    #[test]
    fn builder_composes() {
        let s = Scenario::edge_scale()
            .flows(vec![
                FlowGroup::new(CcaKind::Reno, 10, SimDuration::from_millis(20)),
                FlowGroup::new(CcaKind::Cubic, 5, SimDuration::from_millis(100)),
            ])
            .seed(42)
            .named("test");
        assert_eq!(s.flow_count(), 15);
        assert_eq!(s.seed, 42);
        assert_eq!(s.name, "test");
        s.validate().unwrap();
    }

    #[test]
    fn fidelity_presets_scale_time() {
        let q = Scenario::core_scale().fidelity(Fidelity::Quick);
        assert_eq!(q.duration, SimDuration::from_secs(20));
        let p = Scenario::core_scale().fidelity(Fidelity::Paper);
        assert_eq!(p.warmup, SimDuration::from_secs(300));
        assert_eq!(p.duration, SimDuration::from_secs(3 * 3600));
    }

    #[test]
    fn empty_scenario_fails_validation() {
        let err = Scenario::edge_scale().validate().unwrap_err();
        assert_eq!(err, ScenarioError::NoFlows);
        assert_eq!(err.to_string(), "scenario has no flows");
    }

    #[test]
    fn jitter_longer_than_warmup_fails() {
        let mut s = Scenario::edge_scale().flows(vec![FlowGroup::new(
            CcaKind::Reno,
            1,
            SimDuration::from_millis(20),
        )]);
        s.start_jitter = SimDuration::from_secs(60);
        assert_eq!(s.validate(), Err(ScenarioError::JitterExceedsWarmup));
        assert!(s
            .validate()
            .unwrap_err()
            .to_string()
            .contains("cover the start-jitter"));
    }

    #[test]
    fn debug_omits_topology_fields_at_defaults() {
        // The campaign config digest hashes `Debug`; default scenarios
        // must render exactly as they did before the topology fields
        // existed (see the type docs).
        let base = Scenario::edge_scale().flows(vec![FlowGroup::new(
            CcaKind::Reno,
            2,
            SimDuration::from_millis(20),
        )]);
        let rendered = format!("{base:?}");
        assert!(!rendered.contains("topology"));
        assert!(!rendered.contains("aqm"));
        assert!(!rendered.contains("ecn"));
        assert!(!rendered.contains("tuning"));

        let custom = base
            .clone()
            .topology(TopologyKind::ParkingLot(3))
            .aqm(AqmKind::Codel)
            .ecn(true)
            .tuned(Tuning {
                delack_segments: 4,
                tx_burst: 8,
            });
        let rendered = format!("{custom:?}");
        assert!(rendered.contains("topology: ParkingLot(3)"));
        assert!(rendered.contains("aqm: Codel"));
        assert!(rendered.contains("ecn: true"));
        assert!(rendered.contains("tuning: Tuning { delack_segments: 4, tx_burst: 8 }"));
        // And each non-default field alone changes the digest.
        assert_ne!(format!("{base:?}"), format!("{:?}", base.clone().ecn(true)));
        assert_ne!(
            format!("{base:?}"),
            format!(
                "{:?}",
                base.clone().tuned(Tuning {
                    delack_segments: 2,
                    tx_burst: 2,
                })
            )
        );
    }

    #[test]
    fn mega_scale_preset_is_batched_and_short() {
        let m = Scenario::mega_scale();
        assert_eq!(m.bottleneck, Bandwidth::from_gbps(100));
        assert_eq!(m.buffer_bytes, 2_500_000_000);
        let ratio = m.buffer_in_bdp(SimDuration::from_millis(200));
        assert!((0.9..=1.1).contains(&ratio), "MegaScale ratio {ratio}");
        assert_eq!(m.tuning.delack_segments, 4);
        assert_eq!(m.tuning.tx_burst, 8);
        assert!(!m.tuning.is_default());
        assert!(m.horizon_end() <= SimTime::from_secs(3));
        m.clone()
            .flows(vec![FlowGroup::new(
                CcaKind::Reno,
                2,
                SimDuration::from_millis(20),
            )])
            .validate()
            .unwrap();
    }

    #[test]
    fn zero_tuning_knobs_fail_validation() {
        let base = Scenario::edge_scale().flows(vec![FlowGroup::new(
            CcaKind::Reno,
            1,
            SimDuration::from_millis(20),
        )]);
        let bad = base.clone().tuned(Tuning {
            delack_segments: 0,
            tx_burst: 1,
        });
        assert_eq!(bad.validate(), Err(ScenarioError::BadTuning));
        let bad = base.tuned(Tuning {
            delack_segments: 2,
            tx_burst: 0,
        });
        assert_eq!(bad.validate(), Err(ScenarioError::BadTuning));
    }

    #[test]
    fn topology_scenarios_validate_and_generate() {
        let s = Scenario::edge_scale()
            .flows(vec![FlowGroup::new(
                CcaKind::Reno,
                4,
                SimDuration::from_millis(20),
            )])
            .topology(TopologyKind::ParkingLot(3));
        s.validate().unwrap();
        let topo = s.topology_description();
        assert_eq!(topo.links.len(), 3);
        assert_eq!(topo.flow_count(), 4);
        assert_eq!(topo.links[0].rate, s.bottleneck);
        assert_eq!(topo.links[0].buffer_bytes, s.buffer_bytes);
    }

    #[test]
    fn fault_plan_is_validated_against_the_horizon() {
        use ccsim_fault::FaultPlan;
        let base = Scenario::edge_scale().flows(vec![FlowGroup::new(
            CcaKind::Reno,
            1,
            SimDuration::from_millis(20),
        )]);
        // EdgeScale horizon is 30 s warm-up + 300 s duration.
        let ok = base
            .clone()
            .faulted(FaultPlan::none().iid_loss(SimTime::from_secs(100), 0.01));
        ok.validate().unwrap();
        let late = base
            .clone()
            .faulted(FaultPlan::none().iid_loss(SimTime::from_secs(400), 0.01));
        assert!(matches!(
            late.validate(),
            Err(ScenarioError::Fault(FaultPlanError::BeyondHorizon { .. }))
        ));
        let overlapping = base.faulted(
            FaultPlan::none()
                .blackout(SimTime::from_secs(50), SimDuration::from_secs(5))
                .blackout(SimTime::from_secs(52), SimDuration::from_secs(5)),
        );
        assert!(matches!(
            overlapping.validate(),
            Err(ScenarioError::Fault(
                FaultPlanError::OverlappingBlackouts { .. }
            ))
        ));
    }
}
