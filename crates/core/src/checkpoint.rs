//! Whole-run checkpoint capture/restore and the divergence bisector.
//!
//! A checkpoint is a byte-exact snapshot of everything a run's future
//! depends on: the engine (clock, event queue, cancellation tokens), every
//! link/router/sender/receiver — including CCA state and derived RNG
//! streams — plus the harness cursor itself (watchdog baselines, warm-up
//! counter baselines, tracker snapshots). Anything rebuildable from the
//! [`Scenario`] (routes, plans, seeds, wiring) is *not* serialized; restore
//! rebuilds the arena from the embedded scenario JSON and overlays state.
//!
//! The contract, enforced by the differential tests: for any slice
//! boundary `t`, `run(0→T)` and `run(0→t) → snapshot → restore → run(t→T)`
//! produce byte-identical outcomes.

use crate::build::BuiltNetwork;
use crate::error::SimError;
use crate::runner::{run_to_checkpoint, SenderBaseline};
use crate::scenario::Scenario;
use crate::watchdog::Watchdog;
use ccsim_net::link::Link;
use ccsim_net::msg::Msg;
use ccsim_resume::{Checkpoint, ResumeError};
use ccsim_sim::{SimTime, SnapError, SnapReader, SnapWriter};
use ccsim_tcp::receiver::Receiver;
use ccsim_tcp::sender::Sender;
use ccsim_telemetry::ThroughputTracker;
use ccsim_topo::Router;

/// Phase tag stored in the checkpoint body.
const PHASE_WARMUP: u8 = 0;
const PHASE_MEASUREMENT: u8 = 1;

/// Borrowed view of the runner's harness state at capture time.
pub(crate) enum HarnessRef<'a> {
    /// Mid-warm-up: no counter baselines or tracker exist yet.
    Warmup,
    /// Mid-measurement: baselines and tracker snapshots are live state.
    Measurement {
        sender_base: &'a [SenderBaseline],
        tracker: &'a ThroughputTracker,
    },
}

/// Harness state recovered from a checkpoint body.
#[derive(Debug)]
pub(crate) enum RestoredHarness {
    Warmup,
    Measurement {
        sender_base: Vec<SenderBaseline>,
        tracker: ThroughputTracker,
    },
}

/// Serialize the full simulation + harness state into a checkpoint body.
///
/// Layout (all length-prefixed via the snap codec):
/// engine → links → routers → (sender, receiver) per flow → watchdog →
/// phase tag → [measurement only: sender baselines, tracker].
pub(crate) fn capture_body(
    net: &BuiltNetwork,
    watchdog: &Watchdog,
    harness: HarnessRef<'_>,
) -> Vec<u8> {
    let mut w = SnapWriter::new();
    net.sim.save_state(&mut w, |w, m: &Msg| m.save_state(w));
    w.u32(net.links.len() as u32);
    for &id in &net.links {
        net.sim.component::<Link>(id).save_state(&mut w);
    }
    w.u32(net.routers.len() as u32);
    for &id in &net.routers {
        net.sim.component::<Router>(id).save_state(&mut w);
    }
    w.u32(net.senders.len() as u32);
    for i in 0..net.senders.len() {
        net.sim
            .component::<Sender>(net.senders[i])
            .save_state(&mut w);
        net.sim
            .component::<Receiver>(net.receivers[i])
            .save_state(&mut w);
    }
    watchdog.save_state(&mut w);
    match harness {
        HarnessRef::Warmup => w.u8(PHASE_WARMUP),
        HarnessRef::Measurement {
            sender_base,
            tracker,
        } => {
            w.u8(PHASE_MEASUREMENT);
            w.seq(sender_base, |w, b| {
                w.u64(b.data_pkts_sent);
                w.u64(b.retransmits);
                w.u64(b.rtos);
                w.u64(b.delivered_bytes);
            });
            tracker.save_state(&mut w);
        }
    }
    w.into_bytes()
}

/// Assemble a [`Checkpoint`] container around a captured body.
pub(crate) fn capture(
    scenario: &Scenario,
    net: &BuiltNetwork,
    watchdog: &Watchdog,
    harness: HarnessRef<'_>,
) -> Checkpoint {
    Checkpoint {
        scenario_json: crate::codec::scenario_to_json(scenario),
        taken_at_nanos: net.sim.now().as_nanos(),
        body: capture_body(net, watchdog, harness),
    }
}

/// Overlay a checkpoint body onto a freshly built network (which must have
/// been built from the checkpoint's embedded scenario). Returns the
/// restored harness cursor.
pub(crate) fn restore_into(
    net: &mut BuiltNetwork,
    watchdog: &mut Watchdog,
    body: &[u8],
) -> Result<RestoredHarness, ResumeError> {
    let mut r = SnapReader::new(body);
    restore_into_inner(net, watchdog, &mut r).map_err(ResumeError::from)
}

fn restore_into_inner(
    net: &mut BuiltNetwork,
    watchdog: &mut Watchdog,
    r: &mut SnapReader<'_>,
) -> Result<RestoredHarness, SnapError> {
    net.sim.restore_state(r, Msg::load_state)?;
    let links = r.u32()? as usize;
    if links != net.links.len() {
        return Err(SnapError::Corrupt(format!(
            "checkpoint has {links} links, scenario builds {}",
            net.links.len()
        )));
    }
    for i in 0..links {
        let id = net.links[i];
        net.sim.component_mut::<Link>(id).load_state(r)?;
    }
    let routers = r.u32()? as usize;
    if routers != net.routers.len() {
        return Err(SnapError::Corrupt(format!(
            "checkpoint has {routers} routers, scenario builds {}",
            net.routers.len()
        )));
    }
    for i in 0..routers {
        let id = net.routers[i];
        net.sim.component_mut::<Router>(id).load_state(r)?;
    }
    let flows = r.u32()? as usize;
    if flows != net.senders.len() {
        return Err(SnapError::Corrupt(format!(
            "checkpoint has {flows} flows, scenario builds {}",
            net.senders.len()
        )));
    }
    for i in 0..flows {
        let (sid, rid) = (net.senders[i], net.receivers[i]);
        net.sim.component_mut::<Sender>(sid).load_state(r)?;
        net.sim.component_mut::<Receiver>(rid).load_state(r)?;
    }
    watchdog.load_state(r)?;
    let harness = match r.u8()? {
        PHASE_WARMUP => RestoredHarness::Warmup,
        PHASE_MEASUREMENT => {
            let sender_base = r.seq(|r| {
                Ok(SenderBaseline {
                    data_pkts_sent: r.u64()?,
                    retransmits: r.u64()?,
                    rtos: r.u64()?,
                    delivered_bytes: r.u64()?,
                })
            })?;
            if sender_base.len() != flows {
                return Err(SnapError::Corrupt(format!(
                    "checkpoint has {} sender baselines for {flows} flows",
                    sender_base.len()
                )));
            }
            let mut tracker = ThroughputTracker::new();
            tracker.load_state(r)?;
            RestoredHarness::Measurement {
                sender_base,
                tracker,
            }
        }
        tag => return Err(SnapError::Corrupt(format!("unknown phase tag {tag}"))),
    };
    if !r.is_exhausted() {
        return Err(SnapError::Corrupt(format!(
            "{} trailing bytes after checkpoint body",
            r.remaining()
        )));
    }
    Ok(harness)
}

/// The slice boundaries at which a run of `scenario` can take a
/// checkpoint, in time order: every warm-up slice end (including the
/// warm-up boundary itself) followed by every measurement slice end, up to
/// the horizon. Replicates the runner's slicing arithmetic exactly.
pub fn slice_boundaries(scenario: &Scenario) -> Vec<SimTime> {
    let warmup_end = SimTime::ZERO + scenario.warmup;
    let horizon = warmup_end + scenario.duration;
    let mut out = Vec::new();
    let mut t = SimTime::ZERO;
    while t < warmup_end {
        t = (t + scenario.snapshot_interval).min(warmup_end);
        out.push(t);
    }
    let mut t = warmup_end;
    while t < horizon {
        t = (t + scenario.snapshot_interval).min(horizon);
        out.push(t);
    }
    out
}

/// Where two runs first diverge, as found by [`bisect_divergence`].
#[derive(Debug)]
pub struct DivergencePoint {
    /// Zero-based index into [`slice_boundaries`].
    pub slice: usize,
    /// The simulated instant of that boundary.
    pub at: SimTime,
    /// State digests of the two checkpoints at the divergent boundary.
    pub digest_a: u64,
    pub digest_b: u64,
    /// The two full states, for offline inspection.
    pub checkpoint_a: Checkpoint,
    pub checkpoint_b: Checkpoint,
}

/// Result of a divergence bisection.
#[derive(Debug)]
pub struct BisectOutcome {
    /// The probed slice boundaries (shared by both scenarios).
    pub boundaries: Vec<SimTime>,
    /// The earliest slice whose states differ, or `None` if the runs are
    /// state-identical at every probed boundary.
    pub first_divergence: Option<DivergencePoint>,
}

/// Binary-search for the first slice boundary at which runs of `a` and
/// `b` hold different simulation state.
///
/// Both scenarios must share the same slicing (warm-up, duration,
/// snapshot interval). Convergence-based early stopping is disabled for
/// the probes so every boundary is reachable. `on_probe` is called after
/// each probe pair with `(slice_index, boundary_time, diverged)`.
pub fn bisect_divergence(
    a: &Scenario,
    b: &Scenario,
    on_probe: &mut dyn FnMut(usize, SimTime, bool),
) -> Result<BisectOutcome, SimError> {
    let mut a = a.clone();
    let mut b = b.clone();
    a.convergence = None;
    b.convergence = None;
    if a.warmup != b.warmup
        || a.duration != b.duration
        || a.snapshot_interval != b.snapshot_interval
    {
        return Err(SimError::Resume(ResumeError::Corrupt(
            "bisect requires both scenarios to share warmup, duration, and \
             snapshot interval"
                .into(),
        )));
    }
    let boundaries = slice_boundaries(&a);
    if boundaries.is_empty() {
        return Err(SimError::Resume(ResumeError::Corrupt(
            "scenario has no slice boundaries to probe".into(),
        )));
    }

    let probe = |k: usize,
                 on_probe: &mut dyn FnMut(usize, SimTime, bool)|
     -> Result<(Checkpoint, Checkpoint, bool), SimError> {
        let at = boundaries[k];
        let ca = run_to_checkpoint(&a, at)?;
        let cb = run_to_checkpoint(&b, at)?;
        let diverged = ca.state_digest() != cb.state_digest();
        on_probe(k, at, diverged);
        Ok((ca, cb, diverged))
    };

    // If the final states agree, the runs never diverged.
    let last = boundaries.len() - 1;
    let (ca, cb, diverged) = probe(last, on_probe)?;
    if !diverged {
        return Ok(BisectOutcome {
            boundaries,
            first_divergence: None,
        });
    }

    // Invariant: state at `hi` diverges; everything below `lo` agrees.
    let (mut lo, mut hi) = (0, last);
    let (mut best_a, mut best_b) = (ca, cb);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let (ca, cb, diverged) = probe(mid, on_probe)?;
        if diverged {
            hi = mid;
            best_a = ca;
            best_b = cb;
        } else {
            lo = mid + 1;
        }
    }

    let (digest_a, digest_b) = (best_a.state_digest(), best_b.state_digest());
    Ok(BisectOutcome {
        first_divergence: Some(DivergencePoint {
            slice: hi,
            at: boundaries[hi],
            digest_a,
            digest_b,
            checkpoint_a: best_a,
            checkpoint_b: best_b,
        }),
        boundaries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run, run_to_checkpoint, try_resume_run, try_run_with_checkpoint};
    use crate::scenario::FlowGroup;
    use ccsim_cca::CcaKind;
    use ccsim_sim::{Bandwidth, SimDuration};

    /// A fast scenario: 2 reno flows, 1 s warm-up, 4 s measurement, 1 s
    /// slices.
    fn tiny(seed: u64) -> Scenario {
        let mut s = Scenario::edge_scale()
            .named("ckpt-tiny")
            .flows(vec![FlowGroup::new(
                CcaKind::Reno,
                2,
                SimDuration::from_millis(20),
            )])
            .seed(seed);
        s.bottleneck = Bandwidth::from_mbps(10);
        s.buffer_bytes = 100_000;
        s.start_jitter = SimDuration::from_millis(100);
        s.warmup = SimDuration::from_secs(1);
        s.duration = SimDuration::from_secs(4);
        s.convergence = None;
        s
    }

    #[test]
    fn resume_from_measurement_checkpoint_reproduces_the_run() {
        let s = tiny(3);
        let full = run(&s);
        let mid = SimTime::ZERO + s.warmup + SimDuration::from_secs(2);
        let cp = run_to_checkpoint(&s, mid).unwrap();
        assert_eq!(cp.taken_at_nanos, mid.as_nanos());
        // Round-trip the container exactly as a file load would.
        let cp = Checkpoint::decode(&cp.encode()).unwrap();
        let resumed = try_resume_run(&cp).unwrap();
        assert_eq!(full.to_json(), resumed.to_json());
        assert_eq!(full.digest(), resumed.digest());
        assert_eq!(full.events_processed, resumed.events_processed);
    }

    #[test]
    fn resume_from_warmup_checkpoint_reproduces_the_run() {
        // A 3 s warm-up leaves interior warm-up boundaries to probe.
        let mut s = tiny(5);
        s.warmup = SimDuration::from_secs(3);
        let full = run(&s);
        let cp = run_to_checkpoint(&s, SimTime::from_secs(1)).unwrap();
        let resumed = try_resume_run(&cp).unwrap();
        assert_eq!(full.to_json(), resumed.to_json());
    }

    #[test]
    fn capture_en_route_is_digest_inert() {
        let s = tiny(7);
        let plain = run(&s);
        let mid = SimTime::ZERO + s.warmup + SimDuration::from_secs(1);
        let (outcome, cp) = try_run_with_checkpoint(&s, mid).unwrap();
        assert_eq!(plain.to_json(), outcome.to_json());
        let cp = cp.expect("boundary inside the horizon yields a checkpoint");
        assert_eq!(
            cp.state_digest(),
            run_to_checkpoint(&s, mid).unwrap().state_digest()
        );
    }

    #[test]
    fn checkpoint_past_the_horizon_is_a_typed_error() {
        let s = tiny(1);
        let err = run_to_checkpoint(&s, SimTime::from_secs(600)).unwrap_err();
        assert_eq!(err.class(), "resume");
    }

    #[test]
    fn boundaries_cover_warmup_and_measurement() {
        let s = tiny(1);
        let b = slice_boundaries(&s);
        assert_eq!(
            b,
            [1, 2, 3, 4, 5].map(SimTime::from_secs).to_vec(),
            "1 s warm-up + 4 s measurement at 1 s slices"
        );
    }

    #[test]
    fn bisect_reports_identical_runs_as_identical() {
        let mut probes = 0;
        let out = bisect_divergence(&tiny(2), &tiny(2), &mut |_, _, d| {
            probes += 1;
            assert!(!d);
        })
        .unwrap();
        assert!(out.first_divergence.is_none());
        assert_eq!(probes, 1, "identical runs need only the final probe");
    }

    #[test]
    fn bisect_pinpoints_the_first_divergent_slice() {
        // Different seeds draw different start jitter, so state diverges
        // at the very first slice boundary.
        let out = bisect_divergence(&tiny(1), &tiny(2), &mut |_, _, _| {}).unwrap();
        let d = out.first_divergence.expect("seeds differ");
        assert_eq!(d.slice, 0);
        assert_eq!(d.at, SimTime::from_secs(1));
        assert_ne!(d.digest_a, d.digest_b);
    }

    #[test]
    fn bisect_rejects_mismatched_slicing() {
        let a = tiny(1);
        let mut b = tiny(1);
        b.duration = SimDuration::from_secs(5);
        let err = bisect_divergence(&a, &b, &mut |_, _, _| {}).unwrap_err();
        assert_eq!(err.class(), "resume");
    }

    #[test]
    fn truncated_body_is_a_typed_error_not_a_panic() {
        let s = tiny(4);
        let cp = run_to_checkpoint(&s, SimTime::from_secs(2)).unwrap();
        for cut in [0, 1, cp.body.len() / 2, cp.body.len() - 1] {
            let mut short = cp.clone();
            short.body.truncate(cut);
            let mut net = crate::build::BuiltNetwork::try_build(&s).unwrap();
            let mut wd = Watchdog::new(s.watchdog);
            assert!(restore_into(&mut net, &mut wd, &short.body).is_err());
        }
    }

    #[test]
    fn flow_count_mismatch_is_a_typed_error() {
        let s = tiny(4);
        let cp = run_to_checkpoint(&s, SimTime::from_secs(2)).unwrap();
        let mut other = tiny(4);
        other.flows = vec![FlowGroup::new(
            CcaKind::Reno,
            3,
            SimDuration::from_millis(20),
        )];
        let mut net = crate::build::BuiltNetwork::try_build(&other).unwrap();
        let mut wd = Watchdog::new(other.watchdog);
        let err = restore_into(&mut net, &mut wd, &cp.body).unwrap_err();
        assert!(err.to_string().contains("flows"), "{err}");
    }
}
