//! §5.2 — A single BBR flow against many loss-based flows.
//!
//! * **Figure 6** — 1 BBR vs N NewReno: the BBR flow holds ≈40% of total
//!   throughput regardless of N, validating Ware et al.'s model at scale.
//! * **Figure 7** — 1 BBR vs N Cubic: same shape.

use crate::experiments::grid::ExperimentConfig;
use crate::outcome::RunOutcome;
use crate::report::render_table;
use crate::scenario::{FlowGroup, Scenario};
use ccsim_cca::CcaKind;
use ccsim_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// One single-BBR cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SingleBbrRow {
    /// "EdgeScale" or "CoreScale".
    pub setting: String,
    /// The competing loss-based CCA.
    pub competitor: CcaKind,
    /// Number of competing flows (plus the one BBR flow).
    pub competitor_count: u32,
    /// Base RTT in ms.
    pub rtt_ms: u64,
    /// The single BBR flow's fraction of total throughput.
    pub bbr_share: f64,
    /// The BBR flow's absolute throughput in Mbps.
    pub bbr_mbps: f64,
    /// Mean competitor throughput in Mbps.
    pub competitor_mean_mbps: f64,
    /// Link utilization.
    pub utilization: f64,
}

/// Scenario for one cell: flow 0 is BBR, flows 1..=N are the competitor.
pub fn cell_scenario(skeleton: Scenario, competitor: CcaKind, count: u32, rtt_ms: u64) -> Scenario {
    let rtt = SimDuration::from_millis(rtt_ms);
    let name = format!(
        "{}/1bbr v {}x{} @{}ms",
        skeleton.name, competitor, count, rtt_ms
    );
    skeleton
        .flows(vec![
            FlowGroup::new(CcaKind::Bbr, 1, rtt),
            FlowGroup::new(competitor, count, rtt),
        ])
        .named(name)
}

/// Run the single-BBR grid against `competitor` over both settings.
pub fn run_grid(cfg: &ExperimentConfig, competitor: CcaKind) -> Vec<SingleBbrRow> {
    run_grid_with(cfg, competitor, crate::run_all)
}

/// [`run_grid`] with a caller-supplied executor (e.g. the campaign
/// worker pool). `runner` must return one outcome per scenario, in
/// input order.
pub fn run_grid_with(
    cfg: &ExperimentConfig,
    competitor: CcaKind,
    runner: impl FnOnce(&[Scenario]) -> Vec<RunOutcome>,
) -> Vec<SingleBbrRow> {
    let mut scenarios = Vec::new();
    let mut labels = Vec::new();
    for &rtt in &cfg.rtts_ms {
        for &count in &cfg.edge_counts {
            scenarios.push(cell_scenario(cfg.edge(), competitor, count, rtt));
            labels.push(("EdgeScale", count, rtt));
        }
        for &count in &cfg.core_counts {
            scenarios.push(cell_scenario(cfg.core(), competitor, count, rtt));
            labels.push(("CoreScale", count, rtt));
        }
    }
    let outcomes = runner(&scenarios);
    labels
        .iter()
        .zip(&outcomes)
        .map(|(&(setting, count, rtt), o)| {
            let bbr_tput = o.flows[0].throughput_mbps();
            let competitor_total: f64 = o.flows[1..].iter().map(|f| f.throughput_mbps()).sum();
            SingleBbrRow {
                setting: setting.to_string(),
                competitor,
                competitor_count: count,
                rtt_ms: rtt,
                bbr_share: o.share_of(CcaKind::Bbr).unwrap_or(0.0),
                bbr_mbps: bbr_tput,
                competitor_mean_mbps: competitor_total / count as f64,
                utilization: o.utilization(),
            }
        })
        .collect()
}

/// Render rows as the Figure 6 / Figure 7 report table.
pub fn render(rows: &[SingleBbrRow]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.setting.clone(),
                format!("1 bbr vs {} {}", r.competitor_count, r.competitor),
                r.rtt_ms.to_string(),
                format!("{:.1}%", r.bbr_share * 100.0),
                format!("{:.1}", r.bbr_mbps),
                format!("{:.3}", r.competitor_mean_mbps),
                format!("{:.1}%", r.utilization * 100.0),
            ]
        })
        .collect();
    render_table(
        &[
            "setting",
            "matchup",
            "rtt(ms)",
            "bbr share",
            "bbr Mbps",
            "mean rival Mbps",
            "util",
        ],
        &table,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn single_bbr_grabs_disproportionate_share() {
        let cfg = ExperimentConfig::smoke();
        let rows = run_grid(&cfg, CcaKind::Reno);
        assert_eq!(rows.len(), 2);
        // The BBR flow needs ~30+ s beyond the smoke horizon to claw back
        // bandwidth after the competitors' slow-start storm (it reaches
        // 25-42% with the figure binaries' horizons); the smoke run checks
        // the machinery and basic sanity only.
        for r in &rows {
            assert!(r.utilization > 0.5, "util = {}", r.utilization);
            assert!(r.bbr_share >= 0.0 && r.bbr_share <= 1.0);
            assert!(r.competitor_mean_mbps > 0.0);
        }
    }
}
