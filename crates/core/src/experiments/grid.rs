//! Shared experiment parameter grids.

use crate::scenario::{Fidelity, Scenario};
use ccsim_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Parameters shared by every experiment: which flow counts and RTTs to
/// sweep, at what fidelity, and under which seed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// CoreScale flow counts (paper: 1000, 3000, 5000).
    pub core_counts: Vec<u32>,
    /// EdgeScale flow counts (paper: 10, 30, 50; 2–50 in §3.1).
    pub edge_counts: Vec<u32>,
    /// Base RTTs in milliseconds (paper: 20, 100, 200).
    pub rtts_ms: Vec<u64>,
    /// Time-parameter preset.
    pub fidelity: Fidelity,
    /// Master seed.
    pub seed: u64,
    /// Divide the CoreScale bandwidth and buffer by this factor. Used with
    /// proportionally reduced flow counts, this preserves every per-flow
    /// quantity (share, BDP, cwnd) of the paper's setting while cutting the
    /// event count linearly — e.g. divisor 5 with 200/600/1000 flows
    /// reproduces 10 Gbps with 1000/3000/5000 exactly per-flow. Divisor 1 =
    /// the paper's literal 10 Gbps.
    pub core_divisor: u64,
}

impl ExperimentConfig {
    /// The paper's full grid at standard fidelity.
    pub fn paper_grid() -> ExperimentConfig {
        ExperimentConfig {
            core_counts: vec![1000, 3000, 5000],
            edge_counts: vec![10, 30, 50],
            rtts_ms: vec![20, 100, 200],
            fidelity: Fidelity::Standard,
            seed: 1,
            core_divisor: 1,
        }
    }

    /// A reduced grid for tests and CI smoke runs: a 1 Gbps "mini-core"
    /// with 100 flows — the same per-flow share as 10 Gbps with 1000.
    pub fn smoke() -> ExperimentConfig {
        ExperimentConfig {
            core_counts: vec![100],
            edge_counts: vec![10],
            rtts_ms: vec![20],
            fidelity: Fidelity::Quick,
            seed: 1,
            core_divisor: 10,
        }
    }

    /// The RTT grid as durations.
    pub fn rtts(&self) -> Vec<SimDuration> {
        self.rtts_ms
            .iter()
            .map(|&ms| SimDuration::from_millis(ms))
            .collect()
    }

    /// An EdgeScale scenario skeleton at this config's fidelity.
    pub fn edge(&self) -> Scenario {
        Scenario::edge_scale()
            .fidelity(self.fidelity)
            .seed(self.seed)
    }

    /// A CoreScale scenario skeleton at this config's fidelity, with the
    /// bandwidth/buffer scaled down by [`ExperimentConfig::core_divisor`].
    pub fn core(&self) -> Scenario {
        let mut s = Scenario::core_scale()
            .fidelity(self.fidelity)
            .seed(self.seed);
        if self.core_divisor > 1 {
            s.bottleneck =
                ccsim_sim::Bandwidth::from_bps(s.bottleneck.as_bps() / self.core_divisor);
            s.buffer_bytes /= self.core_divisor;
            s.name = format!("CoreScale/{}", self.core_divisor);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_matches_the_paper() {
        let g = ExperimentConfig::paper_grid();
        assert_eq!(g.core_counts, vec![1000, 3000, 5000]);
        assert_eq!(g.edge_counts, vec![10, 30, 50]);
        assert_eq!(g.rtts_ms, vec![20, 100, 200]);
        assert_eq!(g.rtts()[0], SimDuration::from_millis(20));
    }

    #[test]
    fn skeletons_carry_fidelity_and_seed() {
        let mut g = ExperimentConfig::smoke();
        g.seed = 9;
        assert_eq!(g.edge().seed, 9);
        assert_eq!(g.core().seed, 9);
        assert_eq!(g.edge().duration, SimDuration::from_secs(20));
    }
}
