//! §5.1 — Intra-CCA fairness.
//!
//! * **Figure 4** — JFI of all-BBR runs across flow counts and RTTs, in
//!   both settings: the paper's surprise finding is JFIs as low as 0.4 in
//!   CoreScale (vs the 0.99 of past work), with milder unfairness beyond
//!   10 flows in EdgeScale.
//! * **Finding 4** — all-NewReno and all-Cubic runs keep JFI > 0.99 at
//!   scale ("figure not shown" in the paper).

use crate::experiments::grid::ExperimentConfig;
use crate::outcome::RunOutcome;
use crate::report::render_table;
use crate::scenario::{FlowGroup, Scenario};
use ccsim_cca::CcaKind;
use ccsim_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// One intra-CCA fairness cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IntraRow {
    /// "EdgeScale" or "CoreScale".
    pub setting: String,
    /// The CCA all flows run.
    pub cca: CcaKind,
    /// Number of flows.
    pub flow_count: u32,
    /// Base RTT (all flows identical) in ms.
    pub rtt_ms: u64,
    /// Jain's Fairness Index across all flows.
    pub jfi: f64,
    /// Link utilization in the window.
    pub utilization: f64,
    /// Aggregate queue loss rate.
    pub loss_rate: f64,
}

/// Scenario for one cell: `count` flows of `cca` at `rtt`.
pub fn cell_scenario(skeleton: Scenario, cca: CcaKind, count: u32, rtt_ms: u64) -> Scenario {
    let name = format!("{}/{} x{} @{}ms", skeleton.name, cca, count, rtt_ms);
    skeleton
        .flows(vec![FlowGroup::new(
            cca,
            count,
            SimDuration::from_millis(rtt_ms),
        )])
        .named(name)
}

/// Run the intra-CCA grid for `cca` over both settings.
pub fn run_grid(cfg: &ExperimentConfig, cca: CcaKind) -> Vec<IntraRow> {
    run_grid_with(cfg, cca, crate::run_all)
}

/// [`run_grid`] with a caller-supplied executor (e.g. the campaign
/// worker pool). `runner` must return one outcome per scenario, in
/// input order.
pub fn run_grid_with(
    cfg: &ExperimentConfig,
    cca: CcaKind,
    runner: impl FnOnce(&[Scenario]) -> Vec<RunOutcome>,
) -> Vec<IntraRow> {
    let mut scenarios = Vec::new();
    let mut labels = Vec::new();
    for &rtt in &cfg.rtts_ms {
        for &count in &cfg.edge_counts {
            scenarios.push(cell_scenario(cfg.edge(), cca, count, rtt));
            labels.push(("EdgeScale", count, rtt));
        }
        for &count in &cfg.core_counts {
            scenarios.push(cell_scenario(cfg.core(), cca, count, rtt));
            labels.push(("CoreScale", count, rtt));
        }
    }
    let outcomes = runner(&scenarios);
    labels
        .iter()
        .zip(&outcomes)
        .map(|(&(setting, count, rtt), o)| IntraRow {
            setting: setting.to_string(),
            cca,
            flow_count: count,
            rtt_ms: rtt,
            jfi: o.jain_index().unwrap_or(0.0),
            utilization: o.utilization(),
            loss_rate: o.aggregate_loss_rate,
        })
        .collect()
}

/// Render rows as the Figure 4 / Finding 4 report table.
pub fn render(rows: &[IntraRow]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.setting.clone(),
                r.cca.to_string(),
                r.flow_count.to_string(),
                r.rtt_ms.to_string(),
                format!("{:.3}", r.jfi),
                format!("{:.1}%", r.utilization * 100.0),
                format!("{:.3}%", r.loss_rate * 100.0),
            ]
        })
        .collect();
    render_table(
        &["setting", "cca", "flows", "rtt(ms)", "JFI", "util", "loss"],
        &table,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn reno_smoke_grid_is_fair() {
        let cfg = ExperimentConfig::smoke();
        let rows = run_grid(&cfg, CcaKind::Reno);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.utilization > 0.5, "util = {}", r.utilization);
        }
        // AIMD fairness needs several ~20 s sawtooth periods to converge;
        // the smoke horizon only checks the machinery end-to-end. The JFI
        // must at least be in a sane range and rising horizons are covered
        // by the figure binaries (see EXPERIMENTS.md).
        let core = rows.iter().find(|r| r.setting == "CoreScale").unwrap();
        assert!(
            core.jfi > 0.1 && core.jfi <= 1.0,
            "core reno JFI = {}",
            core.jfi
        );
        let report = render(&rows);
        assert!(report.contains("JFI"));
    }
}
