//! §4 — Revisiting the Mathis throughput model.
//!
//! One experiment grid powers four paper artifacts:
//!
//! * **Table 1** — the best-fit Mathis constant `C` per setting/flow-count,
//!   derived with `p` = packet-loss rate vs `p` = CWND-halving rate.
//! * **Figure 2** — median relative prediction error under each
//!   interpretation.
//! * **Figure 3** — the packet-loss to CWND-halving ratio.
//! * **Finding 3's corroboration** — Goh–Barabási burstiness of queue
//!   drops (≈0.2 EdgeScale vs ≈0.35 CoreScale in the paper).
//!
//! Every cell is one all-NewReno run at 20 ms RTT, exactly as in the paper.

use crate::experiments::grid::ExperimentConfig;
use crate::outcome::{PInterpretation, RunOutcome};
use crate::report::render_table;
use crate::scenario::{FlowGroup, Scenario};
use ccsim_analysis::mathis::fit_constant;
use ccsim_cca::CcaKind;
use ccsim_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// One (setting, flow-count) cell of the Mathis grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MathisRow {
    /// "EdgeScale" or "CoreScale".
    pub setting: String,
    /// Competing NewReno flows.
    pub flow_count: u32,
    /// Best-fit C with `p` = packet loss rate.
    pub c_loss: Option<f64>,
    /// Best-fit C with `p` = CWND halving rate.
    pub c_halving: Option<f64>,
    /// Median relative prediction error under the loss-rate fit.
    pub median_err_loss: Option<f64>,
    /// Median relative prediction error under the halving-rate fit.
    pub median_err_halving: Option<f64>,
    /// Packet-loss to CWND-halving ratio (Figure 3).
    pub loss_to_halving_ratio: Option<f64>,
    /// Drop-train burstiness (Finding 3 corroboration).
    pub burstiness: Option<f64>,
    /// Aggregate queue loss rate over the window.
    pub loss_rate: f64,
    /// Link utilization over the window.
    pub utilization: f64,
}

impl MathisRow {
    fn from_outcome(setting: &str, flow_count: u32, o: &RunOutcome) -> MathisRow {
        let loss_fit =
            fit_constant(&o.mathis_observations(CcaKind::Reno, PInterpretation::PacketLoss));
        let halving_fit =
            fit_constant(&o.mathis_observations(CcaKind::Reno, PInterpretation::CwndHalving));
        MathisRow {
            setting: setting.to_string(),
            flow_count,
            c_loss: loss_fit.as_ref().map(|f| f.c),
            c_halving: halving_fit.as_ref().map(|f| f.c),
            median_err_loss: loss_fit.as_ref().map(|f| f.median_error),
            median_err_halving: halving_fit.as_ref().map(|f| f.median_error),
            loss_to_halving_ratio: o.loss_to_halving_ratio(),
            burstiness: o.drop_burstiness,
            loss_rate: o.aggregate_loss_rate,
            utilization: o.utilization(),
        }
    }
}

/// Build the scenario for one cell: `count` NewReno flows at 20 ms.
pub fn cell_scenario(skeleton: Scenario, count: u32) -> Scenario {
    let name = format!("{}/reno x{} @20ms", skeleton.name, count);
    skeleton
        .flows(vec![FlowGroup::new(
            CcaKind::Reno,
            count,
            SimDuration::from_millis(20),
        )])
        .named(name)
}

/// Run the full Mathis grid: every EdgeScale and CoreScale flow count.
pub fn run_grid(cfg: &ExperimentConfig) -> Vec<MathisRow> {
    run_grid_with(cfg, crate::run_all)
}

/// [`run_grid`] with a caller-supplied executor (e.g. the campaign
/// worker pool). `runner` must return one outcome per scenario, in
/// input order.
pub fn run_grid_with(
    cfg: &ExperimentConfig,
    runner: impl FnOnce(&[Scenario]) -> Vec<RunOutcome>,
) -> Vec<MathisRow> {
    let mut scenarios = Vec::new();
    let mut labels = Vec::new();
    for &count in &cfg.edge_counts {
        scenarios.push(cell_scenario(cfg.edge(), count));
        labels.push(("EdgeScale", count));
    }
    for &count in &cfg.core_counts {
        scenarios.push(cell_scenario(cfg.core(), count));
        labels.push(("CoreScale", count));
    }
    let outcomes = runner(&scenarios);
    labels
        .iter()
        .zip(&outcomes)
        .map(|(&(setting, count), o)| MathisRow::from_outcome(setting, count, o))
        .collect()
}

/// Render the grid as the Table 1 / Figure 2 / Figure 3 report.
pub fn render(rows: &[MathisRow]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.setting.clone(),
                r.flow_count.to_string(),
                r.c_loss.map_or("-".into(), |c| format!("{c:.2}")),
                r.c_halving.map_or("-".into(), |c| format!("{c:.2}")),
                r.median_err_loss
                    .map_or("-".into(), |e| format!("{:.1}%", e * 100.0)),
                r.median_err_halving
                    .map_or("-".into(), |e| format!("{:.1}%", e * 100.0)),
                r.loss_to_halving_ratio
                    .map_or("-".into(), |x| format!("{x:.2}")),
                r.burstiness.map_or("-".into(), |b| format!("{b:.2}")),
                format!("{:.3}%", r.loss_rate * 100.0),
                format!("{:.1}%", r.utilization * 100.0),
            ]
        })
        .collect();
    render_table(
        &[
            "setting",
            "flows",
            "C (loss)",
            "C (halving)",
            "err (loss)",
            "err (halving)",
            "loss/halving",
            "burstiness",
            "loss rate",
            "util",
        ],
        &table_rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn smoke_grid_produces_full_rows() {
        let cfg = ExperimentConfig::smoke();
        let rows = run_grid(&cfg);
        assert_eq!(rows.len(), 2); // 1 edge + 1 core cell
        let edge = &rows[0];
        assert_eq!(edge.setting, "EdgeScale");
        assert!(edge.utilization > 0.5, "util = {}", edge.utilization);
        // The smoke horizon may fall between EdgeScale loss epochs (one
        // sawtooth is ~30 s); behavioral assertions use the core cell,
        // where small per-flow windows make losses frequent.
        let core = &rows[1];
        assert!(core.utilization > 0.5, "core util = {}", core.utilization);
        assert!(core.loss_rate > 0.0, "core cell must see losses");
        assert!(core.c_loss.is_some(), "no loss-rate fit: {core:?}");
        assert!(core.c_halving.is_some(), "no halving fit: {core:?}");
        if let Some(ratio) = core.loss_to_halving_ratio {
            assert!(ratio > 0.5, "ratio = {ratio}");
        }
        let report = render(&rows);
        assert!(report.contains("CoreScale"));
        assert!(report.contains("C (halving)"));
    }
}
