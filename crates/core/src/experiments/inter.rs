//! §5.2 — Inter-CCA fairness with equal flow counts.
//!
//! * **Figure 5** — N Cubic vs N NewReno: Cubic takes 70–80% of total
//!   throughput at scale, as at the edge.
//! * **Figure 8** — N BBR vs N NewReno (a) / N Cubic (b): BBR takes up to
//!   99.9% of total throughput.

use crate::experiments::grid::ExperimentConfig;
use crate::outcome::RunOutcome;
use crate::report::render_table;
use crate::scenario::{FlowGroup, Scenario};
use ccsim_cca::CcaKind;
use ccsim_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// One equal-split inter-CCA cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InterRow {
    /// "EdgeScale" or "CoreScale".
    pub setting: String,
    /// The aggressor CCA (whose share is reported).
    pub cca_a: CcaKind,
    /// The victim CCA.
    pub cca_b: CcaKind,
    /// Total flows (half per CCA).
    pub flow_count: u32,
    /// Base RTT in ms (same for everyone).
    pub rtt_ms: u64,
    /// Fraction of total throughput held by `cca_a` flows.
    pub share_a: f64,
    /// Link utilization in the window.
    pub utilization: f64,
}

/// Scenario for one cell: `count/2` flows of each CCA at `rtt`.
pub fn cell_scenario(
    skeleton: Scenario,
    a: CcaKind,
    b: CcaKind,
    count: u32,
    rtt_ms: u64,
) -> Scenario {
    assert!(count >= 2, "need at least one flow per CCA");
    let rtt = SimDuration::from_millis(rtt_ms);
    let name = format!("{}/{}v{} x{} @{}ms", skeleton.name, a, b, count, rtt_ms);
    skeleton
        .flows(vec![
            FlowGroup::new(a, count / 2, rtt),
            FlowGroup::new(b, count - count / 2, rtt),
        ])
        .named(name)
}

/// Run the equal-split grid for the pair `(a, b)` over both settings.
pub fn run_grid(cfg: &ExperimentConfig, a: CcaKind, b: CcaKind) -> Vec<InterRow> {
    run_grid_with(cfg, a, b, crate::run_all)
}

/// [`run_grid`] with a caller-supplied executor (e.g. the campaign
/// worker pool). `runner` must return one outcome per scenario, in
/// input order.
pub fn run_grid_with(
    cfg: &ExperimentConfig,
    a: CcaKind,
    b: CcaKind,
    runner: impl FnOnce(&[Scenario]) -> Vec<RunOutcome>,
) -> Vec<InterRow> {
    let mut scenarios = Vec::new();
    let mut labels = Vec::new();
    for &rtt in &cfg.rtts_ms {
        for &count in &cfg.edge_counts {
            scenarios.push(cell_scenario(cfg.edge(), a, b, count, rtt));
            labels.push(("EdgeScale", count, rtt));
        }
        for &count in &cfg.core_counts {
            scenarios.push(cell_scenario(cfg.core(), a, b, count, rtt));
            labels.push(("CoreScale", count, rtt));
        }
    }
    let outcomes = runner(&scenarios);
    labels
        .iter()
        .zip(&outcomes)
        .map(|(&(setting, count, rtt), o)| InterRow {
            setting: setting.to_string(),
            cca_a: a,
            cca_b: b,
            flow_count: count,
            rtt_ms: rtt,
            share_a: o.share_of(a).unwrap_or(0.0),
            utilization: o.utilization(),
        })
        .collect()
}

/// Render rows as the Figure 5 / Figure 8 report table.
pub fn render(rows: &[InterRow]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.setting.clone(),
                format!("{} vs {}", r.cca_a, r.cca_b),
                r.flow_count.to_string(),
                r.rtt_ms.to_string(),
                format!("{:.1}%", r.share_a * 100.0),
                format!("{:.1}%", r.utilization * 100.0),
            ]
        })
        .collect();
    render_table(
        &["setting", "pair", "flows", "rtt(ms)", "share(A)", "util"],
        &table,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn cubic_beats_reno_in_smoke_grid() {
        let cfg = ExperimentConfig::smoke();
        let rows = run_grid(&cfg, CcaKind::Cubic, CcaKind::Reno);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            // Cubic should get at least half; the paper reports 70-80%.
            assert!(
                r.share_a > 0.45,
                "cubic share = {} in {}",
                r.share_a,
                r.setting
            );
            assert!(r.utilization > 0.5);
        }
    }

    #[test]
    fn odd_counts_split_without_losing_flows() {
        let s = cell_scenario(
            ExperimentConfig::smoke().edge(),
            CcaKind::Bbr,
            CcaKind::Reno,
            5,
            20,
        );
        assert_eq!(s.flow_count(), 5);
        assert_eq!(s.flows[0].count, 2);
        assert_eq!(s.flows[1].count, 3);
    }
}
