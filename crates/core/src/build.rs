//! Network construction: wire a [`Scenario`] into a live simulator.
//!
//! The network shape comes from the scenario's [`TopologyKind`]
//! (single-bottleneck by default — the paper's dumbbell reduced to its
//! essential elements, DESIGN.md decision D5): `ccsim-topo` generates the
//! [`Topology`] description, instantiates its [`Link`]s (chained directly
//! or through per-flow routers), and this module attaches the AQM
//! disciplines, trace recorders, and fault injector, then wires the
//! senders and receivers. Receivers return ACKs delayed by the flow's
//! base RTT (the netem substitution) — straight to their senders unless
//! the topology models an explicit reverse path.
//!
//! Senders and receivers are interleaved in the component arena right
//! after the links and routers; ids are pre-computed and cross-checked so
//! the circular sender↔receiver references resolve without
//! post-construction mutation.
//!
//! [`Link`]: ccsim_net::Link

use crate::scenario::{Scenario, ScenarioError};
use ccsim_cca::{make_cca, CcaKind};
use ccsim_fault::LinkFaultInjector;
use ccsim_net::link::{Link, FAULT_TICK};
use ccsim_net::msg::{Msg, TimerToken};
use ccsim_net::packet::FlowId;
use ccsim_net::AqmKind;
use ccsim_sim::{ComponentId, SimDuration, SimTime, Simulator};
use ccsim_tcp::receiver::Receiver;
use ccsim_tcp::sender::{start_msg, Sender, SenderConfig};
use ccsim_tcp::slab::{shared_with_capacity, HotRow, SharedFlowSlab};
use ccsim_tcp::CongestionControl;
use ccsim_topo::{instantiate, Topology};
use ccsim_trace::{FlowRecorder, QueueRecorder};
use rand::Rng;

/// A scenario wired into a simulator, ready to run.
pub struct BuiltNetwork {
    /// The simulator holding all components.
    pub sim: Simulator<Msg>,
    /// The primary bottleneck link (anchor for legacy single-link
    /// reporting: loss rate, drop burstiness, hop-0 queue trace).
    pub link: ComponentId,
    /// Every link, indexed like [`BuiltNetwork::topology`]`.links`.
    pub links: Vec<ComponentId>,
    /// Per-flow routers created for diverging links (often empty).
    pub routers: Vec<ComponentId>,
    /// The instantiated topology description.
    pub topology: Topology,
    /// Per-link trace hop number (primary bottleneck = 0).
    pub hop_index: Vec<u32>,
    /// Per-flow sender component ids (index = flow id).
    pub senders: Vec<ComponentId>,
    /// Per-flow receiver component ids.
    pub receivers: Vec<ComponentId>,
    /// Per-flow CCA kinds.
    pub flow_cca: Vec<CcaKind>,
    /// Per-flow base RTTs.
    pub flow_rtt: Vec<SimDuration>,
    /// Per-flow start instants (after jitter).
    pub start_times: Vec<SimTime>,
    /// Dense per-flow hot-state slab (struct-of-arrays: cwnd, inflight,
    /// srtt, pacing, retransmits, delivered), written back by each
    /// endpoint at the end of every event. Slot `i` == flow `i`. This is
    /// **derived** state: readers (timeline sampler, delivered snapshots,
    /// profiler) scan its columns between events instead of walking the
    /// component arena, and attaching or detaching it cannot change an
    /// outcome digest. `None` only for diagnostic detached builds (see
    /// [`BuiltNetwork::try_build_detached`]).
    pub slab: Option<SharedFlowSlab>,
}

/// Per-flow CCA construction: `(flow_index, kind, mss, seed)` → instance.
pub type CcaFactory<'a> = dyn Fn(u32, CcaKind, u32, u64) -> Box<dyn CongestionControl> + 'a;

impl BuiltNetwork {
    /// Construct the network for `scenario` and schedule all flow starts,
    /// using the stock CCA implementations.
    ///
    /// # Panics
    /// Panics on an invalid scenario ([`BuiltNetwork::try_build`] reports
    /// the error instead).
    pub fn build(scenario: &Scenario) -> BuiltNetwork {
        BuiltNetwork::try_build(scenario).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Construct the network for `scenario`, surfacing validation errors.
    pub fn try_build(scenario: &Scenario) -> Result<BuiltNetwork, ScenarioError> {
        BuiltNetwork::try_build_with_factory(scenario, &|_, kind, mss, seed| {
            make_cca(kind, mss, seed)
        })
    }

    /// Like [`BuiltNetwork::build`], but with a custom CCA factory —
    /// the hook ablations use to instantiate variant algorithm
    /// configurations (e.g. CUBIC without HyStart).
    ///
    /// # Panics
    /// Panics on an invalid scenario.
    pub fn build_with_factory(scenario: &Scenario, factory: &CcaFactory<'_>) -> BuiltNetwork {
        BuiltNetwork::try_build_with_factory(scenario, factory).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`BuiltNetwork::build_with_factory`], surfacing validation errors.
    pub fn try_build_with_factory(
        scenario: &Scenario,
        factory: &CcaFactory<'_>,
    ) -> Result<BuiltNetwork, ScenarioError> {
        BuiltNetwork::try_build_inner(scenario, factory, true)
    }

    /// Build without attaching the flow slab — the diagnostic
    /// configuration the digest-inertness differential test runs against
    /// the default build. Readers fall back to component-arena walks.
    pub fn try_build_detached(scenario: &Scenario) -> Result<BuiltNetwork, ScenarioError> {
        BuiltNetwork::try_build_inner(
            scenario,
            &|_, kind, mss, seed| make_cca(kind, mss, seed),
            false,
        )
    }

    fn try_build_inner(
        scenario: &Scenario,
        factory: &CcaFactory<'_>,
        attach_slab: bool,
    ) -> Result<BuiltNetwork, ScenarioError> {
        scenario.validate()?;
        let mut sim = Simulator::new(scenario.seed);
        let rng_factory = sim.rng();

        let topology = scenario.topology_description();
        // Per-link AQM: the link spec's override, else the scenario-wide
        // choice. Drop-tail keeps the link's built-in queue — the
        // digest-identical legacy path.
        let built = instantiate(&topology, &mut sim, |i, spec| {
            let kind = spec.aqm.unwrap_or(scenario.aqm);
            (kind != AqmKind::DropTail).then(|| {
                kind.build(
                    spec.buffer_bytes,
                    spec.rate,
                    scenario.ecn,
                    rng_factory.derive_seed("aqm", i as u64),
                )
            })
        })?;
        let link = built.links[built.primary];

        if scenario.trace.enabled {
            let cfg = &scenario.trace;
            for (i, &id) in built.links.iter().enumerate() {
                sim.component_mut::<Link>(id).enable_trace(
                    QueueRecorder::new(
                        cfg.policy,
                        cfg.queue_budget(),
                        cfg.queue_sample_every,
                        rng_factory.derive_seed("trace-queue", i as u64),
                    )
                    .with_hop(built.hop_index[i]),
                );
            }
        }
        if !scenario.fault.is_empty() {
            // Faults get their own RNG stream so the same scenario with
            // and without a plan keeps identical jitter/CCA randomness.
            // Impairments target the primary bottleneck only.
            let injector =
                LinkFaultInjector::new(&scenario.fault, rng_factory.derive_seed("fault", 0));
            if let Some(first) = injector.next_action_at() {
                sim.schedule(first, link, Msg::Timer(TimerToken::pack(FAULT_TICK, 0)));
            }
            sim.component_mut::<Link>(link).enable_faults(injector);
        }

        if scenario.tuning.tx_burst > 1 {
            for &id in &built.links {
                sim.component_mut::<Link>(id)
                    .set_tx_burst(scenario.tuning.tx_burst);
            }
        }

        let endpoint_base = built.links.len() + built.routers.len();
        let n = scenario.flow_count() as usize;
        let slab = attach_slab.then(|| shared_with_capacity(n));
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        let mut flow_cca = Vec::with_capacity(n);
        let mut flow_rtt = Vec::with_capacity(n);
        let mut start_times = Vec::with_capacity(n);

        let mut flow: u32 = 0;
        for group in &scenario.flows {
            for _ in 0..group.count {
                // Ids are sequential: sender then receiver for each flow,
                // right after the links and routers.
                let sender_id = ComponentId::from_raw(endpoint_base + 2 * flow as usize);
                let receiver_id = ComponentId::from_raw(endpoint_base + 1 + 2 * flow as usize);

                let seed = rng_factory.derive_seed("cca", flow as u64);
                let cca = factory(flow, group.cca, scenario.mss, seed);
                let cfg = SenderConfig {
                    flow: FlowId(flow),
                    mss: scenario.mss,
                    receiver: receiver_id,
                    first_hop: built.first_hop[flow as usize],
                    data_limit: None, // infinite sources, as in the paper
                    ecn: scenario.ecn,
                };
                let actual_sender = sim.add_component(Sender::new(cfg, cca));
                assert_eq!(actual_sender, sender_id, "sender id prediction");
                if scenario.trace.enabled {
                    let tc = &scenario.trace;
                    sim.component_mut::<Sender>(sender_id)
                        .enable_trace(FlowRecorder::new(
                            flow,
                            tc.policy,
                            tc.flow_budget(scenario.flow_count()),
                            rng_factory.derive_seed("trace", flow as u64),
                        ));
                }
                let actual_receiver = sim.add_component(Receiver::new(
                    FlowId(flow),
                    sender_id,
                    group.base_rtt,
                    scenario.mss,
                ));
                assert_eq!(actual_receiver, receiver_id, "receiver id prediction");
                if let Some(hop) = built.ack_first_hop[flow as usize] {
                    // Asymmetric topology: ACKs traverse the reverse-path
                    // link(s) instead of being delivered directly.
                    sim.component_mut::<Receiver>(receiver_id)
                        .set_ack_first_hop(hop);
                }
                if scenario.tuning.delack_segments != ccsim_tcp::receiver::DELACK_SEGMENTS {
                    sim.component_mut::<Receiver>(receiver_id)
                        .set_delack_segments(scenario.tuning.delack_segments);
                }
                if let Some(slab) = &slab {
                    // Flows are inserted in flow order into an empty slab,
                    // so slot == flow id (asserted). Attach syncs each
                    // row from the endpoint's live state.
                    let key = slab.borrow_mut().insert(HotRow::default());
                    assert_eq!(key.slot(), flow, "slab slot == flow id");
                    sim.component_mut::<Sender>(sender_id)
                        .attach_slab(slab.clone(), key);
                    sim.component_mut::<Receiver>(receiver_id)
                        .attach_slab(slab.clone(), key);
                }

                // Start jitter: uniform in [0, start_jitter).
                let start = if scenario.start_jitter.is_zero() {
                    SimTime::ZERO
                } else {
                    let mut rng = rng_factory.stream("start", flow as u64);
                    SimTime::from_nanos(rng.gen_range(0..scenario.start_jitter.as_nanos()))
                };
                sim.schedule(start, sender_id, start_msg());

                senders.push(sender_id);
                receivers.push(receiver_id);
                flow_cca.push(group.cca);
                flow_rtt.push(group.base_rtt);
                start_times.push(start);
                flow += 1;
            }
        }

        Ok(BuiltNetwork {
            sim,
            link,
            links: built.links,
            routers: built.routers,
            topology,
            hop_index: built.hop_index,
            senders,
            receivers,
            flow_cca,
            flow_rtt,
            start_times,
            slab,
        })
    }

    /// Number of flows.
    pub fn flow_count(&self) -> usize {
        self.senders.len()
    }

    /// Cumulative delivered bytes for every flow (receiver-side).
    pub fn per_flow_delivered(&self) -> Vec<u64> {
        let mut out = Vec::new();
        self.per_flow_delivered_into(&mut out);
        out
    }

    /// Fill `out` with cumulative delivered bytes for every flow,
    /// reusing its capacity — the per-slice snapshot path. With the slab
    /// attached this is one dense column copy; detached builds fall back
    /// to walking the receiver components.
    pub fn per_flow_delivered_into(&self, out: &mut Vec<u64>) {
        out.clear();
        if let Some(slab) = &self.slab {
            out.extend_from_slice(slab.borrow().delivered_prefix(self.flow_count()));
            return;
        }
        out.extend(
            self.receivers
                .iter()
                .map(|&id| self.sim.component::<Receiver>(id).delivered_bytes()),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::FlowGroup;
    use ccsim_sim::SimDuration;
    use ccsim_topo::TopologyKind;

    fn tiny_scenario() -> Scenario {
        Scenario::edge_scale()
            .flows(vec![
                FlowGroup::new(CcaKind::Reno, 3, SimDuration::from_millis(20)),
                FlowGroup::new(CcaKind::Bbr, 2, SimDuration::from_millis(100)),
            ])
            .seed(7)
    }

    #[test]
    fn builds_expected_component_layout() {
        let net = BuiltNetwork::build(&tiny_scenario());
        assert_eq!(net.flow_count(), 5);
        assert_eq!(net.link, ComponentId::from_raw(0));
        assert_eq!(net.senders[0], ComponentId::from_raw(1));
        assert_eq!(net.receivers[0], ComponentId::from_raw(2));
        assert_eq!(net.senders[4], ComponentId::from_raw(9));
        assert_eq!(net.flow_cca[3], CcaKind::Bbr);
        assert_eq!(net.flow_rtt[0], SimDuration::from_millis(20));
        assert_eq!(net.flow_rtt[4], SimDuration::from_millis(100));
    }

    #[test]
    fn start_times_fall_within_jitter_window() {
        let s = tiny_scenario();
        let net = BuiltNetwork::build(&s);
        for &t in &net.start_times {
            assert!(t < SimTime::ZERO + s.start_jitter);
        }
        // With 5 flows and a 2 s window, starts should not all collide.
        let distinct: std::collections::BTreeSet<_> = net.start_times.iter().collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn same_seed_same_start_times() {
        let a = BuiltNetwork::build(&tiny_scenario());
        let b = BuiltNetwork::build(&tiny_scenario());
        assert_eq!(a.start_times, b.start_times);
        let c = BuiltNetwork::build(&tiny_scenario().seed(8));
        assert_ne!(a.start_times, c.start_times);
    }

    #[test]
    fn delivered_counts_start_at_zero() {
        let net = BuiltNetwork::build(&tiny_scenario());
        assert_eq!(net.per_flow_delivered(), vec![0; 5]);
    }

    #[test]
    fn flows_actually_transfer_data() {
        let mut net = BuiltNetwork::build(&tiny_scenario());
        net.sim.run_until(SimTime::from_secs(5));
        let delivered = net.per_flow_delivered();
        for (i, &d) in delivered.iter().enumerate() {
            assert!(d > 0, "flow {i} delivered nothing");
        }
    }

    #[test]
    fn single_bottleneck_layout_is_unchanged_by_the_topology_layer() {
        let net = BuiltNetwork::build(&tiny_scenario());
        assert_eq!(net.links, vec![ComponentId::from_raw(0)]);
        assert!(net.routers.is_empty());
        assert_eq!(net.link, ComponentId::from_raw(0));
        assert_eq!(net.hop_index, vec![0]);
        assert_eq!(net.topology.kind, TopologyKind::SingleBottleneck);
    }

    #[test]
    fn parking_lot_places_endpoints_after_links_and_routers() {
        let net = BuiltNetwork::build(&tiny_scenario().topology(TopologyKind::ParkingLot(3)));
        assert_eq!(net.links.len(), 3);
        assert_eq!(net.routers.len(), 2);
        // Primary bottleneck is the first chained link.
        assert_eq!(net.link, ComponentId::from_raw(0));
        // Endpoints follow the 3 links + 2 routers.
        assert_eq!(net.senders[0], ComponentId::from_raw(5));
        assert_eq!(net.receivers[0], ComponentId::from_raw(6));
        assert_eq!(net.senders[4], ComponentId::from_raw(13));
    }

    #[test]
    fn every_topology_kind_transfers_data_end_to_end() {
        for kind in [
            TopologyKind::Dumbbell,
            TopologyKind::ParkingLot(3),
            TopologyKind::DumbbellAsym,
        ] {
            let mut net = BuiltNetwork::build(&tiny_scenario().topology(kind));
            net.sim.run_until(SimTime::from_secs(5));
            for (i, &d) in net.per_flow_delivered().iter().enumerate() {
                assert!(d > 0, "{kind:?} flow {i} delivered nothing");
            }
        }
    }
}
