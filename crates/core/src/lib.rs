//! # ccsim-core — the at-scale CCA measurement harness
//!
//! The paper's experimental apparatus as a library:
//!
//! * [`scenario`] — EdgeScale/CoreScale settings and flow-group builders.
//! * [`build`] — dumbbell topology wiring.
//! * [`runner`] — warm-up, snapshotting, the convergence stopping rule,
//!   and window-scoped metric collection.
//! * [`observe`] — self-observability: metric attachment, Prometheus
//!   dumps, and per-run provenance manifests ([`run_observed`]).
//! * [`outcome`] — run results with the paper's derived quantities (JFI,
//!   group shares, Mathis observations, loss-to-halving ratios).
//! * [`experiments`] — one function per table/figure of the paper, plus
//!   the parameter grids they sweep.
//! * [`report`] — plain-text table rendering for the bench binaries and
//!   EXPERIMENTS.md.

pub mod build;
pub mod checkpoint;
pub mod codec;
pub mod crash;
pub mod error;
pub mod experiments;
pub mod observe;
pub mod outcome;
pub mod report;
pub mod runner;
pub mod scenario;
mod watchdog;

pub use build::BuiltNetwork;
pub use ccsim_resume::{Checkpoint, ResumeError};
pub use ccsim_timeline::serve::{serve, LiveState, ServeHandle};
pub use ccsim_timeline::{Timeline, TimelineConfig, TimelineSummary};
pub use checkpoint::{bisect_divergence, slice_boundaries, BisectOutcome, DivergencePoint};
pub use codec::{scenario_from_json, scenario_to_json};
pub use crash::{
    panic_message, run_guarded, run_guarded_with_progress, BundleError, CrashBundle, GuardOptions,
    GuardedFailure,
};
pub use error::SimError;
pub use observe::{
    run_observed, run_observed_with_progress, try_run_observed, try_run_observed_checkpointed,
    try_run_observed_live, try_run_observed_with, try_run_observed_with_progress, ObserveOptions,
    ObservedRun, RunInstruments,
};
pub use outcome::{BottleneckMetrics, PInterpretation, RunOutcome};
pub use runner::{
    run, run_to_checkpoint, run_with_progress, scenario_from_checkpoint, try_resume_run,
    try_resume_run_with_progress, try_run, try_run_with_checkpoint, try_run_with_progress,
    Progress,
};
pub use scenario::{
    ConvergenceRule, Fidelity, FlowGroup, Scenario, ScenarioError, Tuning, DEFAULT_MSS,
};

/// Run several scenarios in parallel, preserving input order.
///
/// Each scenario gets its own simulator on its own thread (the simulator is
/// single-threaded by design; experiments parallelize across runs).
pub fn run_all(scenarios: &[Scenario]) -> Vec<RunOutcome> {
    run_all_with_progress(scenarios, |_, _| {})
}

/// [`run_all`] with a per-scenario completion callback.
///
/// `on_done(index, outcome)` fires from the worker thread that finished
/// scenario `index`, as soon as it completes (not in input order). Long
/// sweeps use this to report progress instead of going silent for minutes;
/// the callback must be cheap and thread-safe.
pub fn run_all_with_progress<F>(scenarios: &[Scenario], on_done: F) -> Vec<RunOutcome>
where
    F: Fn(usize, &RunOutcome) + Sync,
{
    if scenarios.len() <= 1 {
        return scenarios
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let o = run(s);
                on_done(i, &o);
                o
            })
            .collect();
    }
    let mut results: Vec<Option<RunOutcome>> = Vec::new();
    results.resize_with(scenarios.len(), || None);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results_mutex = std::sync::Mutex::new(&mut results);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(scenarios.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= scenarios.len() {
                    break;
                }
                let outcome = run(&scenarios[i]);
                on_done(i, &outcome);
                results_mutex.lock().unwrap()[i] = Some(outcome);
            });
        }
    });
    results
        .into_iter()
        .map(|o| o.expect("every scenario produced an outcome"))
        .collect()
}
