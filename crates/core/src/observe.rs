//! Self-observability for runs: metric attachment, harvesting, and the
//! per-run artifacts (Prometheus dump + manifest).
//!
//! An *observed* run is an ordinary run with instruments attached:
//! registry-backed metric handles on the bottleneck link and the senders,
//! an event classifier on the engine, and wall-clock profiling spans
//! around the runner's phases. Observation is **provably inert** — the
//! enablement lives here, outside [`Scenario`], so the simulated
//! configuration is bit-identical with and without it, and the metric
//! primitives only touch their own atomics, never simulation state. The
//! integration tests assert that a metrics-on run and a metrics-off run
//! of the same (scenario, seed) produce identical [`RunOutcome`] digests.
//!
//! Metric families emitted per run:
//!
//! | family | kind | meaning |
//! |---|---|---|
//! | `ccsim_events_total{kind}` | counter | engine events by data/ack/timer |
//! | `ccsim_events_pending_peak` | gauge | event-queue high-water mark |
//! | `ccsim_events_per_sec` | gauge | engine throughput, events/dispatch-sec |
//! | `ccsim_sim_wall_ratio` | gauge | sim-seconds per wall-second |
//! | `ccsim_slice_wall_nanos` | histogram | wall time per measurement slice |
//! | `ccsim_link_queue_bytes` | histogram | queue occupancy at arrivals |
//! | `ccsim_link_drop_burst_pkts` | histogram | consecutive-drop burst sizes |
//! | `ccsim_link_busy_nanos_total` | counter | serializer busy time (sim ns) |
//! | `ccsim_tcp_rtos_total` | counter | genuine RTOs, all flows |
//! | `ccsim_tcp_fast_recoveries_total` | counter | recovery entries, all flows |
//! | `ccsim_tcp_pacing_stalls_total` | counter | pacing-gate deferrals |
//! | `ccsim_phase_wall_nanos_total{phase}` | counter | runner phase wall time |
//! | `ccsim_phase_calls_total{phase}` | counter | runner phase span counts |
//!
//! With [`ObserveOptions::profile`] on, the `ccsim-prof` families join
//! the dump as well (`ccsim_prof_events_total{class,kind}`, timer-wheel
//! counters, `ccsim_mem_bytes{pool}` — see
//! [`ccsim_telemetry::export_profile_into`]).

use crate::error::SimError;
use crate::outcome::RunOutcome;
use crate::runner::{run_internal_ctl, Progress, RunCtl};
use crate::scenario::Scenario;
use ccsim_net::link::LinkMetrics;
use ccsim_net::msg::Msg;
use ccsim_resume::Checkpoint;
use ccsim_sim::jsonfmt::safe_rate;
use ccsim_sim::SimTime;
use ccsim_tcp::sender::SenderMetrics;
use ccsim_telemetry::manifest::{fnv1a_64, ManifestBottleneck, ManifestTimeline, RunManifest};
use ccsim_telemetry::prometheus::write_exposition;
use ccsim_telemetry::registry::{Counter, Gauge, Histogram, Registry};
use ccsim_telemetry::Profiler;
use ccsim_timeline::export::to_jsonl;
use ccsim_timeline::serve::LiveState;
use ccsim_timeline::{Timeline, TimelineConfig};
use std::sync::Arc;

/// Event classes for `ccsim_events_total{kind=...}`.
pub(crate) const EVENT_KINDS: [&str; 3] = ["data", "ack", "timer"];

/// Component classes for the profiler's event-attribution rows, in the
/// order the class table assigns them (see `comp_class_table`).
pub(crate) const COMPONENT_CLASSES: [&str; 4] = ["link", "router", "sender", "receiver"];

/// Classify an engine message into an [`EVENT_KINDS`] index. Installed on
/// the engine (which cannot depend on this crate) as a plain fn pointer.
pub(crate) fn classify_msg(m: &Msg) -> usize {
    match m {
        Msg::Packet(p) if p.is_data() => 0,
        Msg::Packet(_) => 1,
        Msg::Timer(_) => 2,
    }
}

/// Opt-in knobs for an observed run, beyond the always-on instruments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObserveOptions {
    /// Attach the `ccsim-prof` event-attribution profiler to the engine.
    /// Digest-inert: the class-table lookup and strided `Instant` samples
    /// never touch simulation state.
    pub profile: bool,
    /// Sampling stride for the profiler's wall-clock samples: one
    /// `Instant::now()` per `stride` dispatched events. The stride is
    /// fixed, so *which* events sample is a pure function of the event
    /// stream.
    pub profile_stride: u64,
    /// Capture a windowed timeline (per-flow / per-link / aggregate
    /// series at the configured window granularity). Digest-inert: the
    /// sampler only reads component state at slice boundaries.
    pub timeline: Option<TimelineConfig>,
}

impl Default for ObserveOptions {
    fn default() -> ObserveOptions {
        ObserveOptions {
            profile: false,
            profile_stride: ccsim_prof::DEFAULT_STRIDE,
            timeline: None,
        }
    }
}

impl ObserveOptions {
    /// Options with profiling on at the default stride.
    pub fn profiled() -> ObserveOptions {
        ObserveOptions {
            profile: true,
            ..ObserveOptions::default()
        }
    }

    /// Options with timeline capture on at the default window/budget.
    pub fn timelined() -> ObserveOptions {
        ObserveOptions {
            timeline: Some(TimelineConfig::default()),
            ..ObserveOptions::default()
        }
    }
}

/// Everything attached to one observed run: the registry the metrics
/// live in, the profiler for phase spans, and the pre-registered handles
/// the runner wires into components (handles are created up front so the
/// hot path never performs a name lookup).
pub struct RunInstruments {
    /// The metric registry for this run.
    pub registry: Registry,
    /// Wall-clock profiling spans (build / warmup / measure / collect /
    /// dispatch).
    pub profiler: Profiler,
    /// Observation knobs this run was started with.
    pub options: ObserveOptions,
    pub(crate) events_kind: [Arc<Counter>; 3],
    pub(crate) pending_peak: Arc<Gauge>,
    pub(crate) events_per_sec: Arc<Gauge>,
    pub(crate) sim_wall_ratio: Arc<Gauge>,
    pub(crate) slice_wall: Arc<Histogram>,
    pub(crate) link: LinkMetrics,
    pub(crate) sender: SenderMetrics,
    /// Filled by the runner's collection phase when profiling is on
    /// (everything except `dispatch_nanos`, stamped afterwards).
    pub(crate) profile_out: std::cell::RefCell<Option<ccsim_prof::Profile>>,
    /// Encoded size of the checkpoint this run captured, if any — feeds
    /// the manifest's `checkpoint_bytes` and, under profiling, the
    /// `resume/checkpoint` memory pool.
    pub(crate) checkpoint_bytes: std::cell::Cell<u64>,
    /// The windowed sampler, created by the runner once the network is
    /// built (it needs the flow/link counts) when
    /// [`ObserveOptions::timeline`] is set.
    pub(crate) timeline: std::cell::RefCell<Option<Timeline>>,
}

impl RunInstruments {
    /// Register every metric family an observed run emits and return the
    /// handles.
    pub fn new() -> RunInstruments {
        RunInstruments::with_options(ObserveOptions::default())
    }

    /// [`RunInstruments::new`] with explicit [`ObserveOptions`].
    pub fn with_options(options: ObserveOptions) -> RunInstruments {
        let registry = Registry::new();
        let events_kind = EVENT_KINDS.map(|kind| {
            registry.counter_with(
                "ccsim_events_total",
                "Engine events processed, by message kind",
                &[("kind", kind)],
            )
        });
        let pending_peak = registry.gauge(
            "ccsim_events_pending_peak",
            "High-water mark of the engine's pending-event queue",
        );
        let events_per_sec = registry.gauge(
            "ccsim_events_per_sec",
            "Engine events processed per wall-clock second",
        );
        let sim_wall_ratio = registry.gauge(
            "ccsim_sim_wall_ratio",
            "Simulated seconds per wall-clock second",
        );
        let slice_wall = registry.histogram(
            "ccsim_slice_wall_nanos",
            "Wall-clock nanoseconds per measurement slice",
        );
        let link = LinkMetrics {
            queue_bytes: registry.histogram(
                "ccsim_link_queue_bytes",
                "Bottleneck queue occupancy in bytes, sampled at packet arrivals",
            ),
            drop_burst_pkts: registry.histogram(
                "ccsim_link_drop_burst_pkts",
                "Sizes of consecutive-drop bursts at the bottleneck, in packets",
            ),
            busy_nanos: registry.counter(
                "ccsim_link_busy_nanos_total",
                "Simulated nanoseconds the bottleneck serializer was busy",
            ),
        };
        let sender = SenderMetrics {
            rtos: registry.counter(
                "ccsim_tcp_rtos_total",
                "Genuine retransmission timeouts across all flows",
            ),
            fast_recoveries: registry.counter(
                "ccsim_tcp_fast_recoveries_total",
                "Fast-recovery episode entries across all flows",
            ),
            pacing_stalls: registry.counter(
                "ccsim_tcp_pacing_stalls_total",
                "Transmissions deferred by the pacing gate across all flows",
            ),
        };
        RunInstruments {
            registry,
            profiler: Profiler::new(),
            options,
            events_kind,
            pending_peak,
            events_per_sec,
            sim_wall_ratio,
            slice_wall,
            link,
            sender,
            profile_out: std::cell::RefCell::new(None),
            checkpoint_bytes: std::cell::Cell::new(0),
            timeline: std::cell::RefCell::new(None),
        }
    }
}

impl Default for RunInstruments {
    fn default() -> Self {
        RunInstruments::new()
    }
}

/// The result of an observed run: the outcome itself plus the two
/// self-observability artifacts.
#[derive(Debug)]
pub struct ObservedRun {
    /// The ordinary run result (identical to an unobserved run's).
    pub outcome: RunOutcome,
    /// Provenance manifest for this run.
    pub manifest: RunManifest,
    /// Prometheus text-exposition dump of every metric.
    pub prometheus: String,
    /// The captured timeline when [`ObserveOptions::timeline`] was set
    /// (its summary is also embedded in the manifest).
    pub timeline: Option<Timeline>,
}

/// FNV-1a digest of a scenario's full configuration (over its `Debug`
/// representation, which covers every field at full precision).
pub fn scenario_digest(scenario: &Scenario) -> u64 {
    fnv1a_64(format!("{scenario:?}").as_bytes())
}

/// Run `scenario` with instruments attached and produce the outcome plus
/// the Prometheus dump and run manifest. See the module docs for the
/// inertness guarantee.
///
/// # Panics
/// Panics on any [`SimError`] — [`try_run_observed`] reports it instead.
pub fn run_observed(scenario: &Scenario) -> ObservedRun {
    run_observed_with_progress(scenario, |_| {})
}

/// [`run_observed`], surfacing failures as typed errors.
pub fn try_run_observed(scenario: &Scenario) -> Result<ObservedRun, SimError> {
    try_run_observed_with_progress(scenario, |_| {})
}

/// [`run_observed`] with a progress callback, invoked after every
/// simulated slice (warm-up and measurement) with the fraction of
/// sim-time covered — feed it a
/// [`RunProgress`](ccsim_telemetry::RunProgress) for a live stderr line.
///
/// # Panics
/// Panics on any [`SimError`]; see [`try_run_observed_with_progress`].
pub fn run_observed_with_progress<F>(scenario: &Scenario, on_progress: F) -> ObservedRun
where
    F: FnMut(&Progress),
{
    try_run_observed_with_progress(scenario, on_progress).unwrap_or_else(|e| panic!("{e}"))
}

/// [`try_run_observed`] with a progress callback.
pub fn try_run_observed_with_progress<F>(
    scenario: &Scenario,
    on_progress: F,
) -> Result<ObservedRun, SimError>
where
    F: FnMut(&Progress),
{
    try_run_observed_with(scenario, ObserveOptions::default(), on_progress)
}

/// The full-control entry point: an observed run with explicit
/// [`ObserveOptions`] (`ccsim perf` and the campaign executor's
/// `--profile` path come through here with `profile: true`).
pub fn try_run_observed_with<F>(
    scenario: &Scenario,
    options: ObserveOptions,
    on_progress: F,
) -> Result<ObservedRun, SimError>
where
    F: FnMut(&Progress),
{
    let (obs, _) = try_run_observed_checkpointed(scenario, options, None, on_progress)?;
    Ok(obs)
}

/// An observed run that also captures a checkpoint at the first slice
/// boundary at or after `checkpoint_at` (when given). The checkpoint's
/// encoded size is stamped into the manifest and, when profiling is on,
/// into the `resume/checkpoint` memory pool.
pub fn try_run_observed_checkpointed<F>(
    scenario: &Scenario,
    options: ObserveOptions,
    checkpoint_at: Option<SimTime>,
    on_progress: F,
) -> Result<(ObservedRun, Option<Checkpoint>), SimError>
where
    F: FnMut(&Progress),
{
    try_run_observed_live(scenario, options, checkpoint_at, None, on_progress)
}

/// [`try_run_observed_checkpointed`] that additionally publishes live
/// snapshots into `live` as the run progresses: the Prometheus exposition
/// of the run's registry and (when timeline capture is on) the timeline
/// JSONL, both re-rendered at most ~4×/sec of wall time. The publisher
/// only *reads* instruments that are updated anyway, so serving is
/// digest-inert like every other observation layer.
pub fn try_run_observed_live<F>(
    scenario: &Scenario,
    options: ObserveOptions,
    checkpoint_at: Option<SimTime>,
    live: Option<Arc<LiveState>>,
    mut on_progress: F,
) -> Result<(ObservedRun, Option<Checkpoint>), SimError>
where
    F: FnMut(&Progress),
{
    let inst = RunInstruments::with_options(options);
    let wall_start = std::time::Instant::now();
    let mut checkpoint = None;
    let outcome = {
        let inst_ref = &inst;
        let live_ref = live.as_deref();
        let mut last_publish: Option<std::time::Instant> = None;
        let mut wrapped = |p: &Progress| {
            on_progress(p);
            if let Some(state) = live_ref {
                let wall_now = std::time::Instant::now();
                let due = last_publish
                    .is_none_or(|t| wall_now - t >= std::time::Duration::from_millis(250));
                if due {
                    last_publish = Some(wall_now);
                    state.publish_metrics(write_exposition(&inst_ref.registry));
                    if let Some(tl) = inst_ref.timeline.borrow().as_ref() {
                        state.publish_timeline(to_jsonl(tl));
                    }
                }
            }
        };
        run_internal_ctl(
            scenario,
            Some(&inst),
            &mut wrapped,
            RunCtl {
                checkpoint_at,
                ..RunCtl::default()
            },
            &mut checkpoint,
        )?
        .expect("non-stopping run always produces an outcome")
    };
    let wall_secs = wall_start.elapsed().as_secs_f64();

    let sim_secs = outcome.ended_at.as_secs_f64();
    // Engine throughput over *dispatch* time only: the runner wraps every
    // engine advance in a "dispatch" span, so build, snapshot
    // bookkeeping, and collection no longer dilute the figure.
    let dispatch_nanos = inst
        .profiler
        .stats()
        .iter()
        .find(|(label, _)| *label == "dispatch")
        .map_or(0, |(_, s)| s.total_nanos);
    let dispatch_secs = dispatch_nanos as f64 / 1e9;
    // `safe_rate` keeps both figures finite on zero-event or
    // sub-microsecond runs (dispatch span rounds to 0 ns).
    let events_per_sec = safe_rate(outcome.events_processed as f64, dispatch_secs);
    let sim_wall_ratio = safe_rate(sim_secs, wall_secs);
    inst.events_per_sec.set(events_per_sec);
    inst.sim_wall_ratio.set(sim_wall_ratio);
    inst.profiler.export_into(&inst.registry);

    let mut profile = inst.profile_out.borrow_mut().take();
    if let Some(p) = &mut profile {
        p.dispatch_nanos = dispatch_nanos;
        ccsim_telemetry::export_profile_into(p, &inst.registry);
    }

    let prometheus = write_exposition(&inst.registry);
    let timeline = inst.timeline.borrow_mut().take();
    let timeline_summary = timeline.as_ref().map(|tl| {
        let s = tl.summary();
        ManifestTimeline {
            window_secs: s.window_secs,
            rows: s.rows,
            retained: s.retained,
            evicted: s.evicted,
            flows_sampled: s.flows_sampled,
            series: s.series,
            alpha: s.alpha,
            time_to_alpha_fair: s.time_to_alpha_fair,
            final_jfi: s.final_jfi,
        }
    });
    if let Some(state) = &live {
        // Final publish so the endpoints show the completed run, not the
        // last throttled snapshot.
        state.publish_metrics(prometheus.clone());
        if let Some(tl) = &timeline {
            state.publish_timeline(to_jsonl(tl));
        }
    }
    let events_by_kind = EVENT_KINDS
        .iter()
        .zip(&inst.events_kind)
        .map(|(kind, counter)| (kind.to_string(), counter.get()))
        .collect();
    let bottlenecks = outcome
        .bottlenecks
        .iter()
        .map(|b| ManifestBottleneck {
            link: b.link,
            label: b.label.clone(),
            utilization: b.utilization,
            jfi: b.jfi,
            loss_rate: b.loss_rate,
            max_queue_bytes: b.max_queue_bytes,
            ce_marked_pkts: b.ce_marked_pkts,
        })
        .collect();
    let manifest = RunManifest {
        scenario: scenario.name.clone(),
        seed: scenario.seed,
        flows: scenario.flow_count(),
        config_digest: format!("{:016x}", scenario_digest(scenario)),
        outcome_digest: format!("{:016x}", outcome.digest()),
        sim_secs,
        wall_secs,
        dispatch_secs,
        sim_wall_ratio,
        events_processed: outcome.events_processed,
        events_per_sec,
        peak_queue_bytes: outcome.max_queue_bytes,
        peak_pending_events: inst.pending_peak.get() as u64,
        trace_bytes: outcome.trace.as_ref().map_or(0, |t| t.wire_bytes()),
        metric_bytes: prometheus.len() as u64,
        metric_series: inst.registry.len() as u64,
        converged: outcome.converged,
        checkpoint_bytes: inst.checkpoint_bytes.get(),
        events_by_kind,
        bottlenecks,
        profile,
        timeline: timeline_summary,
    };
    Ok((
        ObservedRun {
            outcome,
            manifest,
            prometheus,
            timeline,
        },
        checkpoint,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::FlowGroup;
    use ccsim_cca::CcaKind;
    use ccsim_sim::{Bandwidth, SimDuration};
    use ccsim_telemetry::validate_exposition;

    fn tiny(seed: u64) -> Scenario {
        let mut s = Scenario::edge_scale()
            .named("tiny")
            .flows(vec![FlowGroup::new(
                CcaKind::Reno,
                2,
                SimDuration::from_millis(20),
            )])
            .seed(seed);
        s.bottleneck = Bandwidth::from_mbps(10);
        s.buffer_bytes = 100_000;
        s.warmup = SimDuration::from_secs(1);
        s.duration = SimDuration::from_secs(4);
        s.start_jitter = SimDuration::from_millis(100);
        s.convergence = None;
        s
    }

    #[test]
    fn observed_run_emits_valid_artifacts() {
        let obs = run_observed(&tiny(5));
        validate_exposition(&obs.prometheus).unwrap();
        assert!(obs.prometheus.contains("ccsim_events_total{kind=\"data\"}"));
        assert!(obs.prometheus.contains("ccsim_link_queue_bytes_bucket"));
        assert!(obs.prometheus.contains("ccsim_phase_wall_nanos_total"));
        let m = &obs.manifest;
        assert_eq!(m.scenario, "tiny");
        assert_eq!(m.seed, 5);
        assert_eq!(m.flows, 2);
        assert_eq!(m.events_processed, obs.outcome.events_processed);
        assert!(m.events_processed > 0);
        assert!(m.peak_pending_events > 0);
        assert!(m.metric_series > 10);
        assert_eq!(m.metric_bytes, obs.prometheus.len() as u64);
        // Round-trip.
        let back = RunManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(&back, m);
    }

    #[test]
    fn event_kind_counts_sum_to_events_processed() {
        let obs = run_observed(&tiny(6));
        let total: u64 = EVENT_KINDS
            .iter()
            .map(|kind| {
                let line = format!("ccsim_events_total{{kind=\"{kind}\"}} ");
                obs.prometheus
                    .lines()
                    .find(|l| l.starts_with(&line))
                    .and_then(|l| l.split_whitespace().last())
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or(0)
            })
            .sum();
        assert_eq!(total, obs.outcome.events_processed);
    }

    #[test]
    fn metrics_are_inert_same_outcome_digest() {
        let plain = crate::runner::run(&tiny(7));
        let observed = run_observed(&tiny(7));
        assert_eq!(plain.to_json(), observed.outcome.to_json());
        assert_eq!(plain.digest(), observed.outcome.digest());
        assert_eq!(
            format!("{:016x}", plain.digest()),
            observed.manifest.outcome_digest
        );
    }

    #[test]
    fn config_digest_tracks_configuration() {
        assert_eq!(scenario_digest(&tiny(1)), scenario_digest(&tiny(1)));
        assert_ne!(scenario_digest(&tiny(1)), scenario_digest(&tiny(2)));
    }

    #[test]
    fn observed_manifest_carries_per_kind_event_counts() {
        let obs = run_observed(&tiny(8));
        let m = &obs.manifest;
        assert_eq!(m.events_by_kind.len(), EVENT_KINDS.len());
        let total: u64 = m.events_by_kind.iter().map(|(_, c)| c).sum();
        assert_eq!(total, m.events_processed);
        assert!(m.dispatch_secs > 0.0);
        assert!(m.dispatch_secs <= m.wall_secs);
        // events_per_sec is events over dispatch time, not total wall.
        let implied = m.events_processed as f64 / m.dispatch_secs;
        assert!((implied - m.events_per_sec).abs() / implied < 1e-9);
        assert!(!m.eps_by_kind().is_empty());
    }

    #[test]
    fn profiling_is_digest_inert_and_fills_the_profile() {
        let plain = run_observed(&tiny(9));
        let profiled = try_run_observed_with(&tiny(9), ObserveOptions::profiled(), |_| {}).unwrap();
        // Byte-identical outcome with the profiler attached.
        assert_eq!(plain.outcome.to_json(), profiled.outcome.to_json());
        assert_eq!(
            plain.manifest.outcome_digest,
            profiled.manifest.outcome_digest
        );
        assert!(plain.manifest.profile.is_none());

        let p = profiled.manifest.profile.as_ref().unwrap();
        assert_eq!(p.events.total(), profiled.outcome.events_processed);
        assert_eq!(p.flows, 2);
        assert!(p.dispatch_nanos > 0);
        assert!(p.memory_total_bytes() > 0);
        let pools: Vec<&str> = p.memory.iter().map(|g| g.name.as_str()).collect();
        assert_eq!(
            pools,
            [
                "net/link_queues",
                "sim/scratch",
                "sim/wheel",
                "tcp/senders",
                "tcp/slab",
                "trace/rings"
            ]
        );
        // The slab gauge tracks the dense flow-state columns.
        assert!(
            p.memory
                .iter()
                .find(|g| g.name == "tcp/slab")
                .unwrap()
                .bytes
                > 0,
            "slab is attached on every runner build"
        );
        // Tracing was off, so the rings pool is empty but present.
        assert_eq!(
            p.memory
                .iter()
                .find(|g| g.name == "trace/rings")
                .unwrap()
                .bytes,
            0
        );
        // The profile's families joined the Prometheus dump.
        assert!(profiled.prometheus.contains("ccsim_prof_events_total"));
        assert!(profiled
            .prometheus
            .contains("ccsim_mem_bytes{pool=\"tcp/senders\"}"));
        // Manifest round-trips with the profile embedded.
        let back = RunManifest::from_json(&profiled.manifest.to_json()).unwrap();
        assert_eq!(&back, &profiled.manifest);
    }

    #[test]
    fn timeline_is_digest_inert_and_fills_the_summary() {
        let plain = run_observed(&tiny(11));
        let timelined =
            try_run_observed_with(&tiny(11), ObserveOptions::timelined(), |_| {}).unwrap();
        // Byte-identical outcome with the sampler attached.
        assert_eq!(plain.outcome.to_json(), timelined.outcome.to_json());
        assert_eq!(
            plain.manifest.outcome_digest,
            timelined.manifest.outcome_digest
        );
        assert!(plain.timeline.is_none());
        assert!(plain.manifest.timeline.is_none());

        let tl = timelined.timeline.as_ref().unwrap();
        // 1 s warm-up + 4 s duration at the default 1 s window: one
        // warm-up row plus four measurement rows.
        assert_eq!(tl.rows().pushed(), 5);
        assert_eq!(tl.sampled_flows(), 2);
        let s = timelined.manifest.timeline.as_ref().unwrap();
        assert_eq!(s.rows, 5);
        assert_eq!(s.retained, 5);
        assert_eq!(s.flows_sampled, 2);
        assert_eq!(s.series as usize, tl.columns().len());
        // Manifest round-trips with the timeline section embedded.
        let back = RunManifest::from_json(&timelined.manifest.to_json()).unwrap();
        assert_eq!(&back, &timelined.manifest);
        // The spans tile the run exactly: measurement rows (after the
        // warm-up close at 1 s) sum to the 4 s measurement phase.
        let spans: f64 = tl.rows().spans().skip(1).sum();
        assert!((spans - 4.0).abs() < 1e-9, "spans {spans}");
    }

    #[test]
    fn live_serving_publishes_both_endpoints() {
        use std::sync::Arc;
        let live = Arc::new(LiveState::new());
        let (obs, _) = try_run_observed_live(
            &tiny(12),
            ObserveOptions::timelined(),
            None,
            Some(live.clone()),
            |_| {},
        )
        .unwrap();
        // The final publish leaves the completed artifacts behind.
        assert_eq!(live.metrics_snapshot(), obs.prometheus);
        let jsonl = live.timeline_snapshot();
        assert!(jsonl.starts_with("{\"timeline\":"), "{jsonl}");
        assert_eq!(
            jsonl.lines().count() as u64,
            1 + obs.timeline.as_ref().unwrap().rows().len() as u64
        );
    }

    #[test]
    fn same_seed_profiles_are_identical_after_normalization() {
        let a = try_run_observed_with(&tiny(10), ObserveOptions::profiled(), |_| {}).unwrap();
        let b = try_run_observed_with(&tiny(10), ObserveOptions::profiled(), |_| {}).unwrap();
        let (pa, pb) = (
            a.manifest.profile.as_ref().unwrap().normalized(),
            b.manifest.profile.as_ref().unwrap().normalized(),
        );
        // Everything but wall time — counts, sample counts, wheel
        // internals, memory gauges — is a pure function of the event
        // stream, so the normalized JSON is byte-identical.
        assert_eq!(pa.to_json(), pb.to_json());
    }
}
