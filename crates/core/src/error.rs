//! The typed run-failure hierarchy.
//!
//! [`SimError`] is what [`crate::runner::try_run`] returns instead of
//! panicking: every way a run can fail — invalid configuration, an engine
//! dispatch error, a watchdog invariant violation, or a caught panic from
//! [`crate::crash::run_guarded`] — is a variant with enough structure for
//! crash-bundle capture and for callers to branch on. The legacy
//! panicking entry points ([`crate::runner::run`] and friends) are thin
//! wrappers that format the same error.

use crate::scenario::ScenarioError;
use ccsim_fault::WatchdogReport;
use ccsim_resume::ResumeError;
use ccsim_sim::EngineError;
use ccsim_trace::RunTrace;
use std::fmt;

/// A failed simulation run.
#[derive(Debug)]
pub enum SimError {
    /// The scenario failed validation before the network was built.
    Scenario(ScenarioError),
    /// The engine rejected an event (e.g. dispatch to an unknown
    /// component).
    Engine(EngineError),
    /// The runtime invariant watchdog detected a violation and aborted
    /// the run. Carries the full report and, when the scenario had
    /// tracing enabled, the flight-recorder contents up to the abort —
    /// the trace tail that goes into a crash bundle.
    Invariant {
        report: WatchdogReport,
        trace: Option<RunTrace>,
    },
    /// A panic caught by the crash guard ([`crate::crash::run_guarded`]).
    Panic { message: String },
    /// A checkpoint could not be taken, loaded, or applied (bad magic,
    /// version skew, truncation, digest mismatch, or a run that ended
    /// before the requested checkpoint instant).
    Resume(ResumeError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Scenario(e) => write!(f, "invalid scenario: {e}"),
            SimError::Engine(e) => write!(f, "engine error: {e}"),
            SimError::Invariant { report, .. } => {
                write!(f, "invariant violation — {report}")
            }
            SimError::Panic { message } => write!(f, "run panicked: {message}"),
            SimError::Resume(e) => write!(f, "checkpoint error: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Scenario(e) => Some(e),
            SimError::Engine(e) => Some(e),
            SimError::Resume(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ScenarioError> for SimError {
    fn from(e: ScenarioError) -> Self {
        SimError::Scenario(e)
    }
}

impl From<EngineError> for SimError {
    fn from(e: EngineError) -> Self {
        SimError::Engine(e)
    }
}

impl From<ResumeError> for SimError {
    fn from(e: ResumeError) -> Self {
        SimError::Resume(e)
    }
}

impl SimError {
    /// Short machine-readable class tag, used by crash-bundle manifests.
    pub fn class(&self) -> &'static str {
        match self {
            SimError::Scenario(_) => "scenario",
            SimError::Engine(_) => "engine",
            SimError::Invariant { .. } => "invariant",
            SimError::Panic { .. } => "panic",
            SimError::Resume(_) => "resume",
        }
    }

    /// The watchdog report, when this error carries one.
    pub fn watchdog_report(&self) -> Option<&WatchdogReport> {
        match self {
            SimError::Invariant { report, .. } => Some(report),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_fault::{InvariantKind, InvariantViolation};
    use ccsim_sim::SimTime;

    #[test]
    fn displays_are_informative() {
        let e = SimError::from(ScenarioError::NoFlows);
        assert_eq!(e.to_string(), "invalid scenario: scenario has no flows");
        assert_eq!(e.class(), "scenario");

        let report = WatchdogReport {
            checks_run: 2,
            violations: vec![InvariantViolation {
                at: SimTime::from_secs(3),
                kind: InvariantKind::QueueBound,
                detail: "backlog 10 > buffer 5".into(),
            }],
        };
        let e = SimError::Invariant {
            report,
            trace: None,
        };
        assert!(e.to_string().contains("queue_bound"));
        assert_eq!(e.class(), "invariant");
        assert_eq!(e.watchdog_report().unwrap().violations.len(), 1);

        let e = SimError::Panic {
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "run panicked: boom");
    }

    #[test]
    fn error_sources_chain() {
        use std::error::Error;
        let e = SimError::from(ScenarioError::ZeroMss);
        assert_eq!(e.source().unwrap().to_string(), "zero MSS");
    }
}
