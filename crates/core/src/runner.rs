//! The experiment runner: warm-up, snapshotting, convergence, collection.
//!
//! Follows the paper's methodology (§3.2):
//!
//! 1. flows start at jittered times, all before the warm-up boundary;
//! 2. everything before the warm-up boundary is excluded — queue counters
//!    are reset and per-flow counter baselines snapshotted there;
//! 3. the simulation advances in snapshot slices; after each slice the
//!    tracker records cumulative per-flow delivered bytes;
//! 4. the run stops at the horizon, or earlier once the headline metrics
//!    (aggregate throughput *and* JFI) change < tolerance between
//!    consecutive windows — the paper's "< 1% over 20 minutes" rule.

use crate::build::BuiltNetwork;
use crate::checkpoint::{self, HarnessRef, RestoredHarness};
use crate::error::SimError;
use crate::observe::{classify_msg, RunInstruments, COMPONENT_CLASSES, EVENT_KINDS};
use crate::outcome::{BottleneckMetrics, RunOutcome};
use crate::scenario::Scenario;
use crate::watchdog::Watchdog;
use ccsim_analysis::{jain_fairness_index, jain_fairness_subset};
use ccsim_net::link::{Link, LinkStats};
use ccsim_net::AqmKind;
use ccsim_resume::{Checkpoint, ResumeError};
use ccsim_sim::{SimTime, VecPool};
use ccsim_tcp::sender::Sender;
use ccsim_telemetry::{FlowMetrics, ThroughputTracker};
use ccsim_timeline::{FlowPoint, LinkPoint, Timeline};
use ccsim_trace::{RunTrace, TraceMeta};

/// Numeric sender-counter baseline captured at the warm-up boundary.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SenderBaseline {
    pub(crate) data_pkts_sent: u64,
    pub(crate) retransmits: u64,
    pub(crate) rtos: u64,
    pub(crate) delivered_bytes: u64,
}

/// A progress report from inside a run, issued after every simulated
/// slice (warm-up included).
#[derive(Debug, Clone, Copy)]
pub struct Progress {
    /// Current simulated instant.
    pub now: SimTime,
    /// The run's horizon (warm-up end + duration); convergence may stop
    /// the run before reaching it.
    pub horizon: SimTime,
    /// Fraction of the horizon covered so far, in `0..=1`.
    pub fraction: f64,
    /// Engine events processed so far.
    pub events_processed: u64,
    /// Events currently pending in the scheduler. With token-based timer
    /// cancellation this counts only live events (no parked tombstones),
    /// so a runaway here is real event-generation pressure, not stale
    /// timers.
    pub events_pending: usize,
}

impl Scenario {
    /// Convenience: run this scenario to completion (see [`run`]).
    pub fn run(&self) -> RunOutcome {
        run(self)
    }

    /// Convenience: [`try_run`] as a method.
    pub fn try_run(&self) -> Result<RunOutcome, SimError> {
        try_run(self)
    }
}

/// Run a scenario to completion and collect its outcome.
///
/// # Panics
/// Panics on any [`SimError`] (invalid scenario, engine error, watchdog
/// violation) — [`try_run`] reports the error instead.
pub fn run(scenario: &Scenario) -> RunOutcome {
    try_run(scenario).unwrap_or_else(|e| panic!("{e}"))
}

/// Run a scenario to completion, surfacing failures as typed errors.
pub fn try_run(scenario: &Scenario) -> Result<RunOutcome, SimError> {
    run_internal(scenario, None, &mut |_| {})
}

/// [`run`] with a progress callback, invoked after every simulated slice
/// with the fraction of sim-time covered.
///
/// # Panics
/// Panics on any [`SimError`]; see [`try_run_with_progress`].
pub fn run_with_progress<F>(scenario: &Scenario, on_progress: F) -> RunOutcome
where
    F: FnMut(&Progress),
{
    try_run_with_progress(scenario, on_progress).unwrap_or_else(|e| panic!("{e}"))
}

/// [`try_run`] with a progress callback.
pub fn try_run_with_progress<F>(
    scenario: &Scenario,
    mut on_progress: F,
) -> Result<RunOutcome, SimError>
where
    F: FnMut(&Progress),
{
    run_internal(scenario, None, &mut on_progress)
}

/// Checkpoint/resume control for one run. The default is a plain
/// start-to-finish run.
#[derive(Default)]
pub(crate) struct RunCtl<'a> {
    /// Restore this checkpoint into the freshly built network instead of
    /// starting from `t = 0`. The network must have been built from the
    /// checkpoint's embedded scenario.
    pub(crate) resume_from: Option<&'a Checkpoint>,
    /// Capture a checkpoint at the first slice boundary at or after this
    /// instant (at most one per run).
    pub(crate) checkpoint_at: Option<SimTime>,
    /// Return immediately after capturing instead of finishing the run.
    pub(crate) stop_at_checkpoint: bool,
}

/// Run `scenario` just far enough to capture a checkpoint at the first
/// slice boundary at or after `at`, then stop. Errors with
/// [`SimError::Resume`] if the run ends (horizon or convergence) before
/// reaching `at`.
pub fn run_to_checkpoint(scenario: &Scenario, at: SimTime) -> Result<Checkpoint, SimError> {
    let mut out = None;
    let finished = run_internal_ctl(
        scenario,
        None,
        &mut |_| {},
        RunCtl {
            checkpoint_at: Some(at),
            stop_at_checkpoint: true,
            ..RunCtl::default()
        },
        &mut out,
    )?;
    debug_assert!(finished.is_none() || out.is_none());
    out.ok_or_else(|| {
        SimError::Resume(ResumeError::Corrupt(format!(
            "run ended at {} before the requested checkpoint instant {at}",
            finished.map_or(SimTime::ZERO, |o| o.ended_at)
        )))
    })
}

/// Run `scenario` to completion, capturing a checkpoint en route at the
/// first slice boundary at or after `at`. The checkpoint is `None` when
/// the run ended (converged) before reaching `at`.
pub fn try_run_with_checkpoint(
    scenario: &Scenario,
    at: SimTime,
) -> Result<(RunOutcome, Option<Checkpoint>), SimError> {
    let mut out = None;
    let outcome = run_internal_ctl(
        scenario,
        None,
        &mut |_| {},
        RunCtl {
            checkpoint_at: Some(at),
            ..RunCtl::default()
        },
        &mut out,
    )?
    .expect("non-stopping run always produces an outcome");
    Ok((outcome, out))
}

/// Resume a run from a checkpoint and drive it to completion. The
/// scenario is rebuilt from the JSON embedded in the checkpoint, so the
/// outcome is byte-identical to the donor run's (differential tests
/// assert this for every CCA × topology × fault-plan combination).
pub fn try_resume_run(cp: &Checkpoint) -> Result<RunOutcome, SimError> {
    try_resume_run_with_progress(cp, |_| {})
}

/// [`try_resume_run`] with a progress callback.
pub fn try_resume_run_with_progress<F>(
    cp: &Checkpoint,
    mut on_progress: F,
) -> Result<RunOutcome, SimError>
where
    F: FnMut(&Progress),
{
    let scenario = scenario_from_checkpoint(cp)?;
    let outcome = run_internal_ctl(
        &scenario,
        None,
        &mut on_progress,
        RunCtl {
            resume_from: Some(cp),
            ..RunCtl::default()
        },
        &mut None,
    )?
    .expect("non-stopping run always produces an outcome");
    Ok(outcome)
}

/// Parse the scenario a checkpoint was taken from.
pub fn scenario_from_checkpoint(cp: &Checkpoint) -> Result<Scenario, SimError> {
    crate::codec::scenario_from_json(&cp.scenario_json).map_err(|e| {
        SimError::Resume(ResumeError::Corrupt(format!(
            "embedded scenario does not parse: {e}"
        )))
    })
}

/// Advance the simulation to `until`, classifying events per kind when
/// the run is observed. `classify_msg` is passed as a function item so it
/// inlines into the engine's event loop; the unobserved path is the plain
/// `run_until` with zero observability cost. Observed advances are
/// wrapped in a `dispatch` profiler span — the denominator of the
/// manifest's `events_per_sec`, which deliberately excludes every
/// harness phase (build, snapshots, collection).
fn advance(
    net: &mut BuiltNetwork,
    until: SimTime,
    inst: Option<&RunInstruments>,
) -> Result<(), SimError> {
    if let Some(inst) = inst {
        let t0 = std::time::Instant::now();
        let result = net.sim.try_run_until_classified(until, classify_msg);
        inst.profiler.record("dispatch", t0.elapsed());
        result?;
    } else {
        net.sim.try_run_until(until)?;
    }
    Ok(())
}

/// Component-id → profiler class-row table for `net`, indexed by raw
/// component id. Classes follow [`COMPONENT_CLASSES`] order.
fn comp_class_table(net: &BuiltNetwork) -> Vec<u8> {
    let ids = |v: &[ccsim_sim::ComponentId]| v.iter().map(|id| id.as_usize()).collect::<Vec<_>>();
    let groups = [
        ids(&net.links),
        ids(&net.routers),
        ids(&net.senders),
        ids(&net.receivers),
    ];
    let max = groups.iter().flatten().copied().max().unwrap_or(0);
    let mut table = vec![0u8; max + 1];
    for (class, group) in groups.iter().enumerate() {
        for &id in group {
            table[id] = class as u8;
        }
    }
    table
}

/// Harvest the engine's profiling state into a [`ccsim_prof::Profile`]
/// (collection phase, while the network is still assembled). The
/// `dispatch_nanos` field is stamped by the observed-run wrapper, which
/// owns the dispatch span totals.
fn harvest_profile(
    net: &mut BuiltNetwork,
    scratch: &VecPool<u64>,
    stride: u64,
    checkpoint_bytes: u64,
) -> Option<ccsim_prof::Profile> {
    use ccsim_prof::{EventCells, MemAccounts, Profile, WheelProfile};
    let (counts, nanos, samples) = net.sim.profile_cells()?;
    let (counts, nanos, samples) = (counts.to_vec(), nanos.to_vec(), samples.to_vec());

    let accounts = MemAccounts::new();
    // The checkpoint buffer pool exists only when a checkpoint was taken,
    // so checkpoint-free profiles keep their exact pool list.
    if checkpoint_bytes > 0 {
        accounts.account("resume/checkpoint").set(checkpoint_bytes);
    }
    let (senders, links, rings) = (
        accounts.account("tcp/senders"),
        accounts.account("net/link_queues"),
        accounts.account("trace/rings"),
    );
    accounts
        .account("sim/wheel")
        .set(net.sim.queue_memory_bytes());
    accounts.account("sim/scratch").set(scratch.memory_bytes());
    if let Some(slab) = &net.slab {
        accounts
            .account("tcp/slab")
            .set(slab.borrow().memory_bytes());
    }
    for &id in &net.senders {
        let s = net.sim.component::<Sender>(id);
        senders.alloc(s.memory_bytes());
        rings.alloc(s.trace_memory_bytes());
    }
    for &id in &net.links {
        let l = net.sim.component::<Link>(id);
        links.alloc(l.memory_bytes());
        rings.alloc(l.trace_memory_bytes());
    }

    Some(Profile {
        events: EventCells {
            classes: COMPONENT_CLASSES.iter().map(|s| s.to_string()).collect(),
            kinds: EVENT_KINDS.iter().map(|s| s.to_string()).collect(),
            stride,
            counts,
            nanos,
            samples,
        },
        wheel: WheelProfile::from(net.sim.wheel_stats()),
        memory: accounts.snapshot(),
        dispatch_nanos: 0,
        flows: net.flow_count() as u32,
    })
}

/// Snapshot the sampler inputs: one [`FlowPoint`] per sampled flow and
/// one [`LinkPoint`] per link, all read-only simulator state.
///
/// With the flow slab attached the per-flow columns are read straight
/// out of the dense arrays (slot `i` == flow `i`) — senders write their
/// row back at the end of every handled event, so between events the
/// columns hold exactly what a component walk would read, at a fraction
/// of the cache traffic. Detached builds fall back to the walk.
fn timeline_points(net: &BuiltNetwork, sampled_flows: usize) -> (Vec<FlowPoint>, Vec<LinkPoint>) {
    let flows = if let Some(slab) = &net.slab {
        let slab = slab.borrow();
        (0..sampled_flows)
            .map(|i| {
                let (cwnd_bytes, inflight_bytes, srtt_nanos, retransmits) = slab.sender_row(i);
                FlowPoint {
                    retransmits,
                    cwnd_bytes,
                    srtt_secs: srtt_nanos as f64 / 1e9,
                    inflight_bytes,
                }
            })
            .collect()
    } else {
        net.senders[..sampled_flows]
            .iter()
            .map(|&id| {
                let s = net.sim.component::<Sender>(id);
                FlowPoint {
                    retransmits: s.stats().retransmits,
                    cwnd_bytes: s.cca().cwnd(),
                    srtt_secs: s.srtt().as_secs_f64(),
                    inflight_bytes: s.in_flight(),
                }
            })
            .collect()
    };
    let links = net
        .links
        .iter()
        .map(|&id| {
            let l = net.sim.component::<Link>(id);
            let st = l.stats();
            LinkPoint {
                transmitted_bytes: st.transmitted_bytes,
                dropped_pkts: st.dropped_pkts,
                ce_marked_pkts: st.ce_marked_pkts,
                queue_bytes: l.backlog_bytes(),
                rate_bytes_per_sec: l.rate().as_bytes_per_sec(),
            }
        })
        .collect();
    (flows, links)
}

/// Feed the timeline sampler at a slice boundary. `delivered` lets the
/// measurement loop reuse the vector it already gathered for the tracker;
/// other call sites pass `None` and the helper snapshots the flows itself
/// into a pooled buffer — but only once a row is actually due, so
/// off-grid slices cost one comparison. `force` closes a possibly-short
/// row regardless of the window grid (warm-up boundary, end of run).
fn sample_timeline(
    net: &BuiltNetwork,
    inst: Option<&RunInstruments>,
    scratch: &mut VecPool<u64>,
    now: SimTime,
    delivered: Option<&[u64]>,
    force: bool,
) {
    let Some(inst) = inst else { return };
    let mut slot = inst.timeline.borrow_mut();
    let Some(tl) = slot.as_mut() else { return };
    if !force && !tl.wants_row(now) {
        return;
    }
    let (flows, links) = timeline_points(net, tl.sampled_flows());
    match delivered {
        Some(d) => tl.push_row(now, d, &flows, &links),
        None => {
            let mut buf = scratch.acquire();
            net.per_flow_delivered_into(&mut buf);
            tl.push_row(now, &buf, &flows, &links);
            scratch.release(buf);
        }
    }
}

/// Drain the flight recorders (present only when the scenario enabled
/// tracing) into one time-sorted trace. Factored out of collection so an
/// aborting run (watchdog violation) can still salvage the trace tail
/// for its crash bundle.
fn drain_trace(net: &mut BuiltNetwork, scenario: &Scenario) -> Option<RunTrace> {
    if !scenario.trace.enabled {
        return None;
    }
    let mut parts = Vec::with_capacity(net.flow_count() + 1);
    for &id in &net.senders {
        if let Some(rec) = net.sim.component_mut::<Sender>(id).take_trace() {
            parts.push(rec.finish());
        }
    }
    for &id in &net.links {
        if let Some(rec) = net.sim.component_mut::<Link>(id).take_trace() {
            parts.push(rec.finish());
        }
    }
    let meta = TraceMeta {
        scenario: scenario.name.clone(),
        seed: scenario.seed,
        flows: scenario.flow_count(),
    };
    Some(RunTrace::assemble(meta, parts))
}

/// The single implementation behind [`run`], [`run_with_progress`], and
/// [`crate::observe::run_observed`]. When `inst` is present, metric
/// handles are attached to the engine/link/senders and runner phases are
/// profiled; the simulated event sequence is identical either way (the
/// instruments only observe).
pub(crate) fn run_internal(
    scenario: &Scenario,
    inst: Option<&RunInstruments>,
    on_progress: &mut dyn FnMut(&Progress),
) -> Result<RunOutcome, SimError> {
    let outcome = run_internal_ctl(scenario, inst, on_progress, RunCtl::default(), &mut None)?;
    Ok(outcome.expect("non-stopping run always produces an outcome"))
}

/// [`run_internal`] with checkpoint/resume control. Returns `Ok(None)`
/// iff `ctl.stop_at_checkpoint` ended the run right after capture; a
/// captured checkpoint (if any) lands in `checkpoint_out`.
pub(crate) fn run_internal_ctl(
    scenario: &Scenario,
    inst: Option<&RunInstruments>,
    on_progress: &mut dyn FnMut(&Progress),
    ctl: RunCtl<'_>,
    checkpoint_out: &mut Option<Checkpoint>,
) -> Result<Option<RunOutcome>, SimError> {
    let build_span = inst.map(|i| i.profiler.span("build"));
    let mut net = BuiltNetwork::try_build(scenario)?;
    let mut watchdog = Watchdog::new(scenario.watchdog);
    // Free-listed scratch for per-flow snapshot gathers: after the first
    // slice primes its capacity, the steady-state loop allocates nothing.
    let mut scratch: VecPool<u64> = VecPool::new();
    if let Some(inst) = inst {
        net.sim.set_event_classes(EVENT_KINDS.len());
        net.sim
            .component_mut::<Link>(net.link)
            .enable_metrics(inst.link.clone());
        for &id in &net.senders {
            net.sim
                .component_mut::<Sender>(id)
                .enable_metrics(inst.sender.clone());
        }
        if inst.options.profile {
            net.sim.enable_profiling(
                comp_class_table(&net),
                COMPONENT_CLASSES.len(),
                EVENT_KINDS.len(),
                inst.options.profile_stride,
            );
        }
    }
    drop(build_span);

    // Overlay checkpointed state onto the freshly built arena. The build
    // already rewound every config-derived setting; the checkpoint body
    // holds only live state (clock, queues, windows, RNG streams, harness
    // cursors).
    let mut restored = None;
    if let Some(cp) = ctl.resume_from {
        restored = Some(
            checkpoint::restore_into(&mut net, &mut watchdog, &cp.body)
                .map_err(SimError::Resume)?,
        );
    }

    // Arm the windowed sampler once the network exists (it needs the
    // flow/link counts). On a checkpoint resume the clock is non-zero:
    // the window grid starts from the restored instant, and priming
    // anchors the delta baselines at the current cumulative counters so
    // the pre-resume history is not attributed to the first window.
    if let Some(inst) = inst {
        if let Some(cfg) = inst.options.timeline {
            let mut tl = Timeline::new(cfg, net.flow_count(), net.links.len(), net.sim.now());
            let (flows, links) = timeline_points(&net, tl.sampled_flows());
            let mut buf = scratch.acquire();
            net.per_flow_delivered_into(&mut buf);
            tl.prime(&buf, &flows, &links);
            scratch.release(buf);
            *inst.timeline.borrow_mut() = Some(tl);
        }
    }

    let warmup_end = SimTime::ZERO + scenario.warmup;
    let horizon = warmup_end + scenario.duration;
    let mut report = |sim_now: SimTime, events: u64, pending: usize| {
        let fraction = if horizon.as_nanos() == 0 {
            1.0
        } else {
            sim_now.as_nanos() as f64 / horizon.as_nanos() as f64
        };
        on_progress(&Progress {
            now: sim_now,
            horizon,
            fraction,
            events_processed: events,
            events_pending: pending,
        });
    };

    // Warm-up, sliced like the measurement phase so progress reporting
    // covers it (slicing `run_until` does not change event processing).
    // A measurement-phase resume skips it entirely — the warm-up boundary
    // actions already happened in the donor run and their results
    // (baselines, tracker) travel inside the checkpoint.
    let (sender_base, mut tracker, mut now) = match restored.take() {
        Some(RestoredHarness::Measurement {
            sender_base,
            tracker,
        }) => (sender_base, tracker, net.sim.now()),
        other => {
            debug_assert!(matches!(other, None | Some(RestoredHarness::Warmup)));
            {
                let span = inst.map(|i| i.profiler.span("warmup"));
                // Fresh runs start at zero; a warm-up-phase resume
                // continues from the restored clock (always a slice
                // boundary).
                let mut t = net.sim.now();
                while t < warmup_end {
                    let next = (t + scenario.snapshot_interval).min(warmup_end);
                    advance(&mut net, next, inst)?;
                    t = next;
                    sample_timeline(&net, inst, &mut scratch, t, None, false);
                    report(t, net.sim.events_processed(), net.sim.events_pending());
                    if watchdog.check(&net, scenario) {
                        return Err(SimError::Invariant {
                            trace: drain_trace(&mut net, scenario),
                            report: watchdog.into_report(),
                        });
                    }
                    if checkpoint_due(&ctl, checkpoint_out, t) {
                        store_checkpoint(
                            checkpoint::capture(scenario, &net, &watchdog, HarnessRef::Warmup),
                            checkpoint_out,
                            inst,
                        );
                        if ctl.stop_at_checkpoint {
                            return Ok(None);
                        }
                    }
                }
                drop(span);
            }

            // Warm-up boundary: close the warm-up's tail row *before* the
            // counter reset so no timeline delta straddles it, then reset
            // queue counters (every link) and snapshot per-flow baselines.
            sample_timeline(&net, inst, &mut scratch, warmup_end, None, true);
            for i in 0..net.links.len() {
                let id = net.links[i];
                net.sim.component_mut::<Link>(id).reset_stats();
            }
            if let Some(inst) = inst {
                if let Some(tl) = inst.timeline.borrow_mut().as_mut() {
                    tl.note_link_reset();
                }
            }
            let sender_base: Vec<SenderBaseline> = net
                .senders
                .iter()
                .map(|&id| {
                    let s = net.sim.component::<Sender>(id).stats();
                    SenderBaseline {
                        data_pkts_sent: s.data_pkts_sent,
                        retransmits: s.retransmits,
                        rtos: s.rtos,
                        delivered_bytes: 0, // filled from receivers below
                    }
                })
                .collect();
            let delivered_base = net.per_flow_delivered();
            let sender_base: Vec<SenderBaseline> = sender_base
                .into_iter()
                .zip(&delivered_base)
                .map(|(mut b, &d)| {
                    b.delivered_bytes = d;
                    b
                })
                .collect();

            // The warm-up reset re-anchored the link counters; re-anchor
            // the conservation baseline with them.
            watchdog.rebaseline(&net);

            let mut tracker = ThroughputTracker::new();
            tracker.record(warmup_end, delivered_base.clone());
            (sender_base, tracker, warmup_end)
        }
    };

    let deadline = horizon;
    let mut converged = false;
    while now < deadline {
        let slice_start = inst.map(|_| std::time::Instant::now());
        let next = (now + scenario.snapshot_interval).min(deadline);
        advance(&mut net, next, inst)?;
        now = next;
        let delivered = net.per_flow_delivered();
        sample_timeline(&net, inst, &mut scratch, now, Some(&delivered), false);
        tracker.record(now, delivered);
        if let (Some(inst), Some(t0)) = (inst, slice_start) {
            let elapsed = t0.elapsed();
            inst.slice_wall
                .record(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
            inst.profiler.record("measure_slice", elapsed);
        }
        report(now, net.sim.events_processed(), net.sim.events_pending());
        if watchdog.check(&net, scenario) {
            return Err(SimError::Invariant {
                trace: drain_trace(&mut net, scenario),
                report: watchdog.into_report(),
            });
        }
        if let Some(rule) = &scenario.convergence {
            let agg =
                tracker.relative_change(rule.window_snapshots, |r| Some(r.iter().sum::<f64>()));
            let jfi = tracker.relative_change(rule.window_snapshots, jain_fairness_index);
            if let (Some(a), Some(j)) = (agg, jfi) {
                if a < rule.tolerance && j < rule.tolerance {
                    converged = true;
                    break;
                }
            }
        }
        // Capture *after* the convergence check: a boundary where the run
        // stops never yields a checkpoint, so a resumed run re-evaluates
        // convergence at exactly the boundaries the donor run did.
        if checkpoint_due(&ctl, checkpoint_out, now) {
            store_checkpoint(
                checkpoint::capture(
                    scenario,
                    &net,
                    &watchdog,
                    HarnessRef::Measurement {
                        sender_base: &sender_base,
                        tracker: &tracker,
                    },
                ),
                checkpoint_out,
                inst,
            );
            if ctl.stop_at_checkpoint {
                return Ok(None);
            }
        }
    }

    // ----- collection ----------------------------------------------------
    let collect_span = inst.map(|i| i.profiler.span("collect"));
    // Harvest engine-side instrumentation into the registry (the engine
    // cannot depend on the telemetry crate, so the counts live in plain
    // fields until here) and flush edge-held link metric state.
    if let Some(inst) = inst {
        net.sim.component_mut::<Link>(net.link).finish_metrics();
        for (counter, &count) in inst.events_kind.iter().zip(net.sim.event_class_counts()) {
            counter.add(count);
        }
        inst.pending_peak.set_max(net.sim.max_pending() as f64);
    }
    let measured_for = now - warmup_end;
    let secs = measured_for.as_secs_f64();
    assert!(secs > 0.0, "empty measurement window");
    let delivered_end = net.per_flow_delivered();
    // Close the run's tail row (zero-span no-op when the last slice
    // already closed one on the grid).
    sample_timeline(&net, inst, &mut scratch, now, Some(&delivered_end), true);

    let link = net.sim.component::<Link>(net.link);
    let link_stats = link.stats().clone();
    let drop_burstiness = ccsim_analysis::burstiness(link.drop_log());
    // Per-flow queue counters are summed over every link a flow's packets
    // crossed; for the single-bottleneck topology this is exactly the
    // primary link's own counters.
    let all_stats: Vec<LinkStats> = net
        .links
        .iter()
        .map(|&id| net.sim.component::<Link>(id).stats().clone())
        .collect();
    let per_flow_summed = |per_flow: fn(&LinkStats) -> &Vec<u64>, i: usize| -> u64 {
        all_stats
            .iter()
            .map(|s| per_flow(s).get(i).copied().unwrap_or(0))
            .sum()
    };

    let mut flows = Vec::with_capacity(net.flow_count());
    for i in 0..net.flow_count() {
        let stats = net.sim.component::<Sender>(net.senders[i]).stats();
        let base = sender_base[i];
        let window_delivered = delivered_end[i] - base.delivered_bytes;
        let window_events = stats
            .congestion_event_log
            .iter()
            .filter(|&&t| t >= warmup_end)
            .count() as u64;
        flows.push(FlowMetrics {
            flow: i as u32,
            cca: net.flow_cca[i].name().to_string(),
            base_rtt_secs: net.flow_rtt[i].as_secs_f64(),
            throughput_bytes_per_sec: window_delivered as f64 / secs,
            delivered_bytes: window_delivered,
            data_pkts_sent: stats.data_pkts_sent - base.data_pkts_sent,
            retransmits: stats.retransmits - base.retransmits,
            congestion_events: window_events,
            rtos: stats.rtos - base.rtos,
            queue_drops: per_flow_summed(|s| &s.per_flow_dropped, i),
            queue_arrivals: per_flow_summed(|s| &s.per_flow_arrived, i),
        });
    }

    // Per-bottleneck records: populated only for configurations the
    // topology subsystem introduced (multi-link shapes, AQM, ECN), so
    // legacy outcomes keep their digests (see `RunOutcome::bottlenecks`).
    let topology_config = net.links.len() > 1
        || scenario.ecn
        || scenario.aqm != AqmKind::DropTail
        || net.topology.links.iter().any(|l| l.aqm.is_some());
    let mut bottlenecks = Vec::new();
    if topology_config {
        let tputs: Vec<f64> = flows.iter().map(|f| f.throughput_bytes_per_sec).collect();
        for (i, spec) in net.topology.links.iter().enumerate() {
            if !spec.bottleneck {
                continue;
            }
            let stats = &all_stats[i];
            bottlenecks.push(BottleneckMetrics {
                link: i as u32,
                label: spec.label.clone(),
                utilization: (stats.transmitted_bytes as f64 / secs) / spec.rate.as_bytes_per_sec(),
                jfi: jain_fairness_subset(&tputs, &net.topology.flows_on_link(i)),
                loss_rate: stats.loss_rate(),
                max_queue_bytes: stats.max_queue_bytes,
                ce_marked_pkts: stats.ce_marked_pkts,
            });
        }
    }

    // Profiling harvest runs before the trace drain so the `trace/rings`
    // memory gauge still sees attached recorders.
    if let Some(inst) = inst {
        if inst.options.profile {
            *inst.profile_out.borrow_mut() = harvest_profile(
                &mut net,
                &scratch,
                inst.options.profile_stride,
                inst.checkpoint_bytes.get(),
            );
        }
    }

    let trace = drain_trace(&mut net, scenario);

    let outcome = RunOutcome {
        scenario: scenario.name.clone(),
        seed: scenario.seed,
        mss: scenario.mss,
        bottleneck: scenario.bottleneck,
        flows,
        flow_cca: net.flow_cca.clone(),
        measured_for,
        converged,
        ended_at: now,
        aggregate_loss_rate: link_stats.loss_rate(),
        drop_burstiness,
        max_queue_bytes: link_stats.max_queue_bytes,
        events_processed: net.sim.events_processed(),
        trace,
        bottlenecks,
    };
    drop(collect_span);
    debug_assert!(!watchdog.tripped(), "tripped watchdog must abort the run");
    Ok(Some(outcome))
}

/// True when a requested checkpoint hasn't been taken yet and `now` has
/// reached its instant.
fn checkpoint_due(ctl: &RunCtl<'_>, out: &Option<Checkpoint>, now: SimTime) -> bool {
    out.is_none() && ctl.checkpoint_at.is_some_and(|at| now >= at)
}

/// Stash a captured checkpoint, gauging its encoded size for the
/// observed-run manifest and memory profile.
fn store_checkpoint(cp: Checkpoint, out: &mut Option<Checkpoint>, inst: Option<&RunInstruments>) {
    if let Some(inst) = inst {
        inst.checkpoint_bytes.set(cp.encoded_len() as u64);
    }
    *out = Some(cp);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::FlowGroup;
    use ccsim_cca::CcaKind;
    use ccsim_sim::{Bandwidth, SimDuration};

    /// A small, fast scenario: 4 reno flows on a 20 Mbps link.
    fn small(seed: u64) -> Scenario {
        let mut s = Scenario::edge_scale()
            .named("small")
            .flows(vec![FlowGroup::new(
                CcaKind::Reno,
                4,
                SimDuration::from_millis(20),
            )])
            .seed(seed);
        s.bottleneck = Bandwidth::from_mbps(20);
        s.buffer_bytes = 500_000; // ~1 BDP at 200 ms
        s.start_jitter = SimDuration::from_millis(300);
        s.warmup = SimDuration::from_secs(3);
        // Same-RTT AIMD fairness converges over many sawtooth periods
        // (~2.5 s each here): a 10 s window can catch flows mid-crossover
        // at JFI ≈ 0.7 depending on the start-jitter draws, so measure
        // for 30 s.
        s.duration = SimDuration::from_secs(30);
        s.convergence = None;
        s
    }

    #[test]
    fn reno_flows_fill_the_link_and_share_fairly() {
        let o = run(&small(1));
        // High utilization: loss-based flows with a 1-BDP buffer.
        assert!(o.utilization() > 0.85, "utilization = {}", o.utilization());
        assert!(o.utilization() <= 1.01);
        // Same-RTT reno is fair.
        let jfi = o.jain_index().unwrap();
        assert!(jfi > 0.9, "jfi = {jfi}");
        // Losses occurred (window is congestion-limited) and were counted.
        assert!(o.aggregate_loss_rate > 0.0);
        let events: u64 = o.flows.iter().map(|f| f.congestion_events).sum();
        assert!(events > 0, "no congestion events recorded");
    }

    #[test]
    fn outcome_is_deterministic_for_a_seed() {
        let a = run(&small(7));
        let b = run(&small(7));
        assert_eq!(a.throughputs(), b.throughputs());
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.aggregate_loss_rate, b.aggregate_loss_rate);
    }

    #[test]
    fn different_seeds_differ_but_agree_in_aggregate() {
        let a = run(&small(1));
        let b = run(&small(2));
        assert_ne!(a.events_processed, b.events_processed);
        // Aggregate throughput is a physical property: within a few %.
        let ra = a.aggregate_throughput_mbps();
        let rb = b.aggregate_throughput_mbps();
        assert!((ra - rb).abs() / ra < 0.05, "{ra} vs {rb}");
    }

    #[test]
    fn convergence_rule_stops_early() {
        let mut s = small(3);
        s.duration = SimDuration::from_secs(60);
        s.convergence = Some(crate::scenario::ConvergenceRule {
            window_snapshots: 5,
            tolerance: 0.05,
        });
        let o = run(&s);
        assert!(o.converged, "steady flows should converge");
        assert!(o.ended_at < SimTime::ZERO + s.warmup + s.duration);
    }

    #[test]
    fn window_counters_exclude_warmup() {
        let o = run(&small(4));
        for f in &o.flows {
            // Throughput implied by delivered bytes must match the field.
            let implied = f.delivered_bytes as f64 / o.measured_for.as_secs_f64();
            assert!((implied - f.throughput_bytes_per_sec).abs() < 1.0);
            // Queue arrivals were reset at warm-up: they cannot exceed what
            // the whole run could have sent in the window.
            assert!(f.queue_arrivals > 0);
        }
    }
}
