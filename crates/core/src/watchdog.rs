//! The runtime invariant watchdog driver.
//!
//! The vocabulary (config, violation, report) lives in
//! [`ccsim_fault::watchdog`]; this module is the part that actually looks
//! at a [`BuiltNetwork`] and checks the invariants at runner slice
//! boundaries. Everything here is **read-only**: the watchdog inspects
//! counters and component state but never mutates the simulation or
//! contributes to the outcome, so enabling it cannot change a run's
//! digest (asserted by the integration tests).
//!
//! Checked invariants (see [`InvariantKind`]):
//!
//! * **Conservation** — over any interval at every link of the topology,
//!   `Δarrived = Δdropped + Δtransmitted + Δbacklog_pkts`. Fault-injected
//!   drops count as drops and duplicates are minted *after* the
//!   transmission counter, so the identity holds under every fault kind.
//! * **QueueBound** — waiting bytes never exceed the configured buffer,
//!   on every link.
//! * **CwndSanity** — every started sender keeps `cwnd ≥ 1 MSS` and never
//!   delivers more than it sent.
//! * **TimeMonotonic** — the engine clock and event counter never move
//!   backwards between checks.

use crate::build::BuiltNetwork;
use crate::scenario::Scenario;
use ccsim_fault::{InvariantKind, InvariantViolation, WatchdogConfig, WatchdogReport};
use ccsim_net::link::Link;
use ccsim_sim::{SimTime, SnapError, SnapReader, SnapWriter};
use ccsim_tcp::receiver::Receiver;
use ccsim_tcp::sender::Sender;

/// Cap on recorded violations: a systemic bug fails every subsequent
/// check, and the report only needs enough instances to diagnose it.
const MAX_VIOLATIONS: usize = 64;

/// Link-counter snapshot the conservation check differences against.
#[derive(Clone, Copy, Default)]
struct LinkBaseline {
    arrived: u64,
    dropped: u64,
    transmitted: u64,
    backlog_pkts: u64,
}

impl LinkBaseline {
    fn capture(link: &Link) -> LinkBaseline {
        let s = link.stats();
        LinkBaseline {
            arrived: s.arrived_pkts,
            dropped: s.dropped_pkts,
            transmitted: s.transmitted_pkts,
            backlog_pkts: link.queued_pkts() + link.in_service_pkts(),
        }
    }
}

/// The per-run check driver. Constructed enabled or inert; an inert
/// watchdog's methods are no-ops so the runner calls them unconditionally.
pub(crate) struct Watchdog {
    cfg: WatchdogConfig,
    report: WatchdogReport,
    slice: u64,
    base: Vec<LinkBaseline>,
    last_now: SimTime,
    last_events: u64,
}

impl Watchdog {
    pub(crate) fn new(cfg: WatchdogConfig) -> Watchdog {
        Watchdog {
            cfg,
            report: WatchdogReport::default(),
            slice: 0,
            base: Vec::new(),
            last_now: SimTime::ZERO,
            last_events: 0,
        }
    }

    /// Re-anchor the conservation baselines — called right after the
    /// warm-up boundary resets the link counters.
    pub(crate) fn rebaseline(&mut self, net: &BuiltNetwork) {
        if !self.cfg.enabled {
            return;
        }
        self.base = net
            .links
            .iter()
            .map(|&id| LinkBaseline::capture(net.sim.component::<Link>(id)))
            .collect();
    }

    /// True if any check has failed so far.
    pub(crate) fn tripped(&self) -> bool {
        !self.report.is_clean()
    }

    pub(crate) fn into_report(self) -> WatchdogReport {
        self.report
    }

    fn record(&mut self, at: SimTime, kind: InvariantKind, detail: String) {
        if self.report.violations.len() < MAX_VIOLATIONS {
            self.report
                .violations
                .push(InvariantViolation { at, kind, detail });
        }
    }

    /// Serialize the check-pass cursor for a checkpoint. Violations are
    /// not serialized: a tripped watchdog aborts the run before any
    /// checkpoint can be taken, so checkpoints only ever hold clean state.
    pub(crate) fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.slice);
        w.u64(self.report.checks_run);
        w.time(self.last_now);
        w.u64(self.last_events);
        w.seq(&self.base, |w, b| {
            w.u64(b.arrived);
            w.u64(b.dropped);
            w.u64(b.transmitted);
            w.u64(b.backlog_pkts);
        });
    }

    /// Overlay a checkpointed check-pass cursor.
    pub(crate) fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.slice = r.u64()?;
        self.report.checks_run = r.u64()?;
        self.last_now = r.time()?;
        self.last_events = r.u64()?;
        self.base = r.seq(|r| {
            Ok(LinkBaseline {
                arrived: r.u64()?,
                dropped: r.u64()?,
                transmitted: r.u64()?,
                backlog_pkts: r.u64()?,
            })
        })?;
        Ok(())
    }

    /// Run one check pass at a slice boundary (respecting the stride).
    /// Returns `true` if this pass found a new violation.
    pub(crate) fn check(&mut self, net: &BuiltNetwork, scenario: &Scenario) -> bool {
        if !self.cfg.enabled {
            return false;
        }
        self.slice += 1;
        if !(self.slice - 1).is_multiple_of(self.cfg.stride()) {
            return false;
        }
        let before = self.report.violations.len();
        self.report.checks_run += 1;
        let now = net.sim.now();
        let events = net.sim.events_processed();

        // Time monotonicity.
        if now < self.last_now || events < self.last_events {
            self.record(
                now,
                InvariantKind::TimeMonotonic,
                format!(
                    "clock {now} < {} or events {events} < {}",
                    self.last_now, self.last_events
                ),
            );
        }
        self.last_now = now;
        self.last_events = events;

        // Before the first rebaseline every delta is measured from zero
        // counters, which is exactly what a fresh simulator has.
        if self.base.len() != net.links.len() {
            self.base.resize(net.links.len(), LinkBaseline::default());
        }

        for (li, &link_id) in net.links.iter().enumerate() {
            let link = net.sim.component::<Link>(link_id);

            // Conservation at this link, as deltas from the baseline.
            let cur = LinkBaseline::capture(link);
            let base = self.base[li];
            let d_arrived = cur.arrived as i128 - base.arrived as i128;
            let d_dropped = cur.dropped as i128 - base.dropped as i128;
            let d_transmitted = cur.transmitted as i128 - base.transmitted as i128;
            let d_backlog = cur.backlog_pkts as i128 - base.backlog_pkts as i128;
            if d_arrived != d_dropped + d_transmitted + d_backlog {
                self.record(
                    now,
                    InvariantKind::Conservation,
                    format!(
                        "link {li}: Δarrived {d_arrived} != Δdropped {d_dropped} \
                         + Δtransmitted {d_transmitted} + Δbacklog {d_backlog}"
                    ),
                );
            }

            // Queue bound: waiting bytes within the configured buffer.
            let backlog = link.backlog_bytes();
            let buffer = link.buffer_bytes();
            if backlog > buffer {
                self.record(
                    now,
                    InvariantKind::QueueBound,
                    format!("link {li}: backlog {backlog} B > buffer {buffer} B"),
                );
            }
        }

        // Sender congestion-state sanity. Flows that haven't started yet
        // (jitter window) are skipped via the start-time table.
        let mss = u64::from(scenario.mss);
        for (i, &id) in net.senders.iter().enumerate() {
            if net.start_times[i] > now {
                continue;
            }
            let sender = net.sim.component::<Sender>(id);
            let cwnd = sender.cca().cwnd();
            if cwnd < mss {
                self.record(
                    now,
                    InvariantKind::CwndSanity,
                    format!("flow {i}: cwnd {cwnd} B < 1 MSS ({mss} B)"),
                );
            }
            let sent = sender.stats().bytes_sent;
            let delivered = net
                .sim
                .component::<Receiver>(net.receivers[i])
                .delivered_bytes();
            if delivered > sent {
                self.record(
                    now,
                    InvariantKind::CwndSanity,
                    format!("flow {i}: delivered {delivered} B > sent {sent} B"),
                );
            }
        }

        self.report.violations.len() > before
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::FlowGroup;
    use ccsim_cca::CcaKind;
    use ccsim_sim::{Bandwidth, SimDuration};

    fn tiny() -> Scenario {
        let mut s = Scenario::edge_scale()
            .named("wd-tiny")
            .flows(vec![FlowGroup::new(
                CcaKind::Reno,
                2,
                SimDuration::from_millis(20),
            )])
            .seed(11);
        s.bottleneck = Bandwidth::from_mbps(10);
        s.buffer_bytes = 100_000;
        s.start_jitter = SimDuration::from_millis(100);
        s.warmup = SimDuration::from_secs(1);
        s.duration = SimDuration::from_secs(2);
        s
    }

    #[test]
    fn disabled_watchdog_never_checks() {
        let s = tiny();
        let net = BuiltNetwork::build(&s);
        let mut wd = Watchdog::new(WatchdogConfig::disabled());
        assert!(!wd.check(&net, &s));
        assert_eq!(wd.into_report().checks_run, 0);
    }

    #[test]
    fn clean_run_passes_all_checks() {
        let s = tiny();
        let mut net = BuiltNetwork::build(&s);
        let mut wd = Watchdog::new(WatchdogConfig::every_slice());
        wd.rebaseline(&net);
        for k in 1..=10u64 {
            net.sim
                .run_until(SimTime::ZERO + SimDuration::from_millis(300 * k));
            assert!(!wd.check(&net, &s), "violation at slice {k}");
        }
        let report = wd.into_report();
        assert_eq!(report.checks_run, 10);
        assert!(report.is_clean());
    }

    #[test]
    fn stride_skips_slices() {
        let s = tiny();
        let mut net = BuiltNetwork::build(&s);
        let mut wd = Watchdog::new(WatchdogConfig::every_n(3));
        wd.rebaseline(&net);
        for k in 1..=9u64 {
            net.sim
                .run_until(SimTime::ZERO + SimDuration::from_millis(100 * k));
            wd.check(&net, &s);
        }
        // Slices 1, 4, 7 → 3 passes.
        assert_eq!(wd.into_report().checks_run, 3);
    }

    #[test]
    fn stale_baseline_trips_conservation() {
        let s = tiny();
        let mut net = BuiltNetwork::build(&s);
        let mut wd = Watchdog::new(WatchdogConfig::every_slice());
        wd.rebaseline(&net);
        net.sim.run_until(SimTime::from_secs(1));
        // Corrupt the baseline behind the watchdog's back: the deltas can
        // no longer balance, which is exactly the kind of counter
        // corruption the check exists to catch.
        wd.base[0].arrived += 1000;
        assert!(wd.check(&net, &s));
        let report = wd.into_report();
        assert!(!report.is_clean());
        assert_eq!(report.violations[0].kind, InvariantKind::Conservation);
    }
}
