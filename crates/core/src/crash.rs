//! Crash-bundle capture and replay.
//!
//! When a run fails — a typed [`SimError`] or an outright panic — the
//! guard in this module captures everything needed to reproduce the
//! failure into a self-contained directory:
//!
//! ```text
//! crash-<config-digest>/
//!   scenario.json      complete scenario (flows, seed, fault plan, …)
//!   fault_plan.json    the fault plan alone, for quick inspection
//!   crash.json         manifest: error class, message, watchdog report
//!   trace_tail.jsonl   flight-recorder contents up to the abort, when
//!                      the scenario had tracing enabled
//! ```
//!
//! Because the simulator is deterministic, `scenario.json` plus the seed
//! *is* the reproduction: `ccsim replay <dir>` re-runs it and reports
//! whether the failure recurs (and, for clean replays, the outcome
//! digest). The bundle directory name is the scenario's config digest, so
//! re-crashing the same configuration overwrites rather than accumulates.

use crate::codec::{scenario_from_json, scenario_to_json};
use crate::error::SimError;
use crate::observe::scenario_digest;
use crate::outcome::RunOutcome;
use crate::runner::{try_run_with_progress, Progress};
use crate::scenario::Scenario;
use ccsim_fault::json::{escape, Json, JsonError};
use ccsim_sim::SimTime;
use std::fmt;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// How [`run_guarded`] should behave around a failure.
#[derive(Debug, Clone, Default)]
pub struct GuardOptions {
    /// Directory to write crash bundles under (created on demand). When
    /// `None`, failures are reported but nothing is written.
    pub bundle_dir: Option<PathBuf>,
    /// Test hook: panic from inside the run once the simulated clock
    /// reaches this instant — how CI proves a forced panic really turns
    /// into a loadable, replayable bundle without planting a bug.
    pub force_panic_at: Option<SimTime>,
}

/// A failure caught by [`run_guarded`], with the bundle it produced.
#[derive(Debug)]
pub struct GuardedFailure {
    pub error: SimError,
    /// Path of the written bundle (`None` when no `bundle_dir` was
    /// configured or writing itself failed — then `write_error` says why).
    pub bundle: Option<PathBuf>,
    /// The I/O error that prevented bundle capture, if any.
    pub write_error: Option<io::Error>,
}

impl fmt::Display for GuardedFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.error)?;
        if let Some(dir) = &self.bundle {
            write!(f, " (crash bundle: {})", dir.display())?;
        }
        Ok(())
    }
}

/// Run a scenario with panic capture and crash-bundle writing.
///
/// Typed failures pass through as-is; panics (from anywhere inside the
/// run) are caught and converted to [`SimError::Panic`]. Either way a
/// bundle is written when `opts.bundle_dir` is set.
// The Err variant is cold: it fires at most once per run, on failure.
#[allow(clippy::result_large_err)]
pub fn run_guarded(scenario: &Scenario, opts: &GuardOptions) -> Result<RunOutcome, GuardedFailure> {
    run_guarded_with_progress(scenario, opts, |_| {})
}

/// [`run_guarded`] with a progress callback (composed with the
/// force-panic hook; the callback fires first).
#[allow(clippy::result_large_err)]
pub fn run_guarded_with_progress<F>(
    scenario: &Scenario,
    opts: &GuardOptions,
    mut on_progress: F,
) -> Result<RunOutcome, GuardedFailure>
where
    F: FnMut(&Progress),
{
    let force_at = opts.force_panic_at;
    let result = catch_unwind(AssertUnwindSafe(|| {
        try_run_with_progress(scenario, |p: &Progress| {
            on_progress(p);
            if let Some(t) = force_at {
                if p.now >= t {
                    panic!("forced panic at {} (GuardOptions::force_panic_at)", p.now);
                }
            }
        })
    }));
    let error = match result {
        Ok(Ok(outcome)) => return Ok(outcome),
        Ok(Err(e)) => e,
        Err(payload) => SimError::Panic {
            message: panic_message(payload.as_ref()),
        },
    };
    let (bundle, write_error) = match &opts.bundle_dir {
        None => (None, None),
        Some(dir) => match write_bundle(dir, scenario, &error) {
            Ok(path) => (Some(path), None),
            Err(e) => (None, Some(e)),
        },
    };
    Err(GuardedFailure {
        error,
        bundle,
        write_error,
    })
}

/// Best-effort text of a panic payload (the common `&str`/`String` cases).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Write a bundle for `error` under `base`, returning the bundle path.
pub fn write_bundle(base: &Path, scenario: &Scenario, error: &SimError) -> io::Result<PathBuf> {
    let dir = base.join(format!("crash-{:016x}", scenario_digest(scenario)));
    fs::create_dir_all(&dir)?;
    fs::write(dir.join("scenario.json"), scenario_to_json(scenario))?;
    fs::write(dir.join("fault_plan.json"), scenario.fault.to_json())?;

    let mut manifest = String::with_capacity(256);
    let _ = write!(
        manifest,
        "{{\"schema\":\"ccsim-crash/1\",\"scenario\":\"{}\",\"seed\":{},\
         \"config_digest\":\"{:016x}\",\"error_class\":\"{}\",\"error\":\"{}\"",
        escape(&scenario.name),
        scenario.seed,
        scenario_digest(scenario),
        error.class(),
        escape(&error.to_string())
    );
    if let Some(report) = error.watchdog_report() {
        let _ = write!(
            manifest,
            ",\"checks_run\":{},\"violations\":[",
            report.checks_run
        );
        for (i, v) in report.violations.iter().enumerate() {
            if i > 0 {
                manifest.push(',');
            }
            let _ = write!(
                manifest,
                "{{\"at_ns\":{},\"kind\":\"{}\",\"detail\":\"{}\"}}",
                v.at.as_nanos(),
                v.kind.name(),
                escape(&v.detail)
            );
        }
        manifest.push(']');
    }
    let trace = match error {
        SimError::Invariant { trace, .. } => trace.as_ref(),
        _ => None,
    };
    let _ = write!(
        manifest,
        ",\"trace_records\":{}}}",
        trace.map_or(0, |t| t.records.len())
    );
    fs::write(dir.join("crash.json"), manifest)?;

    if let Some(trace) = trace {
        let mut f = fs::File::create(dir.join("trace_tail.jsonl"))?;
        ccsim_trace::write_jsonl(trace, &mut f)?;
    }
    Ok(dir)
}

/// A loaded crash bundle, ready to replay.
#[derive(Debug)]
pub struct CrashBundle {
    pub dir: PathBuf,
    /// The exact scenario that failed (fault plan and seed included).
    pub scenario: Scenario,
    /// Error class recorded at capture time ("panic", "invariant", …).
    pub error_class: String,
    /// The captured error message.
    pub error: String,
}

/// Why a bundle failed to load.
#[derive(Debug)]
pub enum BundleError {
    Io(io::Error),
    Parse(JsonError),
}

impl fmt::Display for BundleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BundleError::Io(e) => write!(f, "cannot read bundle: {e}"),
            BundleError::Parse(e) => write!(f, "malformed bundle: {e}"),
        }
    }
}

impl std::error::Error for BundleError {}

impl From<io::Error> for BundleError {
    fn from(e: io::Error) -> Self {
        BundleError::Io(e)
    }
}

impl From<JsonError> for BundleError {
    fn from(e: JsonError) -> Self {
        BundleError::Parse(e)
    }
}

impl CrashBundle {
    /// Load a bundle directory written by [`write_bundle`].
    pub fn load(dir: &Path) -> Result<CrashBundle, BundleError> {
        let scenario = scenario_from_json(&fs::read_to_string(dir.join("scenario.json"))?)?;
        let manifest = Json::parse(&fs::read_to_string(dir.join("crash.json"))?)?;
        let field = |key: &str| -> Result<String, BundleError> {
            manifest
                .get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| {
                    BundleError::Parse(JsonError {
                        offset: 0,
                        message: format!("crash.json missing \"{key}\""),
                    })
                })
        };
        Ok(CrashBundle {
            dir: dir.to_path_buf(),
            scenario,
            error_class: field("error_class")?,
            error: field("error")?,
        })
    }

    /// Re-run the captured scenario. Deterministic failures recur with
    /// the same typed error; externally-injected ones (a forced panic)
    /// replay clean and yield the outcome the crashed run never produced.
    pub fn replay(&self) -> Result<RunOutcome, SimError> {
        crate::runner::try_run(&self.scenario)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::FlowGroup;
    use ccsim_cca::CcaKind;
    use ccsim_sim::{Bandwidth, SimDuration};

    fn tiny(seed: u64) -> Scenario {
        let mut s = Scenario::edge_scale()
            .named("crash-tiny")
            .flows(vec![FlowGroup::new(
                CcaKind::Reno,
                2,
                SimDuration::from_millis(20),
            )])
            .seed(seed);
        s.bottleneck = Bandwidth::from_mbps(10);
        s.buffer_bytes = 100_000;
        s.start_jitter = SimDuration::from_millis(100);
        s.warmup = SimDuration::from_secs(1);
        s.duration = SimDuration::from_secs(3);
        s.convergence = None;
        s
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ccsim-crash-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn clean_run_passes_through() {
        let out = run_guarded(&tiny(1), &GuardOptions::default()).unwrap();
        assert!(out.events_processed > 0);
    }

    #[test]
    fn forced_panic_is_caught_and_bundled() {
        let base = temp_dir("panic");
        let opts = GuardOptions {
            bundle_dir: Some(base.clone()),
            force_panic_at: Some(SimTime::from_secs(2)),
        };
        let failure = run_guarded(&tiny(2), &opts).unwrap_err();
        assert!(matches!(failure.error, SimError::Panic { .. }));
        assert!(failure.write_error.is_none());
        let bundle_dir = failure.bundle.unwrap();
        assert!(bundle_dir.join("scenario.json").is_file());
        assert!(bundle_dir.join("fault_plan.json").is_file());
        assert!(bundle_dir.join("crash.json").is_file());

        let bundle = CrashBundle::load(&bundle_dir).unwrap();
        assert_eq!(bundle.error_class, "panic");
        assert!(bundle.error.contains("forced panic"));
        assert_eq!(bundle.scenario.seed, 2);

        // The panic was injected from outside: the replay runs clean and
        // is deterministic.
        let a = bundle.replay().unwrap();
        let b = bundle.replay().unwrap();
        assert_eq!(a.digest(), b.digest());
        let _ = fs::remove_dir_all(&base);
    }

    #[test]
    fn scenario_error_needs_no_unwind() {
        let base = temp_dir("scenario");
        let opts = GuardOptions {
            bundle_dir: Some(base.clone()),
            force_panic_at: None,
        };
        let bad = Scenario::edge_scale().named("empty"); // no flows
        let failure = run_guarded(&bad, &opts).unwrap_err();
        assert!(matches!(failure.error, SimError::Scenario(_)));
        let bundle = CrashBundle::load(&failure.bundle.unwrap()).unwrap();
        assert_eq!(bundle.error_class, "scenario");
        // Deterministic failure: the replay reproduces it.
        assert!(bundle.replay().is_err());
        let _ = fs::remove_dir_all(&base);
    }
}
