//! Experiment results and the derived quantities the paper reports.

use ccsim_analysis::mathis::FlowObservation;
use ccsim_analysis::{group_share, jain_fairness_index};
use ccsim_cca::CcaKind;
use ccsim_sim::{Bandwidth, SimDuration, SimTime};
use ccsim_telemetry::FlowMetrics;
use ccsim_trace::RunTrace;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::{Path, PathBuf};

/// Which interpretation of the Mathis `p` parameter to evaluate (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PInterpretation {
    /// `p` = packet loss rate measured at the bottleneck queue.
    PacketLoss,
    /// `p` = CWND halving (congestion event) rate from end-host state.
    CwndHalving,
}

/// Window-scoped measurements for one bottleneck link of a multi-hop
/// topology (or a single link running a non-default AQM/ECN config).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BottleneckMetrics {
    /// Link index in the scenario's topology description.
    pub link: u32,
    /// The link's label ("bottleneck", "bn0", …).
    pub label: String,
    /// Link utilization over the window (transmitted bits / capacity).
    pub utilization: f64,
    /// Jain's Fairness Index across the flows traversing this link, if
    /// more than zero flows produced throughput.
    pub jfi: Option<f64>,
    /// Packet loss rate at this link's queue over the window.
    pub loss_rate: f64,
    /// Peak queue occupancy at this link in the window (bytes).
    pub max_queue_bytes: u64,
    /// Packets CE-marked by this link's AQM in the window.
    pub ce_marked_pkts: u64,
}

/// The complete result of one scenario run.
///
/// `Debug` is hand-written because [`RunOutcome::digest`] hashes the
/// `Debug` representation: `bottlenecks` is printed **only when
/// non-empty**, so outcomes of configurations that predate the topology
/// subsystem keep their exact historical digests.
#[derive(Clone, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Scenario label.
    pub scenario: String,
    /// Master seed.
    pub seed: u64,
    /// MSS used.
    pub mss: u32,
    /// Bottleneck bandwidth.
    pub bottleneck: Bandwidth,
    /// Per-flow measurement records (window-scoped).
    pub flows: Vec<FlowMetrics>,
    /// Per-flow CCA kinds.
    pub flow_cca: Vec<CcaKind>,
    /// Length of the measurement window.
    pub measured_for: SimDuration,
    /// Whether the convergence rule stopped the run early.
    pub converged: bool,
    /// Final simulated instant.
    pub ended_at: SimTime,
    /// Aggregate packet loss rate at the bottleneck over the window.
    pub aggregate_loss_rate: f64,
    /// Goh–Barabási burstiness of the window's drop train, if computable.
    pub drop_burstiness: Option<f64>,
    /// Peak queue occupancy observed in the window (bytes).
    pub max_queue_bytes: u64,
    /// Total engine events processed (performance diagnostics).
    pub events_processed: u64,
    /// The assembled flight-recorder trace, when the scenario enabled
    /// tracing (see [`ccsim_trace::TraceConfig`]).
    pub trace: Option<RunTrace>,
    /// Per-bottleneck measurements. Empty for the legacy configuration
    /// (single drop-tail bottleneck, no ECN); populated for multi-link
    /// topologies and AQM/ECN runs.
    pub bottlenecks: Vec<BottleneckMetrics>,
}

impl std::fmt::Debug for RunOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("RunOutcome");
        d.field("scenario", &self.scenario)
            .field("seed", &self.seed)
            .field("mss", &self.mss)
            .field("bottleneck", &self.bottleneck)
            .field("flows", &self.flows)
            .field("flow_cca", &self.flow_cca)
            .field("measured_for", &self.measured_for)
            .field("converged", &self.converged)
            .field("ended_at", &self.ended_at)
            .field("aggregate_loss_rate", &self.aggregate_loss_rate)
            .field("drop_burstiness", &self.drop_burstiness)
            .field("max_queue_bytes", &self.max_queue_bytes)
            .field("events_processed", &self.events_processed)
            .field("trace", &self.trace);
        // Digest stability: present only when populated (see type docs).
        if !self.bottlenecks.is_empty() {
            d.field("bottlenecks", &self.bottlenecks);
        }
        d.finish()
    }
}

impl RunOutcome {
    /// Per-flow throughputs in bytes/sec.
    pub fn throughputs(&self) -> Vec<f64> {
        self.flows
            .iter()
            .map(|f| f.throughput_bytes_per_sec)
            .collect()
    }

    /// Aggregate throughput in Mbps.
    pub fn aggregate_throughput_mbps(&self) -> f64 {
        self.flows.iter().map(|f| f.throughput_mbps()).sum()
    }

    /// Bottleneck utilization in the window (aggregate goodput / capacity).
    pub fn utilization(&self) -> f64 {
        let total: f64 = self.flows.iter().map(|f| f.throughput_bytes_per_sec).sum();
        total / self.bottleneck.as_bytes_per_sec()
    }

    /// Jain's Fairness Index across all flows.
    pub fn jain_index(&self) -> Option<f64> {
        jain_fairness_index(&self.throughputs())
    }

    /// Jain's Fairness Index across the flows of one CCA.
    pub fn jain_index_for(&self, cca: CcaKind) -> Option<f64> {
        let xs: Vec<f64> = self
            .flows
            .iter()
            .zip(&self.flow_cca)
            .filter(|(_, &k)| k == cca)
            .map(|(f, _)| f.throughput_bytes_per_sec)
            .collect();
        jain_fairness_index(&xs)
    }

    /// Fraction of total throughput taken by the flows of one CCA
    /// (the Figures 5–8 metric).
    pub fn share_of(&self, cca: CcaKind) -> Option<f64> {
        group_share(&self.throughputs(), |i| self.flow_cca[i] == cca)
    }

    /// Number of flows of `cca`.
    pub fn count_of(&self, cca: CcaKind) -> usize {
        self.flow_cca.iter().filter(|&&k| k == cca).count()
    }

    /// Mathis-model observations for the flows of `cca` under the given
    /// `p` interpretation. Flows that recorded no events under the chosen
    /// interpretation produce `p = 0` and are skipped by the fitter.
    pub fn mathis_observations(&self, cca: CcaKind, p: PInterpretation) -> Vec<FlowObservation> {
        self.flows
            .iter()
            .zip(&self.flow_cca)
            .filter(|(_, &k)| k == cca)
            .map(|(f, _)| FlowObservation {
                throughput_bytes_per_sec: f.throughput_bytes_per_sec,
                rtt_secs: f.base_rtt_secs,
                p: match p {
                    PInterpretation::PacketLoss => f.loss_rate(),
                    PInterpretation::CwndHalving => f.halving_rate(self.mss),
                },
                mss_bytes: self.mss as f64,
            })
            .collect()
    }

    /// Aggregate packet-loss to CWND-halving ratio (the Figure 3 metric):
    /// total window drops at the queue over total congestion events.
    pub fn loss_to_halving_ratio(&self) -> Option<f64> {
        let drops: u64 = self.flows.iter().map(|f| f.queue_drops).sum();
        let halvings: u64 = self.flows.iter().map(|f| f.congestion_events).sum();
        if halvings == 0 {
            return None;
        }
        Some(drops as f64 / halvings as f64)
    }

    /// Mean per-flow throughput in Mbps.
    pub fn mean_throughput_mbps(&self) -> f64 {
        if self.flows.is_empty() {
            return 0.0;
        }
        self.aggregate_throughput_mbps() / self.flows.len() as f64
    }

    /// Start of the measurement window (the warm-up boundary).
    pub fn window_start(&self) -> SimTime {
        self.ended_at - self.measured_for
    }

    /// Loss-event synchronization index of the recorded trace over the
    /// measurement window. `None` without a trace or without events.
    pub fn trace_synchronization_index(&self, bin: SimDuration) -> Option<f64> {
        let trace = self.trace.as_ref()?;
        ccsim_analysis::trace_synchronization_index(trace, self.window_start(), self.ended_at, bin)
    }

    /// Burstiness of the recorded bottleneck drop train, restricted to
    /// the measurement window so it is comparable to
    /// [`RunOutcome::drop_burstiness`] (the trace itself also covers
    /// warm-up). `None` without a trace or with too few drops.
    pub fn trace_drop_burstiness(&self) -> Option<f64> {
        let trace = self.trace.as_ref()?;
        let start = self.window_start();
        let times: Vec<SimTime> = trace
            .drop_times()
            .into_iter()
            .filter(|&t| t >= start)
            .collect();
        ccsim_analysis::burstiness(&times)
    }

    /// Canonical single-line JSON export (hand-rolled: the vendored serde
    /// provides derives but no serializer). This is what `ccsim --json`
    /// prints and what CI smoke checks parse.
    pub fn to_json(&self) -> String {
        let per_flow: Vec<String> = self
            .flows
            .iter()
            .map(|f| {
                format!(
                    "{{\"flow\":{},\"cca\":\"{}\",\"mbps\":{:.4},\"events\":{},\"rtx\":{},\"drops\":{}}}",
                    f.flow,
                    f.cca,
                    f.throughput_mbps(),
                    f.congestion_events,
                    f.retransmits,
                    f.queue_drops
                )
            })
            .collect();
        // `bottlenecks` appears only when populated, keeping the legacy
        // document shape byte-for-byte for legacy configurations.
        let bottlenecks = if self.bottlenecks.is_empty() {
            String::new()
        } else {
            let rows: Vec<String> = self
                .bottlenecks
                .iter()
                .map(|b| {
                    format!(
                        "{{\"link\":{},\"label\":\"{}\",\"utilization\":{:.6},\"jfi\":{},\"loss_rate\":{:.8},\"max_queue_bytes\":{},\"ce_marked\":{}}}",
                        b.link,
                        b.label,
                        b.utilization,
                        b.jfi.map_or("null".into(), |v| format!("{v:.6}")),
                        b.loss_rate,
                        b.max_queue_bytes,
                        b.ce_marked_pkts
                    )
                })
                .collect();
            format!(",\"bottlenecks\":[{}]", rows.join(","))
        };
        format!(
            "{{\"scenario\":\"{}\",\"seed\":{},\"aggregate_mbps\":{:.4},\"utilization\":{:.6},\"loss_rate\":{:.8},\"jfi\":{},\"burstiness\":{},\"events_processed\":{},\"max_queue_bytes\":{},\"converged\":{}{},\"flows\":[{}]}}",
            self.scenario,
            self.seed,
            self.aggregate_throughput_mbps(),
            self.utilization(),
            self.aggregate_loss_rate,
            self.jain_index().map_or("null".into(), |v| format!("{v:.6}")),
            self.drop_burstiness.map_or("null".into(), |v| format!("{v:.4}")),
            self.events_processed,
            self.max_queue_bytes,
            self.converged,
            bottlenecks,
            per_flow.join(",")
        )
    }

    /// FNV-1a digest of the outcome at full precision (over the `Debug`
    /// representation, so every float participates bit-exactly). Two runs
    /// with equal digests produced identical results; the observability
    /// layer's inertness guarantee is stated in terms of this value.
    pub fn digest(&self) -> u64 {
        ccsim_telemetry::fnv1a_64(format!("{self:?}").as_bytes())
    }

    /// Export the recorded trace next to `prefix`: `<prefix>.jsonl` when
    /// `jsonl` is set, `<prefix>.cctr` (columnar binary) when `binary`
    /// is set. Returns the paths written — empty when the run recorded
    /// no trace.
    pub fn export_trace(
        &self,
        prefix: &Path,
        jsonl: bool,
        binary: bool,
    ) -> io::Result<Vec<PathBuf>> {
        let Some(trace) = &self.trace else {
            return Ok(Vec::new());
        };
        let mut written = Vec::new();
        if jsonl {
            let path = prefix.with_extension("jsonl");
            let file = std::fs::File::create(&path)?;
            ccsim_trace::write_jsonl(trace, io::BufWriter::new(file))?;
            written.push(path);
        }
        if binary {
            let path = prefix.with_extension("cctr");
            let file = std::fs::File::create(&path)?;
            ccsim_trace::write_binary(trace, io::BufWriter::new(file))?;
            written.push(path);
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(cca: &str, tput: f64, drops: u64, events: u64) -> FlowMetrics {
        FlowMetrics {
            flow: 0,
            cca: cca.into(),
            base_rtt_secs: 0.02,
            throughput_bytes_per_sec: tput,
            delivered_bytes: (tput * 10.0) as u64,
            data_pkts_sent: 1000,
            retransmits: 10,
            congestion_events: events,
            rtos: 0,
            queue_drops: drops,
            queue_arrivals: 1000,
        }
    }

    fn outcome() -> RunOutcome {
        RunOutcome {
            scenario: "test".into(),
            seed: 0,
            mss: 1448,
            bottleneck: Bandwidth::from_mbps(100),
            flows: vec![
                flow("reno", 4_000_000.0, 20, 5),
                flow("reno", 4_000_000.0, 20, 5),
                flow("cubic", 2_000_000.0, 10, 2),
                flow("cubic", 2_000_000.0, 10, 3),
            ],
            flow_cca: vec![CcaKind::Reno, CcaKind::Reno, CcaKind::Cubic, CcaKind::Cubic],
            measured_for: SimDuration::from_secs(10),
            converged: true,
            ended_at: SimTime::from_secs(30),
            aggregate_loss_rate: 0.015,
            drop_burstiness: Some(0.3),
            max_queue_bytes: 1_000_000,
            events_processed: 12345,
            trace: None,
            bottlenecks: Vec::new(),
        }
    }

    #[test]
    fn shares_and_counts() {
        let o = outcome();
        assert!((o.share_of(CcaKind::Reno).unwrap() - 8.0 / 12.0).abs() < 1e-12);
        assert!((o.share_of(CcaKind::Cubic).unwrap() - 4.0 / 12.0).abs() < 1e-12);
        assert_eq!(o.count_of(CcaKind::Reno), 2);
        assert_eq!(o.count_of(CcaKind::Bbr), 0);
    }

    #[test]
    fn jain_indices() {
        let o = outcome();
        // Within each CCA, flows are equal: JFI = 1.
        assert!((o.jain_index_for(CcaKind::Reno).unwrap() - 1.0).abs() < 1e-12);
        // Across all four (4,4,2,2 M): JFI = 144/(4*40) = 0.9.
        assert!((o.jain_index().unwrap() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn utilization_and_aggregates() {
        let o = outcome();
        // 12 MB/s over 12.5 MB/s capacity.
        assert!((o.utilization() - 0.96).abs() < 1e-12);
        assert!((o.aggregate_throughput_mbps() - 96.0).abs() < 1e-9);
        assert!((o.mean_throughput_mbps() - 24.0).abs() < 1e-9);
    }

    #[test]
    fn mathis_observations_pick_interpretation() {
        let o = outcome();
        let loss = o.mathis_observations(CcaKind::Reno, PInterpretation::PacketLoss);
        assert_eq!(loss.len(), 2);
        assert!((loss[0].p - 0.02).abs() < 1e-12); // 20/1000
        let halving = o.mathis_observations(CcaKind::Reno, PInterpretation::CwndHalving);
        // 5 events / (40 MB / 1448 B) packets.
        let expected = 5.0 / (4_000_000.0 * 10.0 / 1448.0);
        assert!((halving[0].p - expected).abs() < 1e-12);
    }

    #[test]
    fn loss_to_halving_ratio() {
        let o = outcome();
        // (20+20+10+10) / (5+5+2+3) = 60/15 = 4.
        assert!((o.loss_to_halving_ratio().unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_bottlenecks_stay_out_of_debug_and_json() {
        // Digest stability: outcomes with no per-bottleneck records must
        // render exactly as they did before the field existed.
        let o = outcome();
        assert!(!format!("{o:?}").contains("bottlenecks"));
        assert!(!o.to_json().contains("bottlenecks"));

        let mut with = outcome();
        with.bottlenecks.push(BottleneckMetrics {
            link: 1,
            label: "bn1".into(),
            utilization: 0.93,
            jfi: Some(0.88),
            loss_rate: 0.002,
            max_queue_bytes: 500_000,
            ce_marked_pkts: 42,
        });
        let dbg = format!("{with:?}");
        assert!(dbg.contains("bottlenecks"));
        assert_ne!(o.digest(), with.digest());
        let json = with.to_json();
        assert!(json.contains("\"bottlenecks\":[{\"link\":1,\"label\":\"bn1\""));
        assert!(json.contains("\"ce_marked\":42"));
        // The legacy keys keep their relative order either way.
        let legacy = o.to_json();
        assert!(legacy.find("\"converged\"").unwrap() < legacy.find("\"flows\"").unwrap());
    }
}
