//! One module per paper artifact (see DESIGN.md §4 for the index):
//!
//! * [`mathis`] — Table 1, Figure 2, Figure 3, and the drop-burstiness
//!   corroboration of Finding 3.
//! * [`intra`] — Figure 4 (BBR intra-CCA fairness) and Finding 4
//!   (NewReno/Cubic intra-CCA fairness).
//! * [`inter`] — Figure 5 (Cubic vs NewReno) and Figure 8 (N BBR vs N
//!   loss-based).
//! * [`single_bbr`] — Figures 6 and 7 (one BBR flow vs thousands).
//!
//! All experiment functions take an [`ExperimentConfig`] so tests and CI
//! can run reduced grids while the bench binaries run the paper's full
//! parameter sweep.

pub mod grid;
pub mod inter;
pub mod intra;
pub mod mathis;
pub mod single_bbr;

pub use grid::ExperimentConfig;
