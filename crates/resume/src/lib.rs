//! # ccsim-resume — checkpoint container format
//!
//! A checkpoint is the full mutable state of a simulation run frozen at a
//! slice boundary: timer-wheel contents (cancellation slab included),
//! per-link queues and AQM state, fault-injector cursors, per-flow
//! sender/scoreboard/CCA state, every derived RNG stream, and the sim
//! clock. The layers serialize themselves through `ccsim-sim`'s snapshot
//! codec; **this** crate owns the on-disk container those bytes travel
//! in: magic, version, the scenario the state belongs to, and an
//! end-to-end digest so a torn or bit-rotted file is a typed error, never
//! a silently-divergent resume.
//!
//! ## Layout
//!
//! ```text
//! magic    8 B   "CCSNAP\r\n"
//! version  4 B   little-endian u32 (currently 1)
//! scenario       length-prefixed UTF-8 (the run's scenario JSON)
//! taken_at 8 B   sim-time nanoseconds of the capture boundary
//! body           length-prefixed opaque engine+harness state
//! digest   8 B   FNV-1a over every preceding byte
//! ```
//!
//! The scenario rides *inside* the checkpoint so restore can rebuild the
//! component arena deterministically (same ids, same wiring) before
//! overwriting mutable state — and so a checkpoint file is self-contained
//! for the divergence bisector (`ccsim bisect`).
//!
//! Restore correctness contract (enforced by the differential tests in
//! `tests/integration_resume.rs`): `run(0→T)` and
//! `run(0→T/2) → snapshot → restore → run(→T)` produce byte-identical
//! outcome digests.

use ccsim_sim::{SnapError, SnapReader, SnapWriter};
use std::fmt;
use std::path::Path;

/// File magic. The trailing `\r\n` catches text-mode corruption the way
/// PNG's does.
pub const SNAP_MAGIC: [u8; 8] = *b"CCSNAP\r\n";

/// Current container version. Bump on any layout change to the container
/// *or* to the layer encodings inside `body` — a restore across
/// mismatched encodings would not be byte-identical, so it must fail
/// loudly instead.
pub const SNAP_VERSION: u32 = 1;

/// FNV-1a offset basis / prime (the workspace-standard stable hash).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0100_0000_01b3;

/// FNV-1a over a byte string.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Why a checkpoint failed to load. Every variant is a value — loading
/// untrusted bytes (a file torn by a kill mid-write) must never panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResumeError {
    /// The file does not start with [`SNAP_MAGIC`] — not a checkpoint.
    BadMagic,
    /// The container (or the encodings inside it) is from a different
    /// format generation.
    Version {
        /// Version stamped in the file.
        found: u32,
        /// Version this build reads.
        expected: u32,
    },
    /// The buffer ended before a field it promised.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes that remained.
        remaining: usize,
    },
    /// A field held an impossible value.
    Corrupt(String),
    /// The trailing digest does not cover the bytes present — the file
    /// was modified or torn after the length fields.
    DigestMismatch {
        /// Digest stored in the trailer.
        stored: u64,
        /// Digest computed over the file contents.
        computed: u64,
    },
    /// Filesystem-level failure (message carries the `std::io::Error`).
    Io(String),
}

impl fmt::Display for ResumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResumeError::BadMagic => write!(f, "not a ccsim checkpoint (bad magic)"),
            ResumeError::Version { found, expected } => {
                write!(f, "checkpoint version {found}, this build reads {expected}")
            }
            ResumeError::Truncated { needed, remaining } => write!(
                f,
                "checkpoint truncated: needed {needed} bytes, {remaining} remaining"
            ),
            ResumeError::Corrupt(what) => write!(f, "checkpoint corrupt: {what}"),
            ResumeError::DigestMismatch { stored, computed } => write!(
                f,
                "checkpoint digest mismatch: stored {stored:016x}, computed {computed:016x}"
            ),
            ResumeError::Io(e) => write!(f, "checkpoint io: {e}"),
        }
    }
}

impl std::error::Error for ResumeError {}

impl From<SnapError> for ResumeError {
    fn from(e: SnapError) -> ResumeError {
        match e {
            SnapError::Truncated { needed, remaining } => {
                ResumeError::Truncated { needed, remaining }
            }
            SnapError::Corrupt(what) => ResumeError::Corrupt(what),
        }
    }
}

impl From<std::io::Error> for ResumeError {
    fn from(e: std::io::Error) -> ResumeError {
        ResumeError::Io(e.to_string())
    }
}

/// A decoded checkpoint: the scenario it belongs to plus the opaque
/// engine+harness state blob the `ccsim-core` capture/restore layer
/// produces and consumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// The run's scenario, as its canonical JSON — restore rebuilds the
    /// network from this, guaranteeing an identical component arena.
    pub scenario_json: String,
    /// Sim-time nanoseconds of the slice boundary the state was frozen at.
    pub taken_at_nanos: u64,
    /// Layered engine + component + harness state (see
    /// `ccsim_core::checkpoint` for the interior layout).
    pub body: Vec<u8>,
}

impl Checkpoint {
    /// Encode into the self-describing container bytes (digest included).
    /// Encoding is canonical: equal checkpoints encode to equal bytes.
    pub fn encode(&self) -> Vec<u8> {
        // Magic is written raw (not length-prefixed) so the first 8 file
        // bytes are always the literal signature.
        let mut out = Vec::with_capacity(self.body.len() + self.scenario_json.len() + 64);
        out.extend_from_slice(&SNAP_MAGIC);
        out.extend_from_slice(&SNAP_VERSION.to_le_bytes());
        let mut w = SnapWriter::new();
        w.str(&self.scenario_json);
        w.u64(self.taken_at_nanos);
        w.bytes(&self.body);
        out.extend_from_slice(w.as_bytes());
        let digest = fnv1a_64(&out);
        out.extend_from_slice(&digest.to_le_bytes());
        out
    }

    /// Decode container bytes, verifying magic, version, and digest.
    pub fn decode(bytes: &[u8]) -> Result<Checkpoint, ResumeError> {
        if bytes.len() < SNAP_MAGIC.len() {
            return Err(ResumeError::Truncated {
                needed: SNAP_MAGIC.len(),
                remaining: bytes.len(),
            });
        }
        if bytes[..SNAP_MAGIC.len()] != SNAP_MAGIC {
            return Err(ResumeError::BadMagic);
        }
        let rest = &bytes[SNAP_MAGIC.len()..];
        if rest.len() < 4 {
            return Err(ResumeError::Truncated {
                needed: 4,
                remaining: rest.len(),
            });
        }
        let version = u32::from_le_bytes(rest[..4].try_into().unwrap());
        if version != SNAP_VERSION {
            return Err(ResumeError::Version {
                found: version,
                expected: SNAP_VERSION,
            });
        }
        // Digest trailer: the last 8 bytes cover everything before them.
        if bytes.len() < SNAP_MAGIC.len() + 4 + 8 {
            return Err(ResumeError::Truncated {
                needed: 8,
                remaining: bytes.len() - SNAP_MAGIC.len() - 4,
            });
        }
        let (covered, trailer) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(trailer.try_into().unwrap());
        let computed = fnv1a_64(covered);
        if stored != computed {
            return Err(ResumeError::DigestMismatch { stored, computed });
        }
        let mut r = SnapReader::new(&covered[SNAP_MAGIC.len() + 4..]);
        let scenario_json = r.str()?.to_string();
        let taken_at_nanos = r.u64()?;
        let body = r.bytes()?.to_vec();
        if !r.is_exhausted() {
            return Err(ResumeError::Corrupt(format!(
                "{} trailing bytes after checkpoint body",
                r.remaining()
            )));
        }
        Ok(Checkpoint {
            scenario_json,
            taken_at_nanos,
            body,
        })
    }

    /// Digest of the engine+harness state alone (scenario and container
    /// framing excluded). The divergence bisector compares this across
    /// two runs' checkpoints at the same slice.
    pub fn state_digest(&self) -> u64 {
        fnv1a_64(&self.body)
    }

    /// Encoded size in bytes — the figure the run manifest and the
    /// `resume/checkpoint` memory gauge report.
    pub fn encoded_len(&self) -> usize {
        // magic + version + str len + str + taken_at + body len + body + digest
        SNAP_MAGIC.len() + 4 + 8 + self.scenario_json.len() + 8 + 8 + self.body.len() + 8
    }

    /// Write the encoded container to `path` atomically (tmp + rename), so
    /// a kill mid-write leaves either the old file or none — never a torn
    /// checkpoint that could half-load.
    pub fn write_file(&self, path: &Path) -> Result<(), ResumeError> {
        let tmp = path.with_extension("snap.tmp");
        std::fs::write(&tmp, self.encode())?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Read and decode a checkpoint file.
    pub fn read_file(path: &Path) -> Result<Checkpoint, ResumeError> {
        let bytes = std::fs::read(path)?;
        Checkpoint::decode(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            scenario_json: "{\"name\":\"t\"}".to_string(),
            taken_at_nanos: 123_456_789,
            body: (0..=255u8).collect(),
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let cp = sample();
        let bytes = cp.encode();
        assert_eq!(bytes.len(), cp.encoded_len());
        let back = Checkpoint::decode(&bytes).unwrap();
        assert_eq!(back, cp);
        // Canonical: re-encode is a byte fixpoint.
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = sample().encode();
        bytes[0] = b'X';
        assert_eq!(Checkpoint::decode(&bytes), Err(ResumeError::BadMagic));
    }

    #[test]
    fn version_mismatch_is_typed() {
        let mut bytes = sample().encode();
        bytes[8] = 99; // low byte of the version word
        assert_eq!(
            Checkpoint::decode(&bytes),
            Err(ResumeError::Version {
                found: 99,
                expected: SNAP_VERSION
            })
        );
    }

    #[test]
    fn every_truncation_point_is_typed_never_a_panic() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            let err = Checkpoint::decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    ResumeError::Truncated { .. }
                        | ResumeError::DigestMismatch { .. }
                        | ResumeError::Corrupt(_)
                        | ResumeError::BadMagic
                        | ResumeError::Version { .. }
                ),
                "cut at {cut}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn bit_flip_anywhere_fails_the_digest() {
        let bytes = sample().encode();
        // Flip a byte in the body region; the digest trailer catches it.
        let mut flipped = bytes.clone();
        let mid = bytes.len() / 2;
        flipped[mid] ^= 0x40;
        assert!(matches!(
            Checkpoint::decode(&flipped),
            Err(ResumeError::DigestMismatch { .. }) | Err(ResumeError::Corrupt(_))
        ));
    }

    #[test]
    fn file_round_trip_and_read_errors() {
        let dir = std::env::temp_dir().join(format!("ccsim-resume-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a.snap");
        let cp = sample();
        cp.write_file(&path).unwrap();
        assert_eq!(Checkpoint::read_file(&path).unwrap(), cp);
        let missing = dir.join("missing.snap");
        assert!(matches!(
            Checkpoint::read_file(&missing),
            Err(ResumeError::Io(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fnv_known_vectors() {
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
