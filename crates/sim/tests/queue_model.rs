//! Model-based property test: the event queue must behave exactly like a
//! sorted-by-(time, insertion-order) reference implementation.

use ccsim_sim::{ComponentId, EventQueue, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn matches_reference_model(
        ops in prop::collection::vec((0u8..4, 0u64..1_000), 1..400),
    ) {
        let mut queue: EventQueue<u64> = EventQueue::new();
        // Reference: Vec kept sorted by (time, seq).
        let mut model: Vec<(u64, u64, u64)> = Vec::new(); // (time, seq, payload)
        let mut seq = 0u64;
        let mut payload = 0u64;
        for (op, t) in ops {
            if op == 0 && !model.is_empty() {
                // Pop from both; compare.
                let got = queue.pop().expect("queue non-empty");
                let idx = model
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &(time, s, _))| (time, s))
                    .map(|(i, _)| i)
                    .unwrap();
                let (mt, _, mp) = model.remove(idx);
                prop_assert_eq!(got.time, SimTime::from_nanos(mt));
                prop_assert_eq!(got.msg, mp);
            } else {
                queue.schedule(SimTime::from_nanos(t), ComponentId::from_raw(0), payload);
                model.push((t, seq, payload));
                seq += 1;
                payload += 1;
            }
            prop_assert_eq!(queue.len(), model.len());
        }
        // Drain: remaining pops must match the model order exactly.
        model.sort_by_key(|&(time, s, _)| (time, s));
        for &(mt, _, mp) in &model {
            let got = queue.pop().unwrap();
            prop_assert_eq!(got.time, SimTime::from_nanos(mt));
            prop_assert_eq!(got.msg, mp);
        }
        prop_assert!(queue.pop().is_none());
    }
}
