//! Model-based property test: the event queue must behave exactly like a
//! sorted-by-(time, insertion-order) reference implementation — including
//! under cancellation, where a cancelled entry must vanish from the
//! observable sequence without perturbing the order of survivors.

use ccsim_sim::{CancelToken, ComponentId, EventQueue, SimTime};
use proptest::prelude::*;

struct Entry {
    time: u64,
    seq: u64,
    payload: u64,
    /// Index into the test's token table for cancellable entries.
    token: Option<usize>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn matches_reference_model(
        ops in prop::collection::vec((0u8..6, 0u64..1_000), 1..400),
    ) {
        let mut queue: EventQueue<u64> = EventQueue::new();
        // Reference: Vec kept sorted by (time, seq).
        let mut model: Vec<Entry> = Vec::new();
        let mut tokens: Vec<CancelToken> = Vec::new();
        let mut seq = 0u64;
        let mut payload = 0u64;
        for (op, t) in ops {
            match op {
                0 if !model.is_empty() => {
                    // Pop from both; compare.
                    let got = queue.pop().expect("queue non-empty");
                    let idx = model
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| (e.time, e.seq))
                        .map(|(i, _)| i)
                        .unwrap();
                    let e = model.remove(idx);
                    prop_assert_eq!(got.time, SimTime::from_nanos(e.time));
                    prop_assert_eq!(got.msg, e.payload);
                    // A delivered event's token must no longer read as
                    // pending (the in-handler cancellation guard).
                    if let Some(ti) = e.token {
                        prop_assert!(!queue.is_pending(tokens[ti]));
                    }
                }
                1..=3 => {
                    queue.schedule(SimTime::from_nanos(t), ComponentId::from_raw(0), payload);
                    model.push(Entry { time: t, seq, payload, token: None });
                    seq += 1;
                    payload += 1;
                }
                4 => {
                    let tok = queue.schedule_cancellable(
                        SimTime::from_nanos(t),
                        ComponentId::from_raw(0),
                        payload,
                    );
                    prop_assert!(queue.is_pending(tok));
                    model.push(Entry { time: t, seq, payload, token: Some(tokens.len()) });
                    tokens.push(tok);
                    seq += 1;
                    payload += 1;
                }
                _ => {
                    if tokens.is_empty() {
                        continue;
                    }
                    // Cancel an arbitrary historical token; it succeeds
                    // exactly when the entry is still in the model.
                    let ti = t as usize % tokens.len();
                    let live = model.iter().position(|e| e.token == Some(ti));
                    prop_assert_eq!(queue.cancel(tokens[ti]), live.is_some());
                    prop_assert!(!queue.is_pending(tokens[ti]));
                    if let Some(idx) = live {
                        model.remove(idx);
                    }
                }
            }
            prop_assert_eq!(queue.len(), model.len());
        }
        // Drain: remaining pops must match the model order exactly.
        model.sort_by_key(|e| (e.time, e.seq));
        for e in &model {
            let got = queue.pop().unwrap();
            prop_assert_eq!(got.time, SimTime::from_nanos(e.time));
            prop_assert_eq!(got.msg, e.payload);
        }
        prop_assert!(queue.pop().is_none());
    }
}
