//! Property tests for the float-scaling and rate-conversion arithmetic:
//! `Bandwidth::mul_f64` / `SimDuration::mul_f64` must be exact over the
//! full `u64` range (the naive `u64 -> f64 -> u64` round-trip silently
//! corrupts values above 2^53), and the bytes/duration conversions must
//! round-trip within their documented truncation bounds.

use ccsim_sim::{Bandwidth, SimDuration};
use proptest::prelude::*;

/// The old (buggy above 2^53) formula, kept verbatim: results below 2^53
/// are frozen into run digests, so the fixed path must match it there.
fn legacy_trunc(x: u64, k: f64) -> u64 {
    let v = x as f64 * k;
    if v >= u64::MAX as f64 {
        u64::MAX
    } else {
        v as u64
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Unity gain is the identity everywhere — the exact bug the f64
    /// round-trip had (2^53 + 1 came back as 2^53).
    #[test]
    fn unity_gain_is_identity(x in 0u64..u64::MAX) {
        prop_assert_eq!(Bandwidth::from_bps(x).mul_f64(1.0).as_bps(), x);
        prop_assert_eq!(SimDuration::from_nanos(x).mul_f64(1.0).as_nanos(), x);
    }

    /// Power-of-two gains are exact bit shifts over the full range
    /// (truncating for Bandwidth; SimDuration rounds half away from zero).
    #[test]
    fn power_of_two_gains_are_shifts(x in 0u64..u64::MAX, shift in 1u32..10) {
        let down = 0.5f64.powi(shift as i32);
        prop_assert_eq!(Bandwidth::from_bps(x).mul_f64(down).as_bps(), x >> shift);
        let up = 2.0f64.powi(shift as i32);
        let expect = (x as u128) << shift;
        prop_assert_eq!(
            Bandwidth::from_bps(x).mul_f64(up).as_bps() as u128,
            expect.min(u64::MAX as u128)
        );
    }

    /// Small integer gains agree with exact 128-bit integer arithmetic
    /// over the full u64 range (saturating).
    #[test]
    fn integer_gains_match_u128_reference(x in 0u64..u64::MAX, n in 0u64..1024) {
        let exact = (x as u128 * n as u128).min(u64::MAX as u128) as u64;
        prop_assert_eq!(Bandwidth::from_bps(x).mul_f64(n as f64).as_bps(), exact);
    }

    /// Below 2^53 the fixed path must be bit-identical to the historical
    /// f64 formula: those results are baked into frozen run digests.
    #[test]
    fn small_values_keep_legacy_rounding(
        x in 0u64..(1 << 53),
        num in 0u64..(1 << 20),
        den in 1u64..(1 << 20),
    ) {
        let k = num as f64 / den as f64;
        prop_assert_eq!(Bandwidth::from_bps(x).mul_f64(k).as_bps(), legacy_trunc(x, k));
    }

    /// Scaling is monotone in x for any fixed non-negative gain.
    #[test]
    fn scaling_is_monotone(
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        num in 0u64..(1 << 24),
        den in 1u64..(1 << 12),
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let k = num as f64 / den as f64;
        prop_assert!(Bandwidth::from_bps(lo).mul_f64(k) <= Bandwidth::from_bps(hi).mul_f64(k));
        prop_assert!(
            SimDuration::from_nanos(lo).mul_f64(k) <= SimDuration::from_nanos(hi).mul_f64(k)
        );
    }

    /// A delivery-rate measurement round-trips: reconstructing the byte
    /// count over the same window truncates by at most the bits lost to
    /// the two integer divisions (one byte plus one nanosecond's worth).
    #[test]
    fn from_bytes_per_round_trips(
        bytes in 0u64..(1 << 40),
        dur_ns in 1u64..(365 * 24 * 3600 * 1_000_000_000),
    ) {
        let dur = SimDuration::from_nanos(dur_ns);
        let rate = Bandwidth::from_bytes_per(bytes, dur).unwrap();
        let back = rate.bytes_in(dur);
        prop_assert!(back <= bytes, "reconstruction must truncate, not invent bytes");
        // Loss bound: < 1 byte from the bps truncation spread over the
        // window, plus < 1 byte from the final division.
        let max_loss = dur_ns.div_ceil(1_000_000_000) / 8 + 2;
        prop_assert!(
            bytes - back <= max_loss,
            "lost {} of {} bytes (window {} ns)",
            bytes - back,
            bytes,
            dur_ns
        );
    }

    /// Serialization time is long enough: the link can move at least the
    /// requested bytes in the returned (rounded-up) span.
    #[test]
    fn serialization_time_never_undershoots(
        bytes in 1u64..(1 << 32),
        bps in 1u64..(1 << 45),
    ) {
        let rate = Bandwidth::from_bps(bps);
        let t = rate.serialization_time(bytes);
        prop_assert!(rate.bytes_in(t) >= bytes.saturating_sub(1));
        // And it is tight: one nanosecond less cannot carry the payload.
        if t.as_nanos() > 1 {
            let t_minus = SimDuration::from_nanos(t.as_nanos() - 1);
            prop_assert!(rate.bytes_in(t_minus) <= bytes);
        }
    }
}
