//! Observational equivalence: the tiered timer-wheel scheduler
//! ([`EventQueue`]) must be indistinguishable from the reference binary
//! heap ([`HeapQueue`]) under any interleaving of schedules (including
//! same-timestamp ties and inserts at or before the current dequeue
//! tick), cancellations (including of already-delivered events, the
//! in-handler race the token generations guard), pops, and batch
//! extractions. The engine's determinism guarantee — byte-identical run
//! digests across the scheduler swap — reduces to exactly this property.

use ccsim_sim::{CancelToken, ComponentId, EventQueue, HeapQueue, SimTime};
use proptest::prelude::*;
use std::collections::VecDeque;

#[derive(Debug, Clone, Copy)]
enum Op {
    Schedule(u64),
    ScheduleCancellable(u64),
    Cancel(u64),
    Pop,
    Batch,
    BatchUntil(u64),
}

fn decode(op: u8, t: u64) -> Op {
    match op % 6 {
        0 => Op::Schedule(t),
        1 => Op::ScheduleCancellable(t),
        2 => Op::Cancel(t),
        3 => Op::Pop,
        4 => Op::Batch,
        _ => Op::BatchUntil(t),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn wheel_and_heap_are_observationally_identical(
        // Times from a tiny range so same-timestamp ties are the common
        // case, not the exception; ~2:1 insert:remove mix keeps both
        // queues populated.
        raw_ops in prop::collection::vec((0u8..6, 0u64..64), 1..600),
    ) {
        let dst = ComponentId::from_raw(0);
        let mut wheel: EventQueue<u64> = EventQueue::new();
        let mut heap: HeapQueue<u64> = HeapQueue::new();
        // Parallel token pairs, index-aligned across the two queues.
        let mut tokens: Vec<(CancelToken, CancelToken)> = Vec::new();
        let mut payload = 0u64;
        let mut wheel_batch = VecDeque::new();
        let mut heap_batch = VecDeque::new();
        for (op, t) in raw_ops {
            match decode(op, t) {
                Op::Schedule(t) => {
                    let at = SimTime::from_nanos(t);
                    wheel.schedule(at, dst, payload);
                    heap.schedule(at, dst, payload);
                    payload += 1;
                }
                Op::ScheduleCancellable(t) => {
                    let at = SimTime::from_nanos(t);
                    let wt = wheel.schedule_cancellable(at, dst, payload);
                    let ht = heap.schedule_cancellable(at, dst, payload);
                    tokens.push((wt, ht));
                    payload += 1;
                }
                Op::Cancel(pick) => {
                    if tokens.is_empty() {
                        continue;
                    }
                    // Deliberately includes tokens whose events were
                    // already popped or cancelled: both queues must agree
                    // that those cancels are no-ops (return false).
                    let (wt, ht) = tokens[pick as usize % tokens.len()];
                    prop_assert_eq!(wheel.is_pending(wt), heap.is_pending(ht));
                    prop_assert_eq!(wheel.cancel(wt), heap.cancel(ht));
                    prop_assert!(!wheel.is_pending(wt));
                    prop_assert!(!heap.is_pending(ht));
                }
                Op::Pop => {
                    match (wheel.pop(), heap.pop()) {
                        (None, None) => {}
                        (Some(w), Some(h)) => {
                            prop_assert_eq!(w.time, h.time);
                            prop_assert_eq!(w.msg, h.msg);
                            prop_assert_eq!(w.dst, h.dst);
                        }
                        (w, h) => panic!(
                            "pop disagreement: wheel={:?} heap={:?}",
                            w.map(|e| e.msg),
                            h.map(|e| e.msg)
                        ),
                    }
                }
                Op::Batch => {
                    wheel_batch.clear();
                    heap_batch.clear();
                    let nw = wheel.take_head_batch(&mut wheel_batch);
                    let nh = heap.take_head_batch(&mut heap_batch);
                    prop_assert_eq!(nw, nh);
                    for (w, h) in wheel_batch.iter().zip(heap_batch.iter()) {
                        prop_assert_eq!(w.time, h.time);
                        prop_assert_eq!(w.msg, h.msg);
                    }
                }
                Op::BatchUntil(t) => {
                    wheel_batch.clear();
                    heap_batch.clear();
                    let deadline = SimTime::from_nanos(t);
                    let nw = wheel.take_head_batch_until(deadline, &mut wheel_batch);
                    let nh = heap.take_head_batch_until(deadline, &mut heap_batch);
                    prop_assert_eq!(nw, nh);
                    for (w, h) in wheel_batch.iter().zip(heap_batch.iter()) {
                        prop_assert_eq!(w.time, h.time);
                        prop_assert_eq!(w.msg, h.msg);
                    }
                }
            }
            prop_assert_eq!(wheel.peek_time(), heap.peek_time());
            prop_assert_eq!(wheel.len(), heap.len());
        }
        // Drain both: the full remaining order must match event by event.
        loop {
            match (wheel.pop(), heap.pop()) {
                (None, None) => break,
                (Some(w), Some(h)) => {
                    prop_assert_eq!(w.time, h.time);
                    prop_assert_eq!(w.msg, h.msg);
                }
                _ => panic!("drain length mismatch"),
            }
        }
    }

    /// Same property at wide, wheel-level-crossing time scales: delays
    /// spanning nanoseconds to minutes exercise every level of the
    /// hierarchy and the cascade path, not just slot-0 ties.
    #[test]
    fn equivalence_holds_across_wheel_levels(
        raw_ops in prop::collection::vec((0u8..6, 0u64..40), 1..300),
        scale_bits in 0u32..40,
    ) {
        let dst = ComponentId::from_raw(3);
        let mut wheel: EventQueue<u64> = EventQueue::new();
        let mut heap: HeapQueue<u64> = HeapQueue::new();
        let mut payload = 0u64;
        let mut now = 0u64;
        for (op, t) in raw_ops {
            // Spread times across wheel levels; popping advances `now`
            // so later schedules land at or after the current tick.
            let at = SimTime::from_nanos(now + (t << (t as u32 % (scale_bits + 1))));
            match op % 3 {
                0 | 1 => {
                    wheel.schedule(at, dst, payload);
                    heap.schedule(at, dst, payload);
                    payload += 1;
                }
                _ => match (wheel.pop(), heap.pop()) {
                    (None, None) => {}
                    (Some(w), Some(h)) => {
                        prop_assert_eq!(w.time, h.time);
                        prop_assert_eq!(w.msg, h.msg);
                        now = w.time.as_nanos();
                    }
                    _ => panic!("pop disagreement"),
                },
            }
        }
        loop {
            match (wheel.pop(), heap.pop()) {
                (None, None) => break,
                (Some(w), Some(h)) => {
                    prop_assert_eq!(w.time, h.time);
                    prop_assert_eq!(w.msg, h.msg);
                }
                _ => panic!("drain length mismatch"),
            }
        }
    }
}
