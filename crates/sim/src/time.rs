//! Virtual time: nanosecond-resolution instants and durations.
//!
//! `SimTime` is an absolute instant on the simulation clock (nanoseconds
//! since simulation start); `SimDuration` is a span between instants. Both
//! wrap a `u64`, giving ~584 simulated years of range — far beyond any
//! experiment horizon — while staying `Copy` and trivially comparable.
//!
//! Arithmetic is checked in debug builds (standard Rust overflow semantics);
//! saturating helpers are provided where wraparound would otherwise be a
//! plausible hazard (e.g. subtracting a warm-up offset from an early event).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Nanoseconds in one microsecond.
pub const NANOS_PER_MICRO: u64 = 1_000;
/// Nanoseconds in one millisecond.
pub const NANOS_PER_MILLI: u64 = 1_000_000;
/// Nanoseconds in one second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An absolute instant on the simulation clock, in nanoseconds since start.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinitely far away"
    /// sentinel for disarmed timers.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * NANOS_PER_MICRO)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * NANOS_PER_MILLI)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds (rounds to nearest nanosecond).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0 && s.is_finite(), "negative or non-finite time");
        SimTime((s * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Raw nanoseconds since the epoch.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as `f64` (lossy beyond ~2^53 ns).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is actually later (e.g. comparing against a warm-up boundary).
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked subtraction of two instants.
    #[inline]
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Add a duration, saturating at [`SimTime::MAX`].
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable span; used as an "infinite" timeout.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * NANOS_PER_MICRO)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * NANOS_PER_MILLI)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds (rounds to nearest nanosecond).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0 && s.is_finite(), "negative or non-finite duration");
        SimDuration((s * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole milliseconds (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / NANOS_PER_MILLI
    }

    /// Seconds as `f64`.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// True iff this is the zero-length span.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiply by a non-negative float, rounding to nearest nanosecond.
    /// Saturates at `SimDuration::MAX`.
    #[inline]
    pub fn mul_f64(self, k: f64) -> SimDuration {
        debug_assert!(k >= 0.0 && k.is_finite(), "negative or non-finite factor");
        if self.0 < F64_EXACT_LIMIT {
            let ns = self.0 as f64 * k;
            if ns >= u64::MAX as f64 {
                SimDuration::MAX
            } else {
                SimDuration(ns.round() as u64)
            }
        } else {
            SimDuration(mul_u64_f64(self.0, k, true))
        }
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

/// Largest `u64` magnitude below which the `u64 -> f64` cast is exact
/// (2^53). Float-scaling helpers keep the plain f64 product below this —
/// it is exact there and its rounding is frozen into run digests — and
/// switch to the 128-bit integer route above it.
pub(crate) const F64_EXACT_LIMIT: u64 = 1 << 53;

/// Exact `x * k` for a non-negative finite `k`: decomposes `k` into its
/// IEEE-754 mantissa and exponent and multiplies in 128-bit integer
/// arithmetic, so no precision is lost for `x >= 2^53` (where the naive
/// `(x as f64 * k) as u64` round-trip silently misplaces up to 2^11
/// units). Truncates toward zero, or rounds to nearest (ties away from
/// zero, matching `f64::round`) when `round_nearest` is set; saturates at
/// `u64::MAX`.
pub(crate) fn mul_u64_f64(x: u64, k: f64, round_nearest: bool) -> u64 {
    debug_assert!(k >= 0.0 && k.is_finite(), "negative or non-finite factor");
    if x == 0 || k == 0.0 {
        return 0;
    }
    let bits = k.to_bits();
    let raw_exp = ((bits >> 52) & 0x7ff) as i64;
    let frac = bits & ((1u64 << 52) - 1);
    // k = mant * 2^exp with mant an integer below 2^53.
    let (mant, exp) = if raw_exp == 0 {
        (frac, -1074i64) // subnormal: no implicit leading bit
    } else {
        (frac | (1u64 << 52), raw_exp - 1075)
    };
    if mant == 0 {
        return 0;
    }
    let prod = x as u128 * mant as u128; // < 2^117: cannot overflow u128
    let val = if exp >= 0 {
        // Left shifts only grow the value; anything shifted past the top
        // bit is far beyond u64 range already.
        if exp as u32 > prod.leading_zeros() {
            u128::MAX
        } else {
            prod << exp as u32
        }
    } else if -exp >= 128 {
        // prod < 2^117 and the shift eats >= 128 bits: the true value is
        // below 2^-11, which rounds (either mode) to zero.
        0
    } else {
        let s = (-exp) as u32;
        if round_nearest {
            (prod + (1u128 << (s - 1))) >> s // prod < 2^117: cannot overflow
        } else {
            prod >> s
        }
    };
    val.min(u64::MAX as u128) as u64
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", format_ns(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

/// Human-readable rendering with an adaptive unit.
fn format_ns(ns: u64) -> String {
    if ns == u64::MAX {
        "inf".to_owned()
    } else if ns >= NANOS_PER_SEC {
        format!("{:.6}s", ns as f64 / NANOS_PER_SEC as f64)
    } else if ns >= NANOS_PER_MILLI {
        format!("{:.3}ms", ns as f64 / NANOS_PER_MILLI as f64)
    } else if ns >= NANOS_PER_MICRO {
        format!("{:.3}us", ns as f64 / NANOS_PER_MICRO as f64)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2 * NANOS_PER_SEC);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3 * NANOS_PER_MILLI);
        assert_eq!(SimTime::from_micros(4).as_nanos(), 4 * NANOS_PER_MICRO);
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10);
        let d = SimDuration::from_millis(5);
        assert_eq!(t + d, SimTime::from_millis(15));
        assert_eq!(t - d, SimTime::from_millis(5));
        assert_eq!((t + d) - t, d);
        assert_eq!(d * 3, SimDuration::from_millis(15));
        assert_eq!(d / 5, SimDuration::from_millis(1));
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(9);
        assert_eq!(late.saturating_since(early), SimDuration::from_millis(8));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(early.checked_since(late), None);
    }

    #[test]
    fn float_conversions() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
        let d = SimDuration::from_secs_f64(0.25).mul_f64(2.0);
        assert_eq!(d, SimDuration::from_millis(500));
    }

    #[test]
    fn mul_f64_saturates() {
        assert_eq!(SimDuration::MAX.mul_f64(2.0), SimDuration::MAX);
    }

    #[test]
    fn mul_f64_is_exact_above_f64_mantissa_range() {
        // Unity must be the identity over the full range; the old f64
        // round-trip returned 2^53 for 2^53 + 1.
        let d = SimDuration::from_nanos((1 << 53) + 1);
        assert_eq!(d.mul_f64(1.0), d);
        assert_eq!(SimDuration::MAX.mul_f64(1.0), SimDuration::MAX);
        // Halving a huge duration rounds to nearest, ties away from zero
        // (odd value: true result ends in .5).
        let odd = SimDuration::from_nanos((1 << 60) + 1);
        assert_eq!(odd.mul_f64(0.5).as_nanos(), (1u64 << 59) + 1);
        // RTO-style backoff on a large span stays exact.
        let x = (1u64 << 58) + 3;
        assert_eq!(
            SimDuration::from_nanos(x).mul_f64(1.5).as_nanos(),
            (x as u128 * 3 / 2 + 1) as u64 // true value ends in .5: rounds up
        );
    }

    #[test]
    fn mul_u64_f64_handles_subnormal_and_tiny_factors() {
        // Smallest positive subnormal: 2^-1074. Any u64 times it rounds
        // to zero in both modes.
        let tiny = f64::from_bits(1);
        assert_eq!(mul_u64_f64(u64::MAX, tiny, false), 0);
        assert_eq!(mul_u64_f64(u64::MAX, tiny, true), 0);
        assert_eq!(mul_u64_f64(u64::MAX, 0.0, true), 0);
        // A factor large enough to saturate from any nonzero x.
        assert_eq!(mul_u64_f64(1, f64::MAX, false), u64::MAX);
    }

    #[test]
    fn display_picks_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(5)), "5ns");
        assert_eq!(format!("{}", SimDuration::from_micros(5)), "5.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(5)), "5.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(5)), "5.000000s");
        assert_eq!(format!("{}", SimDuration::MAX), "inf");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimTime::MAX > SimTime::from_secs(1_000_000));
        assert!(SimDuration::ZERO < SimDuration::from_nanos(1));
    }
}
