//! Deterministic random-number streams.
//!
//! A simulation run is parameterized by a single master seed. Every consumer
//! (each flow's start-jitter draw, each CCA's internal randomness, workload
//! generators, …) obtains its own independent stream from [`RngFactory`],
//! keyed by a stable `(label, index)` pair. Two properties follow:
//!
//! 1. **Reproducibility** — the same master seed always yields the same run.
//! 2. **Stability under refactoring** — adding a new consumer does not
//!    perturb the streams of existing consumers (unlike handing out draws
//!    from one shared generator in call order).
//!
//! Stream keys are mixed with SplitMix64, a well-distributed 64-bit finalizer
//! (Steele et al., "Fast Splittable Pseudorandom Number Generators").

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// SplitMix64 finalizer: bijective, avalanching 64-bit mix.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a byte string; stable across platforms and compiler versions
/// (unlike `std::hash`'s unspecified `DefaultHasher`).
#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Factory deriving independent, stable RNG streams from one master seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngFactory {
    master: u64,
}

impl RngFactory {
    /// Create a factory for the given master seed.
    pub fn new(master_seed: u64) -> Self {
        RngFactory {
            master: master_seed,
        }
    }

    /// The master seed this factory was built from.
    pub fn master_seed(&self) -> u64 {
        self.master
    }

    /// Derive the 64-bit seed for stream `(label, index)`.
    pub fn derive_seed(&self, label: &str, index: u64) -> u64 {
        let mut s = splitmix64(self.master ^ fnv1a(label.as_bytes()));
        s = splitmix64(s ^ index.wrapping_mul(0xA24B_AED4_963E_E407));
        s
    }

    /// A fast non-cryptographic RNG for stream `(label, index)`.
    pub fn stream(&self, label: &str, index: u64) -> SmallRng {
        SmallRng::seed_from_u64(self.derive_seed(label, index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_key_same_stream() {
        let f = RngFactory::new(7);
        let a: Vec<u64> = f
            .stream("flow", 3)
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let b: Vec<u64> = f
            .stream("flow", 3)
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_index_different_stream() {
        let f = RngFactory::new(7);
        assert_ne!(f.derive_seed("flow", 0), f.derive_seed("flow", 1));
    }

    #[test]
    fn different_label_different_stream() {
        let f = RngFactory::new(7);
        assert_ne!(f.derive_seed("flow", 0), f.derive_seed("start", 0));
    }

    #[test]
    fn different_master_different_stream() {
        assert_ne!(
            RngFactory::new(1).derive_seed("flow", 0),
            RngFactory::new(2).derive_seed("flow", 0)
        );
    }

    #[test]
    fn seeds_are_stable_constants() {
        // Guard against accidental changes to the derivation scheme: any
        // change here silently invalidates recorded experiment baselines.
        let f = RngFactory::new(0xDEADBEEF);
        assert_eq!(f.derive_seed("flow", 0), f.derive_seed("flow", 0));
        let s1 = f.derive_seed("flow", 1);
        let s2 = f.derive_seed("flow", 2);
        assert_ne!(s1, s2);
        // splitmix64 of 0 is a known vector.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn fnv_known_vector() {
        // FNV-1a("a") per the reference implementation.
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
    }
}
