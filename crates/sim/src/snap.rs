//! Binary snapshot codec for deterministic checkpoint/restore.
//!
//! Every piece of mutable engine state — timer-wheel entries, component
//! fields, RNG streams — serializes through [`SnapWriter`] and
//! deserializes through [`SnapReader`]. The encoding is deliberately
//! boring: fixed-width little-endian integers, IEEE-754 bit patterns for
//! floats, and length-prefixed byte strings. Boring is the point — a
//! restore must reproduce the *exact* bytes of pre-snapshot state, so the
//! codec must never normalize, canonicalize, or round.
//!
//! Reads are total: a truncated or corrupt buffer yields a typed
//! [`SnapError`], never a panic. Higher layers (the `ccsim-resume` crate)
//! wrap these primitives in a versioned, digest-stamped container; this
//! module knows nothing about files or versions.

use crate::time::{SimDuration, SimTime};
use std::fmt;

/// A typed decode failure. Snapshot loading is driven by untrusted bytes
/// (a file that may be torn mid-write), so every failure mode is a value,
/// not a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The buffer ended before the requested field.
    Truncated {
        /// Bytes requested by the read.
        needed: usize,
        /// Bytes remaining in the buffer.
        remaining: usize,
    },
    /// A tag, discriminant, or count field held an impossible value.
    Corrupt(String),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Truncated { needed, remaining } => write!(
                f,
                "snapshot truncated: needed {needed} bytes, {remaining} remaining"
            ),
            SnapError::Corrupt(what) => write!(f, "snapshot corrupt: {what}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// Appends fixed-width fields to a growable byte buffer.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> SnapWriter {
        SnapWriter::default()
    }

    /// The encoded bytes so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consume the writer, yielding the encoded buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True iff nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Append a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as a `u64` (platform-independent width).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Append an `f64` as its exact IEEE-754 bit pattern — restore must be
    /// bit-identical, so floats are never formatted or rounded.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Append a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Append a [`SimTime`] (nanoseconds since t=0).
    pub fn time(&mut self, t: SimTime) {
        self.u64(t.as_nanos());
    }

    /// Append a [`SimDuration`] (nanoseconds).
    pub fn duration(&mut self, d: SimDuration) {
        self.u64(d.as_nanos());
    }

    /// Append `Some`/`None` as a tag byte followed by the value.
    pub fn opt<T>(&mut self, v: Option<T>, mut f: impl FnMut(&mut SnapWriter, T)) {
        match v {
            Some(v) => {
                self.u8(1);
                f(self, v);
            }
            None => self.u8(0),
        }
    }

    /// Append a length-prefixed sequence.
    pub fn seq<T>(&mut self, items: &[T], mut f: impl FnMut(&mut SnapWriter, &T)) {
        self.u64(items.len() as u64);
        for item in items {
            f(self, item);
        }
    }
}

/// Reads fields back out of a snapshot buffer, in write order.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> SnapReader<'a> {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True iff every byte has been consumed — loaders check this to
    /// reject trailing garbage.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Read a bool; any byte other than 0/1 is corrupt.
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapError::Corrupt(format!("bool byte {b}"))),
        }
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, SnapError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a `usize` written by [`SnapWriter::usize`]; rejects values
    /// that do not fit the platform's pointer width.
    pub fn usize(&mut self) -> Result<usize, SnapError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapError::Corrupt(format!("usize overflow: {v}")))
    }

    /// Read an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let len = self.usize()?;
        self.take(len)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, SnapError> {
        std::str::from_utf8(self.bytes()?)
            .map_err(|e| SnapError::Corrupt(format!("invalid utf-8: {e}")))
    }

    /// Read a [`SimTime`].
    pub fn time(&mut self) -> Result<SimTime, SnapError> {
        Ok(SimTime::from_nanos(self.u64()?))
    }

    /// Read a [`SimDuration`].
    pub fn duration(&mut self) -> Result<SimDuration, SnapError> {
        Ok(SimDuration::from_nanos(self.u64()?))
    }

    /// Read an option written by [`SnapWriter::opt`].
    pub fn opt<T>(
        &mut self,
        mut f: impl FnMut(&mut SnapReader<'a>) -> Result<T, SnapError>,
    ) -> Result<Option<T>, SnapError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(f(self)?)),
            b => Err(SnapError::Corrupt(format!("option tag {b}"))),
        }
    }

    /// Read a sequence written by [`SnapWriter::seq`]. The element size
    /// floor (1 byte) bounds the allocation a corrupt length can demand.
    pub fn seq<T>(
        &mut self,
        mut f: impl FnMut(&mut SnapReader<'a>) -> Result<T, SnapError>,
    ) -> Result<Vec<T>, SnapError> {
        let len = self.usize()?;
        if len > self.remaining() {
            return Err(SnapError::Truncated {
                needed: len,
                remaining: self.remaining(),
            });
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(f(self)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut w = SnapWriter::new();
        w.u8(7);
        w.bool(true);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.i64(-42);
        w.usize(123_456);
        w.f64(-0.1);
        w.bytes(b"abc");
        w.str("héllo");
        w.time(SimTime::from_nanos(99));
        w.duration(SimDuration::from_nanos(100));
        w.opt(Some(5u64), |w, v| w.u64(v));
        w.opt::<u64>(None, |w, v| w.u64(v));
        w.seq(&[1u32, 2, 3], |w, &v| w.u32(v));

        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.usize().unwrap(), 123_456);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.1f64).to_bits());
        assert_eq!(r.bytes().unwrap(), b"abc");
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.time().unwrap(), SimTime::from_nanos(99));
        assert_eq!(r.duration().unwrap(), SimDuration::from_nanos(100));
        assert_eq!(r.opt(|r| r.u64()).unwrap(), Some(5));
        assert_eq!(r.opt(|r| r.u64()).unwrap(), None);
        assert_eq!(r.seq(|r| r.u32()).unwrap(), vec![1, 2, 3]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncated_reads_are_typed_errors() {
        let mut w = SnapWriter::new();
        w.u64(5);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes[..4]);
        assert_eq!(
            r.u64(),
            Err(SnapError::Truncated {
                needed: 8,
                remaining: 4
            })
        );
    }

    #[test]
    fn corrupt_tags_are_typed_errors() {
        let mut r = SnapReader::new(&[9]);
        assert!(matches!(r.bool(), Err(SnapError::Corrupt(_))));
        let mut r = SnapReader::new(&[9, 0]);
        assert!(matches!(r.opt(|r| r.u8()), Err(SnapError::Corrupt(_))));
    }

    #[test]
    fn corrupt_sequence_length_does_not_overallocate() {
        let mut w = SnapWriter::new();
        w.u64(u64::MAX); // absurd element count
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(
            r.seq(|r| r.u8()),
            Err(SnapError::Truncated { .. }) | Err(SnapError::Corrupt(_))
        ));
    }

    #[test]
    fn nan_bit_patterns_survive() {
        let weird = f64::from_bits(0x7FF8_0000_0000_0001);
        let mut w = SnapWriter::new();
        w.f64(weird);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.f64().unwrap().to_bits(), weird.to_bits());
    }
}
