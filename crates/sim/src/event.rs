//! The pending-event set: a binary heap keyed on (time, insertion sequence).
//!
//! The insertion-sequence tiebreak gives same-timestamp events FIFO order,
//! which is what makes whole-simulation runs deterministic: two events
//! scheduled for the same nanosecond always fire in the order they were
//! scheduled, independent of heap internals.

use crate::engine::ComponentId;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event: deliver `msg` to component `dst` at instant `time`.
#[derive(Debug, Clone)]
pub struct Event<M> {
    /// Delivery instant.
    pub time: SimTime,
    /// Destination component.
    pub dst: ComponentId,
    /// The message payload.
    pub msg: M,
}

struct HeapEntry<M> {
    time: SimTime,
    seq: u64,
    dst: ComponentId,
    msg: M,
}

impl<M> PartialEq for HeapEntry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for HeapEntry<M> {}

impl<M> PartialOrd for HeapEntry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for HeapEntry<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Priority queue of pending events, earliest first, FIFO within a timestamp.
pub struct EventQueue<M> {
    heap: BinaryHeap<HeapEntry<M>>,
    next_seq: u64,
    scheduled_total: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> EventQueue<M> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// Pre-allocate capacity for `n` simultaneous pending events.
    pub fn with_capacity(n: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(n),
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// Schedule `msg` for delivery to `dst` at absolute instant `time`.
    #[inline]
    pub fn schedule(&mut self, time: SimTime, dst: ComponentId, msg: M) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(HeapEntry {
            time,
            seq,
            dst,
            msg,
        });
    }

    /// Remove and return the earliest pending event.
    #[inline]
    pub fn pop(&mut self) -> Option<Event<M>> {
        self.heap.pop().map(|e| Event {
            time: e.time,
            dst: e.dst,
            msg: e.msg,
        })
    }

    /// Timestamp of the earliest pending event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True iff no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (monotonic counter; useful for
    /// engine-throughput benchmarks).
    #[inline]
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: usize) -> ComponentId {
        ComponentId::from_raw(i)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(3), id(0), "c");
        q.schedule(SimTime::from_millis(1), id(0), "a");
        q.schedule(SimTime::from_millis(2), id(0), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.msg).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn fifo_within_same_timestamp() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(1);
        for i in 0..100 {
            q.schedule(t, id(0), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.msg).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_millis(7), id(1), ());
        q.schedule(SimTime::from_millis(4), id(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(4)));
        let e = q.pop().unwrap();
        assert_eq!(e.time, SimTime::from_millis(4));
        assert_eq!(e.dst, id(2));
    }

    #[test]
    fn counters() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, id(0), ());
        q.schedule(SimTime::ZERO, id(0), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn interleaved_schedule_and_pop_stay_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), id(0), 10);
        q.schedule(SimTime::from_millis(5), id(0), 5);
        assert_eq!(q.pop().unwrap().msg, 5);
        q.schedule(SimTime::from_millis(1), id(0), 1);
        q.schedule(SimTime::from_millis(20), id(0), 20);
        assert_eq!(q.pop().unwrap().msg, 1);
        assert_eq!(q.pop().unwrap().msg, 10);
        assert_eq!(q.pop().unwrap().msg, 20);
        assert!(q.pop().is_none());
    }
}
