//! The pending-event set: a hierarchical timer wheel keyed on
//! (time, insertion sequence).
//!
//! The insertion-sequence tiebreak gives same-timestamp events FIFO order,
//! which is what makes whole-simulation runs deterministic: two events
//! scheduled for the same nanosecond always fire in the order they were
//! scheduled, independent of queue internals.
//!
//! ## Why a timer wheel
//!
//! A CoreScale run (10 Gbps × 5000 flows) keeps ~30 k events pending at all
//! times: pacing releases, link serialization completions, delayed-ACK and
//! RTO timers. A binary heap pays O(log n) comparisons **and** moves the
//! full ~100-byte entry (`Packet` payload included) at every sift level, for
//! both push and pop. Virtually all of these events are near-horizon and
//! coarsely bucketable, which is the textbook timer-wheel workload
//! (Varghese & Lauck, SOSP '87): O(1) insert into a slot keyed by the
//! event's arrival granule, and ordering work only for the handful of
//! events sharing one granule.
//!
//! [`EventQueue`] is a tiered scheduler:
//!
//! * **Wheel** — [`LEVELS`] levels of [`SLOTS`] slots each. Level `L` buckets
//!   events whose delivery tick (time >> [`GRAN_BITS`]) first differs from
//!   the wheel's current tick in bit-group `L` (the tokio-style
//!   highest-differing-group rule). Together the levels cover the **entire**
//!   `u64` nanosecond range (GRAN_BITS + LEVELS·SLOT_BITS = 64 bits), so no
//!   separate far-future overflow structure is needed — `SimTime::MAX`
//!   sentinels simply land in the top level. A per-level occupancy bitmap
//!   finds the next nonempty slot with one `trailing_zeros`.
//! * **Ready heap** — a small binary min-heap on (time, seq) holding only
//!   the current granule's events (one drained slot at a time, typically a
//!   handful of entries). All intra-granule and same-timestamp ordering is
//!   resolved here, so the (time, seq) total order of the old global heap
//!   is preserved *exactly* — same pops, same digests.
//! * **Cancellation tokens** — [`EventQueue::schedule_cancellable`] returns
//!   a [`CancelToken`]; [`EventQueue::cancel`] tombstones the entry in O(1)
//!   via a generation table. Dead entries are dropped when their slot is
//!   drained, so a cancel-and-rearm timer (RTO, delayed ACK) no longer
//!   parks dead events in the queue nor burns a dispatch when they surface.
//!
//! The previous implementation is kept verbatim as [`HeapQueue`]: it is the
//! ordering oracle for the equivalence property tests
//! (`tests/queue_model.rs`, `tests/scheduler_equivalence.rs`) and the
//! baseline for the `event_queue` criterion bench.

use crate::engine::ComponentId;
use crate::snap::{SnapError, SnapReader, SnapWriter};
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event: deliver `msg` to component `dst` at instant `time`.
#[derive(Debug, Clone)]
pub struct Event<M> {
    /// Delivery instant.
    pub time: SimTime,
    /// Destination component.
    pub dst: ComponentId,
    /// The message payload.
    pub msg: M,
}

/// Handle for a cancellable scheduled event (see
/// [`EventQueue::schedule_cancellable`]).
///
/// Tokens are single-use: once the event fires or is cancelled, the token
/// goes stale and further [`EventQueue::cancel`] calls return `false`. The
/// `Default` token is a null handle that never matches a live event, which
/// gives timer owners a cheap "nothing armed" state.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub struct CancelToken {
    idx: u32,
    gen: u64,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken {
            idx: u32::MAX,
            gen: 0,
        }
    }
}

impl CancelToken {
    /// Serialize the token for a checkpoint. Tokens survive a
    /// snapshot/restore cycle because [`EventQueue::save_state`] carries
    /// the generation table verbatim: a token live before the snapshot is
    /// live (and cancels the same event) after restore.
    pub fn save_state(self, w: &mut SnapWriter) {
        w.u32(self.idx);
        w.u64(self.gen);
    }

    /// Deserialize a token written by [`CancelToken::save_state`].
    pub fn load_state(r: &mut SnapReader<'_>) -> Result<CancelToken, SnapError> {
        let idx = r.u32()?;
        let gen = r.u64()?;
        Ok(CancelToken { idx, gen })
    }
}

/// Sentinel for "entry has no cancellation token".
const NO_TOKEN: u32 = u32::MAX;

/// Generation table backing [`CancelToken`] liveness.
///
/// A token `(idx, gen)` is live iff `gens[idx] == gen`. Cancelling or
/// firing bumps the slot's generation (so the token can never act twice)
/// and recycles the slot through a free list; a stale entry still sitting
/// in the wheel carries the old generation and is dropped on contact.
#[derive(Default)]
struct TokenTable {
    gens: Vec<u64>,
    free: Vec<u32>,
}

impl TokenTable {
    fn alloc(&mut self) -> CancelToken {
        if let Some(idx) = self.free.pop() {
            CancelToken {
                idx,
                gen: self.gens[idx as usize],
            }
        } else {
            let idx = u32::try_from(self.gens.len()).expect("token table exhausted");
            assert!(idx != NO_TOKEN, "token table exhausted");
            // Start at generation 1: the null token is (u32::MAX, 0) and a
            // nonzero generation keeps freshly-allocated slots distinct
            // from `CancelToken::default()` even at idx 0.
            self.gens.push(1);
            CancelToken { idx, gen: 1 }
        }
    }

    #[inline]
    fn is_live(&self, idx: u32, gen: u64) -> bool {
        idx == NO_TOKEN || self.gens[idx as usize] == gen
    }

    /// Bump the generation and recycle the slot. Caller must know the
    /// token is live (fire path) or has just checked it (cancel path).
    #[inline]
    fn retire(&mut self, idx: u32) {
        if idx != NO_TOKEN {
            self.gens[idx as usize] += 1;
            self.free.push(idx);
        }
    }

    fn cancel(&mut self, tok: CancelToken) -> bool {
        if tok.idx == NO_TOKEN || !self.is_live(tok.idx, tok.gen) {
            return false;
        }
        self.retire(tok.idx);
        true
    }
}

/// An entry as stored in the wheel / ready heap. Unlike the old global
/// heap, entries move at most [`LEVELS`] times (one cascade per level),
/// not once per sift level per push/pop.
struct Entry<M> {
    time: SimTime,
    seq: u64,
    tok: u32,
    tok_gen: u64,
    dst: ComponentId,
    msg: M,
}

impl<M> PartialEq for Entry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Entry<M> {}

impl<M> PartialOrd for Entry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Entry<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// log2 of the wheel granularity: one tick = 1024 ns ≈ 1 µs, fine enough
/// that a drained slot holds only the events of a single microsecond-scale
/// granule (at 10 Gbps a 1500 B frame serializes in 1.2 µs).
const GRAN_BITS: u32 = 10;
/// log2 of the slot count per level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Number of levels. GRAN_BITS + LEVELS × SLOT_BITS = 64: the wheel spans
/// the whole `u64` nanosecond range and nothing can overflow it.
pub const LEVELS: usize = 9;

/// log2 buckets of the batch-size histogram in [`WheelStats`].
pub const BATCH_BUCKETS: usize = 16;

/// Entries of retained capacity below which a drained slot buffer is
/// never trimmed. Buffers at or under this ride the swap-recycle path
/// untouched, so ordinary workloads keep their zero-allocation steady
/// state; only burst-inflated buffers (start-of-run transients at
/// megascale flow counts grew slots far beyond any later rotation's
/// refill) pay a shrink. See [`EventQueue::advance_wheel`].
const SLOT_TRIM_FLOOR: usize = 512;

/// Always-on scheduler counters: plain integer adds on paths that already
/// touch the same cache lines, harvested by the profiling layer
/// (`ccsim-prof`) after a run. Counting never changes which events fire
/// or in what order, so outcome digests are untouched by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WheelStats {
    /// High-water mark of physically-resident entries per wheel level
    /// (tombstoned entries count until their slot is drained).
    pub level_high_water: [u64; LEVELS],
    /// Slot drains at level > 0, each re-routing its entries downward.
    pub cascades: u64,
    /// Live entries moved by those cascades.
    pub cascaded_entries: u64,
    /// log2 histogram of same-timestamp dispatch batch sizes:
    /// `batch_hist[k]` counts batches whose size has bit-length k + 1
    /// (i.e. size in `[2^k, 2^(k+1))`); larger batches clamp into the
    /// last bucket.
    pub batch_hist: [u64; BATCH_BUCKETS],
    /// Cancellations that hit a live event.
    pub cancels: u64,
    /// Cancel calls that found a stale token (already fired/cancelled).
    pub cancel_misses: u64,
    /// Events scheduled with a cancellation token (rearmable timers).
    pub cancellable_scheduled: u64,
}

impl Default for WheelStats {
    fn default() -> Self {
        WheelStats {
            level_high_water: [0; LEVELS],
            cascades: 0,
            cascaded_entries: 0,
            batch_hist: [0; BATCH_BUCKETS],
            cancels: 0,
            cancel_misses: 0,
            cancellable_scheduled: 0,
        }
    }
}

/// Priority queue of pending events, earliest first, FIFO within a
/// timestamp. See the module docs for the internal structure.
pub struct EventQueue<M> {
    /// The current granule's events, sorted **descending** by (time, seq):
    /// the next event to fire is `run.last()`, so a pop is an O(1) tail
    /// pop with no sift traffic. Filled (and sorted once) per drained
    /// level-0 slot. Always consulted before the wheel.
    run: Vec<Entry<M>>,
    /// Entries scheduled at or before the current granule *after* the run
    /// was sorted (handler `send()`s at "now", late external schedules).
    /// Usually empty or tiny; min-ordered by (time, seq). The head of the
    /// queue is the smaller of `run.last()` and `overlay.peek()`.
    overlay: BinaryHeap<Entry<M>>,
    /// `LEVELS × SLOTS` buckets, row-major by level.
    slots: Vec<Vec<Entry<M>>>,
    /// Per-level occupancy bitmaps (bit = slot has entries).
    occupied: [u64; LEVELS],
    /// The wheel's notion of "now", in ticks (ns >> GRAN_BITS). Invariant:
    /// every wheel entry has tick > cur_tick; `ready` holds ticks
    /// ≤ cur_tick, so `ready` is always globally earliest.
    cur_tick: u64,
    tokens: TokenTable,
    /// Live (scheduled minus popped minus cancelled) entry count.
    live: usize,
    next_seq: u64,
    scheduled_total: u64,
    /// Physically-resident entries per level (tombstones included), the
    /// basis for the per-level high-water marks in `stats`.
    level_live: [u64; LEVELS],
    stats: WheelStats,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> EventQueue<M> {
    /// An empty queue.
    pub fn new() -> Self {
        let mut slots = Vec::with_capacity(LEVELS * SLOTS);
        slots.resize_with(LEVELS * SLOTS, Vec::new);
        EventQueue {
            run: Vec::new(),
            overlay: BinaryHeap::new(),
            slots,
            occupied: [0; LEVELS],
            cur_tick: 0,
            tokens: TokenTable::default(),
            live: 0,
            next_seq: 0,
            scheduled_total: 0,
            level_live: [0; LEVELS],
            stats: WheelStats::default(),
        }
    }

    /// Pre-allocate capacity for `n` simultaneous pending events.
    ///
    /// The wheel's slot vectors grow on demand; `n` sizes the ready heap,
    /// which is the only per-pop allocation-sensitive structure.
    pub fn with_capacity(n: usize) -> Self {
        let mut q = Self::new();
        q.run.reserve(n.min(1 << 16));
        q
    }

    /// Schedule `msg` for delivery to `dst` at absolute instant `time`.
    #[inline]
    pub fn schedule(&mut self, time: SimTime, dst: ComponentId, msg: M) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.live += 1;
        self.insert(Entry {
            time,
            seq,
            tok: NO_TOKEN,
            tok_gen: 0,
            dst,
            msg,
        });
    }

    /// Schedule `msg` like [`EventQueue::schedule`], returning a token that
    /// can later [`EventQueue::cancel`] the event if it has not yet fired.
    #[inline]
    pub fn schedule_cancellable(&mut self, time: SimTime, dst: ComponentId, msg: M) -> CancelToken {
        let tok = self.tokens.alloc();
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.stats.cancellable_scheduled += 1;
        self.live += 1;
        self.insert(Entry {
            time,
            seq,
            tok: tok.idx,
            tok_gen: tok.gen,
            dst,
            msg,
        });
        tok
    }

    /// Cancel a pending event. Returns `true` iff the token was live (the
    /// event had neither fired nor been cancelled); the event will then
    /// never be delivered. O(1): the entry is tombstoned in place and
    /// physically dropped when its slot is next touched.
    pub fn cancel(&mut self, tok: CancelToken) -> bool {
        if self.tokens.cancel(tok) {
            self.live -= 1;
            self.stats.cancels += 1;
            true
        } else {
            self.stats.cancel_misses += 1;
            false
        }
    }

    /// True iff `tok` still refers to a pending (not fired, not cancelled)
    /// event.
    pub fn is_pending(&self, tok: CancelToken) -> bool {
        tok.idx != NO_TOKEN && self.tokens.is_live(tok.idx, tok.gen)
    }

    /// Route an entry to the ready stage or the correct wheel slot.
    #[inline]
    fn insert(&mut self, e: Entry<M>) {
        let tick = e.time.as_nanos() >> GRAN_BITS;
        if tick <= self.cur_tick {
            // Current granule (or a causality-violating past schedule —
            // the engine debug-asserts against those; ordering is still
            // correct here either way): joins via the overlay heap, since
            // the sorted run must not be disturbed.
            self.overlay.push(e);
            return;
        }
        let diff = tick ^ self.cur_tick;
        // diff != 0 (tick > cur_tick), so the high bit index is well defined.
        let level = ((63 - diff.leading_zeros()) / SLOT_BITS) as usize;
        let slot = ((tick >> (level as u32 * SLOT_BITS)) & (SLOTS as u64 - 1)) as usize;
        self.slots[level * SLOTS + slot].push(e);
        self.occupied[level] |= 1 << slot;
        self.level_live[level] += 1;
        if self.level_live[level] > self.stats.level_high_water[level] {
            self.stats.level_high_water[level] = self.level_live[level];
        }
    }

    /// Make the globally-earliest live entry poppable from the ready stage
    /// (tail of `run` or top of `overlay`). Returns `false` iff no live
    /// entries remain anywhere.
    ///
    /// Dead (cancelled) entries encountered on the way are dropped and
    /// never surface from `pop`.
    fn prepare(&mut self) -> bool {
        loop {
            // Drop tombstones off both ready-stage heads.
            while let Some(e) = self.run.last() {
                if self.tokens.is_live(e.tok, e.tok_gen) {
                    break;
                }
                self.run.pop();
            }
            while let Some(e) = self.overlay.peek() {
                if self.tokens.is_live(e.tok, e.tok_gen) {
                    break;
                }
                self.overlay.pop();
            }
            if !self.run.is_empty() || !self.overlay.is_empty() {
                return true;
            }
            if !self.advance_wheel() {
                return false;
            }
        }
    }

    /// After a successful [`EventQueue::prepare`]: true iff the next event
    /// comes from the sorted run (vs the overlay heap).
    #[inline]
    fn head_in_run(&self) -> bool {
        match (self.run.last(), self.overlay.peek()) {
            (Some(r), Some(o)) => (r.time, r.seq) <= (o.time, o.seq),
            (Some(_), None) => true,
            _ => false,
        }
    }

    /// After a successful [`EventQueue::prepare`]: the (time, seq) of the
    /// next event.
    #[inline]
    fn head_key(&self) -> (SimTime, u64) {
        if self.head_in_run() {
            let e = self.run.last().expect("prepared");
            (e.time, e.seq)
        } else {
            let e = self.overlay.peek().expect("prepared");
            (e.time, e.seq)
        }
    }

    /// After a successful [`EventQueue::prepare`]: extract the next event.
    #[inline]
    fn pop_prepared(&mut self) -> Entry<M> {
        let e = if self.head_in_run() {
            self.run.pop().expect("prepared")
        } else {
            self.overlay.pop().expect("prepared")
        };
        self.tokens.retire(e.tok);
        self.live -= 1;
        e
    }

    /// Advance `cur_tick` to the next occupied slot and drain it: the
    /// lowest nonempty level always holds the earliest wheel entries
    /// (higher levels differ from `cur_tick` in a more significant bit
    /// group, i.e. lie further out). A level-0 slot drains straight into
    /// the ready heap; a higher-level slot cascades its entries back
    /// through [`EventQueue::insert`] against the advanced `cur_tick`, so
    /// they land in lower levels (or `ready`) and the loop converges.
    /// Returns `false` iff the whole wheel is empty.
    fn advance_wheel(&mut self) -> bool {
        let Some(level) = self.occupied.iter().position(|&b| b != 0) else {
            return false;
        };
        let slot = self.occupied[level].trailing_zeros() as u64;
        let shift = level as u32 * SLOT_BITS;
        // Jump to the start of that slot's range: replace cur_tick's bit
        // group at `level` with the slot index and zero all lower groups.
        // Occupied slots always lie strictly ahead of cur_tick's own group
        // (entries at or before cur_tick go to `ready` on insert), so this
        // only moves the wheel forward.
        debug_assert!(slot > (self.cur_tick >> shift) & (SLOTS as u64 - 1) || level > 0);
        self.cur_tick = ((self.cur_tick >> (shift + SLOT_BITS)) << SLOT_BITS | slot) << shift;
        self.occupied[level] &= !(1 << slot);
        let mut bucket = std::mem::take(&mut self.slots[level * SLOTS + slot as usize]);
        self.level_live[level] -= bucket.len() as u64;
        if level > 0 {
            self.stats.cascades += 1;
        }
        if level == 0 {
            // Every entry in a level-0 slot shares the tick == cur_tick, so
            // they are exactly the new current granule: sort once
            // (descending, so pops come off the tail) instead of paying a
            // heap sift per event. `run` is empty here (prepare only
            // advances the wheel once the ready stage is exhausted), so
            // swapping buffers reuses both allocations.
            debug_assert!(self.run.is_empty());
            std::mem::swap(&mut self.run, &mut bucket);
            let tokens = &self.tokens;
            self.run.retain(|e| tokens.is_live(e.tok, e.tok_gen));
            self.run
                .sort_unstable_by_key(|e| std::cmp::Reverse((e.time, e.seq)));
        } else {
            for e in bucket.drain(..) {
                if self.tokens.is_live(e.tok, e.tok_gen) {
                    self.stats.cascaded_entries += 1;
                    self.insert(e);
                }
            }
        }
        // Hand the emptied (but still allocated) bucket back for reuse,
        // deflating outsized capacity first. Coarse-level slots ride a
        // traveling wave of rearm tombstones (every RTO reset parks a
        // dead entry until its slot drains), so each slot's capacity
        // climbs to the wave's crest and, untrimmed, LEVELS x SLOTS
        // crest-sized buffers dominated megascale memory. Post-drain the
        // buffer is empty and its slot won't refill until the wheel laps
        // it, so regrowth costs a handful of doublings per (rare) coarse
        // drain. Buffers at or under the floor — every fine-level slot in
        // a steady workload — keep the zero-allocation swap path.
        // Trimming never touches pop order, so digests are unaffected.
        if bucket.capacity() > SLOT_TRIM_FLOOR {
            bucket.shrink_to(SLOT_TRIM_FLOOR);
        }
        self.slots[level * SLOTS + slot as usize] = bucket;
        true
    }

    /// Remove and return the earliest pending event.
    #[inline]
    pub fn pop(&mut self) -> Option<Event<M>> {
        if !self.prepare() {
            return None;
        }
        let e = self.pop_prepared();
        Some(Event {
            time: e.time,
            dst: e.dst,
            msg: e.msg,
        })
    }

    /// Move **every** event sharing the earliest pending timestamp into
    /// `out` (in seq order), returning how many were moved. The engine uses
    /// this to dispatch same-timestamp bursts without re-running the
    /// peek/pop machinery per event; events a handler schedules *at* that
    /// same timestamp carry higher seqs and correctly join the next batch,
    /// not the current one.
    pub fn take_head_batch(&mut self, out: &mut std::collections::VecDeque<Event<M>>) -> usize {
        self.take_head_batch_until(SimTime::MAX, out)
    }

    /// [`EventQueue::take_head_batch`], but only if the head timestamp is
    /// at or before `deadline` (otherwise moves nothing and returns 0).
    /// Folds the engine's per-iteration peek + batch-extract into one
    /// queue operation.
    pub fn take_head_batch_until(
        &mut self,
        deadline: SimTime,
        out: &mut std::collections::VecDeque<Event<M>>,
    ) -> usize {
        if !self.prepare() {
            return 0;
        }
        let head_time = self.head_key().0;
        if head_time > deadline {
            return 0;
        }
        let mut n: usize = 0;
        loop {
            let e = self.pop_prepared();
            out.push_back(Event {
                time: e.time,
                dst: e.dst,
                msg: e.msg,
            });
            n += 1;
            // The ready stage always holds the entire current granule, and
            // wheel ticks beyond it cannot share head_time — so once the
            // prepared head moves past head_time the batch is complete.
            if !self.prepare() || self.head_key().0 != head_time {
                break;
            }
        }
        // n >= 1 here, so the bit-length bucket index is well defined.
        let bucket = (usize::BITS - n.leading_zeros() - 1) as usize;
        self.stats.batch_hist[bucket.min(BATCH_BUCKETS - 1)] += 1;
        n
    }

    /// Timestamp of the earliest pending event, if any.
    ///
    /// Takes `&mut self`: finding the earliest event may lazily advance the
    /// wheel (a pure reorganization — no ordering effect, no events fire).
    #[inline]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if self.prepare() {
            Some(self.head_key().0)
        } else {
            None
        }
    }

    /// Number of pending events (cancelled events no longer count).
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True iff no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total number of events ever scheduled (monotonic counter; useful for
    /// engine-throughput benchmarks).
    #[inline]
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// The always-on scheduler counters (see [`WheelStats`]).
    #[inline]
    pub fn wheel_stats(&self) -> &WheelStats {
        &self.stats
    }

    /// Approximate heap footprint of the queue's own structures (slot
    /// vectors, ready stage, token table) — entry payloads included at
    /// their in-queue size. Feeds the `MemAccount` registry's `sim/wheel`
    /// gauge.
    pub fn memory_bytes(&self) -> u64 {
        use std::mem::size_of;
        let entry = size_of::<Entry<M>>() as u64;
        let mut bytes = size_of::<Self>() as u64
            + self.run.capacity() as u64 * entry
            + self.overlay.capacity() as u64 * entry
            + self.tokens.gens.capacity() as u64 * size_of::<u64>() as u64
            + self.tokens.free.capacity() as u64 * size_of::<u32>() as u64;
        for s in &self.slots {
            bytes += size_of::<Vec<Entry<M>>>() as u64 + s.capacity() as u64 * entry;
        }
        bytes
    }

    // ----- checkpoint/restore -------------------------------------------

    /// Serialize the queue's live contents and ordering state.
    ///
    /// The encoding is canonical: live entries are written sorted by
    /// (time, seq) — a total order, seqs are unique — so
    /// encode → decode → encode is a byte fixpoint regardless of how
    /// entries were physically distributed across wheel levels, the run
    /// stage, and the overlay heap at snapshot time. Tombstoned
    /// (cancelled) entries are skipped; their token slots were already
    /// retired into the free list, which is carried verbatim so
    /// post-restore token allocation replays identically. Wheel telemetry
    /// (`WheelStats`, high-water marks) is *not* part of the state: it
    /// never influences pop order.
    pub fn save_state(&self, w: &mut SnapWriter, mut save_msg: impl FnMut(&mut SnapWriter, &M)) {
        w.seq(&self.tokens.gens, |w, &g| w.u64(g));
        w.seq(&self.tokens.free, |w, &i| w.u32(i));
        w.u64(self.next_seq);
        w.u64(self.scheduled_total);
        let mut entries: Vec<&Entry<M>> = Vec::with_capacity(self.live);
        for e in &self.run {
            if self.tokens.is_live(e.tok, e.tok_gen) {
                entries.push(e);
            }
        }
        for e in self.overlay.iter() {
            if self.tokens.is_live(e.tok, e.tok_gen) {
                entries.push(e);
            }
        }
        for bucket in &self.slots {
            for e in bucket {
                if self.tokens.is_live(e.tok, e.tok_gen) {
                    entries.push(e);
                }
            }
        }
        debug_assert_eq!(entries.len(), self.live, "live count drifted");
        entries.sort_by_key(|e| (e.time, e.seq));
        w.u64(entries.len() as u64);
        for e in entries {
            w.time(e.time);
            w.u64(e.seq);
            w.u32(e.tok);
            w.u64(e.tok_gen);
            w.usize(e.dst.as_usize());
            save_msg(w, &e.msg);
        }
    }

    /// Rebuild a queue from [`EventQueue::save_state`] bytes.
    ///
    /// Entries re-enter the wheel with their **original** sequence
    /// numbers, so the (time, seq) total order — and therefore every
    /// subsequent pop — is identical to the un-snapshotted queue's. The
    /// physical wheel layout (current tick, level distribution) need not
    /// match: it is an implementation detail the ordering contract hides.
    pub fn load_state<'a>(
        r: &mut SnapReader<'a>,
        mut load_msg: impl FnMut(&mut SnapReader<'a>) -> Result<M, SnapError>,
    ) -> Result<EventQueue<M>, SnapError> {
        let gens = r.seq(|r| r.u64())?;
        let free = r.seq(|r| r.u32())?;
        for &idx in &free {
            if idx as usize >= gens.len() {
                return Err(SnapError::Corrupt(format!(
                    "token free-list index {idx} out of range ({} slots)",
                    gens.len()
                )));
            }
        }
        let next_seq = r.u64()?;
        let scheduled_total = r.u64()?;
        let mut q = EventQueue::new();
        q.tokens = TokenTable { gens, free };
        q.next_seq = next_seq;
        q.scheduled_total = scheduled_total;
        let n = r.usize()?;
        for _ in 0..n {
            let time = r.time()?;
            let seq = r.u64()?;
            let tok = r.u32()?;
            let tok_gen = r.u64()?;
            let dst = ComponentId::from_raw(r.usize()?);
            let msg = load_msg(r)?;
            if seq >= next_seq {
                return Err(SnapError::Corrupt(format!(
                    "entry seq {seq} >= next_seq {next_seq}"
                )));
            }
            if tok != NO_TOKEN
                && (tok as usize >= q.tokens.gens.len() || q.tokens.gens[tok as usize] != tok_gen)
            {
                return Err(SnapError::Corrupt(format!(
                    "entry token ({tok}, {tok_gen}) not live in restored table"
                )));
            }
            q.live += 1;
            q.insert(Entry {
                time,
                seq,
                tok,
                tok_gen,
                dst,
                msg,
            });
        }
        Ok(q)
    }
}

// ---------------------------------------------------------------------------
// Reference implementation
// ---------------------------------------------------------------------------

struct HeapEntry<M> {
    time: SimTime,
    seq: u64,
    tok: u32,
    tok_gen: u64,
    dst: ComponentId,
    msg: M,
}

impl<M> PartialEq for HeapEntry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for HeapEntry<M> {}

impl<M> PartialOrd for HeapEntry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for HeapEntry<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The pre-timer-wheel event queue: a single global `BinaryHeap` keyed on
/// (time, seq), with lazy tombstoning for cancellation.
///
/// Kept as the ordering **oracle**: `tests/scheduler_equivalence.rs` drives
/// arbitrary schedules (same-timestamp ties, in-handler cancellations)
/// through both implementations and asserts identical pop sequences, and
/// the `event_queue` bench measures the wheel's speedup against it. Not
/// used by the engine.
pub struct HeapQueue<M> {
    heap: BinaryHeap<HeapEntry<M>>,
    tokens: TokenTable,
    live: usize,
    next_seq: u64,
    scheduled_total: u64,
}

impl<M> Default for HeapQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> HeapQueue<M> {
    /// An empty queue.
    pub fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            tokens: TokenTable::default(),
            live: 0,
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// See [`EventQueue::schedule`].
    #[inline]
    pub fn schedule(&mut self, time: SimTime, dst: ComponentId, msg: M) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.live += 1;
        self.heap.push(HeapEntry {
            time,
            seq,
            tok: NO_TOKEN,
            tok_gen: 0,
            dst,
            msg,
        });
    }

    /// See [`EventQueue::schedule_cancellable`].
    pub fn schedule_cancellable(&mut self, time: SimTime, dst: ComponentId, msg: M) -> CancelToken {
        let tok = self.tokens.alloc();
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.live += 1;
        self.heap.push(HeapEntry {
            time,
            seq,
            tok: tok.idx,
            tok_gen: tok.gen,
            dst,
            msg,
        });
        tok
    }

    /// See [`EventQueue::cancel`].
    pub fn cancel(&mut self, tok: CancelToken) -> bool {
        if self.tokens.cancel(tok) {
            self.live -= 1;
            true
        } else {
            false
        }
    }

    /// See [`EventQueue::pop`].
    pub fn pop(&mut self) -> Option<Event<M>> {
        loop {
            let e = self.heap.pop()?;
            if self.tokens.is_live(e.tok, e.tok_gen) {
                self.tokens.retire(e.tok);
                self.live -= 1;
                return Some(Event {
                    time: e.time,
                    dst: e.dst,
                    msg: e.msg,
                });
            }
        }
    }

    /// See [`EventQueue::peek_time`] (lazily drops cancelled heads, hence
    /// also `&mut`).
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(top) = self.heap.peek() {
            if self.tokens.is_live(top.tok, top.tok_gen) {
                return Some(top.time);
            }
            self.heap.pop();
        }
        None
    }

    /// See [`EventQueue::is_pending`].
    pub fn is_pending(&self, tok: CancelToken) -> bool {
        tok.idx != NO_TOKEN && self.tokens.is_live(tok.idx, tok.gen)
    }

    /// See [`EventQueue::take_head_batch`].
    pub fn take_head_batch(&mut self, out: &mut std::collections::VecDeque<Event<M>>) -> usize {
        self.take_head_batch_until(SimTime::MAX, out)
    }

    /// See [`EventQueue::take_head_batch_until`].
    pub fn take_head_batch_until(
        &mut self,
        deadline: SimTime,
        out: &mut std::collections::VecDeque<Event<M>>,
    ) -> usize {
        let Some(head) = self.peek_time() else {
            return 0;
        };
        if head > deadline {
            return 0;
        }
        let mut n = 0;
        while self.peek_time() == Some(head) {
            out.push_back(self.pop().expect("peeked head must pop"));
            n += 1;
        }
        n
    }

    /// See [`EventQueue::len`].
    pub fn len(&self) -> usize {
        self.live
    }

    /// See [`EventQueue::is_empty`].
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// See [`EventQueue::scheduled_total`].
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    fn id(i: usize) -> ComponentId {
        ComponentId::from_raw(i)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(3), id(0), "c");
        q.schedule(SimTime::from_millis(1), id(0), "a");
        q.schedule(SimTime::from_millis(2), id(0), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.msg).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn fifo_within_same_timestamp() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(1);
        for i in 0..100 {
            q.schedule(t, id(0), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.msg).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_millis(7), id(1), ());
        q.schedule(SimTime::from_millis(4), id(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(4)));
        let e = q.pop().unwrap();
        assert_eq!(e.time, SimTime::from_millis(4));
        assert_eq!(e.dst, id(2));
    }

    #[test]
    fn counters() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, id(0), ());
        q.schedule(SimTime::ZERO, id(0), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn interleaved_schedule_and_pop_stay_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), id(0), 10);
        q.schedule(SimTime::from_millis(5), id(0), 5);
        assert_eq!(q.pop().unwrap().msg, 5);
        q.schedule(SimTime::from_millis(1), id(0), 1);
        q.schedule(SimTime::from_millis(20), id(0), 20);
        assert_eq!(q.pop().unwrap().msg, 1);
        assert_eq!(q.pop().unwrap().msg, 10);
        assert_eq!(q.pop().unwrap().msg, 20);
        assert!(q.pop().is_none());
    }

    #[test]
    fn spans_every_wheel_level() {
        // One event per decade of delay, nanoseconds to ~18 years, plus the
        // MAX sentinel: exercises insertion into (and cascade out of) every
        // level of the wheel.
        let mut q = EventQueue::new();
        let mut times: Vec<u64> = (0..19).map(|p| 3 * 10u64.pow(p)).collect();
        times.push(u64::MAX);
        for (i, &t) in times.iter().enumerate().rev() {
            q.schedule(SimTime::from_nanos(t), id(0), i);
        }
        for (i, &t) in times.iter().enumerate() {
            let e = q.pop().unwrap();
            assert_eq!((e.time.as_nanos(), e.msg), (t, i));
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn same_granule_different_nanos_pop_in_time_order() {
        // Entries within one 1024 ns granule land in one slot; the ready
        // heap must still order them by exact nanosecond.
        let mut q = EventQueue::new();
        let base = 1 << 20;
        for off in [900u64, 100, 500, 1023, 0] {
            q.schedule(SimTime::from_nanos(base + off), id(0), off);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.msg).collect();
        assert_eq!(order, vec![0, 100, 500, 900, 1023]);
    }

    #[test]
    fn cancel_removes_event_and_reports_liveness() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), id(0), 1);
        let tok = q.schedule_cancellable(SimTime::from_millis(2), id(0), 2);
        q.schedule(SimTime::from_millis(3), id(0), 3);
        assert_eq!(q.len(), 3);
        assert!(q.is_pending(tok));
        assert!(q.cancel(tok));
        assert!(!q.is_pending(tok));
        assert_eq!(q.len(), 2);
        // Second cancel is a no-op.
        assert!(!q.cancel(tok));
        assert_eq!(q.len(), 2);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.msg).collect();
        assert_eq!(order, vec![1, 3]);
    }

    #[test]
    fn cancel_after_fire_is_a_noop() {
        let mut q = EventQueue::new();
        let tok = q.schedule_cancellable(SimTime::from_millis(1), id(0), 1);
        assert_eq!(q.pop().unwrap().msg, 1);
        assert!(!q.is_pending(tok));
        assert!(!q.cancel(tok));
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn stale_token_cannot_cancel_reused_slot() {
        let mut q = EventQueue::new();
        let old = q.schedule_cancellable(SimTime::from_millis(1), id(0), 1);
        assert!(q.cancel(old));
        // The table slot is recycled for the next cancellable event; the
        // stale token must not be able to cancel it.
        let new = q.schedule_cancellable(SimTime::from_millis(2), id(0), 2);
        assert!(!q.cancel(old));
        assert!(q.is_pending(new));
        assert_eq!(q.pop().unwrap().msg, 2);
    }

    #[test]
    fn default_token_is_never_pending() {
        let mut q: EventQueue<()> = EventQueue::new();
        let tok = CancelToken::default();
        assert!(!q.is_pending(tok));
        assert!(!q.cancel(tok));
    }

    #[test]
    fn peek_does_not_disturb_order_across_wheel_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), id(0), 5);
        // Peek forces the wheel to advance to the 5 s slot...
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
        // ...but an earlier schedule arriving afterwards must still pop
        // first (it routes through the ready heap).
        q.schedule(SimTime::from_secs(2), id(0), 2);
        assert_eq!(q.pop().unwrap().msg, 2);
        assert_eq!(q.pop().unwrap().msg, 5);
    }

    #[test]
    fn take_head_batch_moves_exactly_the_head_timestamp() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(100);
        q.schedule(t, id(0), 0);
        q.schedule(t, id(1), 1);
        let cancelled = q.schedule_cancellable(t, id(2), 2);
        q.schedule(t, id(3), 3);
        q.schedule(SimTime::from_micros(101), id(4), 4);
        assert!(q.cancel(cancelled));
        let mut out = VecDeque::new();
        assert_eq!(q.take_head_batch(&mut out), 3);
        let msgs: Vec<_> = out.iter().map(|e| e.msg).collect();
        assert_eq!(msgs, vec![0, 1, 3]);
        assert!(out.iter().all(|e| e.time == t));
        assert_eq!(q.len(), 1);
        out.clear();
        assert_eq!(q.take_head_batch(&mut out), 1);
        assert_eq!(out[0].msg, 4);
        assert_eq!(q.take_head_batch(&mut out), 0);
    }

    #[test]
    fn wheel_stats_track_scheduler_activity() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(100);
        for i in 0..3 {
            q.schedule(t, id(0), i);
        }
        // Far-out events land in level > 0 and cascade downward on advance.
        q.schedule(SimTime::from_secs(2), id(0), 10);
        let tok = q.schedule_cancellable(SimTime::from_secs(3), id(0), 11);
        assert!(q.cancel(tok));
        assert!(!q.cancel(tok));
        let mut out = VecDeque::new();
        assert_eq!(q.take_head_batch(&mut out), 3);
        out.clear();
        assert_eq!(q.take_head_batch(&mut out), 1);
        let s = q.wheel_stats();
        assert_eq!(s.cancellable_scheduled, 1);
        assert_eq!(s.cancels, 1);
        assert_eq!(s.cancel_misses, 1);
        assert!(s.cascades >= 1);
        assert!(s.cascaded_entries >= 1);
        // Batch of 3 has bit-length 2 → bucket 1; batch of 1 → bucket 0.
        assert_eq!(s.batch_hist[1], 1);
        assert_eq!(s.batch_hist[0], 1);
        assert!(s.level_high_water.iter().sum::<u64>() >= 4);
        assert!(q.memory_bytes() > 0);
    }

    /// Drive the wheel and the reference heap through an identical
    /// pseudo-random op sequence (schedule / cancellable-schedule / cancel
    /// / pop, with clustered timestamps to force ties) and require
    /// identical observable behavior. The exhaustive version with arbitrary
    /// inputs lives in `tests/scheduler_equivalence.rs`; this is the fast
    /// in-crate smoke check.
    #[test]
    fn wheel_matches_reference_heap_smoke() {
        let mut wheel = EventQueue::new();
        let mut heap = HeapQueue::new();
        let mut tokens: Vec<(CancelToken, CancelToken)> = Vec::new();
        // Deterministic LCG so the test needs no rand dependency.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut clock = 0u64; // lower bound for new schedules, like sim time
        for i in 0..20_000u64 {
            match rng() % 10 {
                0..=3 => {
                    let t = clock + rng() % 5_000_000; // cluster near "now"
                    let t = SimTime::from_nanos(t);
                    wheel.schedule(t, id(0), i);
                    heap.schedule(t, id(0), i);
                }
                4..=5 => {
                    let t = SimTime::from_nanos(clock + rng() % 300_000_000);
                    let wt = wheel.schedule_cancellable(t, id(0), i);
                    let ht = heap.schedule_cancellable(t, id(0), i);
                    tokens.push((wt, ht));
                }
                6 => {
                    if !tokens.is_empty() {
                        let (wt, ht) = tokens.swap_remove((rng() % tokens.len() as u64) as usize);
                        assert_eq!(wheel.cancel(wt), heap.cancel(ht));
                    }
                }
                _ => {
                    assert_eq!(wheel.peek_time(), heap.peek_time());
                    let (we, he) = (wheel.pop(), heap.pop());
                    match (&we, &he) {
                        (Some(w), Some(h)) => {
                            assert_eq!((w.time, w.msg), (h.time, h.msg));
                            clock = w.time.as_nanos();
                        }
                        (None, None) => {}
                        _ => panic!("one queue empty, the other not"),
                    }
                }
            }
            assert_eq!(wheel.len(), heap.len());
        }
        loop {
            let (we, he) = (wheel.pop(), heap.pop());
            match (&we, &he) {
                (Some(w), Some(h)) => assert_eq!((w.time, w.msg), (h.time, h.msg)),
                (None, None) => break,
                _ => panic!("one queue drained before the other"),
            }
        }
    }
}
