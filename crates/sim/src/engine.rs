//! The simulation engine: component arena + event dispatch loop.
//!
//! A [`Simulator<M>`] owns every component of the modeled system and a single
//! [`EventQueue`]. Components interact **only** by scheduling events for each
//! other (message type `M`), which keeps the ownership story trivial and the
//! dispatch loop branch-predictable. Handlers receive a [`Ctx`] through which
//! they can schedule further events (including to themselves, the idiom for
//! timers).
//!
//! Components are `Any` so the harness can recover concrete types after a run
//! (e.g. to read final flow statistics) via [`Simulator::component`].

use crate::event::{CancelToken, Event, EventQueue};
use crate::rng::RngFactory;
use crate::snap::{SnapError, SnapReader, SnapWriter};
use crate::time::{SimDuration, SimTime};
use std::any::Any;
use std::collections::VecDeque;
use std::fmt;

/// Opaque handle addressing a component inside a [`Simulator`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(usize);

impl ComponentId {
    /// Construct from a raw arena index. Exposed for tests and for wiring
    /// code that needs to pre-compute ids; normal code should use the id
    /// returned by [`Simulator::add_component`].
    pub const fn from_raw(i: usize) -> Self {
        ComponentId(i)
    }

    /// The raw arena index.
    pub const fn as_usize(self) -> usize {
        self.0
    }
}

impl fmt::Debug for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A typed dispatch failure. The engine used to panic on these; the
/// `try_*` entry points surface them instead so the harness can capture a
/// crash bundle and unwind cleanly. The panicking entry points (`step`,
/// `run_until`, …) remain as thin wrappers for callers that treat wiring
/// bugs as fatal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineError {
    /// An event was addressed to a component id outside the arena —
    /// always a wiring bug, but one the harness should report with
    /// context rather than abort on.
    UnknownComponent { dst: ComponentId, at: SimTime },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownComponent { dst, at } => {
                write!(f, "event for unknown component {dst:?} at {at}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// An actor in the simulation. `M` is the workspace-wide message type.
pub trait Component<M>: Any {
    /// Handle a message delivered at virtual instant `now`.
    fn on_event(&mut self, now: SimTime, msg: M, ctx: &mut Ctx<'_, M>);
}

/// Handler-side view of the engine: the current time, the handler's own id,
/// and the ability to schedule events.
pub struct Ctx<'a, M> {
    now: SimTime,
    self_id: ComponentId,
    queue: &'a mut EventQueue<M>,
}

impl<'a, M> Ctx<'a, M> {
    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the component currently handling an event.
    #[inline]
    pub fn self_id(&self) -> ComponentId {
        self.self_id
    }

    /// Deliver `msg` to `dst` at absolute instant `at`.
    ///
    /// # Panics
    /// Panics (debug) if `at` is in the past — causality violation.
    #[inline]
    pub fn schedule_at(&mut self, at: SimTime, dst: ComponentId, msg: M) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at:?} < {:?}",
            self.now
        );
        self.queue.schedule(at, dst, msg);
    }

    /// Deliver `msg` to `dst` after `delay`.
    #[inline]
    pub fn schedule_in(&mut self, delay: SimDuration, dst: ComponentId, msg: M) {
        self.queue.schedule(self.now + delay, dst, msg);
    }

    /// Deliver `msg` to `dst` "now" (after all already-queued events at the
    /// current instant — FIFO tiebreak).
    #[inline]
    pub fn send(&mut self, dst: ComponentId, msg: M) {
        self.queue.schedule(self.now, dst, msg);
    }

    /// Schedule a message to self after `delay` (the timer idiom).
    #[inline]
    pub fn schedule_self(&mut self, delay: SimDuration, msg: M) {
        self.queue.schedule(self.now + delay, self.self_id, msg);
    }

    /// Like [`Ctx::schedule_at`], returning a token that can later
    /// [`Ctx::cancel`] the event. The idiom for rearmable timers (RTO,
    /// delayed ACK): cancel-and-rearm instead of leaving dead events
    /// parked in the queue.
    #[inline]
    pub fn schedule_cancellable_at(
        &mut self,
        at: SimTime,
        dst: ComponentId,
        msg: M,
    ) -> CancelToken {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at:?} < {:?}",
            self.now
        );
        self.queue.schedule_cancellable(at, dst, msg)
    }

    /// Like [`Ctx::schedule_in`], returning a cancellation token.
    #[inline]
    pub fn schedule_cancellable_in(
        &mut self,
        delay: SimDuration,
        dst: ComponentId,
        msg: M,
    ) -> CancelToken {
        self.queue.schedule_cancellable(self.now + delay, dst, msg)
    }

    /// Like [`Ctx::schedule_self`], returning a cancellation token.
    #[inline]
    pub fn schedule_self_cancellable(&mut self, delay: SimDuration, msg: M) -> CancelToken {
        self.queue
            .schedule_cancellable(self.now + delay, self.self_id, msg)
    }

    /// Cancel a pending cancellable event. Returns `true` iff the event
    /// was still pending (it will now never fire). Returns `false` for a
    /// stale token — including the edge where the event shares the
    /// current timestamp and was already extracted for dispatch, so
    /// timer owners that may cancel same-instant events should keep a
    /// generation guard on the message as belt-and-suspenders.
    #[inline]
    pub fn cancel(&mut self, tok: CancelToken) -> bool {
        self.queue.cancel(tok)
    }

    /// True iff `tok` refers to an event that has neither fired nor been
    /// cancelled.
    #[inline]
    pub fn is_pending(&self, tok: CancelToken) -> bool {
        self.queue.is_pending(tok)
    }
}

/// Per-(component-class × event-kind) attribution state for the opt-in
/// profiler (`ccsim-prof`). Lives behind an `Option<Box<..>>` on the
/// simulator so the disabled path pays one never-taken branch inside the
/// classified dispatch only; the plain (unclassified) path is untouched.
///
/// Cell **counts** are exact and deterministic given the event stream.
/// Wall time is attributed by strided sampling: every `stride`-th
/// classified event takes an `Instant` and charges the elapsed time since
/// the previous sample to its own cell. *Which* events are sampled is a
/// pure function of the event stream, so sample counts are deterministic
/// too — only the nanosecond values vary run to run.
struct EngineProf {
    /// Component arena index → class index (e.g. link/router/sender/
    /// receiver). Indices past the table clamp to the last class.
    comp_class: Vec<u8>,
    n_classes: usize,
    n_kinds: usize,
    /// Exact event counts per cell, row-major `class × kind`.
    cell_counts: Vec<u64>,
    /// Sampled wall nanoseconds per cell.
    cell_nanos: Vec<u64>,
    /// Samples charged per cell.
    cell_samples: Vec<u64>,
    stride: u64,
    tick: u64,
    last_sample: Option<std::time::Instant>,
}

impl EngineProf {
    #[inline]
    fn record(&mut self, comp: usize, kind: usize) {
        let class =
            (self.comp_class.get(comp).copied().unwrap_or(0) as usize).min(self.n_classes - 1);
        let cell = class * self.n_kinds + kind.min(self.n_kinds - 1);
        self.cell_counts[cell] += 1;
        self.tick += 1;
        if self.tick >= self.stride {
            self.tick = 0;
            let now = std::time::Instant::now();
            if let Some(prev) = self.last_sample.replace(now) {
                let nanos = u64::try_from(now.duration_since(prev).as_nanos()).unwrap_or(u64::MAX);
                self.cell_nanos[cell] = self.cell_nanos[cell].saturating_add(nanos);
                self.cell_samples[cell] += 1;
            }
        }
    }
}

/// The discrete-event simulator: component arena, clock, and event loop.
pub struct Simulator<M> {
    components: Vec<Box<dyn Component<M>>>,
    queue: EventQueue<M>,
    /// Same-timestamp dispatch batch: `run_until_*` extracts every event
    /// sharing the head timestamp in one queue operation and drains them
    /// here, instead of paying the peek/pop machinery per event.
    batch: VecDeque<Event<M>>,
    now: SimTime,
    rng: RngFactory,
    processed: u64,
    /// High-water mark of pending events, sampled at each dispatch.
    max_pending: u64,
    /// Per-event-kind counts for [`Simulator::run_until_classified`]. The
    /// engine knows nothing about `M`'s structure (and must not depend on
    /// the telemetry crate, which depends on this one), so the harness
    /// supplies a pure classifier `M -> class index` per run call and
    /// reads the counts back afterwards.
    class_counts: Vec<u64>,
    /// Opt-in per-(component-class × event-kind) attribution; `None`
    /// (the default) keeps profiling entirely off the dispatch path.
    prof: Option<Box<EngineProf>>,
}

impl<M: 'static> Simulator<M> {
    /// A fresh simulator at t = 0 with the given master RNG seed.
    pub fn new(master_seed: u64) -> Self {
        Simulator {
            components: Vec::new(),
            queue: EventQueue::new(),
            batch: VecDeque::new(),
            now: SimTime::ZERO,
            rng: RngFactory::new(master_seed),
            processed: 0,
            max_pending: 0,
            class_counts: Vec::new(),
            prof: None,
        }
    }

    /// Enable per-(component-class × event-kind) profiling for subsequent
    /// [`Simulator::run_until_classified`] calls. `comp_class` maps each
    /// component arena index to a class in `0..n_classes` (missing or
    /// out-of-range entries clamp); `stride` is the wall-clock sampling
    /// period in events (≥ 1). Cell counts are exact; wall time is
    /// attributed by strided `Instant` sampling (see [`EngineProf`]).
    pub fn enable_profiling(
        &mut self,
        comp_class: Vec<u8>,
        n_classes: usize,
        n_kinds: usize,
        stride: u64,
    ) {
        assert!(n_classes > 0 && n_kinds > 0, "need at least one cell");
        assert!(stride > 0, "sampling stride must be >= 1");
        self.prof = Some(Box::new(EngineProf {
            comp_class,
            n_classes,
            n_kinds,
            cell_counts: vec![0; n_classes * n_kinds],
            cell_nanos: vec![0; n_classes * n_kinds],
            cell_samples: vec![0; n_classes * n_kinds],
            stride,
            tick: 0,
            last_sample: None,
        }));
    }

    /// True iff [`Simulator::enable_profiling`] was called.
    pub fn profiling_enabled(&self) -> bool {
        self.prof.is_some()
    }

    /// Profiling cell data as `(counts, nanos, samples)`, each row-major
    /// `class × kind` as configured by [`Simulator::enable_profiling`].
    /// `None` when profiling is off.
    pub fn profile_cells(&self) -> Option<(&[u64], &[u64], &[u64])> {
        self.prof
            .as_ref()
            .map(|p| (&p.cell_counts[..], &p.cell_nanos[..], &p.cell_samples[..]))
    }

    /// The always-on scheduler counters of the underlying timer wheel.
    pub fn wheel_stats(&self) -> &crate::event::WheelStats {
        self.queue.wheel_stats()
    }

    /// Approximate heap footprint of the event queue (see
    /// [`EventQueue::memory_bytes`]).
    pub fn queue_memory_bytes(&self) -> u64 {
        self.queue.memory_bytes()
    }

    /// Size the per-class event counters for [`Simulator::run_until_classified`]
    /// (out-of-range class indices land in the last class).
    pub fn set_event_classes(&mut self, classes: usize) {
        assert!(classes > 0, "need at least one event class");
        self.class_counts = vec![0; classes];
    }

    /// Events processed per class index (empty unless
    /// [`Simulator::set_event_classes`] was called).
    pub fn event_class_counts(&self) -> &[u64] {
        &self.class_counts
    }

    /// High-water mark of the pending-event queue, sampled at each
    /// dispatch (within one event of the true peak).
    pub fn max_pending(&self) -> u64 {
        self.max_pending
    }

    /// The deterministic RNG factory for this run.
    pub fn rng(&self) -> RngFactory {
        self.rng
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events currently pending (including any extracted into
    /// the current same-timestamp dispatch batch but not yet delivered).
    pub fn events_pending(&self) -> usize {
        self.queue.len() + self.batch.len()
    }

    /// Install a component, returning its id.
    pub fn add_component<C: Component<M>>(&mut self, c: C) -> ComponentId {
        let id = ComponentId(self.components.len());
        self.components.push(Box::new(c));
        id
    }

    /// Schedule an initial event from outside any handler.
    pub fn schedule(&mut self, at: SimTime, dst: ComponentId, msg: M) {
        debug_assert!(at >= self.now, "scheduling into the past");
        self.queue.schedule(at, dst, msg);
    }

    /// Borrow a component, downcast to its concrete type.
    ///
    /// # Panics
    /// Panics if the id is out of range or the type does not match —
    /// both indicate wiring bugs, not runtime conditions.
    pub fn component<C: Component<M>>(&self, id: ComponentId) -> &C {
        let c: &dyn Any = self.components[id.0].as_ref();
        c.downcast_ref::<C>().expect("component type mismatch")
    }

    /// Mutably borrow a component, downcast to its concrete type.
    ///
    /// # Panics
    /// Same conditions as [`Simulator::component`].
    pub fn component_mut<C: Component<M>>(&mut self, id: ComponentId) -> &mut C {
        let c: &mut dyn Any = self.components[id.0].as_mut();
        c.downcast_mut::<C>().expect("component type mismatch")
    }

    /// The dispatch core shared by the plain and classified entry points.
    /// `classify` is monomorphized in; the plain path passes `|_| None`
    /// and the whole classification block compiles away — keeping the
    /// per-event cost of observability off the uninstrumented hot loop.
    #[inline(always)]
    fn step_with<F: FnMut(&M) -> Option<usize>>(
        &mut self,
        classify: &mut F,
    ) -> Result<bool, EngineError> {
        self.max_pending = self
            .max_pending
            .max((self.queue.len() + self.batch.len()) as u64);
        let ev = match self.batch.pop_front() {
            Some(ev) => ev,
            None => match self.queue.pop() {
                Some(ev) => ev,
                None => return Ok(false),
            },
        };
        self.dispatch(ev, classify)?;
        Ok(true)
    }

    /// Deliver one already-extracted event: advance the clock, classify,
    /// and run the destination component's handler.
    #[inline(always)]
    fn dispatch<F: FnMut(&M) -> Option<usize>>(
        &mut self,
        ev: Event<M>,
        classify: &mut F,
    ) -> Result<(), EngineError> {
        debug_assert!(ev.time >= self.now, "event queue went backwards");
        self.now = ev.time;
        if let Some(k) = classify(&ev.msg) {
            if let Some(last) = self.class_counts.len().checked_sub(1) {
                self.class_counts[k.min(last)] += 1;
            }
            if let Some(p) = self.prof.as_deref_mut() {
                p.record(ev.dst.as_usize(), k);
            }
        }
        let Simulator {
            components, queue, ..
        } = self;
        let Some(comp) = components.get_mut(ev.dst.as_usize()) else {
            return Err(EngineError::UnknownComponent {
                dst: ev.dst,
                at: ev.time,
            });
        };
        let mut ctx = Ctx {
            now: ev.time,
            self_id: ev.dst,
            queue,
        };
        comp.on_event(ev.time, ev.msg, &mut ctx);
        self.processed += 1;
        Ok(())
    }

    /// Process the single earliest pending event. Returns `Ok(false)` if
    /// the queue was empty.
    pub fn try_step(&mut self) -> Result<bool, EngineError> {
        self.step_with(&mut |_| None)
    }

    /// Process the single earliest pending event. Returns `false` if the
    /// queue was empty.
    ///
    /// # Panics
    /// Panics on a dispatch error ([`Simulator::try_step`] reports it).
    pub fn step(&mut self) -> bool {
        self.try_step().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Run until the event queue drains.
    ///
    /// # Panics
    /// Panics on a dispatch error ([`Simulator::try_run`] reports it).
    pub fn run(&mut self) {
        self.try_run().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Run until the event queue drains, surfacing dispatch errors.
    pub fn try_run(&mut self) -> Result<(), EngineError> {
        while self.try_step()? {}
        Ok(())
    }

    #[inline]
    fn run_until_with<F: FnMut(&M) -> Option<usize>>(
        &mut self,
        deadline: SimTime,
        mut classify: F,
    ) -> Result<(), EngineError> {
        loop {
            // Drain the current same-timestamp batch. Events a handler
            // schedules *at* the batch timestamp carry higher seqs and are
            // picked up by the next batch extraction, exactly where the
            // per-event pop loop would have placed them.
            while let Some(ev) = self.batch.pop_front() {
                let pending = (self.queue.len() + self.batch.len()) as u64 + 1;
                self.max_pending = self.max_pending.max(pending);
                self.dispatch(ev, &mut classify)?;
            }
            if self.queue.take_head_batch_until(deadline, &mut self.batch) == 0 {
                // Queue drained, or the next event lies past the deadline:
                // advance the clock so callers observe a consistent
                // "simulated through deadline" state.
                if self.now < deadline {
                    self.now = deadline;
                }
                return Ok(());
            }
        }
    }

    /// Run until the event queue drains or virtual time would pass
    /// `deadline`. Events at exactly `deadline` are processed; the clock is
    /// left at `min(deadline, last event time)`.
    ///
    /// # Panics
    /// Panics on a dispatch error ([`Simulator::try_run_until`] reports it).
    pub fn run_until(&mut self, deadline: SimTime) {
        self.try_run_until(deadline)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Simulator::run_until`], surfacing dispatch errors instead of
    /// panicking.
    pub fn try_run_until(&mut self, deadline: SimTime) -> Result<(), EngineError> {
        self.run_until_with(deadline, |_| None)
    }

    /// [`Simulator::run_until`], additionally counting each processed event
    /// under the class index `classify` assigns it (clamped to the range
    /// set by [`Simulator::set_event_classes`], which must be called
    /// first). `classify` is a generic parameter so a function item passed
    /// here inlines into the event loop — measurably cheaper than an
    /// indirect call per event.
    ///
    /// # Panics
    /// Panics on a dispatch error ([`Simulator::try_run_until_classified`]
    /// reports it).
    pub fn run_until_classified<F: FnMut(&M) -> usize>(&mut self, deadline: SimTime, classify: F) {
        self.try_run_until_classified(deadline, classify)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Simulator::run_until_classified`], surfacing dispatch errors
    /// instead of panicking.
    pub fn try_run_until_classified<F: FnMut(&M) -> usize>(
        &mut self,
        deadline: SimTime,
        mut classify: F,
    ) -> Result<(), EngineError> {
        assert!(
            !self.class_counts.is_empty(),
            "set_event_classes must be called before run_until_classified"
        );
        if let Some(p) = self.prof.as_deref_mut() {
            // Wall time between run slices (metric collection, convergence
            // checks) belongs to the harness, not to any event cell: drop
            // the sampling anchor so the first sample of this slice only
            // re-arms it. Sample *counts* stay deterministic — the anchor
            // affects the charged nanoseconds, never which events sample.
            p.last_sample = None;
        }
        self.run_until_with(deadline, |m| Some(classify(m)))
    }

    // ----- checkpoint/restore -------------------------------------------

    /// Serialize the engine's replay-relevant state: clock, event counts,
    /// and the full pending-event queue (see [`EventQueue::save_state`]).
    /// Components are **not** serialized here — the harness owns their
    /// concrete types and snapshots them alongside.
    ///
    /// Must be called between run slices (never from inside a handler):
    /// a partially-drained same-timestamp dispatch batch cannot be
    /// represented.
    ///
    /// # Panics
    /// Panics if called mid-dispatch-batch.
    pub fn save_state(&self, w: &mut SnapWriter, save_msg: impl FnMut(&mut SnapWriter, &M)) {
        assert!(self.batch.is_empty(), "engine snapshot mid-dispatch-batch");
        w.time(self.now);
        w.u64(self.processed);
        w.u64(self.max_pending);
        w.seq(&self.class_counts, |w, &c| w.u64(c));
        self.queue.save_state(w, save_msg);
    }

    /// Restore state written by [`Simulator::save_state`] into this
    /// engine. The component arena is left untouched: the caller rebuilds
    /// components deterministically (same ids, same wiring) and then
    /// overwrites their mutable state, after which this call realigns the
    /// clock and pending events.
    ///
    /// Saved per-class event counts only apply when the current
    /// configuration has matching class dimensions (an unobserved
    /// snapshot restored into an observed run keeps its zeroed counters).
    pub fn restore_state<'a>(
        &mut self,
        r: &mut SnapReader<'a>,
        load_msg: impl FnMut(&mut SnapReader<'a>) -> Result<M, SnapError>,
    ) -> Result<(), SnapError> {
        let now = r.time()?;
        let processed = r.u64()?;
        let max_pending = r.u64()?;
        let class_counts = r.seq(|r| r.u64())?;
        let queue = EventQueue::load_state(r, load_msg)?;
        self.now = now;
        self.processed = processed;
        self.max_pending = max_pending;
        if !class_counts.is_empty() && class_counts.len() == self.class_counts.len() {
            self.class_counts = class_counts;
        }
        self.queue = queue;
        self.batch.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    struct Pinger {
        peer: Option<ComponentId>,
        sent: u32,
        max: u32,
        log: Vec<(SimTime, u32)>,
    }

    impl Component<Msg> for Pinger {
        fn on_event(&mut self, now: SimTime, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
            match msg {
                Msg::Pong(n) => {
                    self.log.push((now, n));
                    if self.sent < self.max {
                        self.sent += 1;
                        ctx.schedule_in(
                            SimDuration::from_millis(10),
                            self.peer.unwrap(),
                            Msg::Ping(self.sent),
                        );
                    }
                }
                Msg::Ping(_) => unreachable!("pinger never receives pings"),
            }
        }
    }

    struct Ponger;

    impl Component<Msg> for Ponger {
        fn on_event(&mut self, _now: SimTime, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
            if let Msg::Ping(n) = msg {
                // Reply after a 5 ms "processing delay" to whoever is wired
                // as component 0 (test-local convention).
                ctx.schedule_in(
                    SimDuration::from_millis(5),
                    ComponentId::from_raw(0),
                    Msg::Pong(n),
                );
            }
        }
    }

    #[test]
    fn ping_pong_round_trips() {
        let mut sim = Simulator::new(0);
        let pinger = sim.add_component(Pinger {
            peer: None,
            sent: 0,
            max: 3,
            log: Vec::new(),
        });
        let ponger = sim.add_component(Ponger);
        sim.component_mut::<Pinger>(pinger).peer = Some(ponger);
        // Kick off: deliver Pong(0) to the pinger at t=0.
        sim.schedule(SimTime::ZERO, pinger, Msg::Pong(0));
        sim.run();
        let log = &sim.component::<Pinger>(pinger).log;
        // Pong(0) at t=0, then each round trip takes 15 ms.
        assert_eq!(
            log,
            &vec![
                (SimTime::ZERO, 0),
                (SimTime::from_millis(15), 1),
                (SimTime::from_millis(30), 2),
                (SimTime::from_millis(45), 3),
            ]
        );
        assert_eq!(sim.now(), SimTime::from_millis(45));
        assert_eq!(sim.events_processed(), 7); // 4 pongs + 3 pings
    }

    struct Counter {
        count: u64,
    }

    impl Component<Msg> for Counter {
        fn on_event(&mut self, _now: SimTime, _msg: Msg, ctx: &mut Ctx<'_, Msg>) {
            self.count += 1;
            ctx.schedule_self(SimDuration::from_secs(1), Msg::Ping(0));
        }
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulator::new(0);
        let c = sim.add_component(Counter { count: 0 });
        sim.schedule(SimTime::ZERO, c, Msg::Ping(0));
        sim.run_until(SimTime::from_secs(10));
        // Fires at t=0,1,...,10 inclusive.
        assert_eq!(sim.component::<Counter>(c).count, 11);
        assert_eq!(sim.now(), SimTime::from_secs(10));
        // Continuing runs further.
        sim.run_until(SimTime::from_secs(12));
        assert_eq!(sim.component::<Counter>(c).count, 13);
    }

    #[test]
    fn run_until_advances_clock_when_queue_drains() {
        let mut sim: Simulator<Msg> = Simulator::new(0);
        sim.add_component(Ponger);
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.now(), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "component type mismatch")]
    fn downcast_mismatch_panics() {
        let mut sim: Simulator<Msg> = Simulator::new(0);
        let id = sim.add_component(Ponger);
        let _ = sim.component::<Counter>(id);
    }

    #[test]
    fn classifier_counts_per_kind_and_tracks_high_water() {
        let mut sim = Simulator::new(0);
        let pinger = sim.add_component(Pinger {
            peer: None,
            sent: 0,
            max: 3,
            log: Vec::new(),
        });
        let ponger = sim.add_component(Ponger);
        sim.component_mut::<Pinger>(pinger).peer = Some(ponger);
        sim.set_event_classes(2);
        sim.schedule(SimTime::ZERO, pinger, Msg::Pong(0));
        sim.run_until_classified(SimTime::from_secs(1_000), |m| match m {
            Msg::Ping(_) => 0,
            Msg::Pong(_) => 1,
        });
        assert_eq!(sim.event_class_counts(), &[3, 4]);
        assert_eq!(sim.max_pending(), 1);
    }

    #[test]
    fn profiling_attributes_counts_per_class_and_kind() {
        let mut sim = Simulator::new(0);
        let pinger = sim.add_component(Pinger {
            peer: None,
            sent: 0,
            max: 3,
            log: Vec::new(),
        });
        let ponger = sim.add_component(Ponger);
        sim.component_mut::<Pinger>(pinger).peer = Some(ponger);
        sim.set_event_classes(2);
        assert!(!sim.profiling_enabled());
        // Component 0 (pinger) is class 0, component 1 (ponger) class 1.
        sim.enable_profiling(vec![0, 1], 2, 2, 2);
        sim.schedule(SimTime::ZERO, pinger, Msg::Pong(0));
        sim.run_until_classified(SimTime::from_secs(1_000), |m| match m {
            Msg::Ping(_) => 0,
            Msg::Pong(_) => 1,
        });
        let (counts, _nanos, samples) = sim.profile_cells().unwrap();
        // The pinger receives 4 pongs → cell (class 0, kind 1); the ponger
        // receives 3 pings → cell (class 1, kind 0). Counts are exact.
        assert_eq!(counts, &[0, 4, 3, 0]);
        // 7 events at stride 2 sample at events 2, 4, 6; the first sample
        // only arms the anchor, so exactly 2 are charged — deterministic.
        assert_eq!(samples.iter().sum::<u64>(), 2);
    }

    #[test]
    fn classifier_clamps_out_of_range_to_last_class() {
        let mut sim = Simulator::new(0);
        let c = sim.add_component(Ponger);
        sim.set_event_classes(2);
        sim.schedule(SimTime::ZERO, c, Msg::Ping(1));
        sim.run_until_classified(SimTime::from_secs(1_000), |_| 99);
        // Ping + the Pong reply the Ponger schedules, both clamped.
        assert_eq!(sim.event_class_counts(), &[0, 2]);
    }

    #[test]
    fn unknown_component_is_a_typed_error() {
        let mut sim: Simulator<Msg> = Simulator::new(0);
        sim.schedule(
            SimTime::from_secs(3),
            ComponentId::from_raw(7),
            Msg::Ping(0),
        );
        let err = sim.try_run().unwrap_err();
        assert_eq!(
            err,
            EngineError::UnknownComponent {
                dst: ComponentId::from_raw(7),
                at: SimTime::from_secs(3),
            }
        );
        assert!(err.to_string().contains("unknown component #7"));
        // The clock still advanced to the faulty event's time.
        assert_eq!(sim.now(), SimTime::from_secs(3));
    }

    #[test]
    #[should_panic(expected = "event for unknown component")]
    fn unknown_component_panics_via_legacy_entry_point() {
        let mut sim: Simulator<Msg> = Simulator::new(0);
        sim.schedule(SimTime::ZERO, ComponentId::from_raw(7), Msg::Ping(0));
        sim.run();
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed: u64| {
            let mut sim = Simulator::new(seed);
            let pinger = sim.add_component(Pinger {
                peer: None,
                sent: 0,
                max: 50,
                log: Vec::new(),
            });
            let ponger = sim.add_component(Ponger);
            sim.component_mut::<Pinger>(pinger).peer = Some(ponger);
            sim.schedule(SimTime::ZERO, pinger, Msg::Pong(0));
            sim.run();
            sim.component::<Pinger>(pinger).log.clone()
        };
        assert_eq!(run(1), run(1));
    }
}
