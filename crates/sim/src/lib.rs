//! # ccsim-sim — deterministic discrete-event simulation engine
//!
//! This crate is the foundation of the `ccsim` workspace: a small,
//! allocation-conscious discrete-event simulator (DES) engineered to sustain
//! the event rates required to emulate a 10 Gbps bottleneck shared by
//! thousands of TCP flows (millions of events per simulated second) on a
//! laptop.
//!
//! ## Model
//!
//! * **Virtual time** is a `u64` count of nanoseconds ([`SimTime`],
//!   [`SimDuration`]). Nanosecond granularity comfortably resolves the
//!   serialization time of a single byte at 100 Gbps.
//! * **Components** ([`Component`]) are the actors of the simulation (hosts,
//!   queues, links, probes). They live in an arena owned by the
//!   [`Simulator`] and are addressed by [`ComponentId`].
//! * **Events** carry a user-defined message type `M` to a destination
//!   component at a virtual timestamp. Ties are broken FIFO by a monotonic
//!   sequence number, which makes runs bit-for-bit reproducible.
//! * **Randomness** is derived from a single master seed via
//!   [`rng::RngFactory`]; every consumer gets an independent, stable stream.
//!
//! ## Example
//!
//! ```
//! use ccsim_sim::{Component, Ctx, SimDuration, SimTime, Simulator};
//!
//! struct Ticker { remaining: u32 }
//!
//! impl Component<u32> for Ticker {
//!     fn on_event(&mut self, _now: SimTime, tick: u32, ctx: &mut Ctx<'_, u32>) {
//!         if self.remaining > 0 {
//!             self.remaining -= 1;
//!             ctx.schedule_self(SimDuration::from_millis(1), tick + 1);
//!         }
//!     }
//! }
//!
//! let mut sim = Simulator::new(42);
//! let id = sim.add_component(Ticker { remaining: 10 });
//! sim.schedule(SimTime::ZERO, id, 0u32);
//! sim.run();
//! assert_eq!(sim.now(), SimTime::from_millis(10));
//! ```

pub mod engine;
pub mod event;
pub mod jsonfmt;
pub mod pool;
pub mod rate;
pub mod rng;
pub mod snap;
pub mod time;

pub use engine::{Component, ComponentId, Ctx, EngineError, Simulator};
pub use event::{CancelToken, Event, EventQueue, HeapQueue, WheelStats};
pub use pool::{PoolStats, VecPool};
pub use rate::Bandwidth;
pub use rng::RngFactory;
pub use snap::{SnapError, SnapReader, SnapWriter};
pub use time::{SimDuration, SimTime};
