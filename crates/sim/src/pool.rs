//! Free-list buffer pooling: the allocation-discipline half of the
//! megascale overhaul.
//!
//! The engine's steady state is deliberately allocation-free per segment:
//! `Packet` is `Copy`, the timer wheel swaps drained slot buffers back
//! into place, and the dispatch ring is reused across batches. What *did*
//! still allocate per slice were the harness-side scratch buffers — the
//! per-flow delivered-bytes snapshot (one `Vec<u64>` per snapshot
//! interval, a megabyte-scale allocation per slice at 1 M flows) and
//! similar collection temporaries. [`VecPool`] formalizes the free-list
//! idiom those paths now share: `acquire` hands back a cleared buffer
//! with its old capacity intact, `release` parks it for reuse, and the
//! [`PoolStats`] counters make the "steady state allocates nothing"
//! claim checkable instead of aspirational.
//!
//! The pool is deliberately dumb: LIFO reuse (the hottest buffer and its
//! cache lines come back first), no size classes, no cross-thread
//! sharing. Campaign workers each build their own simulation, so a pool
//! per runner is the right granularity.

/// Counters describing a pool's reuse behavior (see [`VecPool::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers handed out by [`VecPool::acquire`].
    pub acquires: u64,
    /// Acquires served from the free list (no allocation).
    pub reuses: u64,
    /// Buffers parked by [`VecPool::release`].
    pub releases: u64,
    /// Most buffers simultaneously parked in the free list.
    pub high_water: usize,
}

impl PoolStats {
    /// Acquires that had to allocate a fresh buffer.
    pub fn misses(&self) -> u64 {
        self.acquires - self.reuses
    }
}

/// A LIFO free list of `Vec<T>` buffers.
///
/// `acquire` → use → `release` keeps capacity alive across iterations, so
/// a loop that previously allocated one buffer per slice allocates one
/// buffer per *run*. Dropping the pool drops the parked buffers.
#[derive(Debug, Default)]
pub struct VecPool<T> {
    free: Vec<Vec<T>>,
    stats: PoolStats,
}

impl<T> VecPool<T> {
    /// An empty pool.
    pub fn new() -> VecPool<T> {
        VecPool {
            free: Vec::new(),
            stats: PoolStats::default(),
        }
    }

    /// Take a cleared buffer, reusing a parked one when available.
    pub fn acquire(&mut self) -> Vec<T> {
        self.stats.acquires += 1;
        match self.free.pop() {
            Some(mut buf) => {
                self.stats.reuses += 1;
                buf.clear();
                buf
            }
            None => Vec::new(),
        }
    }

    /// Park a buffer for reuse. The contents are cleared on the next
    /// `acquire`, not here, so release stays O(1) even for `Drop` types.
    pub fn release(&mut self, buf: Vec<T>) {
        self.stats.releases += 1;
        self.free.push(buf);
        if self.free.len() > self.stats.high_water {
            self.stats.high_water = self.free.len();
        }
    }

    /// Buffers currently parked.
    pub fn idle(&self) -> usize {
        self.free.len()
    }

    /// Reuse counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Heap bytes held by the parked buffers (elements at their in-buffer
    /// size) plus the free list's own spine.
    pub fn memory_bytes(&self) -> u64 {
        let elem = std::mem::size_of::<T>() as u64;
        let spine = (self.free.capacity() * std::mem::size_of::<Vec<T>>()) as u64;
        spine
            + self
                .free
                .iter()
                .map(|b| b.capacity() as u64 * elem)
                .sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_reuses_capacity_without_allocating() {
        let mut pool: VecPool<u64> = VecPool::new();
        // Prime: first acquire allocates, grow to a working capacity.
        let mut buf = pool.acquire();
        buf.extend(0..1024);
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        pool.release(buf);
        // Steady state: every subsequent cycle gets the same allocation
        // back, cleared but with capacity (and base pointer) intact.
        for round in 0..100u64 {
            let mut buf = pool.acquire();
            assert!(buf.is_empty());
            assert_eq!(buf.capacity(), cap);
            assert_eq!(buf.as_ptr(), ptr, "round {round} reallocated");
            buf.extend(0..1024);
            pool.release(buf);
        }
        let s = pool.stats();
        assert_eq!(s.acquires, 101);
        assert_eq!(s.reuses, 100);
        assert_eq!(s.misses(), 1);
        assert_eq!(s.releases, 101);
        assert_eq!(s.high_water, 1);
    }

    #[test]
    fn lifo_order_hands_back_the_hottest_buffer() {
        let mut pool: VecPool<u8> = VecPool::new();
        let mut a = pool.acquire();
        a.reserve(10);
        let mut b = pool.acquire();
        b.reserve(1000);
        let b_ptr = b.as_ptr();
        pool.release(a);
        pool.release(b);
        assert_eq!(pool.idle(), 2);
        // b released last, so b comes back first.
        let got = pool.acquire();
        assert_eq!(got.as_ptr(), b_ptr);
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn memory_accounts_for_parked_capacity() {
        let mut pool: VecPool<u64> = VecPool::new();
        let mut buf = pool.acquire();
        buf.reserve_exact(512);
        let cap = buf.capacity();
        pool.release(buf);
        assert!(pool.memory_bytes() >= cap as u64 * 8);
        let _ = pool.acquire();
        // The buffer is out in the wild: the pool no longer accounts it.
        assert!(pool.memory_bytes() < 512 * 8);
    }
}
