//! Bandwidth (data rate) arithmetic.
//!
//! [`Bandwidth`] wraps bits-per-second as a `u64` and provides the two
//! conversions the simulator needs constantly and must never get wrong:
//!
//! * the serialization delay of a frame of `n` bytes at this rate, and
//! * the number of bytes transferable in a given duration.
//!
//! Both are computed in `u128` to avoid intermediate overflow (e.g.
//! `bytes * 8 * 1e9` overflows `u64` past ~2.3 GB).

use crate::time::{mul_u64_f64, SimDuration, F64_EXACT_LIMIT, NANOS_PER_SEC};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A data rate in bits per second.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Bandwidth(u64);

impl Bandwidth {
    /// Zero rate (useful as a sentinel for "unlimited" is *not* this —
    /// zero means nothing can be sent).
    pub const ZERO: Bandwidth = Bandwidth(0);

    /// Construct from bits per second.
    #[inline]
    pub const fn from_bps(bps: u64) -> Self {
        Bandwidth(bps)
    }

    /// Construct from kilobits per second (10^3 bps).
    #[inline]
    pub const fn from_kbps(kbps: u64) -> Self {
        Bandwidth(kbps * 1_000)
    }

    /// Construct from megabits per second (10^6 bps).
    #[inline]
    pub const fn from_mbps(mbps: u64) -> Self {
        Bandwidth(mbps * 1_000_000)
    }

    /// Construct from gigabits per second (10^9 bps).
    #[inline]
    pub const fn from_gbps(gbps: u64) -> Self {
        Bandwidth(gbps * 1_000_000_000)
    }

    /// Bits per second.
    #[inline]
    pub const fn as_bps(self) -> u64 {
        self.0
    }

    /// Megabits per second as `f64`.
    #[inline]
    pub fn as_mbps_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Bytes per second as `f64`.
    #[inline]
    pub fn as_bytes_per_sec(self) -> f64 {
        self.0 as f64 / 8.0
    }

    /// Time to serialize `bytes` onto a link of this rate, rounded up to the
    /// next nanosecond so that back-to-back frames never overlap.
    ///
    /// # Panics
    /// Panics if the rate is zero (a zero-rate link can never transmit).
    #[inline]
    pub fn serialization_time(self, bytes: u64) -> SimDuration {
        assert!(self.0 > 0, "serialization on a zero-rate link");
        let bits = bytes as u128 * 8;
        let ns = (bits * NANOS_PER_SEC as u128).div_ceil(self.0 as u128);
        SimDuration::from_nanos(ns as u64)
    }

    /// Bytes transferable in `dur` at this rate (truncating).
    #[inline]
    pub fn bytes_in(self, dur: SimDuration) -> u64 {
        let bits = self.0 as u128 * dur.as_nanos() as u128 / NANOS_PER_SEC as u128;
        (bits / 8) as u64
    }

    /// Scale the rate by a non-negative float (used by pacing gains),
    /// truncating to whole bits per second and saturating at `u64::MAX`.
    ///
    /// Above 2^53 bps the naive `u64 -> f64 -> u64` round-trip misplaces
    /// low bits; this routes through exact 128-bit mantissa arithmetic
    /// there (see [`mul_u64_f64`]) so e.g. `mul_f64(1.0)` is the identity
    /// over the full range.
    #[inline]
    pub fn mul_f64(self, k: f64) -> Bandwidth {
        debug_assert!(k >= 0.0 && k.is_finite(), "negative or non-finite gain");
        if self.0 < F64_EXACT_LIMIT {
            let bps = self.0 as f64 * k;
            if bps >= u64::MAX as f64 {
                Bandwidth(u64::MAX)
            } else {
                Bandwidth(bps as u64)
            }
        } else {
            Bandwidth(mul_u64_f64(self.0, k, false))
        }
    }

    /// Construct from a bytes-per-`dur` measurement (e.g. a delivery-rate
    /// sample). Returns `None` when `dur` is zero.
    #[inline]
    pub fn from_bytes_per(bytes: u64, dur: SimDuration) -> Option<Bandwidth> {
        if dur.is_zero() {
            return None;
        }
        let bps = bytes as u128 * 8 * NANOS_PER_SEC as u128 / dur.as_nanos() as u128;
        Some(Bandwidth(bps.min(u64::MAX as u128) as u64))
    }
}

impl fmt::Debug for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bps = self.0;
        if bps >= 1_000_000_000 {
            write!(f, "{:.3}Gbps", bps as f64 / 1e9)
        } else if bps >= 1_000_000 {
            write!(f, "{:.3}Mbps", bps as f64 / 1e6)
        } else if bps >= 1_000 {
            write!(f, "{:.3}Kbps", bps as f64 / 1e3)
        } else {
            write!(f, "{bps}bps")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Bandwidth::from_gbps(10).as_bps(), 10_000_000_000);
        assert_eq!(Bandwidth::from_mbps(100).as_bps(), 100_000_000);
        assert_eq!(Bandwidth::from_kbps(64).as_bps(), 64_000);
    }

    #[test]
    fn serialization_time_exact() {
        // 1500 bytes at 100 Mbps = 120 microseconds.
        let bw = Bandwidth::from_mbps(100);
        assert_eq!(bw.serialization_time(1500), SimDuration::from_micros(120));
        // 1500 bytes at 10 Gbps = 1.2 microseconds.
        let bw = Bandwidth::from_gbps(10);
        assert_eq!(bw.serialization_time(1500), SimDuration::from_nanos(1200));
    }

    #[test]
    fn serialization_time_rounds_up() {
        // 1 byte at 3 bps: 8 bits / 3 bps = 2.666...s -> must round up.
        let bw = Bandwidth::from_bps(3);
        assert_eq!(
            bw.serialization_time(1),
            SimDuration::from_nanos(2_666_666_667)
        );
    }

    #[test]
    fn no_overflow_on_large_frames() {
        // A 1 GB "frame" at 1 bps would overflow u64 bits*ns math if done
        // naively; u128 internals must cope.
        let bw = Bandwidth::from_gbps(100);
        let t = bw.serialization_time(1_000_000_000);
        assert_eq!(t, SimDuration::from_millis(80));
    }

    #[test]
    fn bytes_in_duration() {
        let bw = Bandwidth::from_mbps(8); // 1 MB/s
        assert_eq!(bw.bytes_in(SimDuration::from_secs(1)), 1_000_000);
        assert_eq!(bw.bytes_in(SimDuration::from_millis(1)), 1_000);
    }

    #[test]
    fn from_bytes_per_round_trip() {
        let rate = Bandwidth::from_bytes_per(125_000, SimDuration::from_secs(1)).unwrap();
        assert_eq!(rate, Bandwidth::from_mbps(1));
        assert_eq!(Bandwidth::from_bytes_per(1, SimDuration::ZERO), None);
    }

    #[test]
    fn gain_scaling() {
        let bw = Bandwidth::from_mbps(100);
        assert_eq!(bw.mul_f64(1.25), Bandwidth::from_bps(125_000_000));
        assert_eq!(bw.mul_f64(0.75), Bandwidth::from_bps(75_000_000));
    }

    #[test]
    fn gain_scaling_is_exact_above_f64_mantissa_range() {
        // 2^53 + 1 is the first u64 the f64 round-trip corrupts: the old
        // implementation returned 2^53 for a unity gain.
        let bw = Bandwidth::from_bps((1 << 53) + 1);
        assert_eq!(bw.mul_f64(1.0), bw);
        // Power-of-two gains must be exact bit shifts over the full range.
        let big = Bandwidth::from_bps(u64::MAX - 12345);
        assert_eq!(big.mul_f64(0.5).as_bps(), (u64::MAX - 12345) >> 1);
        assert_eq!(big.mul_f64(2.0), Bandwidth(u64::MAX), "must saturate");
        // A representative BBR-style gain on a huge rate: exact rational.
        let x = (1u64 << 60) + 977;
        let k = 1.25f64; // == 5/4 exactly
        assert_eq!(
            Bandwidth::from_bps(x).mul_f64(k).as_bps(),
            (x as u128 * 5 / 4) as u64
        );
    }

    #[test]
    #[should_panic(expected = "zero-rate")]
    fn zero_rate_serialization_panics() {
        Bandwidth::ZERO.serialization_time(1);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Bandwidth::from_gbps(10)), "10.000Gbps");
        assert_eq!(format!("{}", Bandwidth::from_mbps(100)), "100.000Mbps");
        assert_eq!(format!("{}", Bandwidth::from_bps(42)), "42bps");
    }
}
