//! Shared helpers for the workspace's hand-rolled JSON writers.
//!
//! The vendored serde stand-in provides derive markers but no serializer
//! (see `vendor/README.md`), so every wire format in the workspace —
//! fault plans, scenario documents, run manifests, campaign ledgers — is
//! written by hand. The escaping and number-formatting rules used to be
//! copy-pasted into each writer; this module is the single definition.
//! It lives in `ccsim-sim` because that crate is the one dependency every
//! other workspace crate already has.
//!
//! Invariants the writers rely on:
//!
//! * [`escape`] emits exactly the escapes the in-workspace parser
//!   (`ccsim_fault::json`) understands: `\"`, `\\`, and `\uXXXX` for
//!   control characters; everything else is copied verbatim.
//! * [`json_f64`] prints finite floats with Rust's shortest-round-trip
//!   `Display`, so a write → parse cycle is bit-exact; non-finite values
//!   degrade to `0` so the document stays strictly JSON.

/// Append `s` to `out` with JSON string escaping.
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Escape a string for embedding in hand-rolled JSON output.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(s, &mut out);
    out
}

/// Render a finite float with shortest-round-trip precision; non-finite
/// values (a 0-wall-clock ratio, say) degrade to `0` so the document
/// stays strictly JSON.
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Render an optional float: `null` when absent, [`json_f64`] otherwise.
pub fn json_opt_f64(v: Option<f64>) -> String {
    match v {
        Some(v) => json_f64(v),
        None => "null".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
        assert_eq!(escape("plain ✓"), "plain ✓");
    }

    #[test]
    fn floats_print_shortest_round_trip() {
        let x = 0.123_456_789_012_345_68_f64;
        assert_eq!(json_f64(x).parse::<f64>().unwrap().to_bits(), x.to_bits());
        assert_eq!(json_f64(f64::INFINITY), "0");
        assert_eq!(json_f64(f64::NAN), "0");
    }

    #[test]
    fn optional_floats_use_null() {
        assert_eq!(json_opt_f64(None), "null");
        assert_eq!(json_opt_f64(Some(2.5)), "2.5");
    }
}
