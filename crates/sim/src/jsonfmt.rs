//! Shared helpers for the workspace's hand-rolled JSON writers.
//!
//! The vendored serde stand-in provides derive markers but no serializer
//! (see `vendor/README.md`), so every wire format in the workspace —
//! fault plans, scenario documents, run manifests, campaign ledgers — is
//! written by hand. The escaping and number-formatting rules used to be
//! copy-pasted into each writer; this module is the single definition.
//! It lives in `ccsim-sim` because that crate is the one dependency every
//! other workspace crate already has.
//!
//! Invariants the writers rely on:
//!
//! * [`escape`] emits exactly the escapes the in-workspace parser
//!   (`ccsim_fault::json`) understands: `\"`, `\\`, and `\uXXXX` for
//!   control characters; everything else is copied verbatim.
//! * [`json_f64`] prints finite floats with Rust's shortest-round-trip
//!   `Debug` form (scientific notation when shorter, like `serde_json`),
//!   so a write → parse → write cycle is a byte-level fixpoint and the
//!   parsed value is bit-exact; non-finite values degrade to `0` so the
//!   document stays strictly JSON. `Display` is deliberately *not* used:
//!   it expands extreme magnitudes positionally (`1e300` becomes a
//!   301-digit integer, the smallest subnormal a 324-decimal-place
//!   fraction), which bloats ledgers and defeats the "shortest" claim.

/// Append `s` to `out` with JSON string escaping.
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Escape a string for embedding in hand-rolled JSON output.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(s, &mut out);
    out
}

/// Render a finite float with shortest-round-trip precision (the `Debug`
/// form: `1e300`, `5e-324`, `-0.0` — never a positional expansion);
/// non-finite values (a 0-wall-clock ratio, say) degrade to `0` so the
/// document stays strictly JSON.
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "0".to_string()
    }
}

/// Render an optional float: `null` when absent, [`json_f64`] otherwise.
pub fn json_opt_f64(v: Option<f64>) -> String {
    match v {
        Some(v) => json_f64(v),
        None => "null".to_string(),
    }
}

/// `num / den` with a degenerate-denominator guard: `0.0` when `den` is
/// zero, negative, or non-finite (a zero-event run, a sub-microsecond
/// dispatch span), and `0.0` when the quotient itself is non-finite.
///
/// Rates written to ledgers and manifests must go through this rather
/// than relying on [`json_f64`]'s non-finite fallback: that fallback
/// keeps the *document* parseable but the in-memory value would still be
/// `inf`/NaN, poisoning comparisons, histograms, and rollup arithmetic
/// before serialization ever happens.
pub fn safe_rate(num: f64, den: f64) -> f64 {
    if den <= 0.0 || !den.is_finite() {
        return 0.0;
    }
    let q = num / den;
    if q.is_finite() {
        q
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
        assert_eq!(escape("plain ✓"), "plain ✓");
    }

    #[test]
    fn floats_print_shortest_round_trip() {
        let x = 0.123_456_789_012_345_68_f64;
        assert_eq!(json_f64(x).parse::<f64>().unwrap().to_bits(), x.to_bits());
        assert_eq!(json_f64(f64::INFINITY), "0");
        assert_eq!(json_f64(f64::NAN), "0");
    }

    #[test]
    fn extreme_floats_stay_short_and_bit_exact() {
        // Positional expansion of these is 300+ characters; the Debug
        // form is shortest-round-trip scientific notation.
        assert_eq!(json_f64(1e300), "1e300");
        assert_eq!(json_f64(5e-324), "5e-324"); // smallest subnormal
        assert_eq!(json_f64(-0.0), "-0.0");
        assert_eq!(
            json_f64(-0.0).parse::<f64>().unwrap().to_bits(),
            (-0.0f64).to_bits()
        );
        assert_eq!(json_f64(1e16), "1e16");
        for v in [1e300, 5e-324, -0.0, f64::MIN_POSITIVE, 1e16, -2.5e-11] {
            let s = json_f64(v);
            assert!(s.len() <= 25, "{s} not shortest");
            assert_eq!(s.parse::<f64>().unwrap().to_bits(), v.to_bits());
            // Byte-level fixpoint: format(parse(format(v))) == format(v).
            assert_eq!(json_f64(s.parse::<f64>().unwrap()), s);
        }
    }

    #[test]
    fn optional_floats_use_null() {
        assert_eq!(json_opt_f64(None), "null");
        assert_eq!(json_opt_f64(Some(2.5)), "2.5");
    }

    #[test]
    fn safe_rate_is_finite_for_every_degenerate_denominator() {
        assert_eq!(safe_rate(100.0, 0.0), 0.0);
        assert_eq!(safe_rate(100.0, -1.0), 0.0);
        assert_eq!(safe_rate(100.0, f64::NAN), 0.0);
        assert_eq!(safe_rate(100.0, f64::INFINITY), 0.0);
        assert_eq!(safe_rate(0.0, 0.0), 0.0);
        // Overflowing quotients degrade to zero rather than inf.
        assert_eq!(safe_rate(f64::MAX, f64::MIN_POSITIVE), 0.0);
        assert_eq!(safe_rate(9.0, 2.0), 4.5);
    }
}
