//! Loss-event synchronization across flows.
//!
//! Appenzeller et al. (cited by the paper, §2) showed that *thousands* of
//! NewReno flows desynchronize their loss events, which is why core routers
//! can use small buffers; the paper hypothesizes the same desynchronization
//! drives BBR's fairness collapse at scale (Finding 5 discussion). This
//! module quantifies it.
//!
//! The **synchronization index** partitions the measurement window into
//! bins of width `w` (≈ one RTT) and, for each bin containing at least one
//! congestion event, computes the fraction of flows that experienced an
//! event in that bin. The index is the event-weighted mean of those
//! fractions:
//!
//! * fully synchronized flows (everyone halves together) → index ≈ 1;
//! * independent (Poisson-like) loss events → index ≈ per-bin event
//!   probability, → 0 as flows desynchronize.

use crate::windows::WindowPartition;
use ccsim_sim::{SimDuration, SimTime};

/// Synchronization index of per-flow event trains over `[start, end)` with
/// bin width `bin`. `None` when there are no events, no flows, or a
/// degenerate window.
pub fn synchronization_index(
    per_flow_events: &[Vec<SimTime>],
    start: SimTime,
    end: SimTime,
    bin: SimDuration,
) -> Option<f64> {
    let n_flows = per_flow_events.len();
    if n_flows == 0 {
        return None;
    }
    let part = WindowPartition::new(start, end, bin)?;
    let n_bins = part.len();
    // flows_in_bin[b] = number of distinct flows with >= 1 event in bin b.
    let mut flows_in_bin = vec![0u32; n_bins];
    let mut total_flows_with_events = 0usize;
    for events in per_flow_events {
        let mut seen = vec![false; n_bins];
        let mut any = false;
        for &t in events {
            let Some(b) = part.index_of(t) else { continue };
            if !seen[b] {
                seen[b] = true;
                flows_in_bin[b] += 1;
                any = true;
            }
        }
        if any {
            total_flows_with_events += 1;
        }
    }
    if total_flows_with_events == 0 {
        return None;
    }
    // Event-weighted mean of per-bin participation fractions.
    let mut weighted = 0.0;
    let mut weight = 0.0;
    for &count in &flows_in_bin {
        if count > 0 {
            let frac = count as f64 / n_flows as f64;
            weighted += frac * count as f64;
            weight += count as f64;
        }
    }
    Some(weighted / weight)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn fully_synchronized_flows_score_one() {
        // Every flow halves at t = 100, 200, 300 ms.
        let events: Vec<Vec<SimTime>> = (0..10).map(|_| vec![t(100), t(200), t(300)]).collect();
        let idx =
            synchronization_index(&events, t(0), t(400), SimDuration::from_millis(20)).unwrap();
        assert!((idx - 1.0).abs() < 1e-12, "idx = {idx}");
    }

    #[test]
    fn staggered_flows_score_low() {
        // Each flow's single event lands in its own bin.
        let events: Vec<Vec<SimTime>> = (0..10u64).map(|i| vec![t(10 + i * 30)]).collect();
        let idx =
            synchronization_index(&events, t(0), t(400), SimDuration::from_millis(20)).unwrap();
        assert!((idx - 0.1).abs() < 1e-12, "idx = {idx}");
    }

    #[test]
    fn half_synchronized_scores_between() {
        // Flows 0-4 share one epoch; flows 5-9 each alone.
        let mut events: Vec<Vec<SimTime>> = (0..5).map(|_| vec![t(50)]).collect();
        events.extend((0..5u64).map(|i| vec![t(150 + i * 40)]));
        let idx =
            synchronization_index(&events, t(0), t(400), SimDuration::from_millis(20)).unwrap();
        assert!(idx > 0.1 && idx < 1.0, "idx = {idx}");
    }

    #[test]
    fn events_outside_window_are_ignored() {
        let events = vec![vec![t(5), t(500)], vec![t(5), t(500)]];
        let idx =
            synchronization_index(&events, t(0), t(100), SimDuration::from_millis(10)).unwrap();
        // Only the t=5 events count; both flows share that bin.
        assert!((idx - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_yield_none() {
        assert_eq!(
            synchronization_index(&[], t(0), t(100), SimDuration::from_millis(10)),
            None
        );
        let e = vec![vec![t(10)]];
        assert_eq!(
            synchronization_index(&e, t(100), t(100), SimDuration::from_millis(10)),
            None
        );
        assert_eq!(
            synchronization_index(&e, t(0), t(100), SimDuration::ZERO),
            None
        );
        let empty = vec![Vec::new(), Vec::new()];
        assert_eq!(
            synchronization_index(&empty, t(0), t(100), SimDuration::from_millis(10)),
            None
        );
    }

    #[test]
    fn index_shrinks_as_population_desynchronizes() {
        // Same event count, increasingly spread over bins.
        let synced: Vec<Vec<SimTime>> = (0..20).map(|_| vec![t(100)]).collect();
        let spread: Vec<Vec<SimTime>> = (0..20u64).map(|i| vec![t(10 + i * 15)]).collect();
        let a = synchronization_index(&synced, t(0), t(400), SimDuration::from_millis(15)).unwrap();
        let b = synchronization_index(&spread, t(0), t(400), SimDuration::from_millis(15)).unwrap();
        assert!(a > 5.0 * b, "synced {a} vs spread {b}");
    }
}
