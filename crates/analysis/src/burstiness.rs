//! Goh–Barabási burstiness of event trains.
//!
//! Goh & Barabási (EPL 2008) characterize an event sequence by the
//! coefficient of variation of its inter-event times `τ`:
//!
//! ```text
//! B = (σ_τ − μ_τ) / (σ_τ + μ_τ)   ∈ [−1, 1]
//! ```
//!
//! * `B = −1` — perfectly periodic (σ = 0),
//! * `B ≈ 0` — Poisson (σ ≈ μ),
//! * `B → 1` — extremely bursty (σ ≫ μ).
//!
//! The paper (§4, Finding 3) applies this to bottleneck-queue drop
//! timestamps: median ≈ 0.2 in EdgeScale vs ≈ 0.35 in CoreScale,
//! corroborating that losses are burstier at scale.

use ccsim_sim::SimTime;

/// Burstiness of a timestamp train. Requires at least 3 events (2 intervals);
/// returns `None` otherwise or when all events are simultaneous.
pub fn burstiness(timestamps: &[SimTime]) -> Option<f64> {
    if timestamps.len() < 3 {
        return None;
    }
    debug_assert!(
        timestamps.windows(2).all(|w| w[0] <= w[1]),
        "timestamps must be sorted"
    );
    let intervals: Vec<f64> = timestamps
        .windows(2)
        .map(|w| (w[1] - w[0]).as_secs_f64())
        .collect();
    burstiness_of_intervals(&intervals)
}

/// Burstiness from pre-computed inter-event intervals (seconds).
pub fn burstiness_of_intervals(intervals: &[f64]) -> Option<f64> {
    if intervals.len() < 2 {
        return None;
    }
    let mu = crate::stats::mean(intervals)?;
    let sigma = crate::stats::std_dev(intervals)?;
    if mu + sigma == 0.0 {
        return None; // all events simultaneous
    }
    Some((sigma - mu) / (sigma + mu))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn periodic_train_scores_minus_one() {
        let ts: Vec<SimTime> = (0..100).map(|i| t(i * 10)).collect();
        let b = burstiness(&ts).unwrap();
        assert!((b - (-1.0)).abs() < 1e-12);
    }

    #[test]
    fn poisson_train_scores_near_zero() {
        // Deterministic exponential-quantile spacing: u_k = (k+0.5)/n maps
        // through -ln(1-u) to an exponential sample with sigma ~= mu.
        let n = 10_000;
        let intervals: Vec<f64> = (0..n)
            .map(|k| -(1.0 - (k as f64 + 0.5) / n as f64).ln())
            .collect();
        let b = burstiness_of_intervals(&intervals).unwrap();
        assert!(b.abs() < 0.05, "B = {b} should be ~0 for Poisson");
    }

    #[test]
    fn bursty_train_scores_positive() {
        // Tight bursts of 10 events separated by long gaps.
        let mut ts = Vec::new();
        for burst in 0..20u64 {
            for i in 0..10u64 {
                ts.push(t(burst * 10_000 + i));
            }
        }
        let b = burstiness(&ts).unwrap();
        assert!(b > 0.5, "B = {b} should be strongly positive");
    }

    #[test]
    fn burstier_trains_score_higher() {
        // Same mean rate, increasing clumpiness.
        let mild: Vec<SimTime> = (0..100).map(|i| t(i * 100 + (i % 2) * 30)).collect();
        let mut severe = Vec::new();
        for burst in 0..10u64 {
            for i in 0..10u64 {
                severe.push(t(burst * 1000 + i));
            }
        }
        let b_mild = burstiness(&mild).unwrap();
        let b_severe = burstiness(&severe).unwrap();
        assert!(b_severe > b_mild);
    }

    #[test]
    fn too_few_events_yield_none() {
        assert_eq!(burstiness(&[]), None);
        assert_eq!(burstiness(&[t(1)]), None);
        assert_eq!(burstiness(&[t(1), t(2)]), None);
        assert_eq!(burstiness_of_intervals(&[1.0]), None);
    }

    #[test]
    fn simultaneous_events_yield_none() {
        assert_eq!(burstiness(&[t(5), t(5), t(5)]), None);
    }

    #[test]
    fn score_is_scale_invariant() {
        let a: Vec<SimTime> = [0u64, 1, 2, 10, 11, 12, 30].iter().map(|&m| t(m)).collect();
        let b10: Vec<SimTime> = [0u64, 10, 20, 100, 110, 120, 300]
            .iter()
            .map(|&m| t(m))
            .collect();
        let ba = burstiness(&a).unwrap();
        let bb = burstiness(&b10).unwrap();
        assert!((ba - bb).abs() < 1e-9);
    }
}
