//! # ccsim-analysis — the measurement-study analysis toolkit
//!
//! Pure-math implementations of every metric the paper reports:
//!
//! * [`stats`] — descriptive statistics (mean, std-dev, quantiles).
//! * [`fairness`] — Jain's Fairness Index and group throughput shares
//!   (Figures 4–8).
//! * [`mathis`] — the Mathis throughput model, least-squares constant
//!   fitting, and prediction-error evaluation (Table 1, Figure 2).
//! * [`burstiness`] — the Goh–Barabási burstiness score applied to queue
//!   drop trains (Finding 3's corroboration).
//! * [`sync`] — the loss-event synchronization index (the Appenzeller
//!   desynchronization argument, quantified).
//! * [`windows`] — the shared window-partitioning rules every windowed
//!   diagnostic builds on.
//! * [`convergence`] — windowed convergence diagnostics: JFI trajectory,
//!   time-to-α-fair, windowed Mathis error / shares / sync index.
//! * [`trace`] — the above metrics applied directly to recorded
//!   flight-recorder traces ([`ccsim_trace::RunTrace`]).

pub mod burstiness;
pub mod convergence;
pub mod fairness;
pub mod mathis;
pub mod stats;
pub mod sync;
pub mod trace;
pub mod windows;

pub use burstiness::{burstiness, burstiness_of_intervals};
pub use convergence::{
    jfi_trajectory, time_to_alpha_fair, windowed_group_share, windowed_mathis_error,
    windowed_synchronization_index, DEFAULT_ALPHA,
};
pub use fairness::{group_share, jain_fairness_index, jain_fairness_subset};
pub use mathis::{
    errors_under_constant, fit_constant, mathis_throughput, FlowObservation, MathisFit,
};
pub use stats::{mean, median, quantile, std_dev, Summary};
pub use sync::synchronization_index;
pub use trace::{trace_drop_burstiness, trace_synchronization_index};
pub use windows::WindowPartition;
