//! Descriptive statistics over `f64` samples.
//!
//! Small, dependency-free helpers the experiment harness uses everywhere:
//! mean, standard deviation (population), median, and arbitrary quantiles
//! (linear interpolation, the same convention as numpy's default).

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Population standard deviation; `None` for an empty slice.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    Some(var.sqrt())
}

/// Quantile `q ∈ [0, 1]` with linear interpolation between order statistics.
/// `None` for an empty slice or out-of-range `q`.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=1.0).contains(&q) || q.is_nan() {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        return Some(sorted[lo]);
    }
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median (the 0.5 quantile).
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

/// Minimum; `None` for an empty slice.
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().reduce(f64::min)
}

/// Maximum; `None` for an empty slice.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().reduce(f64::max)
}

/// A one-pass summary of a sample set.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarize `xs`; `None` when empty.
    pub fn of(xs: &[f64]) -> Option<Summary> {
        Some(Summary {
            n: xs.len(),
            mean: mean(xs)?,
            std_dev: std_dev(xs)?,
            min: min(xs)?,
            p25: quantile(xs, 0.25)?,
            median: median(xs)?,
            p75: quantile(xs, 0.75)?,
            max: max(xs)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_slices_yield_none() {
        assert_eq!(mean(&[]), None);
        assert_eq!(std_dev(&[]), None);
        assert_eq!(median(&[]), None);
        assert_eq!(quantile(&[], 0.5), None);
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), Some(5.0));
        assert_eq!(std_dev(&xs), Some(2.0)); // classic textbook example
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median(&[42.0]), Some(42.0));
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [0.0, 10.0, 20.0, 30.0];
        assert_eq!(quantile(&xs, 0.0), Some(0.0));
        assert_eq!(quantile(&xs, 1.0), Some(30.0));
        assert_eq!(quantile(&xs, 0.5), Some(15.0));
        assert_eq!(quantile(&xs, 0.25), Some(7.5));
    }

    #[test]
    fn quantile_rejects_bad_q() {
        assert_eq!(quantile(&[1.0], -0.1), None);
        assert_eq!(quantile(&[1.0], 1.1), None);
        assert_eq!(quantile(&[1.0], f64::NAN), None);
    }

    #[test]
    fn summary_is_consistent() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        let s = Summary::of(&xs).unwrap();
        assert_eq!(s.n, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.p25, 2.0);
        assert_eq!(s.p75, 4.0);
    }

    #[test]
    fn constant_samples_have_zero_spread() {
        let xs = [7.0; 10];
        assert_eq!(std_dev(&xs), Some(0.0));
        let s = Summary::of(&xs).unwrap();
        assert_eq!(s.min, s.max);
    }
}
