//! Convergence diagnostics over windowed time series.
//!
//! The paper's fairness and throughput-model claims are all statements
//! about a *steady-state measurement window* — but a single end-of-run
//! aggregate can only say that a run converged, never **when**. These
//! functions turn the timeline sampler's per-window series into the
//! trajectory view the BBR-fairness literature reports: a per-window JFI
//! trajectory, the time-to-α-fair instant (the first window after which
//! JFI stays at or above α), and windowed variants of the Mathis error,
//! group throughput shares, and the loss-synchronization index.
//!
//! All inputs are plain slices (one entry per window, oldest first), so
//! the functions work identically on live timeline rings, exported
//! JSONL, and hand-built test fixtures.

use crate::fairness::{group_share, jain_fairness_index};
use crate::mathis::{fit_constant, FlowObservation};
use crate::sync::synchronization_index;
use crate::windows::WindowPartition;
use ccsim_sim::{SimDuration, SimTime};

/// The default α for time-to-α-fair: JFI ≥ 0.9 is the homogeneous
/// fairness band the paper's Figure 4 reports for loss-based CCAs.
pub const DEFAULT_ALPHA: f64 = 0.9;

/// Per-window JFI trajectory: Jain's index over each window's per-flow
/// throughputs. `None` entries are windows where no flow moved data.
pub fn jfi_trajectory(per_window_throughputs: &[Vec<f64>]) -> Vec<Option<f64>> {
    per_window_throughputs
        .iter()
        .map(|tputs| jain_fairness_index(tputs))
        .collect()
}

/// Time-to-α-fair: the earliest time from which the JFI trajectory stays
/// at or above `alpha` through the end of the series.
///
/// `times[i]` is window `i`'s end instant in seconds, parallel to
/// `jfi[i]`. A window with no JFI value (`None`) counts as *not* fair —
/// an idle window cannot carry a fairness claim. Returns `None` when the
/// series is empty, the lengths differ, or the final window is below α
/// (the run never settled).
pub fn time_to_alpha_fair(times: &[f64], jfi: &[Option<f64>], alpha: f64) -> Option<f64> {
    if times.is_empty() || times.len() != jfi.len() {
        return None;
    }
    // Walk backwards over the all-fair suffix; its first window is the
    // convergence instant.
    let mut first_fair = None;
    for i in (0..jfi.len()).rev() {
        match jfi[i] {
            Some(v) if v >= alpha => first_fair = Some(i),
            _ => break,
        }
    }
    first_fair.map(|i| times[i])
}

/// Windowed Mathis model error: per window, fit the Mathis constant over
/// that window's flow observations and report the median relative
/// prediction error. `None` entries are windows where the model was
/// undefined for every flow (no losses, no throughput).
pub fn windowed_mathis_error(per_window_obs: &[Vec<FlowObservation>]) -> Vec<Option<f64>> {
    per_window_obs
        .iter()
        .map(|obs| fit_constant(obs).map(|fit| fit.median_error))
        .collect()
}

/// Windowed throughput share of the flows selected by `in_group`: per
/// window, the group's fraction of aggregate throughput. `None` entries
/// are windows with zero aggregate throughput.
pub fn windowed_group_share<F: Fn(usize) -> bool>(
    per_window_throughputs: &[Vec<f64>],
    in_group: F,
) -> Vec<Option<f64>> {
    per_window_throughputs
        .iter()
        .map(|tputs| group_share(tputs, &in_group))
        .collect()
}

/// Windowed synchronization index: the loss-synchronization index
/// computed independently inside each window of `part`, with `bin` as
/// the per-RTT event bin (the same `bin` the whole-run index uses).
/// `None` entries are windows without any congestion event.
pub fn windowed_synchronization_index(
    per_flow_events: &[Vec<SimTime>],
    part: &WindowPartition,
    bin: SimDuration,
) -> Vec<Option<f64>> {
    part.iter()
        .map(|(lo, hi)| synchronization_index(per_flow_events, lo, hi, bin))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jfi_trajectory_tracks_equalizing_flows() {
        // Two flows converging from 9:1 to 1:1.
        let windows = vec![
            vec![9.0, 1.0],
            vec![7.0, 3.0],
            vec![5.0, 5.0],
            vec![5.0, 5.0],
        ];
        let traj = jfi_trajectory(&windows);
        assert_eq!(traj.len(), 4);
        assert!(traj[0].unwrap() < traj[1].unwrap());
        assert!((traj[2].unwrap() - 1.0).abs() < 1e-12);
        // Idle window: no claim.
        assert_eq!(jfi_trajectory(&[vec![0.0, 0.0]]), vec![None]);
    }

    #[test]
    fn time_to_alpha_fair_finds_the_stable_suffix_start() {
        let times = [1.0, 2.0, 3.0, 4.0, 5.0];
        let jfi = [
            Some(0.5),
            Some(0.95), // transient excursion above α …
            Some(0.7),  // … does not count: the suffix must be unbroken
            Some(0.92),
            Some(0.97),
        ];
        assert_eq!(time_to_alpha_fair(&times, &jfi, 0.9), Some(4.0));
        // Fair from the very first window.
        let all = [Some(0.95); 5];
        assert_eq!(time_to_alpha_fair(&times, &all, 0.9), Some(1.0));
    }

    #[test]
    fn never_converging_yields_none() {
        let times = [1.0, 2.0];
        assert_eq!(
            time_to_alpha_fair(&times, &[Some(0.95), Some(0.5)], 0.9),
            None
        );
        // A trailing idle window breaks the suffix too.
        assert_eq!(time_to_alpha_fair(&times, &[Some(0.95), None], 0.9), None);
        assert_eq!(time_to_alpha_fair(&[], &[], 0.9), None);
        assert_eq!(time_to_alpha_fair(&times, &[Some(1.0)], 0.9), None);
    }

    #[test]
    fn windowed_mathis_error_is_per_window() {
        let obs = |tput: f64, p: f64| FlowObservation {
            throughput_bytes_per_sec: tput,
            rtt_secs: 0.02,
            p,
            mss_bytes: 1460.0,
        };
        // Window 0: two self-consistent flows (one C fits both exactly).
        // Window 1: model undefined (p = 0). Window 2: inconsistent flows.
        let windows = vec![
            vec![obs(1000.0, 0.01), obs(2000.0, 0.0025)],
            vec![obs(1000.0, 0.0)],
            vec![obs(1000.0, 0.01), obs(5000.0, 0.01)],
        ];
        let errs = windowed_mathis_error(&windows);
        assert!(errs[0].unwrap() < 1e-9, "consistent window fits exactly");
        assert_eq!(errs[1], None);
        assert!(errs[2].unwrap() > 0.1, "inconsistent window shows error");
    }

    #[test]
    fn windowed_share_tracks_the_group() {
        let windows = vec![vec![3.0, 1.0], vec![1.0, 1.0], vec![0.0, 0.0]];
        let shares = windowed_group_share(&windows, |i| i == 0);
        assert_eq!(shares[0], Some(0.75));
        assert_eq!(shares[1], Some(0.5));
        assert_eq!(shares[2], None);
    }

    #[test]
    fn windowed_sync_index_localizes_synchronization() {
        let t = SimTime::from_millis;
        // All flows synchronized in the first 100 ms, staggered in the
        // second 100 ms.
        let events: Vec<Vec<SimTime>> = (0..10u64).map(|i| vec![t(50), t(110 + i * 8)]).collect();
        let part = WindowPartition::new(t(0), t(200), SimDuration::from_millis(100)).unwrap();
        let idx = windowed_synchronization_index(&events, &part, SimDuration::from_millis(5));
        assert_eq!(idx.len(), 2);
        assert!((idx[0].unwrap() - 1.0).abs() < 1e-12, "synced window");
        assert!(idx[1].unwrap() < 0.2, "staggered window");
    }
}
