//! The Mathis throughput model (Mathis, Semke, Mahdavi, Ott 1997) and the
//! empirical constant-fitting procedure the paper uses (§4).
//!
//! ```text
//!               MSS · C
//! Throughput = ─────────      [bytes/sec when MSS is bytes]
//!               RTT · √p
//! ```
//!
//! `p` is the *congestion event rate* — the paper's central point is that
//! interpreting `p` as the packet-loss rate (common practice) diverges from
//! interpreting it as the CWND-halving rate once thousands of flows share a
//! fat pipe. Both interpretations flow through the same fitting code here;
//! the experiment harness supplies whichever `p` it is testing.
//!
//! Fitting follows the original paper's methodology: find the `C` that
//! minimizes the least-squared throughput prediction error over a set of
//! flow observations (closed form, since throughput is linear in `C`).

use serde::{Deserialize, Serialize};

/// One flow's observation: measured throughput plus the model inputs.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FlowObservation {
    /// Measured goodput in bytes/sec.
    pub throughput_bytes_per_sec: f64,
    /// Round-trip time in seconds (the paper uses the base RTT).
    pub rtt_secs: f64,
    /// Congestion event rate `p` (events per packet), under whichever
    /// interpretation is being evaluated.
    pub p: f64,
    /// Maximum segment size in bytes.
    pub mss_bytes: f64,
}

impl FlowObservation {
    /// The model's throughput-per-unit-C coefficient `MSS / (RTT · √p)`.
    /// `None` when `p` or RTT is non-positive (model undefined).
    pub fn coefficient(&self) -> Option<f64> {
        if self.p <= 0.0 || self.rtt_secs <= 0.0 || self.mss_bytes <= 0.0 {
            return None;
        }
        Some(self.mss_bytes / (self.rtt_secs * self.p.sqrt()))
    }

    /// Predicted throughput (bytes/sec) under constant `c`.
    pub fn predict(&self, c: f64) -> Option<f64> {
        Some(c * self.coefficient()?)
    }

    /// Relative prediction error `|pred − actual| / actual` under `c`.
    pub fn relative_error(&self, c: f64) -> Option<f64> {
        if self.throughput_bytes_per_sec <= 0.0 {
            return None;
        }
        let pred = self.predict(c)?;
        Some((pred - self.throughput_bytes_per_sec).abs() / self.throughput_bytes_per_sec)
    }
}

/// Predict throughput in bytes/sec for explicit parameters.
pub fn mathis_throughput(mss_bytes: f64, rtt_secs: f64, p: f64, c: f64) -> f64 {
    debug_assert!(p > 0.0 && rtt_secs > 0.0);
    c * mss_bytes / (rtt_secs * p.sqrt())
}

/// Result of fitting the Mathis constant to a set of observations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MathisFit {
    /// The least-squares-optimal constant `C`.
    pub c: f64,
    /// Per-flow relative prediction errors under the fitted `C`.
    pub relative_errors: Vec<f64>,
    /// Median of `relative_errors`.
    pub median_error: f64,
    /// Observations skipped because the model was undefined for them
    /// (zero `p`, zero throughput, …).
    pub skipped: usize,
}

/// Fit `C` by least squares over `obs`: minimizing
/// `Σ (C·k_i − T_i)²` gives `C = Σ T_i·k_i / Σ k_i²`, with
/// `k_i = MSS/(RTT·√p)`. Returns `None` when no observation is usable.
pub fn fit_constant(obs: &[FlowObservation]) -> Option<MathisFit> {
    let mut num = 0.0;
    let mut den = 0.0;
    let mut skipped = 0;
    for o in obs {
        match o.coefficient() {
            Some(k) if o.throughput_bytes_per_sec > 0.0 => {
                num += o.throughput_bytes_per_sec * k;
                den += k * k;
            }
            _ => skipped += 1,
        }
    }
    if den == 0.0 {
        return None;
    }
    let c = num / den;
    let relative_errors: Vec<f64> = obs.iter().filter_map(|o| o.relative_error(c)).collect();
    let median_error = crate::stats::median(&relative_errors)?;
    Some(MathisFit {
        c,
        relative_errors,
        median_error,
        skipped,
    })
}

/// Evaluate prediction errors under a *fixed* constant (e.g. applying an
/// EdgeScale-fitted `C` to CoreScale data). Returns the per-flow relative
/// errors; empty when no observation is usable.
pub fn errors_under_constant(obs: &[FlowObservation], c: f64) -> Vec<f64> {
    obs.iter().filter_map(|o| o.relative_error(c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(t: f64, rtt: f64, p: f64) -> FlowObservation {
        FlowObservation {
            throughput_bytes_per_sec: t,
            rtt_secs: rtt,
            p,
            mss_bytes: 1448.0,
        }
    }

    #[test]
    fn prediction_matches_formula() {
        // MSS=1448, RTT=20ms, p=0.01, C=1: 1448/(0.02*0.1) = 724_000 B/s.
        let o = obs(0.0, 0.02, 0.01);
        assert!((o.predict(1.0).unwrap() - 724_000.0).abs() < 1e-6);
        assert_eq!(
            mathis_throughput(1448.0, 0.02, 0.01, 1.0),
            o.predict(1.0).unwrap()
        );
    }

    #[test]
    fn fit_recovers_exact_constant() {
        // Synthetic flows generated exactly by the model with C = 0.94.
        let c_true = 0.94;
        let observations: Vec<FlowObservation> = (1..=20)
            .map(|i| {
                let p = 0.001 * i as f64;
                let rtt = 0.02;
                let t = mathis_throughput(1448.0, rtt, p, c_true);
                obs(t, rtt, p)
            })
            .collect();
        let fit = fit_constant(&observations).unwrap();
        assert!((fit.c - c_true).abs() < 1e-9);
        assert!(fit.median_error < 1e-9);
        assert_eq!(fit.skipped, 0);
    }

    #[test]
    fn fit_is_least_squares_under_noise() {
        // Perturb throughputs ±10% alternately; the optimal C still lands
        // near the true value and median error near 10%.
        let c_true = 1.2;
        let observations: Vec<FlowObservation> = (1..=100)
            .map(|i| {
                let p = 0.0005 * i as f64;
                let t = mathis_throughput(1448.0, 0.02, p, c_true);
                let noisy = if i % 2 == 0 { t * 1.1 } else { t * 0.9 };
                obs(noisy, 0.02, p)
            })
            .collect();
        let fit = fit_constant(&observations).unwrap();
        assert!((fit.c - c_true).abs() / c_true < 0.11);
        assert!(fit.median_error > 0.05 && fit.median_error < 0.15);
    }

    #[test]
    fn unusable_observations_are_skipped() {
        let observations = vec![
            obs(1000.0, 0.02, 0.01),
            obs(1000.0, 0.02, 0.0), // p = 0: skipped
            obs(0.0, 0.02, 0.01),   // zero throughput: skipped
        ];
        let fit = fit_constant(&observations).unwrap();
        assert_eq!(fit.skipped, 2);
        assert_eq!(fit.relative_errors.len(), 1);
    }

    #[test]
    fn all_unusable_yields_none() {
        assert!(fit_constant(&[obs(10.0, 0.02, 0.0)]).is_none());
        assert!(fit_constant(&[]).is_none());
    }

    #[test]
    fn errors_under_wrong_constant_scale_linearly() {
        let observations: Vec<FlowObservation> = (1..=10)
            .map(|i| {
                let p = 0.001 * i as f64;
                obs(mathis_throughput(1448.0, 0.02, p, 1.0), 0.02, p)
            })
            .collect();
        // Applying C = 2 to flows generated with C = 1 => 100% error.
        let errs = errors_under_constant(&observations, 2.0);
        for e in errs {
            assert!((e - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn higher_loss_predicts_lower_throughput() {
        let low = mathis_throughput(1448.0, 0.02, 0.001, 1.0);
        let high = mathis_throughput(1448.0, 0.02, 0.004, 1.0);
        // 4x the loss rate => half the throughput (inverse sqrt).
        assert!((low / high - 2.0).abs() < 1e-9);
    }
}
