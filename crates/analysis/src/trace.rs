//! Analysis entry points over recorded flight-recorder traces.
//!
//! The metrics themselves live in [`crate::sync`] and [`crate::burstiness`]
//! and operate on plain timestamp trains; these wrappers extract the trains
//! from a [`RunTrace`] so callers (the runner, the CLI `trace` subcommand,
//! notebooks reading exported files) go from trace to number in one call.

use crate::{burstiness, synchronization_index};
use ccsim_sim::{SimDuration, SimTime};
use ccsim_trace::RunTrace;

/// Synchronization index (see [`crate::sync`]) of the trace's congestion
/// events over `[start, end)` with bin width `bin`.
pub fn trace_synchronization_index(
    trace: &RunTrace,
    start: SimTime,
    end: SimTime,
    bin: SimDuration,
) -> Option<f64> {
    synchronization_index(&trace.congestion_event_trains(), start, end, bin)
}

/// Goh–Barabási burstiness (see [`crate::burstiness`]) of the trace's
/// bottleneck drop train.
pub fn trace_drop_burstiness(trace: &RunTrace) -> Option<f64> {
    burstiness(&trace.drop_times())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_trace::{CongestionKind, RunTrace, TraceMeta, TraceRecord};

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn trace_with(records: Vec<TraceRecord>, flows: u32) -> RunTrace {
        RunTrace {
            meta: TraceMeta {
                scenario: "t".into(),
                seed: 0,
                flows,
            },
            records,
            evicted: 0,
            thinned: 0,
        }
    }

    #[test]
    fn synchronized_trace_scores_one() {
        // Both flows halve together at the same instants.
        let mut recs = Vec::new();
        for flow in 0..2 {
            for ms in [100, 200, 300] {
                recs.push(TraceRecord::congestion(
                    t(ms),
                    flow,
                    CongestionKind::FastRecovery,
                ));
            }
        }
        let tr = trace_with(recs, 2);
        let idx =
            trace_synchronization_index(&tr, t(0), t(400), SimDuration::from_millis(20)).unwrap();
        assert!((idx - 1.0).abs() < 1e-12, "idx = {idx}");
    }

    #[test]
    fn periodic_drop_train_is_anti_bursty() {
        let recs = (1..=100)
            .map(|i| TraceRecord::drop(t(i * 10), 0, 1000))
            .collect();
        let tr = trace_with(recs, 1);
        let b = trace_drop_burstiness(&tr).unwrap();
        assert!((b - (-1.0)).abs() < 1e-9, "B = {b}");
    }

    #[test]
    fn empty_trace_yields_none() {
        let tr = trace_with(Vec::new(), 3);
        assert_eq!(
            trace_synchronization_index(&tr, t(0), t(100), SimDuration::from_millis(10)),
            None
        );
        assert_eq!(trace_drop_burstiness(&tr), None);
    }
}
