//! Fairness metrics: Jain's Fairness Index and throughput shares.
//!
//! JFI (Jain, Chiu, Hawe 1984) over allocations `x_1..x_n`:
//!
//! ```text
//!           (Σ x_i)²
//! JFI = ──────────────
//!         n · Σ x_i²
//! ```
//!
//! Ranges from `1/n` (one flow takes everything) to `1` (perfect equality).
//! The paper's intra-CCA fairness findings (Figure 4, Finding 4/5) are all
//! JFI values; its inter-CCA findings (Figures 5–8) are aggregate
//! throughput shares, computed here by [`group_share`].

/// Jain's Fairness Index of `xs`. `None` for an empty slice or when every
/// allocation is zero (the index is undefined there).
pub fn jain_fairness_index(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    debug_assert!(xs.iter().all(|&x| x >= 0.0), "negative allocation");
    let sum: f64 = xs.iter().sum();
    let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return None;
    }
    Some(sum * sum / (xs.len() as f64 * sum_sq))
}

/// Jain's Fairness Index over the subset of `xs` selected by `indices`
/// (out-of-range indices are ignored). The per-bottleneck fairness metric
/// of multi-hop topologies: `xs` are all flow throughputs, `indices` the
/// flows traversing one link. `None` when the subset is empty or all-zero.
pub fn jain_fairness_subset(xs: &[f64], indices: &[usize]) -> Option<f64> {
    let subset: Vec<f64> = indices.iter().filter_map(|&i| xs.get(i).copied()).collect();
    jain_fairness_index(&subset)
}

/// Fraction of total allocation held by the group selected by `in_group`.
/// `None` when the total is zero.
pub fn group_share<F: Fn(usize) -> bool>(xs: &[f64], in_group: F) -> Option<f64> {
    let total: f64 = xs.iter().sum();
    if total <= 0.0 {
        return None;
    }
    let group: f64 = xs
        .iter()
        .enumerate()
        .filter(|(i, _)| in_group(*i))
        .map(|(_, &x)| x)
        .sum();
    Some(group / total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_allocations_are_perfectly_fair() {
        let xs = [5.0; 100];
        let jfi = jain_fairness_index(&xs).unwrap();
        assert!((jfi - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_hog_gives_one_over_n() {
        let mut xs = vec![0.0; 10];
        xs[3] = 100.0;
        let jfi = jain_fairness_index(&xs).unwrap();
        assert!((jfi - 0.1).abs() < 1e-12);
    }

    #[test]
    fn known_intermediate_value() {
        // Classic example: allocations (1,1,1,3) among 4 users.
        // JFI = 36 / (4 * 12) = 0.75.
        let jfi = jain_fairness_index(&[1.0, 1.0, 1.0, 3.0]).unwrap();
        assert!((jfi - 0.75).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(jain_fairness_index(&[]), None);
        assert_eq!(jain_fairness_index(&[0.0, 0.0]), None);
        assert_eq!(jain_fairness_index(&[7.0]), Some(1.0));
    }

    #[test]
    fn all_zero_vectors_never_yield_nan() {
        // Regression: `sum_sq == 0` must short-circuit to `None` in both
        // the full-vector and subset forms — a NaN here would otherwise
        // propagate into campaign rollups and the convergence gate.
        for n in 1..8 {
            let zeros = vec![0.0; n];
            assert_eq!(jain_fairness_index(&zeros), None);
            let all: Vec<usize> = (0..n).collect();
            assert_eq!(jain_fairness_subset(&zeros, &all), None);
        }
        // A subset that selects only the zero entries of a mixed vector is
        // just as undefined as an all-zero vector.
        assert_eq!(jain_fairness_subset(&[0.0, 5.0, 0.0], &[0, 2]), None);
    }

    #[test]
    fn jfi_is_scale_invariant() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        let ja = jain_fairness_index(&a).unwrap();
        let jb = jain_fairness_index(&b).unwrap();
        assert!((ja - jb).abs() < 1e-12);
    }

    #[test]
    fn group_share_partitions() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        let even = group_share(&xs, |i| i % 2 == 0).unwrap();
        let odd = group_share(&xs, |i| i % 2 == 1).unwrap();
        assert!((even - 0.4).abs() < 1e-12);
        assert!((even + odd - 1.0).abs() < 1e-12);
    }

    #[test]
    fn group_share_of_zero_total_is_none() {
        assert_eq!(group_share(&[0.0, 0.0], |_| true), None);
        assert_eq!(group_share(&[], |_| true), None);
    }

    #[test]
    fn subset_jfi_restricts_to_the_selected_flows() {
        let xs = [1.0, 1.0, 1.0, 3.0];
        // The full set is unfair (0.75); the equal subset is perfectly fair.
        let all = jain_fairness_subset(&xs, &[0, 1, 2, 3]).unwrap();
        assert!((all - 0.75).abs() < 1e-12);
        let equal = jain_fairness_subset(&xs, &[0, 1, 2]).unwrap();
        assert!((equal - 1.0).abs() < 1e-12);
        // Out-of-range indices are ignored; empty subsets are undefined.
        assert_eq!(jain_fairness_subset(&xs, &[9]), None);
        assert_eq!(jain_fairness_subset(&xs, &[]), None);
        let clipped = jain_fairness_subset(&xs, &[0, 1, 2, 9]).unwrap();
        assert!((clipped - 1.0).abs() < 1e-12);
    }
}
