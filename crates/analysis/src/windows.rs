//! Shared window partitioning for every windowed diagnostic.
//!
//! Several analyses slice a measurement span `[start, end)` into
//! fixed-width bins: the synchronization index (per-RTT bins), the
//! timeline's convergence diagnostics (per-window JFI, Mathis error,
//! throughput shares). They must all agree on the same partition rules —
//! how many bins a span produces, which bin an instant belongs to, and
//! what happens at bin edges — or a sample could be lost or counted twice
//! at a slice boundary. This module is that single source of truth.
//!
//! Rules:
//!
//! * the partition covers `[start, end)` with bins of width `bin`;
//! * the number of bins is `ceil(span / bin)` — the last bin may be
//!   shorter than `bin` but never empty;
//! * an instant `t` belongs to bin `⌊(t − start) / bin⌋` iff
//!   `start ≤ t < end`; instants outside the span belong to no bin;
//! * bin `i` spans `[start + i·bin, min(start + (i+1)·bin, end))` — bins
//!   tile the span exactly, so every in-span instant lands in exactly
//!   one bin.

use ccsim_sim::{SimDuration, SimTime};

/// A fixed-width partition of `[start, end)` into bins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowPartition {
    start: SimTime,
    end: SimTime,
    bin: SimDuration,
    n_bins: usize,
}

impl WindowPartition {
    /// Partition `[start, end)` into bins of width `bin`. `None` for a
    /// degenerate span (`end ≤ start`) or a zero bin width.
    pub fn new(start: SimTime, end: SimTime, bin: SimDuration) -> Option<WindowPartition> {
        if end <= start || bin.is_zero() {
            return None;
        }
        let span = (end - start).as_nanos();
        let n_bins = span.div_ceil(bin.as_nanos()) as usize;
        if n_bins == 0 {
            return None;
        }
        Some(WindowPartition {
            start,
            end,
            bin,
            n_bins,
        })
    }

    /// Number of bins (≥ 1).
    pub fn len(&self) -> usize {
        self.n_bins
    }

    /// Always false — a partition has at least one bin.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The partitioned span's start.
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// The partitioned span's (exclusive) end.
    pub fn end(&self) -> SimTime {
        self.end
    }

    /// The configured bin width (the final bin may be shorter).
    pub fn bin(&self) -> SimDuration {
        self.bin
    }

    /// The bin containing `t`, or `None` when `t` lies outside
    /// `[start, end)`.
    pub fn index_of(&self, t: SimTime) -> Option<usize> {
        if t < self.start || t >= self.end {
            return None;
        }
        Some(((t - self.start).as_nanos() / self.bin.as_nanos()) as usize)
    }

    /// Bin `i`'s half-open span `[lo, hi)`. The final bin is clipped to
    /// the partition end.
    ///
    /// # Panics
    /// Panics when `i ≥ len()`.
    pub fn bounds(&self, i: usize) -> (SimTime, SimTime) {
        assert!(
            i < self.n_bins,
            "bin {i} out of range ({} bins)",
            self.n_bins
        );
        let lo = self.start + SimDuration::from_nanos(self.bin.as_nanos() * i as u64);
        let hi_unclipped = lo + self.bin;
        (lo, hi_unclipped.min(self.end))
    }

    /// Iterate the bin spans in order.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, SimTime)> + '_ {
        (0..self.n_bins).map(|i| self.bounds(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn exact_division_produces_full_bins() {
        let p = WindowPartition::new(t(0), t(100), SimDuration::from_millis(20)).unwrap();
        assert_eq!(p.len(), 5);
        assert_eq!(p.bounds(0), (t(0), t(20)));
        assert_eq!(p.bounds(4), (t(80), t(100)));
    }

    #[test]
    fn ragged_tail_is_clipped_not_dropped() {
        let p = WindowPartition::new(t(0), t(105), SimDuration::from_millis(20)).unwrap();
        assert_eq!(p.len(), 6);
        assert_eq!(p.bounds(5), (t(100), t(105)));
        // The tail instant still maps into the clipped bin.
        assert_eq!(p.index_of(t(104)), Some(5));
    }

    #[test]
    fn edges_belong_to_the_right_bin() {
        let p = WindowPartition::new(t(0), t(100), SimDuration::from_millis(20)).unwrap();
        assert_eq!(p.index_of(t(0)), Some(0));
        assert_eq!(p.index_of(t(19)), Some(0));
        assert_eq!(p.index_of(t(20)), Some(1), "bin edges are half-open");
        assert_eq!(p.index_of(t(99)), Some(4));
        assert_eq!(p.index_of(t(100)), None, "end is exclusive");
    }

    #[test]
    fn out_of_span_instants_map_nowhere() {
        let p = WindowPartition::new(t(50), t(100), SimDuration::from_millis(10)).unwrap();
        assert_eq!(p.index_of(t(49)), None);
        assert_eq!(p.index_of(t(200)), None);
    }

    #[test]
    fn degenerate_inputs_yield_none() {
        assert!(WindowPartition::new(t(10), t(10), SimDuration::from_millis(1)).is_none());
        assert!(WindowPartition::new(t(10), t(5), SimDuration::from_millis(1)).is_none());
        assert!(WindowPartition::new(t(0), t(10), SimDuration::ZERO).is_none());
    }

    #[test]
    fn bins_tile_the_span() {
        let p = WindowPartition::new(t(3), t(104), SimDuration::from_millis(17)).unwrap();
        let spans: Vec<_> = p.iter().collect();
        assert_eq!(spans.first().unwrap().0, t(3));
        assert_eq!(spans.last().unwrap().1, t(104));
        for w in spans.windows(2) {
            assert_eq!(w[0].1, w[1].0, "adjacent bins share an edge");
        }
    }
}
