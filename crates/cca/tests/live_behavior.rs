//! CCA behavior over a live simulated path: these tests drive each
//! algorithm through a real sender/receiver/link assembly (no synthetic
//! ACK streams) and check the macroscopic signatures that distinguish the
//! three algorithms.

use ccsim_cca::{make_cca, Bbr, BbrMode, CcaKind};
use ccsim_net::link::{Link, NextHop};
use ccsim_net::msg::Msg;
use ccsim_net::packet::FlowId;
use ccsim_sim::{Bandwidth, ComponentId, SimDuration, SimTime, Simulator};
use ccsim_tcp::receiver::Receiver;
use ccsim_tcp::sender::{start_msg, Sender, SenderConfig};

const MSS: u32 = 1448;

fn one_flow(
    cca: CcaKind,
    rate: Bandwidth,
    buffer: u64,
    rtt_ms: u64,
) -> (Simulator<Msg>, ComponentId, ComponentId, ComponentId) {
    let mut sim = Simulator::new(1);
    let link = sim.add_component(Link::new(
        rate,
        SimDuration::ZERO,
        buffer,
        NextHop::ToPacketDst,
    ));
    let sender_id = ComponentId::from_raw(1);
    let receiver_id = ComponentId::from_raw(2);
    let cfg = SenderConfig {
        flow: FlowId(0),
        mss: MSS,
        receiver: receiver_id,
        first_hop: link,
        data_limit: None,
        ecn: false,
    };
    let s = sim.add_component(Sender::new(cfg, make_cca(cca, MSS, 7)));
    assert_eq!(s, sender_id);
    let r = sim.add_component(Receiver::new(
        FlowId(0),
        sender_id,
        SimDuration::from_millis(rtt_ms),
        MSS,
    ));
    assert_eq!(r, receiver_id);
    sim.schedule(SimTime::ZERO, sender_id, start_msg());
    (sim, sender_id, receiver_id, link)
}

fn goodput_mbps(sim: &Simulator<Msg>, receiver: ComponentId, secs: f64) -> f64 {
    sim.component::<Receiver>(receiver).delivered_bytes() as f64 * 8.0 / 1e6 / secs
}

#[test]
fn each_cca_saturates_a_clean_bdp_buffered_link() {
    for cca in [CcaKind::Reno, CcaKind::Cubic, CcaKind::Bbr] {
        let (mut sim, _, receiver, _) = one_flow(
            cca,
            Bandwidth::from_mbps(50),
            1_250_000, // 1 BDP at 200 ms
            40,
        );
        sim.run_until(SimTime::from_secs(20));
        let rate = goodput_mbps(&sim, receiver, 20.0);
        assert!(rate > 42.0, "{cca}: goodput {rate:.1} Mbps of 50");
    }
}

#[test]
fn bbr_reaches_probe_bw_and_tracks_the_bottleneck() {
    let (mut sim, sender, _, _) = one_flow(CcaKind::Bbr, Bandwidth::from_mbps(40), 1_000_000, 30);
    sim.run_until(SimTime::from_secs(8));
    let snd = sim.component::<Sender>(sender);
    let cca: &dyn std::any::Any = snd.cca() as &dyn std::any::Any;
    // Downcasting through Any requires the concrete type; Sender::cca
    // returns &dyn CongestionControl, which is also Any via upcast.
    let bbr = cca.downcast_ref::<Bbr>().expect("cca is Bbr");
    assert_eq!(bbr.mode(), BbrMode::ProbeBw, "BBR should settle in ProbeBW");
    // Bandwidth estimate within 25% of the true bottleneck.
    let est = bbr.max_bw_bytes_per_sec() as f64 * 8.0 / 1e6;
    assert!(
        (30.0..=50.0).contains(&est),
        "bw estimate {est:.1} Mbps vs true 40"
    );
}

#[test]
fn bbr_bounds_queueing_delay_near_two_bdp() {
    // A solo BBR flow's steady-state in-flight caps near 2×BDP, so the
    // standing queue stays near/below one BDP; loss-based CCAs eventually
    // fill the whole buffer instead. (CUBIC's convex region needs tens of
    // seconds to climb W(t)=0.4·t³ past the buffer; give it time.)
    // Startup/slow-start overshoot fills any buffer under both CCAs, so
    // compare *steady-state* queues: reset counters after 15 s.
    let buffer = 1_500_000u64; // 1.5x the 80 ms BDP of 1 MB
    let steady_queue = |cca: CcaKind| {
        let (mut sim, _, _, link) = one_flow(cca, Bandwidth::from_mbps(100), buffer, 80);
        sim.run_until(SimTime::from_secs(15));
        sim.component_mut::<Link>(link).reset_stats();
        sim.run_until(SimTime::from_secs(45));
        sim.component::<Link>(link).stats().max_queue_bytes
    };
    let bbr_queue = steady_queue(CcaKind::Bbr);
    let cubic_queue = steady_queue(CcaKind::Cubic);

    assert!(
        cubic_queue >= buffer - 100_000,
        "cubic should fill the buffer, got {cubic_queue}"
    );
    assert!(
        bbr_queue < cubic_queue / 2 + 200_000,
        "bbr queue {bbr_queue} not far below cubic {cubic_queue}"
    );
}

#[test]
fn cubic_recovers_to_w_max_faster_than_reno() {
    // After a loss at the same operating point, CUBIC's concave rush back
    // toward W_max gives it higher average throughput than Reno's linear
    // climb on a long-RTT path.
    let run = |cca: CcaKind| {
        let (mut sim, _, receiver, _) = one_flow(
            cca,
            Bandwidth::from_mbps(80),
            2_000_000, // 1 BDP at 200 ms
            100,       // long RTT: AIMD is slow here
        );
        sim.run_until(SimTime::from_secs(60));
        goodput_mbps(&sim, receiver, 60.0)
    };
    let cubic = run(CcaKind::Cubic);
    let reno = run(CcaKind::Reno);
    assert!(
        cubic > reno * 0.98,
        "cubic {cubic:.1} Mbps should be at least on par with reno {reno:.1}"
    );
}

#[test]
fn bbr_probe_rtt_triggers_under_competition() {
    // A solo BBR flow on a noiseless path keeps refreshing its min-RTT
    // every drain phase and legitimately never needs ProbeRTT. Under
    // competition the standing queue never empties, the 10 s filter
    // expires, and ProbeRTT must fire. Wire four BBR flows onto one link.
    let mut sim = Simulator::new(3);
    let link = sim.add_component(Link::new(
        Bandwidth::from_mbps(40),
        SimDuration::ZERO,
        1_000_000,
        NextHop::ToPacketDst,
    ));
    let mut senders = Vec::new();
    for flow in 0..4u32 {
        let sender_id = ComponentId::from_raw(1 + 2 * flow as usize);
        let receiver_id = ComponentId::from_raw(2 + 2 * flow as usize);
        let cfg = SenderConfig {
            flow: FlowId(flow),
            mss: MSS,
            receiver: receiver_id,
            first_hop: link,
            data_limit: None,
            ecn: false,
        };
        assert_eq!(
            sim.add_component(Sender::new(
                cfg,
                ccsim_cca::make_cca(CcaKind::Bbr, MSS, flow as u64)
            )),
            sender_id
        );
        assert_eq!(
            sim.add_component(Receiver::new(
                FlowId(flow),
                sender_id,
                SimDuration::from_millis(20),
                MSS
            )),
            receiver_id
        );
        sim.schedule(
            SimTime::from_millis(flow as u64 * 50),
            sender_id,
            start_msg(),
        );
        senders.push(sender_id);
    }
    let mut saw_probe_rtt = false;
    'outer: for slice in 1..=350u64 {
        sim.run_until(SimTime::from_millis(slice * 100));
        for &id in &senders {
            let snd = sim.component::<Sender>(id);
            let cca: &dyn std::any::Any = snd.cca() as &dyn std::any::Any;
            if cca.downcast_ref::<Bbr>().unwrap().mode() == BbrMode::ProbeRtt {
                saw_probe_rtt = true;
                break 'outer;
            }
        }
    }
    assert!(
        saw_probe_rtt,
        "no BBR flow entered ProbeRTT in 35 s of competition"
    );
}
