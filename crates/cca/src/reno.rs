//! TCP NewReno (RFC 5681 / RFC 6582) with appropriate byte counting
//! (RFC 3465), the classic loss-based AIMD the Mathis model describes.
//!
//! * Slow start: `cwnd += bytes_acked` per ACK up to `ssthresh`.
//! * Congestion avoidance: +1 MSS per cwnd of ACKed bytes.
//! * Loss: `ssthresh = cwnd / 2` (the "halving" of the paper's
//!   CWND-halving rate); the endpoint's PRR drains cwnd to `ssthresh`
//!   during recovery.
//! * RTO: `ssthresh = cwnd / 2`, restart from 1 MSS.

use crate::util::cap_add;
use ccsim_sim::{Bandwidth, SnapError, SnapReader, SnapWriter};
use ccsim_tcp::cc::{AckSample, CongestionControl, INITIAL_CWND_SEGMENTS, MIN_CWND_SEGMENTS};

/// NewReno congestion control.
#[derive(Debug, Clone)]
pub struct NewReno {
    mss: u64,
    cwnd: u64,
    ssthresh: u64,
    /// Bytes ACKed since the last congestion-avoidance increment.
    bytes_acked: u64,
}

impl NewReno {
    /// A NewReno instance for the given MSS with the standard initial
    /// window (10 segments, RFC 6928).
    pub fn new(mss: u32) -> NewReno {
        let mss = mss as u64;
        NewReno {
            mss,
            cwnd: INITIAL_CWND_SEGMENTS * mss,
            ssthresh: u64::MAX,
            bytes_acked: 0,
        }
    }

    fn min_cwnd(&self) -> u64 {
        MIN_CWND_SEGMENTS * self.mss
    }

    fn halve(&mut self) {
        self.ssthresh = (self.cwnd / 2).max(self.min_cwnd());
    }
}

impl CongestionControl for NewReno {
    fn name(&self) -> &'static str {
        "reno"
    }

    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    fn pacing_rate(&self) -> Option<Bandwidth> {
        None
    }

    fn phase(&self) -> &'static str {
        if self.cwnd < self.ssthresh {
            "slowstart"
        } else {
            "avoidance"
        }
    }

    fn on_ack(&mut self, s: &AckSample) {
        if s.in_recovery || s.newly_acked == 0 {
            return; // PRR owns the window during recovery
        }
        if self.cwnd < self.ssthresh {
            // Slow start with appropriate byte counting (the delayed-ACK-
            // compensating behavior Linux uses), capped at ssthresh.
            let room = self.ssthresh - self.cwnd;
            self.cwnd = cap_add(self.cwnd, s.newly_acked.min(room));
            if s.newly_acked > room {
                // Leftover ACKed bytes continue in congestion avoidance.
                self.bytes_acked += s.newly_acked - room;
            }
        } else {
            // Congestion avoidance: +1 MSS per cwnd bytes ACKed.
            self.bytes_acked += s.newly_acked;
            while self.bytes_acked >= self.cwnd {
                self.bytes_acked -= self.cwnd;
                self.cwnd = cap_add(self.cwnd, self.mss);
            }
        }
    }

    fn on_enter_recovery(&mut self, _s: &AckSample) {
        self.halve();
        self.bytes_acked = 0;
    }

    fn on_exit_recovery(&mut self, _s: &AckSample, after_rto: bool) {
        if !after_rto {
            // Complete the PRR reduction: cwnd lands exactly on ssthresh.
            self.cwnd = self.ssthresh.max(self.min_cwnd());
        }
    }

    fn on_rto(&mut self, _s: &AckSample) {
        self.halve();
        self.cwnd = self.mss;
        self.bytes_acked = 0;
    }

    fn on_ecn(&mut self, _s: &AckSample) {
        // RFC 3168: respond to the echo as to a loss, but nothing was
        // dropped — no recovery episode, the reduction lands immediately.
        self.halve();
        self.cwnd = self.ssthresh;
        self.bytes_acked = 0;
    }

    fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.cwnd);
        w.u64(self.ssthresh);
        w.u64(self.bytes_acked);
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.cwnd = r.u64()?;
        self.ssthresh = r.u64()?;
        self.bytes_acked = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_sim::{SimDuration, SimTime};

    const MSS: u32 = 1000;

    fn ack(newly_acked: u64, in_recovery: bool) -> AckSample {
        AckSample {
            now: SimTime::ZERO,
            rtt: None,
            srtt: SimDuration::from_millis(20),
            min_rtt: SimDuration::from_millis(20),
            newly_acked,
            newly_lost: 0,
            delivered: 0,
            prior_delivered: 0,
            prior_in_flight: 0,
            in_flight: 0,
            delivery_rate: None,
            interval: SimDuration::ZERO,
            is_app_limited: false,
            in_recovery,
            mss: MSS,
            cumulative_ack: 0,
        }
    }

    #[test]
    fn initial_window_is_ten_segments() {
        let r = NewReno::new(MSS);
        assert_eq!(r.cwnd(), 10_000);
        assert_eq!(r.ssthresh(), u64::MAX);
        assert!(r.pacing_rate().is_none());
        assert!(r.uses_prr());
        assert_eq!(r.name(), "reno");
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut r = NewReno::new(MSS);
        // One "RTT" worth of ACKs: every byte of the window ACKed.
        r.on_ack(&ack(10_000, false));
        assert_eq!(r.cwnd(), 20_000);
        r.on_ack(&ack(20_000, false));
        assert_eq!(r.cwnd(), 40_000);
    }

    #[test]
    fn congestion_avoidance_adds_one_mss_per_window() {
        let mut r = NewReno::new(MSS);
        // Force CA by setting a low ssthresh via a loss.
        r.on_enter_recovery(&ack(0, true));
        r.on_exit_recovery(&ack(0, false), false);
        let w0 = r.cwnd();
        assert_eq!(w0, 5_000); // halved from 10k
                               // ACK one full window: +1 MSS.
        r.on_ack(&ack(w0, false));
        assert_eq!(r.cwnd(), w0 + MSS as u64);
        // Partial window: no growth yet.
        let w1 = r.cwnd();
        r.on_ack(&ack(100, false));
        assert_eq!(r.cwnd(), w1);
    }

    #[test]
    fn recovery_halves_via_ssthresh() {
        let mut r = NewReno::new(MSS);
        r.on_enter_recovery(&ack(0, true));
        assert_eq!(r.ssthresh(), 5_000);
        // During recovery ACKs do not grow cwnd.
        r.on_ack(&ack(5_000, true));
        assert_eq!(r.cwnd(), 10_000);
        r.on_exit_recovery(&ack(0, false), false);
        assert_eq!(r.cwnd(), 5_000);
    }

    #[test]
    fn ssthresh_floor_is_two_segments() {
        let mut r = NewReno::new(MSS);
        for _ in 0..10 {
            r.on_enter_recovery(&ack(0, true));
            r.on_exit_recovery(&ack(0, false), false);
        }
        assert_eq!(r.cwnd(), 2_000);
        assert_eq!(r.ssthresh(), 2_000);
    }

    #[test]
    fn rto_collapses_to_one_segment_and_slow_starts() {
        let mut r = NewReno::new(MSS);
        r.on_rto(&ack(0, false));
        assert_eq!(r.cwnd(), 1_000);
        assert_eq!(r.ssthresh(), 5_000);
        // Slow start back up to ssthresh.
        r.on_ack(&ack(1_000, false));
        assert_eq!(r.cwnd(), 2_000);
        r.on_ack(&ack(2_000, false));
        assert_eq!(r.cwnd(), 4_000);
        // Crossing ssthresh: growth caps at ssthresh, leftover counts
        // toward congestion avoidance.
        r.on_ack(&ack(4_000, false));
        assert_eq!(r.cwnd(), 5_000);
        // After-RTO exit does not reset cwnd.
        r.on_exit_recovery(&ack(0, false), true);
        assert_eq!(r.cwnd(), 5_000);
    }

    #[test]
    fn zero_byte_acks_are_ignored() {
        let mut r = NewReno::new(MSS);
        r.on_ack(&ack(0, false));
        assert_eq!(r.cwnd(), 10_000);
    }
}
