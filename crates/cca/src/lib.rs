//! # ccsim-cca — congestion control algorithms
//!
//! Faithful implementations of the three CCAs the paper studies, behind the
//! [`CongestionControl`](ccsim_tcp::CongestionControl) trait:
//!
//! * [`NewReno`](reno::NewReno) — RFC 5681/6582 AIMD with appropriate byte
//!   counting; the algorithm the Mathis model describes.
//! * [`Cubic`](cubic::Cubic) — RFC 8312 with fast convergence, the
//!   TCP-friendly region, and HyStart (Linux defaults).
//! * [`Bbr`](bbr::Bbr) — BBRv1 per Linux `tcp_bbr.c`: Startup/Drain/
//!   ProbeBW/ProbeRTT, windowed-max bandwidth filter, long-term (policer)
//!   sampling, and recovery window modulation.
//!
//! [`CcaKind`] + [`make_cca`] provide the string-keyed factory the
//! experiment harness uses to mix algorithms in one scenario.

pub mod bbr;
pub mod cubic;
pub mod dctcp;
pub mod reno;
pub mod util;
pub mod vegas;

pub use bbr::{Bbr, Mode as BbrMode};
pub use cubic::Cubic;
pub use dctcp::Dctcp;
pub use reno::NewReno;
pub use util::{RoundTracker, WindowedMax};
pub use vegas::Vegas;

use ccsim_tcp::CongestionControl;
use serde::{Deserialize, Serialize};

/// The CCAs available to experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum CcaKind {
    /// TCP NewReno.
    Reno,
    /// CUBIC.
    Cubic,
    /// BBRv1.
    Bbr,
    /// TCP Vegas (extension; not in the paper's grid).
    Vegas,
}

impl CcaKind {
    /// Short name matching [`CongestionControl::name`].
    pub fn name(self) -> &'static str {
        match self {
            CcaKind::Reno => "reno",
            CcaKind::Cubic => "cubic",
            CcaKind::Bbr => "bbr",
            CcaKind::Vegas => "vegas",
        }
    }
}

impl std::fmt::Display for CcaKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for CcaKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "reno" | "newreno" => Ok(CcaKind::Reno),
            "cubic" => Ok(CcaKind::Cubic),
            "bbr" | "bbr1" | "bbrv1" => Ok(CcaKind::Bbr),
            "vegas" => Ok(CcaKind::Vegas),
            other => Err(format!("unknown CCA '{other}'")),
        }
    }
}

/// Instantiate a CCA. `seed` feeds algorithms with internal randomness
/// (BBR's ProbeBW phase selection); derive it per flow from the run's
/// deterministic RNG factory.
pub fn make_cca(kind: CcaKind, mss: u32, seed: u64) -> Box<dyn CongestionControl> {
    match kind {
        CcaKind::Reno => Box::new(NewReno::new(mss)),
        CcaKind::Cubic => Box::new(Cubic::new(mss)),
        CcaKind::Bbr => Box::new(Bbr::new(mss, seed)),
        CcaKind::Vegas => Box::new(Vegas::new(mss)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_each_kind() {
        for kind in [CcaKind::Reno, CcaKind::Cubic, CcaKind::Bbr, CcaKind::Vegas] {
            let cca = make_cca(kind, 1448, 7);
            assert_eq!(cca.name(), kind.name());
            assert!(cca.cwnd() > 0);
        }
    }

    #[test]
    fn kind_parses_from_str() {
        assert_eq!("reno".parse::<CcaKind>().unwrap(), CcaKind::Reno);
        assert_eq!("NewReno".parse::<CcaKind>().unwrap(), CcaKind::Reno);
        assert_eq!("cubic".parse::<CcaKind>().unwrap(), CcaKind::Cubic);
        assert_eq!("BBRv1".parse::<CcaKind>().unwrap(), CcaKind::Bbr);
        assert_eq!("vegas".parse::<CcaKind>().unwrap(), CcaKind::Vegas);
        assert!("copa".parse::<CcaKind>().is_err());
    }

    #[test]
    fn kind_display_round_trips() {
        for kind in [CcaKind::Reno, CcaKind::Cubic, CcaKind::Bbr, CcaKind::Vegas] {
            assert_eq!(kind.to_string().parse::<CcaKind>().unwrap(), kind);
        }
    }
}
