//! BBRv1 (Cardwell et al., "BBR: Congestion-Based Congestion Control",
//! ACM Queue 2016), modeled on Linux `tcp_bbr.c` as shipped in the kernels
//! the paper measured.
//!
//! The full v1 state machine is implemented:
//!
//! * **Startup** — pacing gain 2/ln2 ≈ 2.885 until the bandwidth estimate
//!   plateaus for three rounds ("full pipe").
//! * **Drain** — inverse gain until in-flight falls to the estimated BDP.
//! * **ProbeBW** — the 8-phase gain cycle `[1.25, 0.75, 1×6]`, advancing
//!   per min_rtt, with the Linux phase-skip conditions.
//! * **ProbeRTT** — every 10 s the min-RTT filter expires; the flow cuts
//!   its window to 4 packets for max(200 ms, 1 round).
//! * **Long-term (policer) sampling** — detects sustained high-loss
//!   intervals with consistent delivery rate and pins pacing to it.
//! * **Recovery modulation** — one round of packet conservation on entering
//!   recovery, window restore on exit.
//!
//! Bandwidth is tracked as a windowed max over 10 packet-timed rounds of the
//! delivery-rate samples produced by `ccsim-tcp`'s rate estimator; min RTT
//! as a 10 s windowed min. BBR ignores loss as a congestion signal — the
//! property behind the paper's Findings 6 and 7.

use crate::util::{RoundTracker, WindowedMax};
use ccsim_sim::{Bandwidth, SimDuration, SimTime, SnapError, SnapReader, SnapWriter};
use ccsim_tcp::cc::{AckSample, CongestionControl, INITIAL_CWND_SEGMENTS};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Startup/Drain pacing gain: 2/ln(2).
pub const HIGH_GAIN: f64 = 2.885;
/// ProbeBW pacing-gain cycle.
pub const PACING_GAIN_CYCLE: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
/// cwnd gain outside Startup.
pub const CWND_GAIN: f64 = 2.0;
/// Bandwidth-filter window, in packet-timed rounds.
pub const BW_FILTER_ROUNDS: u64 = 10;
/// Min-RTT filter window.
pub const MIN_RTT_WINDOW: SimDuration = SimDuration::from_secs(10);
/// Time spent at minimal cwnd in ProbeRTT.
pub const PROBE_RTT_DURATION: SimDuration = SimDuration::from_millis(200);
/// Floor on the window: 4 packets.
pub const MIN_CWND_SEGMENTS: u64 = 4;
/// "Full pipe": bandwidth must grow 25% per round, else count a plateau.
const FULL_BW_THRESH: f64 = 1.25;
const FULL_BW_CNT: u32 = 3;
/// Pacing margin: pace at 99% of the computed rate.
const PACING_MARGIN: f64 = 0.99;

// Long-term (policer) sampling parameters, from tcp_bbr.c.
const LT_INTVL_MIN_RTTS: u64 = 4;
/// Loss-rate threshold for a policed interval: 50/256 ≈ 20%.
const LT_LOSS_THRESH_NUM: u64 = 50;
const LT_LOSS_THRESH_DEN: u64 = 256;
/// Two consecutive intervals must agree within 1/8 (or 4 KB/s).
const LT_BW_RATIO: f64 = 0.125;
const LT_BW_DIFF_BYTES_PER_SEC: f64 = 4000.0;
/// Stop using lt_bw after this many rounds and re-probe.
const LT_BW_MAX_RTTS: u64 = 48;

/// BBR operating mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Exponential bandwidth probing.
    Startup,
    /// Draining the queue Startup built.
    Drain,
    /// Steady-state bandwidth cycling.
    ProbeBw,
    /// Periodic min-RTT re-measurement at minimal window.
    ProbeRtt,
}

/// BBRv1 congestion control.
pub struct Bbr {
    mss: u64,
    cwnd: u64,
    pacing: Bandwidth,
    mode: Mode,

    rounds: RoundTracker,
    bw_filter: WindowedMax,

    min_rtt: SimDuration,
    min_rtt_stamp: SimTime,

    // Startup plateau detection.
    full_bw: u64,
    full_bw_cnt: u32,
    full_bw_reached: bool,

    // ProbeBW cycle.
    cycle_idx: usize,
    cycle_stamp: SimTime,

    // ProbeRTT.
    probe_rtt_done_stamp: Option<SimTime>,
    probe_rtt_round_done: bool,

    // Recovery modulation.
    prior_cwnd: u64,
    packet_conservation: bool,
    conservation_entry_round: u64,
    in_recovery: bool,

    // Long-term sampling.
    total_lost: u64,
    lt_is_sampling: bool,
    lt_rtt_cnt: u64,
    lt_use_bw: bool,
    lt_bw: u64, // bytes/sec
    lt_last_delivered: u64,
    lt_last_lost: u64,
    lt_last_stamp: SimTime,

    rng: SmallRng,
}

impl Bbr {
    /// A BBR instance. `seed` drives the randomized ProbeBW phase entry
    /// (Linux uses `prandom`); derive it from the deterministic per-flow
    /// RNG factory.
    pub fn new(mss: u32, seed: u64) -> Bbr {
        let mss = mss as u64;
        // Initial pacing estimate: initial window over 1 ms (Linux uses
        // init cwnd / max(srtt, 1ms) * high_gain before any RTT sample).
        let init_bw =
            Bandwidth::from_bytes_per(INITIAL_CWND_SEGMENTS * mss, SimDuration::from_millis(1))
                .expect("non-zero duration");
        Bbr {
            mss,
            cwnd: INITIAL_CWND_SEGMENTS * mss,
            pacing: init_bw.mul_f64(HIGH_GAIN * PACING_MARGIN),
            mode: Mode::Startup,
            rounds: RoundTracker::new(),
            bw_filter: WindowedMax::new(),
            min_rtt: SimDuration::MAX,
            min_rtt_stamp: SimTime::ZERO,
            full_bw: 0,
            full_bw_cnt: 0,
            full_bw_reached: false,
            cycle_idx: 0,
            cycle_stamp: SimTime::ZERO,
            probe_rtt_done_stamp: None,
            probe_rtt_round_done: false,
            prior_cwnd: 0,
            packet_conservation: false,
            conservation_entry_round: 0,
            in_recovery: false,
            total_lost: 0,
            lt_is_sampling: false,
            lt_rtt_cnt: 0,
            lt_use_bw: false,
            lt_bw: 0,
            lt_last_delivered: 0,
            lt_last_lost: 0,
            lt_last_stamp: SimTime::ZERO,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Current operating mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The max-filter bandwidth estimate in bytes/sec (0 until sampled).
    pub fn max_bw_bytes_per_sec(&self) -> u64 {
        self.bw_filter.get()
    }

    /// The bandwidth BBR currently paces against (long-term estimate when
    /// policer detection is active).
    fn bw(&self) -> u64 {
        if self.lt_use_bw {
            self.lt_bw
        } else {
            self.bw_filter.get()
        }
    }

    /// Whether the windowed min-RTT estimate exists.
    fn has_min_rtt(&self) -> bool {
        self.min_rtt != SimDuration::MAX
    }

    /// BDP in bytes under `gain`, or `None` before estimates exist.
    fn target_inflight(&self, gain: f64) -> Option<u64> {
        if !self.has_min_rtt() || self.bw() == 0 {
            return None;
        }
        let bdp = self.bw() as f64 * self.min_rtt.as_secs_f64();
        Some((gain * bdp) as u64)
    }

    fn min_cwnd(&self) -> u64 {
        MIN_CWND_SEGMENTS * self.mss
    }

    fn pacing_gain(&self) -> f64 {
        if self.lt_use_bw {
            return 1.0;
        }
        match self.mode {
            Mode::Startup => HIGH_GAIN,
            Mode::Drain => 1.0 / HIGH_GAIN,
            Mode::ProbeBw => PACING_GAIN_CYCLE[self.cycle_idx],
            Mode::ProbeRtt => 1.0,
        }
    }

    fn cwnd_gain(&self) -> f64 {
        match self.mode {
            Mode::Startup | Mode::Drain => HIGH_GAIN,
            Mode::ProbeBw => CWND_GAIN,
            Mode::ProbeRtt => 1.0,
        }
    }

    fn save_cwnd(&mut self) {
        self.prior_cwnd = if !self.in_recovery && self.mode != Mode::ProbeRtt {
            self.cwnd
        } else {
            self.prior_cwnd.max(self.cwnd)
        };
    }

    // ----- long-term (policer) sampling ---------------------------------

    fn lt_reset_interval(&mut self, s: &AckSample) {
        self.lt_last_stamp = s.now;
        self.lt_last_delivered = s.delivered;
        self.lt_last_lost = self.total_lost;
        self.lt_rtt_cnt = 0;
    }

    fn lt_reset_sampling(&mut self, s: &AckSample) {
        self.lt_is_sampling = false;
        self.lt_use_bw = false;
        self.lt_bw = 0;
        self.lt_reset_interval(s);
    }

    fn lt_interval_done(&mut self, s: &AckSample, bw: u64) {
        if self.lt_bw > 0 {
            let diff = bw.abs_diff(self.lt_bw) as f64;
            if diff <= LT_BW_RATIO * self.lt_bw as f64 || diff <= LT_BW_DIFF_BYTES_PER_SEC {
                // Two consistent policed intervals: engage.
                self.lt_bw = (bw + self.lt_bw) / 2;
                self.lt_use_bw = true;
                self.lt_rtt_cnt = 0;
                return;
            }
        }
        self.lt_bw = bw;
        self.lt_reset_interval(s);
    }

    fn lt_sampling(&mut self, s: &AckSample) {
        if self.lt_use_bw {
            // Using the long-term estimate; after enough rounds, re-probe.
            if self.mode == Mode::ProbeBw && self.rounds.is_round_start() {
                self.lt_rtt_cnt += 1;
                if self.lt_rtt_cnt >= LT_BW_MAX_RTTS {
                    self.lt_reset_sampling(s);
                    self.enter_probe_bw(s.now);
                }
            }
            return;
        }
        if !self.lt_is_sampling {
            if s.newly_lost == 0 {
                return;
            }
            // First loss: begin a sampling interval.
            self.lt_is_sampling = true;
            self.lt_reset_interval(s);
            return;
        }
        if s.is_app_limited {
            self.lt_reset_sampling(s);
            return;
        }
        if self.rounds.is_round_start() {
            self.lt_rtt_cnt += 1;
        }
        if self.lt_rtt_cnt < LT_INTVL_MIN_RTTS {
            return;
        }
        if self.lt_rtt_cnt > 4 * LT_INTVL_MIN_RTTS {
            // Interval too long: restart.
            self.lt_reset_sampling(s);
            self.lt_is_sampling = true;
            self.lt_reset_interval(s);
            return;
        }
        if s.newly_lost == 0 {
            return; // end intervals only on a loss, like Linux
        }
        let delivered = s.delivered - self.lt_last_delivered;
        let lost = self.total_lost - self.lt_last_lost;
        if delivered == 0 || lost * LT_LOSS_THRESH_DEN < LT_LOSS_THRESH_NUM * delivered {
            return; // loss rate below the ~20% policer threshold
        }
        let elapsed = s.now.saturating_since(self.lt_last_stamp);
        if elapsed.is_zero() {
            return;
        }
        let bw = (delivered as f64 / elapsed.as_secs_f64()) as u64;
        self.lt_interval_done(s, bw);
    }

    // ----- mode transitions ----------------------------------------------

    fn enter_probe_bw(&mut self, now: SimTime) {
        self.mode = Mode::ProbeBw;
        // Random initial phase, excluding the 0.75 drain phase (Linux picks
        // uniformly from the 7 non-drain phases).
        let r = self.rng.gen_range(0..7u32) as usize;
        self.cycle_idx = if r == 1 { 7 } else { r };
        self.cycle_stamp = now;
    }

    fn check_full_bw_reached(&mut self, s: &AckSample) {
        if self.full_bw_reached || !self.rounds.is_round_start() || s.is_app_limited {
            return;
        }
        let bw = self.bw_filter.get();
        if (bw as f64) >= self.full_bw as f64 * FULL_BW_THRESH {
            self.full_bw = bw;
            self.full_bw_cnt = 0;
            return;
        }
        self.full_bw_cnt += 1;
        self.full_bw_reached = self.full_bw_cnt >= FULL_BW_CNT;
    }

    fn check_drain(&mut self, s: &AckSample) {
        if self.mode == Mode::Startup && self.full_bw_reached {
            self.mode = Mode::Drain;
        }
        if self.mode == Mode::Drain {
            if let Some(target) = self.target_inflight(1.0) {
                if s.in_flight <= target {
                    self.enter_probe_bw(s.now);
                }
            }
        }
    }

    fn advance_cycle_phase(&mut self, s: &AckSample) {
        if self.mode != Mode::ProbeBw || self.lt_use_bw {
            return;
        }
        let gain = PACING_GAIN_CYCLE[self.cycle_idx];
        let is_full_length = s.now.saturating_since(self.cycle_stamp) > self.min_rtt;
        let advance = if (gain - 1.0).abs() < f64::EPSILON {
            is_full_length
        } else if gain > 1.0 {
            // Probe until we've filled the pipe at the higher rate or
            // created loss.
            is_full_length
                && (s.newly_lost > 0
                    || self
                        .target_inflight(gain)
                        .is_some_and(|t| s.prior_in_flight >= t))
        } else {
            // Drain phase ends early once in-flight reaches the BDP.
            is_full_length
                || self
                    .target_inflight(1.0)
                    .is_some_and(|t| s.prior_in_flight <= t)
        };
        if advance {
            self.cycle_idx = (self.cycle_idx + 1) % PACING_GAIN_CYCLE.len();
            self.cycle_stamp = s.now;
        }
    }

    fn update_min_rtt(&mut self, s: &AckSample) {
        let filter_expired = s.now > self.min_rtt_stamp.saturating_add(MIN_RTT_WINDOW);
        if let Some(rtt) = s.rtt {
            if rtt <= self.min_rtt || filter_expired {
                self.min_rtt = rtt;
                self.min_rtt_stamp = s.now;
            }
        }
        if filter_expired && self.mode != Mode::ProbeRtt {
            self.mode = Mode::ProbeRtt;
            self.save_cwnd();
            self.probe_rtt_done_stamp = None;
        }
        if self.mode == Mode::ProbeRtt {
            match self.probe_rtt_done_stamp {
                None => {
                    if s.in_flight <= self.min_cwnd() {
                        // Dwell for 200 ms and at least one packet-timed
                        // round (tracked by the shared round counter).
                        self.probe_rtt_done_stamp = Some(s.now + PROBE_RTT_DURATION);
                        self.probe_rtt_round_done = false;
                    }
                }
                Some(done) => {
                    if self.rounds.is_round_start() {
                        self.probe_rtt_round_done = true;
                    }
                    if self.probe_rtt_round_done && s.now >= done {
                        self.min_rtt_stamp = s.now;
                        self.cwnd = self.cwnd.max(self.prior_cwnd);
                        if self.full_bw_reached {
                            self.enter_probe_bw(s.now);
                        } else {
                            self.mode = Mode::Startup;
                        }
                    }
                }
            }
        }
    }

    fn set_pacing_rate(&mut self) {
        let bw = self.bw();
        if bw == 0 {
            return; // keep the initial estimate until samples arrive
        }
        let rate =
            Bandwidth::from_bps((bw as f64 * 8.0 * self.pacing_gain() * PACING_MARGIN) as u64);
        // Never reduce the pacing rate before the pipe is known full: early
        // samples underestimate.
        if self.full_bw_reached || rate.as_bps() > self.pacing.as_bps() {
            self.pacing = rate;
        }
    }

    fn set_cwnd(&mut self, s: &AckSample) {
        if s.newly_acked == 0 {
            return;
        }
        // One round of packet conservation after entering recovery.
        if self.packet_conservation {
            if self.rounds.rounds() > self.conservation_entry_round {
                self.packet_conservation = false;
            } else {
                self.cwnd = self.cwnd.max(s.in_flight + s.newly_acked);
            }
        }
        if !self.packet_conservation {
            match self.target_inflight(self.cwnd_gain()) {
                Some(target) => {
                    if self.full_bw_reached {
                        self.cwnd = (self.cwnd + s.newly_acked).min(target);
                    } else if self.cwnd < target || s.delivered < INITIAL_CWND_SEGMENTS * self.mss {
                        self.cwnd += s.newly_acked;
                    }
                }
                None => self.cwnd += s.newly_acked,
            }
        }
        self.cwnd = self.cwnd.max(self.min_cwnd());
        if self.mode == Mode::ProbeRtt {
            self.cwnd = self.cwnd.min(self.min_cwnd());
        }
    }
}

impl CongestionControl for Bbr {
    fn name(&self) -> &'static str {
        "bbr"
    }

    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn ssthresh(&self) -> u64 {
        u64::MAX // BBR has no ssthresh
    }

    fn pacing_rate(&self) -> Option<Bandwidth> {
        Some(self.pacing)
    }

    fn phase(&self) -> &'static str {
        match self.mode {
            Mode::Startup => "startup",
            Mode::Drain => "drain",
            Mode::ProbeBw => "probe_bw",
            Mode::ProbeRtt => "probe_rtt",
        }
    }

    fn uses_prr(&self) -> bool {
        false // BBR modulates its own window in recovery
    }

    fn on_ack(&mut self, s: &AckSample) {
        self.total_lost += s.newly_lost;
        self.rounds.update(s);
        self.lt_sampling(s);
        // Feed the bandwidth filter; app-limited samples only count when
        // they raise the estimate.
        if let Some(rate) = s.delivery_rate {
            let bps_bytes = rate.as_bps() / 8;
            if !s.is_app_limited || bps_bytes >= self.bw_filter.get() {
                self.bw_filter
                    .update(BW_FILTER_ROUNDS, self.rounds.rounds(), bps_bytes);
            }
        }
        self.check_full_bw_reached(s);
        self.check_drain(s);
        self.advance_cycle_phase(s);
        self.update_min_rtt(s);
        self.set_pacing_rate();
        self.set_cwnd(s);
    }

    fn on_enter_recovery(&mut self, s: &AckSample) {
        self.save_cwnd();
        self.in_recovery = true;
        self.packet_conservation = true;
        self.conservation_entry_round = self.rounds.rounds();
        self.cwnd = s.in_flight + s.newly_acked.max(self.mss);
    }

    fn on_exit_recovery(&mut self, _s: &AckSample, _after_rto: bool) {
        self.in_recovery = false;
        self.packet_conservation = false;
        self.cwnd = self.cwnd.max(self.prior_cwnd);
    }

    fn on_rto(&mut self, _s: &AckSample) {
        self.save_cwnd();
        self.in_recovery = true;
        self.packet_conservation = false;
        self.cwnd = self.mss;
    }

    fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.cwnd);
        w.u64(self.pacing.as_bps());
        w.u8(match self.mode {
            Mode::Startup => 0,
            Mode::Drain => 1,
            Mode::ProbeBw => 2,
            Mode::ProbeRtt => 3,
        });
        self.rounds.save_state(w);
        self.bw_filter.save_state(w);
        w.duration(self.min_rtt);
        w.time(self.min_rtt_stamp);
        w.u64(self.full_bw);
        w.u32(self.full_bw_cnt);
        w.bool(self.full_bw_reached);
        w.usize(self.cycle_idx);
        w.time(self.cycle_stamp);
        w.opt(self.probe_rtt_done_stamp, |w, t| w.time(t));
        w.bool(self.probe_rtt_round_done);
        w.u64(self.prior_cwnd);
        w.bool(self.packet_conservation);
        w.u64(self.conservation_entry_round);
        w.bool(self.in_recovery);
        w.u64(self.total_lost);
        w.bool(self.lt_is_sampling);
        w.u64(self.lt_rtt_cnt);
        w.bool(self.lt_use_bw);
        w.u64(self.lt_bw);
        w.u64(self.lt_last_delivered);
        w.u64(self.lt_last_lost);
        w.time(self.lt_last_stamp);
        for word in self.rng.state() {
            w.u64(word);
        }
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.cwnd = r.u64()?;
        self.pacing = Bandwidth::from_bps(r.u64()?);
        self.mode = match r.u8()? {
            0 => Mode::Startup,
            1 => Mode::Drain,
            2 => Mode::ProbeBw,
            3 => Mode::ProbeRtt,
            t => return Err(SnapError::Corrupt(format!("BBR mode tag {t}"))),
        };
        self.rounds.load_state(r)?;
        self.bw_filter.load_state(r)?;
        self.min_rtt = r.duration()?;
        self.min_rtt_stamp = r.time()?;
        self.full_bw = r.u64()?;
        self.full_bw_cnt = r.u32()?;
        self.full_bw_reached = r.bool()?;
        self.cycle_idx = r.usize()?;
        if self.cycle_idx >= PACING_GAIN_CYCLE.len() {
            return Err(SnapError::Corrupt(format!(
                "BBR cycle index {} out of range",
                self.cycle_idx
            )));
        }
        self.cycle_stamp = r.time()?;
        self.probe_rtt_done_stamp = r.opt(|r| r.time())?;
        self.probe_rtt_round_done = r.bool()?;
        self.prior_cwnd = r.u64()?;
        self.packet_conservation = r.bool()?;
        self.conservation_entry_round = r.u64()?;
        self.in_recovery = r.bool()?;
        self.total_lost = r.u64()?;
        self.lt_is_sampling = r.bool()?;
        self.lt_rtt_cnt = r.u64()?;
        self.lt_use_bw = r.bool()?;
        self.lt_bw = r.u64()?;
        self.lt_last_delivered = r.u64()?;
        self.lt_last_lost = r.u64()?;
        self.lt_last_stamp = r.time()?;
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = r.u64()?;
        }
        self.rng = SmallRng::from_state(s);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u32 = 1448;

    /// Synthetic ACK with a delivery-rate sample.
    #[allow(clippy::too_many_arguments)]
    fn s(
        now_ms: u64,
        rtt_ms: u64,
        rate_mbps: u64,
        newly_acked: u64,
        delivered: u64,
        prior_delivered: u64,
        in_flight: u64,
        newly_lost: u64,
    ) -> AckSample {
        AckSample {
            now: SimTime::from_millis(now_ms),
            rtt: Some(SimDuration::from_millis(rtt_ms)),
            srtt: SimDuration::from_millis(rtt_ms),
            min_rtt: SimDuration::from_millis(rtt_ms),
            newly_acked,
            newly_lost,
            delivered,
            prior_delivered,
            prior_in_flight: in_flight + newly_acked,
            in_flight,
            delivery_rate: Some(Bandwidth::from_mbps(rate_mbps)),
            interval: SimDuration::from_millis(rtt_ms),
            is_app_limited: false,
            in_recovery: false,
            mss: MSS,
            cumulative_ack: delivered,
        }
    }

    #[test]
    fn starts_in_startup_with_high_gain() {
        let b = Bbr::new(MSS, 1);
        assert_eq!(b.mode(), Mode::Startup);
        assert!((b.pacing_gain() - HIGH_GAIN).abs() < 1e-9);
        assert!(b.pacing_rate().is_some());
        assert!(!b.uses_prr());
        assert_eq!(b.ssthresh(), u64::MAX);
        assert_eq!(b.name(), "bbr");
    }

    /// Drive a BBR instance through `n` rounds of constant-rate samples.
    /// Reported in-flight is large (500 KB) so Drain does not exit on its
    /// own; tests that want the Drain→ProbeBW transition feed a small
    /// in-flight sample explicitly.
    fn feed_rounds(b: &mut Bbr, rounds: u64, rate_mbps: u64, start_ms: u64) -> u64 {
        let mut now = start_ms;
        let mut delivered = b.rounds.rounds() * 100_000 + 1;
        for _ in 0..rounds {
            // Two acks per round: the round-starting one and a follower.
            let prior = delivered;
            delivered += 50_000;
            b.on_ack(&s(now, 20, rate_mbps, 14_480, delivered, prior, 500_000, 0));
            now += 10;
            b.on_ack(&s(
                now,
                20,
                rate_mbps,
                14_480,
                delivered + 10,
                prior,
                500_000,
                0,
            ));
            delivered += 10;
            now += 10;
        }
        now
    }

    #[test]
    fn startup_exits_after_three_flat_rounds() {
        let mut b = Bbr::new(MSS, 1);
        // Growing bandwidth: stays in startup.
        let mut now = 0;
        for (i, rate) in [10u64, 20, 40, 80].iter().enumerate() {
            now = feed_rounds(&mut b, 1, *rate, now + i as u64);
        }
        assert_eq!(b.mode(), Mode::Startup);
        assert!(!b.full_bw_reached);
        // Plateau: three rounds with no 25% growth => Drain.
        now = feed_rounds(&mut b, 4, 80, now);
        assert!(b.full_bw_reached);
        // Drain exits to ProbeBW once inflight <= BDP; our synthetic
        // inflight is large, so we stay in Drain here.
        assert_eq!(b.mode(), Mode::Drain);
        let _ = now;
    }

    #[test]
    fn drain_exits_to_probe_bw_when_inflight_reaches_bdp() {
        let mut b = Bbr::new(MSS, 1);
        let now = feed_rounds(&mut b, 8, 80, 0);
        assert_eq!(b.mode(), Mode::Drain);
        // 80 Mbps * 20 ms = 200 KB BDP; report tiny inflight.
        let d = b.rounds.rounds() * 100_000 + 900_000;
        b.on_ack(&s(now, 20, 80, 14_480, d, d - 1, 10_000, 0));
        assert_eq!(b.mode(), Mode::ProbeBw);
        // Entry phase is never the 0.75 drain phase.
        assert_ne!(b.cycle_idx, 1);
    }

    #[test]
    fn bw_filter_takes_windowed_max() {
        let mut b = Bbr::new(MSS, 1);
        feed_rounds(&mut b, 2, 100, 0);
        let high = b.max_bw_bytes_per_sec();
        feed_rounds(&mut b, 2, 50, 1000);
        // Max over the window still reflects the 100 Mbps samples.
        assert_eq!(b.max_bw_bytes_per_sec(), high);
        assert_eq!(high, 100_000_000 / 8);
    }

    #[test]
    fn cwnd_tracks_two_bdp_after_full_bw() {
        let mut b = Bbr::new(MSS, 1);
        let now = feed_rounds(&mut b, 8, 80, 0);
        // Force ProbeBW via small inflight.
        let d = b.rounds.rounds() * 100_000 + 900_000;
        b.on_ack(&s(now, 20, 80, 14_480, d, d - 1, 10_000, 0));
        // Feed more acks; cwnd must cap at cwnd_gain * BDP.
        // BDP = 10 MB/s * 20 ms = 200 KB; 2*BDP = 400 KB.
        let mut dd = d;
        for i in 0..200 {
            dd += 14_480;
            b.on_ack(&s(
                now + 20 + i,
                20,
                80,
                14_480,
                dd,
                dd - 14_480,
                100_000,
                0,
            ));
        }
        assert!(b.cwnd() <= 400_000 + 2 * MSS as u64, "cwnd={}", b.cwnd());
        assert!(b.cwnd() >= 350_000, "cwnd={}", b.cwnd());
    }

    #[test]
    fn probe_rtt_entered_on_filter_expiry_and_caps_cwnd() {
        let mut b = Bbr::new(MSS, 1);
        feed_rounds(&mut b, 8, 80, 0);
        // Jump time past the 10 s min-RTT window.
        let d = b.rounds.rounds() * 100_000 + 500_000;
        b.on_ack(&s(11_000, 20, 80, 14_480, d, d - 1, 50_000, 0));
        assert_eq!(b.mode(), Mode::ProbeRtt);
        // Window clamps to 4 segments.
        assert_eq!(b.cwnd(), 4 * MSS as u64);
    }

    #[test]
    fn probe_rtt_exits_after_duration_and_round() {
        let mut b = Bbr::new(MSS, 1);
        feed_rounds(&mut b, 8, 80, 0);
        let mut d = b.rounds.rounds() * 100_000 + 500_000;
        b.on_ack(&s(11_000, 20, 80, 14_480, d, d - 1, 50_000, 0));
        assert_eq!(b.mode(), Mode::ProbeRtt);
        // Inflight drops below 4 packets: the 200 ms dwell starts.
        d += 1000;
        b.on_ack(&s(11_050, 20, 80, 1000, d, d - 1000, 4000, 0));
        // A round passes and 200 ms elapse.
        d += 1000;
        b.on_ack(&s(11_300, 20, 80, 1000, d, d - 1, 4000, 0));
        assert_ne!(b.mode(), Mode::ProbeRtt, "should have exited ProbeRTT");
    }

    #[test]
    fn recovery_saves_and_restores_cwnd() {
        let mut b = Bbr::new(MSS, 1);
        feed_rounds(&mut b, 8, 80, 0);
        let w = b.cwnd();
        let sample = s(200, 20, 80, 14_480, 1_000_000, 999_000, 50_000, 14_480);
        b.on_enter_recovery(&sample);
        assert!(b.cwnd() <= 50_000 + 14_480 + MSS as u64);
        b.on_exit_recovery(&sample, false);
        assert!(b.cwnd() >= w, "cwnd restored to at least prior");
    }

    #[test]
    fn rto_collapses_then_restores() {
        let mut b = Bbr::new(MSS, 1);
        feed_rounds(&mut b, 8, 80, 0);
        let w = b.cwnd();
        let sample = s(200, 20, 80, 0, 1_000_000, 999_000, 0, 100_000);
        b.on_rto(&sample);
        assert_eq!(b.cwnd(), MSS as u64);
        b.on_exit_recovery(&sample, true);
        assert!(b.cwnd() >= w);
    }

    #[test]
    fn app_limited_samples_do_not_lower_estimate() {
        let mut b = Bbr::new(MSS, 1);
        feed_rounds(&mut b, 2, 100, 0);
        let high = b.max_bw_bytes_per_sec();
        let mut sample = s(100, 20, 10, 14_480, 500_000, 499_000, 50_000, 0);
        sample.is_app_limited = true;
        for i in 0..30 {
            let mut sa = sample;
            sa.now = SimTime::from_millis(100 + i);
            sa.delivered += i * 1000;
            sa.prior_delivered += i * 1000;
            b.on_ack(&sa);
        }
        assert_eq!(b.max_bw_bytes_per_sec(), high);
    }

    #[test]
    fn pacing_never_drops_before_full_bw() {
        let mut b = Bbr::new(MSS, 1);
        feed_rounds(&mut b, 1, 100, 0);
        let p = b.pacing_rate().unwrap();
        feed_rounds(&mut b, 1, 10, 100);
        assert!(b.pacing_rate().unwrap() >= p.mul_f64(0.99));
    }
}
