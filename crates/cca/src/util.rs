//! Shared CCA utilities: packet-timed round tracking and windowed
//! min/max filters.

use ccsim_sim::{SnapError, SnapReader, SnapWriter};
use ccsim_tcp::AckSample;

/// Saturating window addition — congestion windows never wrap.
#[inline]
pub fn cap_add(cwnd: u64, inc: u64) -> u64 {
    cwnd.saturating_add(inc)
}

/// Packet-timed round trips, counted the way BBR does: a round ends when a
/// packet sent *after* the previous round's end is (S)ACKed, detected via
/// the delivered-bytes watermark carried in each [`AckSample`].
#[derive(Debug, Clone, Default)]
pub struct RoundTracker {
    next_round_delivered: u64,
    rounds: u64,
    round_start: bool,
}

impl RoundTracker {
    /// A fresh tracker (round 0 in progress).
    pub fn new() -> Self {
        Self::default()
    }

    /// Update with an ACK; afterwards [`RoundTracker::is_round_start`]
    /// reports whether this ACK began a new round.
    pub fn update(&mut self, s: &AckSample) {
        self.round_start = s.prior_delivered >= self.next_round_delivered;
        if self.round_start {
            self.next_round_delivered = s.delivered;
            self.rounds += 1;
        }
    }

    /// Whether the most recent [`RoundTracker::update`] started a round.
    pub fn is_round_start(&self) -> bool {
        self.round_start
    }

    /// Completed round count.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Serialize for a checkpoint.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.next_round_delivered);
        w.u64(self.rounds);
        w.bool(self.round_start);
    }

    /// Overlay checkpointed state.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.next_round_delivered = r.u64()?;
        self.rounds = r.u64()?;
        self.round_start = r.bool()?;
        Ok(())
    }
}

/// Windowed running maximum over an integer "time" axis, after Linux's
/// `lib/win_minmax.c` (Kathleen Nichols' streaming min/max): tracks the
/// best three samples so the estimate degrades gracefully as the window
/// slides. BBR uses this for max-bandwidth over 10 packet-timed rounds.
#[derive(Debug, Clone, Copy, Default)]
pub struct WindowedMax {
    /// (value, time) best-first.
    samples: [(u64, u64); 3],
    initialized: bool,
}

impl WindowedMax {
    /// An empty filter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current maximum over the window (0 if no samples yet).
    pub fn get(&self) -> u64 {
        self.samples[0].0
    }

    /// True once at least one sample has been accepted.
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }

    /// Serialize for a checkpoint.
    pub fn save_state(&self, w: &mut SnapWriter) {
        for &(v, t) in &self.samples {
            w.u64(v);
            w.u64(t);
        }
        w.bool(self.initialized);
    }

    /// Overlay checkpointed state.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        for slot in &mut self.samples {
            let v = r.u64()?;
            let t = r.u64()?;
            *slot = (v, t);
        }
        self.initialized = r.bool()?;
        Ok(())
    }

    /// Insert `value` observed at `time`, expiring samples older than
    /// `window` time units, and return the updated maximum.
    pub fn update(&mut self, window: u64, time: u64, value: u64) -> u64 {
        if !self.initialized
            || value >= self.samples[0].0
            || time.saturating_sub(self.samples[2].1) > window
        {
            // New best, or the whole filter has gone stale: reset.
            self.samples = [(value, time); 3];
            self.initialized = true;
            return self.get();
        }
        if value >= self.samples[1].0 {
            self.samples[2] = (value, time);
            self.samples[1] = (value, time);
        } else if value >= self.samples[2].0 {
            self.samples[2] = (value, time);
        }
        // Sub-window maintenance (verbatim from lib/win_minmax.c): all age
        // checks anchor on the current best's timestamp.
        let dt = time.saturating_sub(self.samples[0].1);
        if dt > window {
            // Best expired: promote the runners-up.
            self.samples[0] = self.samples[1];
            self.samples[1] = self.samples[2];
            self.samples[2] = (value, time);
            if time.saturating_sub(self.samples[0].1) > window {
                self.samples[0] = self.samples[1];
                self.samples[1] = self.samples[2];
                self.samples[2] = (value, time);
            }
        } else if self.samples[1].1 == self.samples[0].1 && dt > window / 4 {
            // A quarter of the window passed without a distinct 2nd best.
            self.samples[2] = (value, time);
            self.samples[1] = (value, time);
        } else if self.samples[2].1 == self.samples[1].1 && dt > window / 2 {
            // Half the window passed without a distinct 3rd best.
            self.samples[2] = (value, time);
        }
        self.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_sim::{SimDuration, SimTime};

    fn sample(delivered: u64, prior: u64) -> AckSample {
        AckSample {
            now: SimTime::ZERO,
            rtt: None,
            srtt: SimDuration::ZERO,
            min_rtt: SimDuration::ZERO,
            newly_acked: 1448,
            newly_lost: 0,
            delivered,
            prior_delivered: prior,
            prior_in_flight: 0,
            in_flight: 0,
            delivery_rate: None,
            interval: SimDuration::ZERO,
            is_app_limited: false,
            in_recovery: false,
            mss: 1448,
            cumulative_ack: 0,
        }
    }

    #[test]
    fn rounds_advance_on_delivered_watermark() {
        let mut rt = RoundTracker::new();
        // First ack: prior_delivered 0 >= watermark 0 => round 1 starts.
        rt.update(&sample(1000, 0));
        assert!(rt.is_round_start());
        assert_eq!(rt.rounds(), 1);
        // Packets sent before delivered reached 1000: same round.
        rt.update(&sample(2000, 500));
        assert!(!rt.is_round_start());
        rt.update(&sample(3000, 999));
        assert!(!rt.is_round_start());
        // A packet sent after delivered hit 1000: next round.
        rt.update(&sample(4000, 1000));
        assert!(rt.is_round_start());
        assert_eq!(rt.rounds(), 2);
    }

    #[test]
    fn windowed_max_tracks_max() {
        let mut f = WindowedMax::new();
        assert_eq!(f.get(), 0);
        assert!(!f.is_initialized());
        f.update(10, 0, 100);
        assert_eq!(f.get(), 100);
        f.update(10, 1, 50);
        assert_eq!(f.get(), 100);
        f.update(10, 2, 120);
        assert_eq!(f.get(), 120);
    }

    #[test]
    fn windowed_max_expires_old_peak() {
        let mut f = WindowedMax::new();
        f.update(10, 0, 1000);
        for t in 1..=10 {
            f.update(10, t, 500);
        }
        // Peak at t=0 still within window at t=10.
        assert_eq!(f.get(), 1000);
        // At t=11 the peak is older than the window; second-best (500)
        // takes over.
        f.update(10, 11, 400);
        assert_eq!(f.get(), 500);
    }

    #[test]
    fn windowed_max_fully_stale_resets() {
        let mut f = WindowedMax::new();
        f.update(10, 0, 1000);
        // Nothing for 30 time units: filter resets to the new value.
        f.update(10, 31, 10);
        assert_eq!(f.get(), 10);
    }

    #[test]
    fn windowed_max_decays_through_ranks() {
        let mut f = WindowedMax::new();
        f.update(10, 0, 1000);
        f.update(10, 3, 800);
        f.update(10, 6, 600);
        // t=11: 1000 (t=0) expires; 800 promoted.
        f.update(10, 11, 100);
        assert_eq!(f.get(), 800);
        // t=14: 800 (t=3) expires; 600 promoted.
        f.update(10, 14, 100);
        assert_eq!(f.get(), 600);
    }
}
