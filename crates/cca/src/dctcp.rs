//! DCTCP-style fractional ECN response — **stub, not yet in the factory**.
//!
//! DCTCP (Alizadeh et al., SIGCOMM 2010 / RFC 8257) reduces cwnd in
//! proportion to the *fraction* of CE-marked packets per window
//! (`cwnd ← cwnd · (1 − α/2)`), instead of the RFC 3168 full multiplicative
//! decrease. The paper's testbed does not run DCTCP, so this module only
//! sketches the state machine on top of the classic Reno core: the α EWMA
//! is fed from the once-per-window ECE episodes the sender surfaces today,
//! which under-samples the true mark fraction. Wiring it into [`CcaKind`]
//! is blocked on per-ACK ECE counting at the endpoint (see ROADMAP).
//!
//! [`CcaKind`]: crate::CcaKind

use ccsim_sim::{Bandwidth, SnapError, SnapReader, SnapWriter};
use ccsim_tcp::{AckSample, CongestionControl, INITIAL_CWND_SEGMENTS, MIN_CWND_SEGMENTS};

/// EWMA gain for the mark-fraction estimate (RFC 8257's g = 1/16).
const DCTCP_G: f64 = 1.0 / 16.0;

/// DCTCP congestion control (experimental stub).
#[derive(Debug, Clone)]
pub struct Dctcp {
    mss: u32,
    cwnd: u64,
    ssthresh: u64,
    /// EWMA of the fraction of windows that saw a congestion mark.
    alpha: f64,
    /// Bytes acked since the α window started, and marks seen in it.
    window_acked: u64,
    window_marked: u64,
    bytes_acked: u64,
}

impl Dctcp {
    /// A DCTCP instance with the standard initial window.
    pub fn new(mss: u32) -> Dctcp {
        Dctcp {
            mss,
            cwnd: INITIAL_CWND_SEGMENTS * mss as u64,
            ssthresh: u64::MAX,
            alpha: 1.0, // conservative start, as in RFC 8257 §4.2
            window_acked: 0,
            window_marked: 0,
            bytes_acked: 0,
        }
    }

    fn min_cwnd(&self) -> u64 {
        MIN_CWND_SEGMENTS * self.mss as u64
    }

    /// Current mark-fraction estimate α ∈ [0, 1].
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Close an observation window: fold the observed mark fraction into
    /// α with gain [`DCTCP_G`].
    fn roll_window(&mut self) {
        if self.window_acked == 0 {
            return;
        }
        let f = self.window_marked as f64 / self.window_acked.max(1) as f64;
        self.alpha = (1.0 - DCTCP_G) * self.alpha + DCTCP_G * f.min(1.0);
        self.window_acked = 0;
        self.window_marked = 0;
    }
}

impl CongestionControl for Dctcp {
    fn name(&self) -> &'static str {
        "dctcp"
    }

    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    fn pacing_rate(&self) -> Option<Bandwidth> {
        None
    }

    fn on_ack(&mut self, s: &AckSample) {
        self.window_acked += s.newly_acked;
        if self.window_acked >= self.cwnd {
            self.roll_window();
        }
        if s.in_recovery {
            return;
        }
        if self.cwnd < self.ssthresh {
            self.cwnd += s.newly_acked.min(self.mss as u64 * 2);
            return;
        }
        // Reno-style additive increase between marks.
        self.bytes_acked += s.newly_acked;
        if self.bytes_acked >= self.cwnd {
            self.bytes_acked -= self.cwnd;
            self.cwnd += self.mss as u64;
        }
    }

    fn on_enter_recovery(&mut self, _s: &AckSample) {
        // Packet loss: classic halving, as RFC 8257 §3.3 requires.
        self.ssthresh = (self.cwnd / 2).max(self.min_cwnd());
        self.bytes_acked = 0;
    }

    fn on_exit_recovery(&mut self, _s: &AckSample, after_rto: bool) {
        if !after_rto {
            self.cwnd = self.ssthresh.max(self.min_cwnd());
        }
    }

    fn on_rto(&mut self, _s: &AckSample) {
        self.ssthresh = (self.cwnd / 2).max(self.min_cwnd());
        self.cwnd = self.mss as u64;
        self.bytes_acked = 0;
    }

    fn on_ecn(&mut self, _s: &AckSample) {
        // Fractional response: cwnd ← cwnd · (1 − α/2). With the current
        // once-per-window echo plumbing each episode counts as one mark.
        self.window_marked += 1;
        let cut = (self.cwnd as f64 * self.alpha / 2.0) as u64;
        self.cwnd = self.cwnd.saturating_sub(cut).max(self.min_cwnd());
        self.ssthresh = self.cwnd;
        self.bytes_acked = 0;
    }

    fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.cwnd);
        w.u64(self.ssthresh);
        w.f64(self.alpha);
        w.u64(self.window_acked);
        w.u64(self.window_marked);
        w.u64(self.bytes_acked);
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.cwnd = r.u64()?;
        self.ssthresh = r.u64()?;
        self.alpha = r.f64()?;
        self.window_acked = r.u64()?;
        self.window_marked = r.u64()?;
        self.bytes_acked = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_sim::{SimDuration, SimTime};

    const MSS: u32 = 1000;

    fn ack(newly_acked: u64) -> AckSample {
        AckSample {
            now: SimTime::ZERO,
            rtt: None,
            srtt: SimDuration::from_millis(20),
            min_rtt: SimDuration::from_millis(20),
            newly_acked,
            newly_lost: 0,
            delivered: 0,
            prior_delivered: 0,
            prior_in_flight: 0,
            in_flight: 0,
            delivery_rate: None,
            interval: SimDuration::ZERO,
            is_app_limited: false,
            in_recovery: false,
            mss: MSS,
            cumulative_ack: 0,
        }
    }

    #[test]
    fn fractional_cut_scales_with_alpha() {
        let mut d = Dctcp::new(MSS);
        let before = d.cwnd();
        // α starts at 1.0: first response is the full RFC 3168 halving.
        d.on_ecn(&ack(0));
        assert_eq!(d.cwnd(), before / 2);
        // Drive α down with clean windows; the cut shrinks accordingly.
        for _ in 0..64 {
            d.window_acked = d.cwnd();
            d.roll_window();
        }
        assert!(d.alpha() < 0.05, "alpha = {}", d.alpha());
        let before = d.cwnd();
        d.on_ecn(&ack(0));
        let cut = before - d.cwnd();
        assert!(cut < before / 10, "cut {cut} of {before}");
    }

    #[test]
    fn loss_still_halves() {
        let mut d = Dctcp::new(MSS);
        let cwnd = d.cwnd();
        d.on_enter_recovery(&ack(0));
        d.on_exit_recovery(&ack(0), false);
        assert_eq!(d.cwnd(), cwnd / 2);
    }
}
