//! TCP Vegas (Brakmo, O'Malley, Peterson 1994) — the classic delay-based
//! CCA, cited in the paper's background (§2). Not part of the paper's
//! evaluation grid; provided as an extension so the harness can probe how
//! a delay-based algorithm fares in the CoreScale setting.
//!
//! Model follows Linux `tcp_vegas.c`:
//!
//! * Once per RTT, compare the *expected* rate `cwnd / base_rtt` with the
//!   *actual* rate `cwnd / observed_rtt`; the difference times `base_rtt`
//!   estimates the segments this flow keeps queued at the bottleneck.
//! * Fewer than `ALPHA` queued segments → grow cwnd by one segment per
//!   RTT; more than `BETA` → shrink by one; otherwise hold.
//! * Below ssthresh, slow-start at half pace (Linux doubles every *other*
//!   RTT for Vegas) with the same delay-based exit.
//! * On loss, fall back to Reno-style halving (Vegas is loss-tolerant only
//!   in the sense that it rarely causes losses itself).

use crate::util::{cap_add, RoundTracker};
use ccsim_sim::{Bandwidth, SimDuration, SnapError, SnapReader, SnapWriter};
use ccsim_tcp::cc::{AckSample, CongestionControl, INITIAL_CWND_SEGMENTS, MIN_CWND_SEGMENTS};

/// Lower bound on estimated queued segments (grow below this).
pub const VEGAS_ALPHA: f64 = 2.0;
/// Upper bound on estimated queued segments (shrink above this).
pub const VEGAS_BETA: f64 = 4.0;
/// Slow-start queue bound (Linux `gamma`).
pub const VEGAS_GAMMA: f64 = 1.0;

/// TCP Vegas congestion control.
#[derive(Debug, Clone)]
pub struct Vegas {
    mss: u64,
    cwnd: u64,
    ssthresh: u64,
    /// Minimum RTT observed over the connection (the "base RTT").
    base_rtt: SimDuration,
    /// Minimum RTT observed during the current round.
    round_min_rtt: SimDuration,
    /// RTT samples seen this round.
    round_samples: u32,
    rounds: RoundTracker,
    /// Slow-start toggle: Vegas grows every other round in slow start.
    ss_grow_this_round: bool,
}

impl Vegas {
    /// A Vegas instance for the given MSS.
    pub fn new(mss: u32) -> Vegas {
        let mss = mss as u64;
        Vegas {
            mss,
            cwnd: INITIAL_CWND_SEGMENTS * mss,
            ssthresh: u64::MAX,
            base_rtt: SimDuration::MAX,
            round_min_rtt: SimDuration::MAX,
            round_samples: 0,
            rounds: RoundTracker::new(),
            ss_grow_this_round: true,
        }
    }

    fn min_cwnd(&self) -> u64 {
        MIN_CWND_SEGMENTS * self.mss
    }

    /// Estimated segments this flow holds in the bottleneck queue.
    fn queued_segments(&self, rtt: SimDuration) -> f64 {
        let base = self.base_rtt.as_secs_f64();
        let cur = rtt.as_secs_f64();
        if base <= 0.0 || cur <= 0.0 {
            return 0.0;
        }
        let cwnd_segs = self.cwnd as f64 / self.mss as f64;
        let expected = cwnd_segs / base; // segs/sec
        let actual = cwnd_segs / cur;
        (expected - actual) * base
    }

    /// End-of-round window adjustment.
    fn on_round_end(&mut self) {
        if self.round_samples == 0 || self.round_min_rtt == SimDuration::MAX {
            return;
        }
        let diff = self.queued_segments(self.round_min_rtt);
        if self.cwnd < self.ssthresh {
            // Slow start: exit on queue build-up, else double every other
            // round.
            if diff > VEGAS_GAMMA {
                self.ssthresh = self.cwnd;
                // Drain the excess we just measured.
                let excess = (diff.ceil() as u64) * self.mss;
                self.cwnd = self.cwnd.saturating_sub(excess).max(self.min_cwnd());
            } else if self.ss_grow_this_round {
                self.cwnd = cap_add(self.cwnd, self.cwnd);
            }
            self.ss_grow_this_round = !self.ss_grow_this_round;
        } else if diff < VEGAS_ALPHA {
            self.cwnd = cap_add(self.cwnd, self.mss);
        } else if diff > VEGAS_BETA {
            self.cwnd = (self.cwnd - self.mss).max(self.min_cwnd());
        }
        self.round_min_rtt = SimDuration::MAX;
        self.round_samples = 0;
    }
}

impl CongestionControl for Vegas {
    fn name(&self) -> &'static str {
        "vegas"
    }

    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    fn pacing_rate(&self) -> Option<Bandwidth> {
        None
    }

    fn phase(&self) -> &'static str {
        if self.cwnd < self.ssthresh {
            "slowstart"
        } else {
            "avoidance"
        }
    }

    fn on_ack(&mut self, s: &AckSample) {
        if s.newly_acked == 0 {
            return;
        }
        if let Some(rtt) = s.rtt {
            self.base_rtt = self.base_rtt.min(rtt);
            self.round_min_rtt = self.round_min_rtt.min(rtt);
            self.round_samples += 1;
        }
        self.rounds.update(s);
        if self.rounds.is_round_start() && !s.in_recovery {
            self.on_round_end();
        }
    }

    fn on_enter_recovery(&mut self, _s: &AckSample) {
        // Loss fallback: Reno-style halving.
        self.ssthresh = (self.cwnd / 2).max(self.min_cwnd());
    }

    fn on_exit_recovery(&mut self, _s: &AckSample, after_rto: bool) {
        if !after_rto {
            self.cwnd = self.ssthresh.max(self.min_cwnd());
        }
    }

    fn on_rto(&mut self, _s: &AckSample) {
        self.ssthresh = (self.cwnd / 2).max(self.min_cwnd());
        self.cwnd = self.mss;
    }

    fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.cwnd);
        w.u64(self.ssthresh);
        w.duration(self.base_rtt);
        w.duration(self.round_min_rtt);
        w.u32(self.round_samples);
        self.rounds.save_state(w);
        w.bool(self.ss_grow_this_round);
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.cwnd = r.u64()?;
        self.ssthresh = r.u64()?;
        self.base_rtt = r.duration()?;
        self.round_min_rtt = r.duration()?;
        self.round_samples = r.u32()?;
        self.rounds.load_state(r)?;
        self.ss_grow_this_round = r.bool()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_sim::SimTime;

    const MSS: u32 = 1000;

    fn ack(
        ms: u64,
        rtt_ms: u64,
        newly_acked: u64,
        delivered: u64,
        prior_delivered: u64,
    ) -> AckSample {
        AckSample {
            now: SimTime::from_millis(ms),
            rtt: Some(SimDuration::from_millis(rtt_ms)),
            srtt: SimDuration::from_millis(rtt_ms),
            min_rtt: SimDuration::from_millis(rtt_ms),
            newly_acked,
            newly_lost: 0,
            delivered,
            prior_delivered,
            prior_in_flight: 0,
            in_flight: 0,
            delivery_rate: None,
            interval: SimDuration::ZERO,
            is_app_limited: false,
            in_recovery: false,
            mss: MSS,
            cumulative_ack: 0,
        }
    }

    /// Drive `n` rounds at a constant observed RTT.
    fn feed_rounds(v: &mut Vegas, n: u64, rtt_ms: u64) {
        let mut delivered = v.rounds.rounds() * 100_000;
        let mut t = 0;
        for _ in 0..n {
            let prior = delivered;
            delivered += 50_000;
            t += rtt_ms;
            v.on_ack(&ack(t, rtt_ms, 1000, delivered, prior)); // round start
            v.on_ack(&ack(t + 1, rtt_ms, 1000, delivered + 10, prior));
            delivered += 10;
        }
    }

    #[test]
    fn initial_state() {
        let v = Vegas::new(MSS);
        assert_eq!(v.cwnd(), 10_000);
        assert_eq!(v.name(), "vegas");
        assert!(v.pacing_rate().is_none());
        assert!(v.uses_prr());
    }

    #[test]
    fn holds_steady_inside_the_alpha_beta_band() {
        let mut v = Vegas::new(MSS);
        v.ssthresh = 5_000; // force congestion avoidance
        v.cwnd = 20_000;
        v.base_rtt = SimDuration::from_millis(20);
        // Observed RTT such that queued = cwnd_segs*(1 - base/cur)*...:
        // choose cur so diff ≈ 3 segments (inside [2, 4]).
        // diff = cwnd_segs * (1 - base/cur) ... solve: 20 segs,
        // diff=3 => base/cur = 17/20 => cur = 20ms * 20/17 ≈ 23.5ms.
        feed_rounds(&mut v, 5, 24);
        assert_eq!(v.cwnd(), 20_000, "cwnd should hold in-band");
    }

    #[test]
    fn grows_when_queue_is_short() {
        let mut v = Vegas::new(MSS);
        v.ssthresh = 5_000;
        v.cwnd = 20_000;
        v.base_rtt = SimDuration::from_millis(20);
        // Observed ≈ base: diff ≈ 0 < alpha => +1 MSS per round.
        feed_rounds(&mut v, 4, 20);
        assert!(v.cwnd() > 20_000);
        assert!(v.cwnd() <= 20_000 + 4 * MSS as u64);
    }

    #[test]
    fn shrinks_when_queue_is_long() {
        let mut v = Vegas::new(MSS);
        v.ssthresh = 5_000;
        v.cwnd = 20_000;
        v.base_rtt = SimDuration::from_millis(20);
        // Much larger observed RTT: diff = 20*(1-20/40) = 10 > beta.
        feed_rounds(&mut v, 3, 40);
        assert!(v.cwnd() < 20_000, "cwnd = {}", v.cwnd());
    }

    #[test]
    fn slow_start_exits_on_delay() {
        let mut v = Vegas::new(MSS);
        v.base_rtt = SimDuration::from_millis(20);
        // Big queue signal while in slow start => ssthresh set, growth ends.
        feed_rounds(&mut v, 4, 40);
        assert_ne!(v.ssthresh(), u64::MAX);
        assert!(v.cwnd() <= 10_000);
    }

    #[test]
    fn loss_fallback_halves() {
        let mut v = Vegas::new(MSS);
        v.cwnd = 30_000;
        let s = ack(0, 20, 0, 0, 0);
        v.on_enter_recovery(&s);
        assert_eq!(v.ssthresh(), 15_000);
        v.on_exit_recovery(&s, false);
        assert_eq!(v.cwnd(), 15_000);
        v.on_rto(&s);
        assert_eq!(v.cwnd(), MSS as u64);
    }
}
