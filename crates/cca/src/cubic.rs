//! CUBIC (RFC 8312), including fast convergence, the TCP-friendly region,
//! and HyStart slow-start exit — Linux's default CCA and the paper's
//! second loss-based algorithm.
//!
//! Window arithmetic follows the Linux `bictcp` structure, done in `f64`
//! segments rather than scaled fixed point: the cubic function
//! `W(t) = C·(t−K)³ + W_max` gives a per-ACK growth divisor `cnt`
//! ("increase cwnd by one segment per `cnt` ACKed segments"), and a byte
//! accumulator applies it.

use crate::util::{cap_add, RoundTracker};
use ccsim_sim::{Bandwidth, SimDuration, SimTime, SnapError, SnapReader, SnapWriter};
use ccsim_tcp::cc::{AckSample, CongestionControl, INITIAL_CWND_SEGMENTS, MIN_CWND_SEGMENTS};

/// RFC 8312 C constant (window growth scaling), in segments/s³.
pub const CUBIC_C: f64 = 0.4;
/// RFC 8312 multiplicative-decrease factor β.
pub const CUBIC_BETA: f64 = 0.7;

/// HyStart: minimum window (segments) before exit heuristics engage.
const HYSTART_LOW_WINDOW: f64 = 16.0;
/// HyStart ACK-train spacing threshold.
const HYSTART_ACK_DELTA: SimDuration = SimDuration::from_millis(2);
/// HyStart delay-increase thresholds.
const HYSTART_DELAY_MIN: SimDuration = SimDuration::from_millis(4);
const HYSTART_DELAY_MAX: SimDuration = SimDuration::from_millis(16);
/// HyStart: RTT samples per round used for the delay heuristic.
const HYSTART_MIN_SAMPLES: u32 = 8;

#[derive(Debug, Clone)]
struct HyStart {
    enabled: bool,
    /// Exit already triggered (ssthresh set).
    found: bool,
    round_start_time: SimTime,
    last_ack_time: SimTime,
    curr_round_min_rtt: SimDuration,
    rtt_samples_this_round: u32,
}

impl HyStart {
    fn new(enabled: bool) -> Self {
        HyStart {
            enabled,
            found: false,
            round_start_time: SimTime::ZERO,
            last_ack_time: SimTime::ZERO,
            curr_round_min_rtt: SimDuration::MAX,
            rtt_samples_this_round: 0,
        }
    }

    fn reset_round(&mut self, now: SimTime) {
        self.round_start_time = now;
        self.last_ack_time = now;
        self.curr_round_min_rtt = SimDuration::MAX;
        self.rtt_samples_this_round = 0;
    }

    /// Serialize mutable state (`enabled` is configuration).
    fn save_state(&self, w: &mut SnapWriter) {
        w.bool(self.found);
        w.time(self.round_start_time);
        w.time(self.last_ack_time);
        w.duration(self.curr_round_min_rtt);
        w.u32(self.rtt_samples_this_round);
    }

    /// Overlay checkpointed state.
    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.found = r.bool()?;
        self.round_start_time = r.time()?;
        self.last_ack_time = r.time()?;
        self.curr_round_min_rtt = r.duration()?;
        self.rtt_samples_this_round = r.u32()?;
        Ok(())
    }
}

/// CUBIC congestion control.
#[derive(Debug, Clone)]
pub struct Cubic {
    mss: u64,
    cwnd: u64,
    ssthresh: u64,
    /// Fast convergence (RFC 8312 §4.6), on by default as in Linux.
    fast_convergence: bool,
    /// Last W_max, in segments.
    w_max: f64,
    /// Time to reach W_max from the epoch start, in seconds.
    k: f64,
    epoch_start: Option<SimTime>,
    /// Window at epoch start (plateau origin), segments.
    origin_point: f64,
    /// TCP-friendly (AIMD-equivalent) window estimate, segments.
    tcp_cwnd: f64,
    /// Byte accumulator for congestion-avoidance growth.
    ai_bytes: u64,
    rounds: RoundTracker,
    hystart: HyStart,
}

impl Cubic {
    /// A CUBIC instance with Linux defaults (fast convergence and HyStart
    /// enabled).
    pub fn new(mss: u32) -> Cubic {
        Cubic::with_options(mss, true, true)
    }

    /// A CUBIC instance with explicit feature switches (for ablations).
    pub fn with_options(mss: u32, fast_convergence: bool, hystart: bool) -> Cubic {
        let mss = mss as u64;
        Cubic {
            mss,
            cwnd: INITIAL_CWND_SEGMENTS * mss,
            ssthresh: u64::MAX,
            fast_convergence,
            w_max: 0.0,
            k: 0.0,
            epoch_start: None,
            origin_point: 0.0,
            tcp_cwnd: 0.0,
            ai_bytes: 0,
            rounds: RoundTracker::new(),
            hystart: HyStart::new(hystart),
        }
    }

    fn segs(&self, bytes: u64) -> f64 {
        bytes as f64 / self.mss as f64
    }

    fn min_cwnd(&self) -> u64 {
        MIN_CWND_SEGMENTS * self.mss
    }

    /// Multiplicative decrease + fast convergence (shared by loss and RTO).
    fn on_loss_event(&mut self) {
        let cwnd_segs = self.segs(self.cwnd);
        self.epoch_start = None;
        if self.fast_convergence && cwnd_segs < self.w_max {
            // Release bandwidth early so new flows can take it.
            self.w_max = cwnd_segs * (2.0 - CUBIC_BETA) / 2.0;
        } else {
            self.w_max = cwnd_segs;
        }
        self.ssthresh = ((self.cwnd as f64 * CUBIC_BETA) as u64).max(self.min_cwnd());
    }

    /// Compute the CA growth divisor `cnt` (segments ACKed per +1 segment).
    fn cubic_cnt(&mut self, now: SimTime, min_rtt: SimDuration, newly_acked: u64) -> f64 {
        let cwnd_segs = self.segs(self.cwnd);
        let epoch = match self.epoch_start {
            Some(e) => e,
            None => {
                // New epoch: anchor the cubic curve.
                self.epoch_start = Some(now);
                if cwnd_segs < self.w_max {
                    self.k = ((self.w_max - cwnd_segs) / CUBIC_C).cbrt();
                    self.origin_point = self.w_max;
                } else {
                    self.k = 0.0;
                    self.origin_point = cwnd_segs;
                }
                self.tcp_cwnd = cwnd_segs;
                now
            }
        };
        // Look one RTT ahead, as Linux does.
        let t = now.saturating_since(epoch).as_secs_f64() + min_rtt.as_secs_f64();
        let target = self.origin_point + CUBIC_C * (t - self.k).powi(3);

        let mut cnt = if target > cwnd_segs {
            cwnd_segs / (target - cwnd_segs)
        } else {
            // At or above target: grow very slowly.
            100.0 * cwnd_segs
        };

        // TCP-friendly region (RFC 8312 §4.2): estimate what AIMD with
        // β=0.7 would achieve and never grow slower than that.
        // W_est gains 3(1−β)/(1+β) segments per cwnd of ACKed bytes.
        let aimd_gain = 3.0 * (1.0 - CUBIC_BETA) / (1.0 + CUBIC_BETA);
        self.tcp_cwnd += aimd_gain * self.segs(newly_acked) / cwnd_segs.max(1.0);
        if self.tcp_cwnd > cwnd_segs {
            let max_cnt = cwnd_segs / (self.tcp_cwnd - cwnd_segs);
            cnt = cnt.min(max_cnt);
        }
        // Linux floor: at most one segment per two ACKed segments in CA.
        cnt.max(2.0)
    }

    fn hystart_update(&mut self, s: &AckSample) {
        if !self.hystart.enabled || self.hystart.found {
            return;
        }
        if self.segs(self.cwnd) < HYSTART_LOW_WINDOW {
            return;
        }
        let min_rtt = s.min_rtt;
        if min_rtt == SimDuration::MAX {
            return;
        }
        if self.rounds.is_round_start() {
            self.hystart.reset_round(s.now);
        }
        // ACK-train heuristic: a train of closely spaced ACKs spanning more
        // than min_rtt/2 means the pipe is full.
        if s.now.saturating_since(self.hystart.last_ack_time) <= HYSTART_ACK_DELTA {
            self.hystart.last_ack_time = s.now;
            let train = s.now.saturating_since(self.hystart.round_start_time);
            if train > min_rtt / 2 {
                self.hystart.found = true;
            }
        }
        // Delay-increase heuristic: current round's early RTT samples
        // exceeding min_rtt by eta means queue build-up.
        if let Some(rtt) = s.rtt {
            if self.hystart.rtt_samples_this_round < HYSTART_MIN_SAMPLES {
                self.hystart.rtt_samples_this_round += 1;
                self.hystart.curr_round_min_rtt = self.hystart.curr_round_min_rtt.min(rtt);
                if self.hystart.rtt_samples_this_round == HYSTART_MIN_SAMPLES {
                    let eta = (min_rtt / 8).max(HYSTART_DELAY_MIN).min(HYSTART_DELAY_MAX);
                    if self.hystart.curr_round_min_rtt >= min_rtt.saturating_add(eta) {
                        self.hystart.found = true;
                    }
                }
            }
        }
        if self.hystart.found {
            // Exit slow start at the current window.
            self.ssthresh = self.cwnd;
        }
    }
}

impl CongestionControl for Cubic {
    fn name(&self) -> &'static str {
        "cubic"
    }

    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    fn pacing_rate(&self) -> Option<Bandwidth> {
        None
    }

    fn phase(&self) -> &'static str {
        if self.cwnd < self.ssthresh {
            "slowstart"
        } else {
            "avoidance"
        }
    }

    fn on_ack(&mut self, s: &AckSample) {
        if s.newly_acked == 0 {
            return;
        }
        self.rounds.update(s);
        if s.in_recovery {
            return; // PRR owns the window
        }
        if self.cwnd < self.ssthresh {
            self.hystart_update(s);
            let room = self.ssthresh.saturating_sub(self.cwnd);
            self.cwnd = cap_add(self.cwnd, s.newly_acked.min(room));
            if s.newly_acked <= room {
                return;
            }
            // Fall through with the leftover into congestion avoidance.
        }
        let cnt = self.cubic_cnt(s.now, s.min_rtt, s.newly_acked);
        let threshold = (cnt * self.mss as f64) as u64;
        self.ai_bytes += s.newly_acked;
        while self.ai_bytes >= threshold.max(1) {
            self.ai_bytes -= threshold.max(1);
            self.cwnd = cap_add(self.cwnd, self.mss);
        }
    }

    fn on_enter_recovery(&mut self, _s: &AckSample) {
        self.on_loss_event();
        self.ai_bytes = 0;
    }

    fn on_exit_recovery(&mut self, _s: &AckSample, after_rto: bool) {
        if !after_rto {
            self.cwnd = self.ssthresh.max(self.min_cwnd());
        }
    }

    fn on_rto(&mut self, _s: &AckSample) {
        self.on_loss_event();
        self.cwnd = self.mss;
        self.ai_bytes = 0;
    }

    fn on_ecn(&mut self, _s: &AckSample) {
        // RFC 3168 response: the CUBIC multiplicative decrease applied
        // immediately (no loss episode to finish it at exit-recovery).
        self.on_loss_event();
        self.cwnd = self.ssthresh;
        self.ai_bytes = 0;
    }

    fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.cwnd);
        w.u64(self.ssthresh);
        w.f64(self.w_max);
        w.f64(self.k);
        w.opt(self.epoch_start, |w, t| w.time(t));
        w.f64(self.origin_point);
        w.f64(self.tcp_cwnd);
        w.u64(self.ai_bytes);
        self.rounds.save_state(w);
        self.hystart.save_state(w);
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.cwnd = r.u64()?;
        self.ssthresh = r.u64()?;
        self.w_max = r.f64()?;
        self.k = r.f64()?;
        self.epoch_start = r.opt(|r| r.time())?;
        self.origin_point = r.f64()?;
        self.tcp_cwnd = r.f64()?;
        self.ai_bytes = r.u64()?;
        self.rounds.load_state(r)?;
        self.hystart.load_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u32 = 1000;

    fn ack_at(ms: u64, newly_acked: u64, in_recovery: bool, min_rtt_ms: u64) -> AckSample {
        AckSample {
            now: SimTime::from_millis(ms),
            rtt: Some(SimDuration::from_millis(min_rtt_ms)),
            srtt: SimDuration::from_millis(min_rtt_ms),
            min_rtt: SimDuration::from_millis(min_rtt_ms),
            newly_acked,
            newly_lost: 0,
            delivered: 0,
            prior_delivered: 0,
            prior_in_flight: 0,
            in_flight: 0,
            delivery_rate: None,
            interval: SimDuration::ZERO,
            is_app_limited: false,
            in_recovery,
            mss: MSS,
            cumulative_ack: 0,
        }
    }

    /// Drive into congestion avoidance with a known window.
    fn in_ca(cwnd_segs: u64) -> Cubic {
        let mut c = Cubic::with_options(MSS, true, false);
        c.cwnd = cwnd_segs * MSS as u64;
        c.on_enter_recovery(&ack_at(0, 0, true, 20));
        c.on_exit_recovery(&ack_at(0, 0, false, 20), false);
        c
    }

    #[test]
    fn initial_state() {
        let c = Cubic::new(MSS);
        assert_eq!(c.cwnd(), 10_000);
        assert_eq!(c.ssthresh(), u64::MAX);
        assert!(c.pacing_rate().is_none());
        assert_eq!(c.name(), "cubic");
    }

    #[test]
    fn loss_reduces_by_beta() {
        let mut c = Cubic::with_options(MSS, false, false);
        c.cwnd = 100_000;
        c.on_enter_recovery(&ack_at(0, 0, true, 20));
        assert_eq!(c.ssthresh(), 70_000);
        c.on_exit_recovery(&ack_at(0, 0, false, 20), false);
        assert_eq!(c.cwnd(), 70_000);
    }

    #[test]
    fn fast_convergence_shrinks_w_max_on_consecutive_losses() {
        let mut c = Cubic::with_options(MSS, true, false);
        c.cwnd = 100_000;
        c.on_enter_recovery(&ack_at(0, 0, true, 20));
        assert!((c.w_max - 100.0).abs() < 1e-9);
        c.on_exit_recovery(&ack_at(0, 0, false, 20), false);
        // Second loss at a smaller window than w_max: w_max shrinks below
        // the current window (release bandwidth for newcomers).
        c.on_enter_recovery(&ack_at(1000, 0, true, 20));
        assert!((c.w_max - 70.0 * (2.0 - CUBIC_BETA) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn concave_growth_approaches_w_max() {
        // Large-window regime so the cubic curve (not the TCP-friendly
        // AIMD estimate) governs. Post-loss window 490 segs, W_max 1000:
        // K = cbrt((1000-490)/0.4) ≈ 10.9 s; after 5 s of full-window ACKs
        // every 20 ms the curve sits near 1000 − 0.4·(5−10.9)³ ≈ 920 segs.
        let mut c = in_ca(700); // exit leaves cwnd at 0.7·700 = 490 segs
        c.w_max = 1000.0;
        let mut now = 0u64;
        for _ in 0..250 {
            now += 20;
            c.on_ack(&ack_at(now, c.cwnd(), false, 20));
        }
        assert!(
            c.cwnd() > 800_000,
            "cwnd={} should approach w_max",
            c.cwnd()
        );
        assert!(c.cwnd() < 1_100_000, "cwnd={} overshot w_max", c.cwnd());
    }

    #[test]
    fn plateau_region_grows_slowly() {
        let mut c = in_ca(100);
        c.w_max = 100.0;
        let before = c.cwnd();
        // A couple of windows right at the plateau: growth ≈ stalled
        // (cnt is huge near the inflection point).
        c.on_ack(&ack_at(20, c.cwnd(), false, 20));
        c.on_ack(&ack_at(40, c.cwnd(), false, 20));
        let grown = c.cwnd() - before;
        assert!(grown <= 2 * MSS as u64, "grew {grown} bytes at plateau");
    }

    #[test]
    fn tcp_friendly_region_keeps_up_with_reno_in_small_windows() {
        // Small window, short RTT: the cubic curve alone would be slower
        // than AIMD; the TCP-friendly region must kick in. Expect growth
        // of at least ~0.3 segments per RTT (AIMD with beta=.7 equivalent).
        let mut c = in_ca(10);
        let start = c.cwnd();
        let mut now = 0;
        for _ in 0..50 {
            now += 10;
            c.on_ack(&ack_at(now, c.cwnd(), false, 10));
        }
        let grown_segs = (c.cwnd() - start) / MSS as u64;
        assert!(grown_segs >= 10, "grew only {grown_segs} segs in 50 RTTs");
    }

    #[test]
    fn rto_resets_to_one_segment() {
        let mut c = Cubic::new(MSS);
        c.cwnd = 50_000;
        c.on_rto(&ack_at(0, 0, false, 20));
        assert_eq!(c.cwnd(), 1_000);
        assert_eq!(c.ssthresh(), 35_000);
    }

    #[test]
    fn hystart_delay_exits_slow_start() {
        let mut c = Cubic::with_options(MSS, true, true);
        c.cwnd = 20_000; // past the 16-segment HyStart floor
                         // Deliver 8 RTT samples in one round, all 30 ms against a 20 ms
                         // min_rtt — well past eta (max(20/8,4)=4 ms).
        for i in 0..8 {
            let mut s = ack_at(i, 500, false, 20);
            s.rtt = Some(SimDuration::from_millis(30));
            s.delivered = (i + 1) * 500;
            s.prior_delivered = 0; // same round
            c.on_ack(&s);
        }
        assert_ne!(c.ssthresh(), u64::MAX, "HyStart should have set ssthresh");
        assert!(c.ssthresh() <= c.cwnd());
    }

    #[test]
    fn recovery_acks_do_not_grow_window() {
        let mut c = in_ca(50);
        let w = c.cwnd();
        c.on_ack(&ack_at(100, 10_000, true, 20));
        assert_eq!(c.cwnd(), w);
    }
}
