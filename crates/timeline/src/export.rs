//! Timeline exporters: JSONL for humans/tools, a compact `.cctl` binary
//! (SnapWriter framing, like `.cctr` traces) for bulk archival, plus the
//! reader that round-trips the binary form.

use crate::{Timeline, TimelineConfig};
use ccsim_sim::jsonfmt::{escape, json_f64, json_opt_f64};
use ccsim_sim::snap::{SnapError, SnapReader, SnapWriter};
use ccsim_sim::SimDuration;

/// Magic/version string leading every binary timeline export.
pub const BINARY_MAGIC: &str = "ccsim-timeline/1";

/// Render the retained rows as JSONL: one header object (schema, window,
/// column names, retention counters), then one object per row with the
/// row end (`"t"`, seconds), span, and the value array in column order.
/// Idle-window JFI renders as `null`.
pub fn to_jsonl(tl: &Timeline) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"timeline\":\"{BINARY_MAGIC}\",\"window_secs\":{},\"columns\":[",
        json_f64(tl.config().window.as_secs_f64())
    ));
    for (i, col) in tl.columns().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&escape(col));
        out.push('"');
    }
    let rows = tl.rows();
    out.push_str(&format!(
        "],\"rows\":{},\"retained\":{},\"evicted\":{}}}\n",
        rows.pushed(),
        rows.len(),
        rows.evicted()
    ));
    for r in 0..rows.len() {
        let (t, span, values) = rows.row(r).expect("in-range row");
        out.push_str(&format!(
            "{{\"t\":{},\"span\":{},\"v\":[",
            json_f64(t),
            json_f64(span)
        ));
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // Every recorded series is non-negative when defined, so a
            // negative cell is the idle-window sentinel ([`crate::IDLE_JFI`]);
            // the non-finite arm is defensive against legacy captures.
            let cell = if *v < 0.0 || !v.is_finite() {
                None
            } else {
                Some(*v)
            };
            out.push_str(&json_opt_f64(cell));
        }
        out.push_str("]}\n");
    }
    out
}

/// Serialize the retained rows into the `.cctl` binary form.
pub fn to_binary(tl: &Timeline) -> Vec<u8> {
    let mut w = SnapWriter::new();
    w.str(BINARY_MAGIC);
    w.duration(tl.config().window);
    let columns = tl.columns();
    w.seq(columns, |w, col| w.str(col));
    let rows = tl.rows();
    w.u64(rows.pushed());
    w.u64(rows.evicted());
    w.usize(rows.len());
    for r in 0..rows.len() {
        let (t, span, values) = rows.row(r).expect("in-range row");
        w.f64(t);
        w.f64(span);
        for v in values {
            w.f64(v);
        }
    }
    w.into_bytes()
}

/// A decoded `.cctl` export.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineDump {
    /// Configured window width.
    pub window: SimDuration,
    /// Column names, in value order.
    pub columns: Vec<String>,
    /// Rows ever closed by the capture.
    pub rows_pushed: u64,
    /// Rows evicted before export.
    pub evicted: u64,
    /// Retained rows as `(t_secs, span_secs, values)`.
    pub rows: Vec<(f64, f64, Vec<f64>)>,
}

/// Decode a `.cctl` export produced by [`to_binary`].
pub fn from_binary(bytes: &[u8]) -> Result<TimelineDump, SnapError> {
    let mut r = SnapReader::new(bytes);
    let magic = r.str()?;
    if magic != BINARY_MAGIC {
        return Err(SnapError::Corrupt(format!("timeline magic: {magic:?}")));
    }
    let window = r.duration()?;
    let columns = r.seq(|r| r.str().map(str::to_owned))?;
    let rows_pushed = r.u64()?;
    let evicted = r.u64()?;
    let retained = r.usize()?;
    let mut rows = Vec::with_capacity(retained);
    for _ in 0..retained {
        let t = r.f64()?;
        let span = r.f64()?;
        let mut values = Vec::with_capacity(columns.len());
        for _ in 0..columns.len() {
            values.push(r.f64()?);
        }
        rows.push((t, span, values));
    }
    Ok(TimelineDump {
        window,
        columns,
        rows_pushed,
        evicted,
        rows,
    })
}

/// Default timeline config — re-exported here so CLI callers building an
/// export pipeline need only this module.
pub fn default_config() -> TimelineConfig {
    TimelineConfig::default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlowPoint;
    use ccsim_sim::SimTime;

    fn sample_timeline() -> Timeline {
        let cfg = TimelineConfig {
            window: SimDuration::from_millis(100),
            ..TimelineConfig::default()
        };
        let mut tl = Timeline::new(cfg, 2, 0, SimTime::ZERO);
        let fp = |r| FlowPoint {
            retransmits: r,
            cwnd_bytes: 14600,
            srtt_secs: 0.02,
            inflight_bytes: 7300,
        };
        tl.push_row(
            SimTime::from_millis(100),
            &[1000, 1000],
            &[fp(0), fp(0)],
            &[],
        );
        tl.push_row(SimTime::from_millis(200), &[0, 0], &[fp(1), fp(0)], &[]);
        tl
    }

    #[test]
    fn jsonl_has_header_then_rows_with_null_for_idle_jfi() {
        let out = to_jsonl(&sample_timeline());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("{\"timeline\":\"ccsim-timeline/1\""));
        assert!(lines[0].contains("\"columns\":[\"agg/jfi\",\"agg/goodput_bps\""));
        assert!(lines[1].starts_with("{\"t\":0.1,\"span\":0.1,\"v\":[1.0,"));
        // Row 2 saw saturating-zero deltas -> idle window -> null JFI.
        assert!(lines[2].starts_with("{\"t\":0.2,\"span\":0.1,\"v\":[null,"));
    }

    #[test]
    fn binary_round_trips() {
        let tl = sample_timeline();
        let dump = from_binary(&to_binary(&tl)).unwrap();
        assert_eq!(dump.window, SimDuration::from_millis(100));
        assert_eq!(dump.columns, tl.columns());
        assert_eq!(dump.rows_pushed, 2);
        assert_eq!(dump.evicted, 0);
        assert_eq!(dump.rows.len(), 2);
        assert_eq!(dump.rows[0].0, 0.1);
        let want: Vec<f64> = tl.rows().row(1).unwrap().2;
        let got = &dump.rows[1].2;
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert!(w.is_finite(), "rows must never store non-finite cells");
            assert_eq!(g, w);
        }
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let mut w = SnapWriter::new();
        w.str("not-a-timeline");
        assert!(from_binary(w.as_bytes()).is_err());
    }
}
