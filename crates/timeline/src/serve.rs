//! Zero-dependency live metrics endpoint.
//!
//! A tiny blocking HTTP/1.1 server on `127.0.0.1:<port>` serving two
//! routes from snapshots the runner publishes at slice boundaries:
//!
//! * `/metrics` — Prometheus exposition (live registry + current window);
//! * `/timeline.jsonl` — the retained timeline rows as JSONL.
//!
//! Publishing copies pre-rendered strings under a mutex, so the server
//! never touches simulator state and cannot perturb the run: the endpoint
//! is digest-inert by construction. Shutdown sets a flag and self-connects
//! to unblock the accept loop — no async runtime, no extra crates.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// The strings the endpoint serves, refreshed by the publisher (the
/// runner's progress hook or the campaign executor's sink).
#[derive(Debug, Default)]
pub struct LiveState {
    metrics: Mutex<String>,
    timeline: Mutex<String>,
    hits: AtomicU64,
}

/// Lock a snapshot mutex, recovering from poisoning.
///
/// A publisher that panics while holding the lock poisons it; the payload
/// is a fully-replaced `String`, so the last-good snapshot inside is still
/// coherent. Serving stale-but-valid data (and letting the next publish
/// heal the state) beats a permanently dead `/metrics`.
fn lock_recover(m: &Mutex<String>) -> std::sync::MutexGuard<'_, String> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl LiveState {
    /// Fresh, empty state.
    pub fn new() -> LiveState {
        LiveState::default()
    }

    /// Replace the `/metrics` payload.
    pub fn publish_metrics(&self, exposition: String) {
        *lock_recover(&self.metrics) = exposition;
    }

    /// Replace the `/timeline.jsonl` payload.
    pub fn publish_timeline(&self, jsonl: String) {
        *lock_recover(&self.timeline) = jsonl;
    }

    /// Requests served so far (any route).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Current `/metrics` payload.
    pub fn metrics_snapshot(&self) -> String {
        lock_recover(&self.metrics).clone()
    }

    /// Current `/timeline.jsonl` payload.
    pub fn timeline_snapshot(&self) -> String {
        lock_recover(&self.timeline).clone()
    }
}

/// A running endpoint; dropping without [`ServeHandle::stop`] detaches the
/// thread (it dies with the process).
#[derive(Debug)]
pub struct ServeHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ServeHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the accept loop and join the server thread.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop; an error just means it already exited.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Bind `127.0.0.1:<port>` (0 picks a free port) and serve `state` until
/// [`ServeHandle::stop`].
pub fn serve(port: u16, state: Arc<LiveState>) -> std::io::Result<ServeHandle> {
    let listener = TcpListener::bind(("127.0.0.1", port))?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("ccsim-serve".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(mut stream) = conn else { continue };
                let _ = handle(&mut stream, &state);
                state.hits.fetch_add(1, Ordering::Relaxed);
            }
        })?;
    Ok(ServeHandle {
        addr,
        stop,
        thread: Some(thread),
    })
}

fn handle(stream: &mut TcpStream, state: &LiveState) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    // Read up to the end of the request head; the routes take no body.
    let mut buf = [0u8; 2048];
    let mut head = Vec::new();
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 16 * 1024 {
            break;
        }
    }
    let request_line = std::str::from_utf8(&head)
        .unwrap_or("")
        .lines()
        .next()
        .unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain",
            "GET only\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                state.metrics_snapshot(),
            ),
            "/timeline.jsonl" => (
                "200 OK",
                "application/x-ndjson; charset=utf-8",
                state.timeline_snapshot(),
            ),
            "/" => (
                "200 OK",
                "text/plain; charset=utf-8",
                "ccsim live endpoints:\n  /metrics\n  /timeline.jsonl\n".to_string(),
            ),
            _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        (head.to_string(), body.to_string())
    }

    #[test]
    fn routes_serve_published_snapshots() {
        let state = Arc::new(LiveState::new());
        state.publish_metrics("ccsim_up 1\n".to_string());
        state.publish_timeline("{\"t\":1.0}\n".to_string());
        let handle = serve(0, Arc::clone(&state)).unwrap();
        let addr = handle.addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert!(head.contains("text/plain; version=0.0.4"));
        assert_eq!(body, "ccsim_up 1\n");

        let (head, body) = get(addr, "/timeline.jsonl");
        assert!(head.contains("application/x-ndjson"));
        assert_eq!(body, "{\"t\":1.0}\n");

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"));

        let (head, body) = get(addr, "/");
        assert!(head.starts_with("HTTP/1.1 200"));
        assert!(body.contains("/timeline.jsonl"));

        // Publishing swaps the payload live.
        state.publish_metrics("ccsim_up 2\n".to_string());
        let (_, body) = get(addr, "/metrics");
        assert_eq!(body, "ccsim_up 2\n");

        assert!(state.hits() >= 5);
        handle.stop();
    }

    #[test]
    fn endpoint_survives_a_poisoned_publisher() {
        let state = Arc::new(LiveState::new());
        state.publish_metrics("ccsim_up 1\n".to_string());
        state.publish_timeline("{\"t\":1.0}\n".to_string());

        // Poison both mutexes: a publisher panics while holding the guard.
        for _ in 0..2 {
            let poisoner = Arc::clone(&state);
            let _ = std::thread::spawn(move || {
                let _m = poisoner.metrics.lock().unwrap();
                panic!("publisher died mid-publish");
            })
            .join();
            let poisoner = Arc::clone(&state);
            let _ = std::thread::spawn(move || {
                let _t = poisoner.timeline.lock().unwrap();
                panic!("publisher died mid-publish");
            })
            .join();
        }
        assert!(state.metrics.is_poisoned());
        assert!(state.timeline.is_poisoned());

        // The endpoint still serves the last-good snapshots.
        let handle = serve(0, Arc::clone(&state)).unwrap();
        let addr = handle.addr();
        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert_eq!(body, "ccsim_up 1\n");
        let (head, body) = get(addr, "/timeline.jsonl");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert_eq!(body, "{\"t\":1.0}\n");

        // And a later publish heals the state rather than panicking.
        state.publish_metrics("ccsim_up 2\n".to_string());
        let (_, body) = get(addr, "/metrics");
        assert_eq!(body, "ccsim_up 2\n");
        handle.stop();
    }

    #[test]
    fn stop_joins_the_server_thread() {
        let handle = serve(0, Arc::new(LiveState::new())).unwrap();
        let addr = handle.addr();
        handle.stop();
        // The listener is gone (or refuses) after stop.
        let again = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
        if let Ok(mut s) = again {
            let mut buf = Vec::new();
            let _ = s.write_all(b"GET / HTTP/1.1\r\n\r\n");
            let n = s.read_to_end(&mut buf).unwrap_or(0);
            assert_eq!(n, 0, "no handler behind the socket");
        }
    }
}
